"""Instrumented mode for every benchmark in this directory.

Setting ``REPRO_INSTRUMENT=1`` wraps each bench in a fresh
:mod:`repro.instrument` collection session and, after the bench
finishes, writes the validated JSON report next to the usual
``BENCH_*`` trajectories as ``BENCH_<test name>.instrument.json``
(directory overridable via ``REPRO_INSTRUMENT_DIR``).  The report
contains solver-level breakdowns -- one ``solver.*`` span per solve
performed, with iterations, convergence flag, final residual, residual
trajectory and wall time -- instead of just the bench's total runtime::

    REPRO_INSTRUMENT=1 REPRO_INSTRUMENT_DIR=/tmp \\
        PYTHONPATH=src python -m pytest \\
        benchmarks/test_bench_fig6a_rmse.py --benchmark-only

Without the variable the fixture is pass-through and instrumentation
stays disabled, preserving the un-instrumented timing numbers (the
zero-overhead-when-disabled guarantee is itself asserted by
``tests/instrument/test_tracer.py``).
"""

from __future__ import annotations

import os

import pytest

from repro import instrument


@pytest.fixture(autouse=True)
def instrumented_bench(request):
    """Collect and dump an instrumentation report per bench when enabled."""
    if os.environ.get("REPRO_INSTRUMENT", "") in ("", "0"):
        yield
        return
    instrument.reset()
    instrument.enable()
    try:
        yield
        report = instrument.report(meta={"benchmark": request.node.name})
        problems = instrument.validate_report(report)
        assert not problems, f"invalid instrumentation report: {problems}"
        out_dir = os.environ.get("REPRO_INSTRUMENT_DIR", ".")
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(
            out_dir, f"BENCH_{request.node.name}.instrument.json"
        )
        instrument.write_report(report, path)
    finally:
        instrument.disable()
        instrument.reset()
