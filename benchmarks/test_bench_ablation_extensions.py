"""Ablation benches for the repository's extensions (DESIGN.md §8).

* basis choice under the hardware encoder: DCT vs Haar vs identity --
  pixel sampling is coherent with localized wavelet atoms, which is
  why the paper's DCT choice is the right one;
* debiasing: L1-shrinkage removal on the recovered support;
* weighted vs uniform sampling with a prior frame;
* block-wise decoding: quality and wall-clock vs the whole-frame solve
  on a large (64x64) array.
"""

import time

import numpy as np

from repro.core.blocks import BlockProcessor
from repro.core.dct import Dct2Basis
from repro.core.metrics import rmse
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import debias_on_support, solve, solve_fista
from repro.core.strategies import (
    NaiveStrategy,
    WeightedSamplingStrategy,
    sample_and_reconstruct,
)
from repro.core.wavelet import Haar2Basis
from repro.datasets import ThermalHandGenerator


def _run_basis():
    frame = ThermalHandGenerator(seed=2).frame()
    n = frame.size
    rng = np.random.default_rng(2)
    phi = RowSamplingMatrix.random(n, n // 2, rng)
    b = phi.apply(frame.ravel())
    rows = []
    for name, basis in (
        ("dct", Dct2Basis(frame.shape)),
        ("haar", Haar2Basis(frame.shape)),
        ("identity", None),
    ):
        operator = SensingOperator(phi, basis)
        result = solve("fista", operator, b)
        recon = operator.synthesize(result.coefficients).reshape(frame.shape)
        rows.append((name, rmse(frame, recon)))
    return rows


def test_bench_ablation_basis(benchmark):
    rows = benchmark.pedantic(_run_basis, rounds=1, iterations=1)
    print()
    print("Basis ablation -- thermal 32x32, row sampling at 50%")
    for name, error in rows:
        print(f"  {name:>9}: RMSE {error:.4f}")
    results = dict(rows)
    assert results["dct"] < results["haar"]  # pixel sampling is coherent
    #   with localized wavelets
    assert results["dct"] < results["identity"] / 3.0


def _run_debias_weighted():
    frame = ThermalHandGenerator(seed=3).frame()
    n = frame.size
    rng = np.random.default_rng(3)
    phi = RowSamplingMatrix.random(n, n // 2, rng)
    operator = SensingOperator(phi, Dct2Basis(frame.shape))
    b = phi.apply(frame.ravel())
    lam = 0.02 * float(np.max(np.abs(operator.rmatvec(b))))
    biased = solve_fista(operator, b, lam=lam)
    debiased = debias_on_support(operator, b, biased)
    rows = [
        ("fista (large lam)", rmse(
            frame,
            operator.synthesize(biased.coefficients).reshape(frame.shape),
        )),
        ("fista + debias", rmse(
            frame,
            operator.synthesize(debiased.coefficients).reshape(frame.shape),
        )),
    ]
    uniform = NaiveStrategy(sampling_fraction=0.5)
    weighted = WeightedSamplingStrategy(sampling_fraction=0.5, uniform_floor=0.3)
    rows.append(
        ("uniform sampling", rmse(
            frame, uniform.reconstruct(frame, np.random.default_rng(4))
        ))
    )
    rows.append(
        ("weighted sampling", rmse(
            frame,
            weighted.reconstruct(frame, np.random.default_rng(4), prior=frame),
        ))
    )
    return rows


def test_bench_ablation_debias_weighted(benchmark):
    rows = benchmark.pedantic(_run_debias_weighted, rounds=1, iterations=1)
    print()
    print("Decoder refinements -- thermal 32x32, 50% sampling")
    for name, error in rows:
        print(f"  {name:>18}: RMSE {error:.4f}")
    results = dict(rows)
    assert results["fista + debias"] < results["fista (large lam)"]
    assert results["weighted sampling"] < 0.1


def _run_blocks():
    rng_full = np.random.default_rng(5)
    rng_block = np.random.default_rng(5)
    generator = ThermalHandGenerator(shape=(64, 64), seed=5)
    frame = generator.frame()
    start = time.perf_counter()
    full = sample_and_reconstruct(frame, 0.5, rng_full)
    time_full = time.perf_counter() - start
    processor = BlockProcessor(block_shape=(32, 32), overlap=0,
                               sampling_fraction=0.5)
    start = time.perf_counter()
    blocked = processor.reconstruct(frame, rng_block)
    time_block = time.perf_counter() - start
    return (
        ("full 64x64", rmse(frame, full), time_full),
        ("4 x 32x32 blocks", rmse(frame, blocked), time_block),
    )


def test_bench_ablation_blocks(benchmark):
    rows = benchmark.pedantic(_run_blocks, rounds=1, iterations=1)
    print()
    print("Block-decoding ablation -- 64x64 thermal frame, 50% sampling")
    for name, error, elapsed in rows:
        print(f"  {name:>16}: RMSE {error:.4f}  time {elapsed:.2f} s")
    (_, error_full, _), (_, error_block, _) = rows
    # Tiling costs a little accuracy but stays in the usable band.
    assert error_block < max(3.0 * error_full, 0.08)
