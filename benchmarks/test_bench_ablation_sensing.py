"""Ablation bench: sensing-matrix choice.

DESIGN.md ablation: the paper's encoder uses randomly sampled identity
rows because an active matrix can only *select pixels*; classic CS
prefers dense Gaussian/Bernoulli projections.  This bench measures what
the hardware-friendly choice costs in reconstruction quality and
coherence.
"""

import numpy as np

from repro.core.dct import Dct2Basis, dct_basis_2d
from repro.core.metrics import rmse
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix, bernoulli_matrix, gaussian_matrix
from repro.core.solvers import solve
from repro.core.theory import mutual_coherence
from repro.datasets import ThermalHandGenerator


def _run(shape=(16, 16), fraction=0.5, seed=0):
    frame = ThermalHandGenerator(shape=shape, seed=seed).frame()
    n = shape[0] * shape[1]
    m = int(fraction * n)
    rng = np.random.default_rng(seed)
    basis = Dct2Basis(shape)
    psi = dct_basis_2d(*shape)
    rows = []
    matrices = {
        "row-sampling": RowSamplingMatrix.random(n, m, rng),
        "gaussian": gaussian_matrix(m, n, rng),
        "bernoulli": bernoulli_matrix(m, n, rng),
    }
    for name, phi in matrices.items():
        operator = SensingOperator(phi, basis)
        if isinstance(phi, RowSamplingMatrix):
            b = phi.apply(frame.ravel())
            coherence = mutual_coherence(phi.to_matrix() @ psi)
        else:
            b = phi @ frame.ravel()
            coherence = mutual_coherence(phi @ psi)
        result = solve("fista", operator, b)
        recon = operator.synthesize(result.coefficients).reshape(shape)
        rows.append((name, rmse(frame, recon), coherence))
    return rows


def test_bench_ablation_sensing(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print("Sensing-matrix ablation -- thermal 16x16, 50% measurements")
    print(f"{'matrix':>14} {'RMSE':>8} {'coherence':>10}")
    for name, error, coherence in rows:
        print(f"{name:>14} {error:>8.4f} {coherence:>10.3f}")
    results = {name: error for name, error, _ in rows}
    # All three recover the compressible frame reasonably; the
    # hardware-friendly row sampling stays within ~3x of dense Gaussian.
    assert results["row-sampling"] < 0.1
    assert results["row-sampling"] < 4.0 * max(results["gaussian"], 1e-3)
