"""Ablation bench: decoder choice (accuracy vs runtime).

DESIGN.md ablation: the paper solves Eq. (9) by LP; the repo's default
sweep decoder is FISTA.  This bench quantifies the trade-off across
all registered solvers on the thermal reconstruction task, plus the
DCT-vs-identity basis ablation (why the sparse basis matters).
"""

import time

import numpy as np

from repro.core.dct import Dct2Basis
from repro.core.metrics import rmse
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import solve, solver_names
from repro.datasets import ThermalHandGenerator


def _task(seed=0, shape=(32, 32), fraction=0.5):
    frame = ThermalHandGenerator(seed=seed).frame()
    n = shape[0] * shape[1]
    rng = np.random.default_rng(seed)
    phi = RowSamplingMatrix.random(n, int(fraction * n), rng)
    return frame, phi


def _run_all():
    frame, phi = _task()
    rows = []
    for name in solver_names():
        operator = SensingOperator(phi, Dct2Basis(frame.shape))
        b = phi.apply(frame.ravel())
        start = time.perf_counter()
        result = solve(name, operator, b, sparsity=400)
        elapsed = time.perf_counter() - start
        recon = operator.synthesize(result.coefficients).reshape(frame.shape)
        rows.append((name, rmse(frame, recon), elapsed))
    # identity-basis ablation with the default decoder
    operator = SensingOperator(phi, None)
    b = phi.apply(frame.ravel())
    result = solve("fista", operator, b)
    recon = operator.synthesize(result.coefficients).reshape(frame.shape)
    rows.append(("fista/identity", rmse(frame, recon), float("nan")))
    return rows


def test_bench_ablation_solvers(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    print("Solver ablation -- thermal frame, 50% sampling, no errors")
    print(f"{'solver':>16} {'RMSE':>8} {'time (s)':>9}")
    for name, error, elapsed in rows:
        print(f"{name:>16} {error:>8.4f} {elapsed:>9.3f}")
    results = {name: error for name, error, _ in rows}
    # Convex decoders reconstruct well.
    assert results["bp"] < 0.05
    assert results["fista"] < 0.05
    # The DCT basis is what makes recovery work: without a sparse
    # basis, a row-sampled identity system cannot fill in unseen pixels.
    assert results["fista/identity"] > 3.0 * results["fista"]
