"""Bench COMM + ENC: communication-cost accounting and encoder check.

Paper Sec. 4.1: CS cuts the A/D-conversion (communication) cost to
``M/N ~ 0.5`` and scans all M samples in ``sqrt(N)`` cycles; the ENC
check verifies the hardware-modelled scan equals ``Phi_M @ y``.
"""

import numpy as np

from repro.array.energy import EnergyModel
from repro.array.scanner import ScanSchedule
from repro.core.sensing import RowSamplingMatrix
from repro.experiments.comm_cost import run_comm_cost, run_encoder_check


def test_bench_comm_cost(benchmark):
    results = benchmark.pedantic(
        run_comm_cost,
        kwargs={
            "array_shapes": ((16, 16), (32, 32), (64, 64), (100, 33)),
            "sampling_fraction": 0.5,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("Sec. 4.1 -- communication cost at M/N = 0.5")
    for result in results:
        print(result.row())
    for result in results:
        assert result.cost_ratio == 0.5
        assert result.scan_cycles == result.array_shape[1]

    # Energy view: the conversion saving translated to joules.
    model = EnergyModel()
    rng = np.random.default_rng(0)
    print("energy ratio (CS scan / full readout):")
    for shape in ((32, 32), (64, 64)):
        n = shape[0] * shape[1]
        phi = RowSamplingMatrix.random(n, n // 2, rng)
        schedule = ScanSchedule.from_phi(phi, shape)
        ratio = model.energy_ratio(schedule)
        print(f"  {shape[0]}x{shape[1]}: {ratio:.2f} "
              "(ADC part halves; driver reload does not)")
        assert 0.5 <= ratio < 1.0


def test_bench_encoder_correctness(benchmark):
    check = benchmark.pedantic(
        run_encoder_check,
        kwargs={"shape": (32, 32), "sampling_fraction": 0.5},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"ENC: scan of {check['measurements']} pixels in "
        f"{check['scan_cycles']} cycles, max |b - Phi y| = "
        f"{check['max_deviation']:.2e}"
    )
    assert check["max_deviation"] < 1e-3
    assert check["scan_cycles"] == check["expected_cycles"]
