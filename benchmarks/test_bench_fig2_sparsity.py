"""Bench FIG2: regenerate the Fig. 2 sparsity statistics.

Paper: three body-signal modalities show ~50 % significant DCT
coefficients (threshold 1e-4 of max) over 100 samples, with rapidly
decaying sorted-magnitude curves.
"""

import numpy as np

from repro.experiments.fig2_sparsity import format_table, run_fig2


def test_bench_fig2(benchmark):
    results = benchmark.pedantic(
        run_fig2, kwargs={"num_samples": 100, "seed": 0}, rounds=1, iterations=1
    )
    print()
    print(format_table(results))
    print("Fig. 2a decay (|c_sorted| at N/2, relative):")
    for result in results:
        half = result.sorted_magnitudes[len(result.sorted_magnitudes) // 2]
        print(f"  {result.modality:>12}: {half:.2e}")
    # Paper's Fig. 2b: ~50 % for all modalities.
    for result in results:
        assert 0.3 < result.stats.mean_fraction < 0.7
    # Paper's Fig. 2a: rapid decay.
    for result in results:
        curve = result.sorted_magnitudes
        assert curve[len(curve) // 2] < 1e-3
