"""Bench FIG5: the fabricated encoder building blocks.

Paper measurements: Fig. 5b Pt sensor linearity; Fig. 5c-d 8-stage
304-TFT shift register at CLK 10 kHz / data 1 kHz / VDD 3 V; Fig. 5e
self-biased amplifier, 50 mV -> 1.3 V at 30 kHz (~28 dB).
"""

from repro.experiments.fig5_circuits import run_fig5b, run_fig5cd, run_fig5e


def test_bench_fig5b_sensor(benchmark):
    curve = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    print()
    print(curve.row())
    assert curve.linearity_error < 0.02
    assert curve.inversion_rmse_c < 0.01


def test_bench_fig5cd_shift_register(benchmark):
    result = benchmark.pedantic(run_fig5cd, rounds=1, iterations=1)
    print()
    print(
        f"Fig. 5c-d: {result.tft_count} TFTs, CLK {result.clock_hz / 1e3:g} kHz, "
        f"DATA {result.data_hz / 1e3:g} kHz -> functional={result.functional}"
    )
    assert result.tft_count == 304  # paper's transistor count
    assert result.functional  # works at the paper's operating point


def test_bench_fig5e_amplifier(benchmark):
    measurement = benchmark.pedantic(run_fig5e, rounds=1, iterations=1)
    print()
    print(
        f"Fig. 5e: {measurement.input_amplitude_v * 1e3:g} mV @ "
        f"{measurement.frequency_hz / 1e3:g} kHz -> "
        f"{measurement.output_amplitude_v:.2f} V ({measurement.gain_db:.1f} dB); "
        "paper: 1.3 V (~28 dB)"
    )
    assert 20.0 < measurement.gain_db < 34.0
    assert measurement.output_amplitude_v > 0.5
