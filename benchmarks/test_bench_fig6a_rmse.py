"""Bench FIG6a: temperature-imaging RMSE grid (w/ and w/o CS).

Paper: sampling 45-60 %, sparse errors 0-20 %, oracle-excluded
defects; at ~10 % errors RMSE drops from 0.20 to 0.05; RMSE decreases
with sampling percentage with diminishing returns (Eq. 2's measurement
floor).
"""

from repro.experiments.fig6a_rmse import format_table, run_fig6a


def test_bench_fig6a(benchmark):
    points = benchmark.pedantic(
        run_fig6a,
        kwargs={
            "num_frames": 6,
            "sampling_fractions": (0.45, 0.50, 0.55, 0.60),
            "error_rates": (0.0, 0.05, 0.10, 0.15, 0.20),
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(points))

    at = {(p.sampling_fraction, p.error_rate): p for p in points}
    # Headline: >= 3x RMSE reduction at 10 % errors and 50 % sampling.
    headline = at[(0.50, 0.10)]
    print(
        f"headline @ (50% sampling, 10% errors): "
        f"{headline.rmse_without_cs:.3f} -> {headline.rmse_with_cs:.3f} "
        "(paper: 0.20 -> 0.05)"
    )
    assert headline.rmse_without_cs > 3.0 * headline.rmse_with_cs
    # RMSE decreases in sampling percentage at fixed error rate.
    for rate in (0.0, 0.10, 0.20):
        assert at[(0.60, rate)].rmse_with_cs <= at[(0.45, rate)].rmse_with_cs + 0.005
    # Diminishing returns: the 55->60 step improves less than 45->50.
    step_low = at[(0.45, 0.10)].rmse_with_cs - at[(0.50, 0.10)].rmse_with_cs
    step_high = at[(0.55, 0.10)].rmse_with_cs - at[(0.60, 0.10)].rmse_with_cs
    assert step_high <= step_low + 0.005
    # With CS, RMSE only rises slightly up to 20 % errors.
    assert at[(0.50, 0.20)].rmse_with_cs < at[(0.50, 0.0)].rmse_with_cs + 0.03
