"""Bench FIG6b: tactile object-recognition accuracy (w/ and w/o CS).

Paper: 26 objects, ResNet classifier; without CS the accuracy
collapses under sparse errors; with CS it recovers (~65 % -> ~84 % at
10 % errors), with the boost flattening as sampling reaches ~60 %.

This is the heaviest bench (it trains the NumPy ResNet); set
REPRO_FIG6B_FULL=1 for the full 26-class run, the default uses a
12-class configuration that finishes in about a minute.
"""

import os

from repro.experiments.fig6b_accuracy import TactileExperiment, format_table


def _run():
    full = os.environ.get("REPRO_FIG6B_FULL", "0") == "1"
    experiment = TactileExperiment(
        samples_per_class=20 if full else 16,
        epochs=15 if full else 12,
        num_classes=26 if full else 12,
        seed=1,
    )
    experiment.fit()
    clean = experiment.clean_accuracy()
    points = experiment.grid(
        sampling_fractions=(0.50,),
        error_rates=(0.0, 0.05, 0.10, 0.15, 0.20),
    )
    return clean, points


def test_bench_fig6b(benchmark):
    clean, points = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(clean, points))
    by_rate = {p.error_rate: p for p in points}
    headline = by_rate[0.10]
    print(
        f"headline @ 10% errors: {headline.accuracy_without_cs:.1%} -> "
        f"{headline.accuracy_with_cs:.1%} (paper: 65% -> 84%)"
    )
    # The classifier must work on clean data.
    assert clean > 0.5
    # CS recovers most of the corruption-induced loss at 10 % errors.
    assert headline.accuracy_with_cs > headline.accuracy_without_cs + 0.1
    # Without CS, accuracy degrades monotonically-ish with error rate.
    assert by_rate[0.20].accuracy_without_cs < by_rate[0.0].accuracy_without_cs
    # With CS, accuracy at 20 % errors stays within reach of clean.
    assert by_rate[0.20].accuracy_with_cs > by_rate[0.20].accuracy_without_cs
