"""Bench FIG6c: resampling vs RPCA without a defect map.

Paper: ten resampling rounds give ~50 % RMSE reduction at 3-10 %
sparse errors; RPCA outlier exclusion outperforms resampling above
~8 % errors.
"""

from repro.experiments.fig6c_strategies import format_table, run_fig6c


def test_bench_fig6c(benchmark):
    points = benchmark.pedantic(
        run_fig6c,
        kwargs={
            "error_rates": (0.0, 0.03, 0.05, 0.08, 0.10, 0.15, 0.20),
            "rounds": 10,
            "num_frames": 6,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(points))
    by_rate = {p.error_rate: p for p in points}
    # Resampling achieves a solid RMSE reduction at moderate rates.
    for rate in (0.03, 0.05, 0.10):
        point = by_rate[rate]
        assert point.rmse_resample_median < 0.8 * point.rmse_no_cs
    # RPCA wins at the high end (paper: above ~8 %).
    for rate in (0.10, 0.15, 0.20):
        point = by_rate[rate]
        assert point.rmse_rpca < point.rmse_resample_median
