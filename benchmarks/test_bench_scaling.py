"""Bench SCALE: decode cost vs array size (whole-frame vs block)."""

from repro.experiments.scaling import run_scaling


def test_bench_scaling(benchmark):
    points = benchmark.pedantic(
        run_scaling, kwargs={"sides": (32, 64, 128)}, rounds=1, iterations=1
    )
    print()
    print("Decode scaling -- 50% sampling, FISTA")
    for point in points:
        print(point.row())
    # Quality stays in the usable band at every size, for both paths.
    for point in points:
        assert point.rmse_full < 0.08
        assert point.rmse_block < 0.08
    # The block path's cost is linear in tile count: going 64 -> 128
    # quadruples tiles, so time should grow ~4x (generous 8x cap);
    # whole-frame growth is allowed to be steeper.
    by_side = {p.side: p for p in points}
    ratio_block = by_side[128].time_block_s / max(by_side[64].time_block_s, 1e-9)
    assert ratio_block < 8.0
