"""Ablation bench: random vs structured (line) defects.

A broken driver line kills a whole row at once.  At equal defect
*budget*, structured errors differ from random ones in two ways the
bench quantifies:

* with oracle exclusion, the dead lines are simply never sampled and
  CS fills them in from neighbours -- almost as well as for random
  defects;
* without exclusion (blind sampling), a stuck line biases every DCT
  row coefficient it touches, hurting more than scattered errors.
"""

import numpy as np

from repro.core.metrics import rmse
from repro.core.strategies import NaiveStrategy, OracleExclusionStrategy
from repro.datasets import ThermalHandGenerator
from repro.devices import DefectMap, LineDefectMap


def _run(shape=(32, 32), seed=0):
    rng = np.random.default_rng(seed)
    frame = ThermalHandGenerator(shape=shape, seed=seed).frame()
    lines = LineDefectMap.sample_lines(shape, num_rows=2, num_cols=1, rng=rng)
    budget = lines.defect_rate
    random_map = DefectMap.sample(shape, budget, rng)
    oracle = OracleExclusionStrategy(sampling_fraction=0.5)
    naive = NaiveStrategy(sampling_fraction=0.5)
    rows = []
    for name, defect_map in (("random", random_map), ("lines", lines)):
        corrupted = defect_map.apply(frame)
        mask = defect_map.mask()
        recon_oracle = oracle.reconstruct(
            corrupted, np.random.default_rng(seed + 1), error_mask=mask
        )
        recon_naive = naive.reconstruct(
            corrupted, np.random.default_rng(seed + 1)
        )
        rows.append(
            (name, defect_map.defect_rate,
             rmse(frame, recon_oracle), rmse(frame, recon_naive))
        )
    return rows


def test_bench_structured_errors(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print("Random vs structured defects -- 32x32 thermal, 50% sampling")
    print(f"{'defects':>8} {'rate':>6} {'oracle RMSE':>12} {'blind RMSE':>11}")
    for name, rate, oracle_error, naive_error in rows:
        print(f"{name:>8} {rate:>6.1%} {oracle_error:>12.4f} {naive_error:>11.4f}")
    by_name = {name: (oracle_error, naive_error)
               for name, _, oracle_error, naive_error in rows}
    # With exclusion, both defect geometries reconstruct well.
    assert by_name["random"][0] < 0.06
    assert by_name["lines"][0] < 0.08
    # Blind sampling hurts in both cases; exclusion always wins.
    for name in ("random", "lines"):
        assert by_name[name][0] < by_name[name][1]
