"""Bench EQ1 + EQ2: the paper's compressed-sensing estimates.

EQ1: Eq. (1) ``M ~ K log(N/K)`` against an empirical phase transition.
EQ2: Eq. (2) error decomposition over a noise sweep.
"""

import numpy as np

from repro.experiments.theory_checks import (
    run_eq1_phase_transition,
    run_eq2_bound,
)


def test_bench_eq1_phase_transition(benchmark):
    points = benchmark.pedantic(
        run_eq1_phase_transition,
        kwargs={
            "shape": (16, 16),
            "sparsities": (8, 16, 32),
            "m_grid": (0.15, 0.25, 0.35, 0.5, 0.65, 0.8),
            "trials": 4,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("Eq. (1) -- empirical recovery vs the M ~ K log(N/K) estimate")
    print(f"{'K':>4} {'M':>5} {'success':>8} {'Eq.(1) M':>9}")
    for point in points:
        print(
            f"{point.sparsity:>4} {point.m:>5} {point.success_rate:>8.2f} "
            f"{point.eq1_estimate:>9}"
        )
    # At generous budgets recovery is certain; at starved budgets it
    # fails -- the transition brackets the Eq. (1) estimate.
    for sparsity in (8, 16, 32):
        mine = [p for p in points if p.sparsity == sparsity]
        assert mine[-1].success_rate == 1.0
        assert mine[0].success_rate < 1.0


def test_bench_eq2_error_bound(benchmark):
    points = benchmark.pedantic(
        run_eq2_bound,
        kwargs={"noise_levels": (0.0, 0.01, 0.02, 0.05, 0.1), "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print("Eq. (2) -- observed L2 error vs bound terms")
    print(f"{'noise':>7} {'observed':>9} {'meas term':>10} {'approx term':>12}")
    for point in points:
        print(
            f"{point.noise:>7.3f} {point.observed_rmse_l2:>9.4f} "
            f"{point.bound_measurement:>10.4f} {point.bound_approximation:>12.4f}"
        )
    observed = [p.observed_rmse_l2 for p in points]
    bounds = [p.bound_measurement for p in points]
    # Both grow with noise, and the observation stays within the
    # theorem's constant of the bound.
    assert observed == sorted(observed)
    assert bounds == sorted(bounds)
    for point in points[1:]:
        assert point.observed_rmse_l2 < 6.0 * point.bound_total
