"""Bench TOL: the ">20 % sparse errors tolerated" claim (Sec. 1/2).

Sweeps sparse-error rates far past Fig. 6a's 20 % ceiling and locates
the tolerance limit at 50 % sampling.
"""

from repro.experiments.tolerance import format_table, run_tolerance, tolerance_limit


def test_bench_tolerance(benchmark):
    points = benchmark.pedantic(
        run_tolerance, kwargs={"num_frames": 4, "seed": 0}, rounds=1, iterations=1
    )
    print()
    print(format_table(points))
    limit = tolerance_limit(points)
    print(f"tolerance limit (RMSE <= 0.08): {limit:.0%} sparse errors "
          "(paper: 'can tolerate >20%', potential up to ~50%)")
    # Paper's claim: >20 % errors tolerated...
    assert limit > 0.20
    # ...approaching the Sec. 2 potential of ~50 %.
    assert limit >= 0.40
    # Raw frames at the limit are unusable without CS.
    worst = max(points, key=lambda p: p.error_rate)
    assert worst.rmse_without_cs > 0.3
