"""Bench MATRIX: tier-1 workload cells through the shared registry.

Unlike the figure-reproduction benches in this directory, this bench
takes its workload definitions from :mod:`repro.bench.workloads` -- the
same registry ``python -m repro.bench`` expands -- so the pytest bench
and the trajectory driver always time the identical cells.
"""

from repro.bench import get_route, get_workload, make_frames, suite_cells


def _run(workload, route_name, seed=0):
    route = get_route(route_name)
    frames = make_frames(workload, seed)
    return route.run(frames, workload, seed)


def test_bench_matrix_serial_thermal(benchmark):
    workload = get_workload("thermal-32x32-s50-f00")
    result = benchmark.pedantic(
        _run, args=(workload, "serial"), rounds=1, iterations=1
    )
    assert result.delivered == workload.frames
    assert result.ok


def test_bench_matrix_batch_shared_tactile(benchmark):
    workload = get_workload("tactile-32x32-s50-f00")
    result = benchmark.pedantic(
        _run, args=(workload, "batch_shared"), rounds=1, iterations=1
    )
    assert result.delivered == workload.frames


def test_bench_matrix_resilient_faulted(benchmark):
    workload = get_workload("thermal-32x32-s50-f10")
    result = benchmark.pedantic(
        _run, args=(workload, "resilient"), rounds=1, iterations=1
    )
    # Supervised route: every frame delivered despite injected faults.
    assert result.delivered == workload.frames


def test_bench_matrix_smoke_suite_is_runnable():
    # Every smoke cell must expand to a supported (workload, route) pair;
    # the trajectory driver relies on this invariant at run time.
    cells = suite_cells("smoke")
    assert cells
    for workload, route_name in cells:
        assert get_route(route_name).supports(workload)


def test_bench_matrix_serial_dense_route(benchmark):
    workload = get_workload("thermal-16x16-s50-f00")
    result = benchmark.pedantic(
        _run, args=(workload, "serial_dense"), rounds=1, iterations=1
    )
    assert result.delivered == workload.frames
    assert result.extras["operator_mode"] == "dense"


def test_bench_matrix_dense_route_guard_matches_engine():
    # The route-level size guard must track the engine's dense-mode
    # guard, or suites would admit cells the engine then rejects.
    from repro.bench.routes import _DENSE_MAX_CELLS
    from repro.core.engine import _DENSE_MODE_MAX_N

    assert _DENSE_MAX_CELLS == _DENSE_MODE_MAX_N
    dense = get_route("serial_dense")
    assert not dense.supports(get_workload("thermal-128x128-s50-f00"))
    assert dense.supports(get_workload("thermal-64x64-s50-f00"))


def test_bench_matrix_resilient_batch_faulted(benchmark):
    workload = get_workload("thermal-16x16-s50-f20")
    result = benchmark.pedantic(
        _run, args=(workload, "resilient_batch"), rounds=1, iterations=1
    )
    # Optimistic batch supervision still delivers every frame under
    # injected faults (the failed pass replays per-frame).
    assert result.delivered == workload.frames
    assert result.extras["shared_phi"] is True
