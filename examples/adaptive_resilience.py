"""Adaptive self-tuning resilience under array-layer fault injection.

Streams the same scene through the hardware-modelled imager twice while
array-layer chaos injectors break it mid-run -- pixel rows stick at the
dark rail and ADC codes suffer random bit flips:

* the **static** arm runs the default
  :class:`~repro.resilience.ResiliencePolicy` (fallback chain, health
  validation, last-good-frame hold), unchanged frame to frame;
* the **adaptive** arm wraps the same base policy in an
  :class:`~repro.resilience.AdaptivePolicy` controller: after every
  scan it runs the full readout codes through
  :func:`~repro.array.detect_stuck_lines`, accumulates detections into
  a sticky sampling-exclusion mask (steering the *next* frame's
  measurements away from the dead rows -- Sec. 4.2's exclusion
  strategy, with health monitoring standing in for the oracle), and
  escalates the fallback chain and retry rounds when the fault rate
  rises.

Both arms deliver every frame; the adaptive arm recovers a visibly
lower RMSE once it has learned the stuck rows, and the printed
adaptation log shows exactly when and why each adjustment happened.

Run:  python examples/adaptive_resilience.py
"""

import numpy as np

from repro.array import ActiveMatrix, FlexibleEncoder, ReadoutChain, StreamingImager
from repro.core import rmse
from repro.resilience import (
    AdaptivePolicy,
    AdcBitFlipInjector,
    ResiliencePolicy,
    StuckPixelRowInjector,
    chaos,
)

SHAPE = (16, 16)
FRAMES = 20
SEED = 0


def make_scene(count: int, shape=SHAPE) -> np.ndarray:
    """A drifting warm blob on a 0.15 pedestal.

    The pedestal keeps healthy pixels off the ADC zero rail, so the
    stuck-line detector only fires on genuinely broken rows.
    """
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    frames = []
    for k in range(count):
        cy = shape[0] * (0.45 + 0.1 * np.sin(0.25 * k))
        cx = shape[1] * (0.5 + 0.12 * np.cos(0.2 * k))
        blob = np.exp(-((r - cy) ** 2 + (c - cx) ** 2) / 12.0)
        frames.append(np.clip(0.15 + 0.8 * blob, 0.0, 1.0))
    return np.stack(frames)


def run_arm(scene: np.ndarray, adaptive: AdaptivePolicy | None) -> list:
    """Stream the scene under injected array faults; returns the records."""
    encoder = FlexibleEncoder(
        ActiveMatrix(SHAPE), readout=ReadoutChain(noise_sigma_v=0.0)
    )
    imager = StreamingImager(
        encoder,
        sampling_fraction=0.5,
        policy=None if adaptive is not None else ResiliencePolicy(),
        adaptive=adaptive,
        seed=SEED,
    )
    injectors = (
        StuckPixelRowInjector(rate=0.2, seed=SEED + 100),
        AdcBitFlipInjector(rate=0.2, seed=SEED + 101),
    )
    with chaos(*injectors):
        return imager.stream(scene)


def main() -> None:
    scene = make_scene(FRAMES)
    static_records = run_arm(scene, adaptive=None)
    adaptive = AdaptivePolicy()
    adaptive_records = run_arm(scene, adaptive=adaptive)

    print("Array-layer chaos: 20% stuck-row + 20% ADC bit-flip injection")
    print(f"{'frame':>6} {'static RMSE':>12} {'adaptive RMSE':>14} "
          f"{'adaptive status':>16}")
    for s_rec, a_rec in zip(static_records, adaptive_records):
        print(
            f"{s_rec.index:>6} {rmse(s_rec.clean, s_rec.reconstructed):>12.4f} "
            f"{rmse(a_rec.clean, a_rec.reconstructed):>14.4f} "
            f"{a_rec.status:>16}"
        )

    static_mean = np.mean(
        [rmse(r.clean, r.reconstructed) for r in static_records]
    )
    adaptive_mean = np.mean(
        [rmse(r.clean, r.reconstructed) for r in adaptive_records]
    )
    print(f"\nmean RMSE, static policy:   {static_mean:.4f}")
    print(f"mean RMSE, adaptive policy: {adaptive_mean:.4f}")
    mask = adaptive.exclusion_mask(SHAPE)
    excluded = 0 if mask is None else int(mask.sum())
    print(f"pixels excluded by the controller: {excluded} "
          f"(level {adaptive.level} at end of stream)")


if __name__ == "__main__":
    main()
