"""Kill a journalled decode service mid-cycle, recover it, audit the journal.

Drives the :mod:`repro.serve` durability layer through the scenario its
acceptance tests pin down -- and that CI's ``crash-smoke`` job replays
on every push:

* a journalled service (write-ahead :class:`~repro.serve.VerdictJournal`)
  runs two tenants under **seeded worker chaos**
  (``chaos(layer="executor")`` crash/hang/slow-start injectors) with a
  :class:`~repro.core.executor.SupervisedExecutor` retrying lost
  workers;
* mid-run the process "dies": the service object is abandoned with
  frames admitted but undecided, and a torn half-record is appended to
  the journal (the classic power-loss artifact);
* a **fresh service** opens the same journal, truncates the torn tail,
  :meth:`~repro.serve.DecodeService.recover`\\ s -- re-enqueueing every
  admitted-but-undecided frame with ``recovered=True`` -- and drains;
* the **replay CLI** (:mod:`repro.serve.replay`) then re-renders the
  per-tenant verdict timeline from the journal alone, twice, and the
  two renders must be bit-identical.

The checks assert the at-least-once contract: after recovery every
admitted frame has exactly one terminal verdict in the journal, every
replayed verdict carries the ``recovered=True`` honesty flag, and the
audit report shows zero outstanding frames.

Run:  PYTHONPATH=src python examples/crash_recovery.py --report out.json
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.engine import DecodeContext
from repro.resilience import chaos, default_taxonomy
from repro.serve import (
    DecodeService,
    StreamConfig,
    TenantConfig,
    VirtualClock,
    replay_report,
    render_report,
)

SHAPE = (8, 8)
CYCLE_BUDGET = 4
PRE_CRASH_SUBMITS = 10
PRE_CRASH_CYCLES = 1
WORKER_FAULT_RATE = 0.8
SEED = 9


def build_service(journal_path: str) -> tuple[DecodeService, VirtualClock]:
    """A journalled, worker-supervised two-tenant service."""
    clock = VirtualClock()
    service = DecodeService(
        clock=clock,
        cycle_budget=CYCLE_BUDGET,
        backlog_limit=PRE_CRASH_SUBMITS,
        journal=journal_path,
        supervise_workers=True,
    )
    plan = DecodeContext(
        shape=SHAPE,
        sampling_fraction=0.6,
        solver_options={"max_iterations": 60},
    )
    service.register_tenant(TenantConfig("icu", priority=2))
    service.register_tenant(TenantConfig("lab", priority=0))
    service.register_stream(StreamConfig(
        name="icu/skin", tenant="icu", plan=plan, queue_limit=16, seed=11,
    ))
    service.register_stream(StreamConfig(
        name="lab/skin", tenant="lab", plan=plan, queue_limit=16, seed=22,
    ))
    return service, clock


def run_until_crash(journal_path: str) -> list:
    """Admit frames, decode one cycle under worker chaos, then 'die'.

    The service object is abandoned with backlog still queued, and a
    torn half-record is appended to the journal -- the on-disk state a
    real power loss leaves behind.
    """
    service, clock = build_service(journal_path)
    frame_rng = np.random.default_rng(SEED)
    tickets = []
    injectors = default_taxonomy(
        WORKER_FAULT_RATE, seed=SEED, layer="executor"
    )
    with chaos(*injectors):
        for index in range(PRE_CRASH_SUBMITS):
            stream = "icu/skin" if index % 2 == 0 else "lab/skin"
            tickets.append(service.submit(stream, frame_rng.random(SHAPE)))
        for _ in range(PRE_CRASH_CYCLES):
            service.run_cycle()
            clock.advance(1.0)
    worker_trips = sum(injector.trips for injector in injectors)
    print(f"  pre-crash: {len(tickets)} submitted, "
          f"{len(service.verdicts())} decided, backlog {service.backlog}, "
          f"{worker_trips} worker faults injected")
    # Simulate the crash: no stop(), no drain -- just a torn tail.
    service.journal.close()
    with open(journal_path, "ab") as fh:
        fh.write(b'{"type": "verdict", "seq": 99')  # torn mid-write
    return tickets


def recover_and_drain(journal_path: str) -> tuple[DecodeService, list]:
    """Open the crashed journal in a fresh service and finish the work."""
    service, _clock = build_service(journal_path)
    recovered_seqs = service.recover()
    verdicts = service.stop()
    print(f"  recovery: re-enqueued {len(recovered_seqs)} frame(s), "
          f"drained {len(verdicts)} verdict(s)")
    service.journal.flush()
    return service, recovered_seqs


def check_contract(journal_path: str, tickets: list, recovered_seqs) -> list:
    """Assert the at-least-once contract; returns the check lines."""
    report = replay_report(journal_path)
    checks = []

    admitted = sorted(t.seq for t in tickets if t.admitted)
    answered = sorted(v["seq"] for v in report["timeline"])
    assert answered == admitted, (
        f"journal must show one terminal verdict per admitted frame: "
        f"admitted {admitted} vs answered {answered}"
    )
    checks.append(
        f"zero silent loss across the crash: {len(admitted)} admitted = "
        f"{len(answered)} journalled verdicts"
    )

    assert report["outstanding"] == [], report["outstanding"]
    checks.append("no outstanding frames after recovery")

    replayed = [v for v in report["timeline"] if v["recovered"]]
    assert sorted(v["seq"] for v in replayed) == sorted(recovered_seqs), (
        "every re-enqueued frame's verdict must carry recovered=True"
    )
    checks.append(
        f"at-least-once honesty: {len(replayed)} replayed verdict(s) "
        "flagged recovered=True"
    )

    first = render_report(replay_report(journal_path))
    second = render_report(replay_report(journal_path))
    assert first == second, "replay must be bit-identical"
    checks.append("replay CLI output is bit-identical across invocations")
    return checks


def main(argv=None) -> int:
    """Run the crash demo; write the replayed report; non-zero on breach."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the replayed-journal JSON audit report here",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal file location (default: a temp directory)",
    )
    args = parser.parse_args(argv)

    tmp = None
    if args.journal is None:
        tmp = tempfile.TemporaryDirectory()
        journal_path = str(Path(tmp.name) / "service_journal.jsonl")
    else:
        journal_path = args.journal

    print("== crash a journalled decode service, recover, audit ==")
    tickets = run_until_crash(journal_path)
    service, recovered_seqs = recover_and_drain(journal_path)
    checks = check_contract(journal_path, tickets, recovered_seqs)

    report = replay_report(journal_path)
    report["contract_checks"] = checks
    report["service_report"] = service.report()

    for line in checks:
        print("  ok:", line)
    for tenant, account in report["tenants"].items():
        print(f"  {tenant}: {account}")

    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"  report written to {args.report}")
    if tmp is not None:
        tmp.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
