"""Multi-tenant decode service under overload and injected faults.

Drives the :mod:`repro.serve` service through the scenario its
acceptance tests pin down -- and that CI's ``serve-smoke`` job replays
on every push:

* two tenants share one service: **icu** (priority 2, supervised by a
  :class:`~repro.resilience.ResiliencePolicy`) and **lab** (priority
  0, plain batched decoding);
* traffic arrives at **2x the service's cycle capacity**, every frame
  carrying a deadline;
* the full seeded chaos taxonomy injects **20% solver faults** for the
  entire run.

The run demonstrates the service contract: every submitted frame ends
as a rejected ticket or exactly one terminal verdict (zero silent
drops), the high-priority tenant keeps its decode success rate while
the low-priority tenant absorbs the shedding, and no successful
verdict postdates its deadline.  The machine-readable service report
-- per-tenant accounting, per-stream health snapshots, every alert the
stream supervisors raised -- is written as JSON for archival (CI
uploads it as the build artifact).

Run:  PYTHONPATH=src python examples/decode_service.py --report out.json
"""

import argparse
import json
import sys

import numpy as np

from repro.core.engine import DecodeContext
from repro.resilience import ResiliencePolicy, chaos, default_taxonomy
from repro.resilience.policies import SolverBudget
from repro.serve import (
    DecodeService,
    StreamConfig,
    TenantConfig,
    VirtualClock,
)
from repro.serve.service import SUCCESS_STATUSES

SHAPE = (8, 8)
CYCLE_BUDGET = 6
TICKS = 8
FRAMES_PER_TENANT_PER_TICK = 6  # 12 submissions/cycle = 2x capacity
FAULT_RATE = 0.2
DEADLINE_S = 4.0
SEED = 7


def build_service() -> tuple[DecodeService, VirtualClock]:
    """The two-tenant service the overload scenario runs against."""
    clock = VirtualClock()
    service = DecodeService(
        clock=clock,
        cycle_budget=CYCLE_BUDGET,
        backlog_limit=CYCLE_BUDGET,
        max_batch=4,
    )
    plan = DecodeContext(
        shape=SHAPE,
        sampling_fraction=0.6,
        solver_options={"max_iterations": 60},
    )
    service.register_tenant(TenantConfig("icu", priority=2))
    service.register_tenant(TenantConfig("lab", priority=0))
    service.register_stream(StreamConfig(
        name="icu/skin", tenant="icu", plan=plan,
        policy=ResiliencePolicy(budget=SolverBudget(max_iterations=60)),
        queue_limit=12, seed=11,
    ))
    service.register_stream(StreamConfig(
        name="lab/skin", tenant="lab", plan=plan,
        queue_limit=12, seed=22,
    ))
    return service, clock


def run_overload(service: DecodeService, clock: VirtualClock) -> list:
    """Submit 2x-capacity traffic under 20% chaos; returns the tickets."""
    frame_rng = np.random.default_rng(SEED)
    tickets = []
    with chaos(*default_taxonomy(fault_rate=FAULT_RATE, seed=SEED)):
        for _ in range(TICKS):
            for _ in range(FRAMES_PER_TENANT_PER_TICK):
                for stream in ("icu/skin", "lab/skin"):
                    tickets.append(service.submit(
                        stream, frame_rng.random(SHAPE),
                        deadline_s=DEADLINE_S,
                    ))
            service.run_cycle()
            clock.advance(1.0)
        service.drain()
    return tickets


def check_contract(service: DecodeService, tickets: list) -> list[str]:
    """Assert the service contract; returns human-readable check lines."""
    verdicts = service.verdicts()
    admitted = sorted(t.seq for t in tickets if t.admitted)
    answered = sorted(v.seq for v in verdicts)
    checks = []

    assert answered == admitted, "every admitted frame must be answered"
    checks.append(
        f"zero silent drops: {len(tickets)} submitted = "
        f"{len(tickets) - len(admitted)} rejected + {len(answered)} verdicts"
    )

    icu = [v for v in verdicts if v.tenant == "icu"]
    icu_ok = sum(1 for v in icu if v.status in SUCCESS_STATUSES)
    rate = icu_ok / max(1, len(icu))
    assert rate >= 0.9, f"icu success rate {rate:.0%} under 90%"
    checks.append(
        f"high-priority success: icu decoded {icu_ok}/{len(icu)} "
        f"({rate:.0%}) despite {FAULT_RATE:.0%} faults at 2x load"
    )

    shed_tenants = {v.tenant for v in verdicts if v.status == "shed"}
    assert shed_tenants <= {"lab"}, "only the low-priority tenant sheds"
    checks.append("priority shedding: every shed frame belonged to lab")

    late = [
        v for v in verdicts
        if v.status in SUCCESS_STATUSES and v.deadline_missed
    ]
    assert not late, "a successful verdict postdated its deadline"
    checks.append("deadline honesty: zero deadline misses on decoded frames")
    return checks


def main(argv=None) -> int:
    """Run the overload demo; write the report; exit non-zero on breach."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON service report (accounting + alerts) here",
    )
    args = parser.parse_args(argv)

    service, clock = build_service()
    tickets = run_overload(service, clock)
    checks = check_contract(service, tickets)

    report = service.report()
    report["contract_checks"] = checks
    report["rejected_tickets"] = [
        t.to_dict() for t in tickets if not t.admitted
    ]

    print("== decode service under 2x overload + 20% chaos ==")
    for line in checks:
        print("  ok:", line)
    for tenant, account in report["tenants"].items():
        print(f"  {tenant}: {account}")
    alerts = report["alerts"]
    print(f"  alerts raised: {len(alerts)}")
    for alert in alerts[:5]:
        print(f"    [{alert['severity']}] {alert['kind']}: {alert['detail']}")

    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"  report written to {args.report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
