"""The Sec. 3.3 design-methodology flow, end to end.

Walks the CNT-TFT EDA flow the paper built for its encoder chips:

  1. compact-model parameter extraction from (synthetic) measured I-V
     data -- the Verilog-A-model calibration step;
  2. pseudo-CMOS inverter delay characterisation vs load;
  3. PCell layout generation for a TFT and the 4-TFT inverter;
  4. design-rule checking against the CNT process deck;
  5. netlist extraction from the layout;
  6. layout-versus-schematic comparison.

Run:  python examples/eda_flow_demo.py   (takes ~10 s)
"""

import numpy as np

from repro.circuits import Circuit, GROUND, build_inverter
from repro.devices import CntTft, TftParameters
from repro.eda import (
    characterize_inverter,
    compare,
    default_cnt_rules,
    extract,
    extract_parameters,
    inverter_layout,
    run_drc,
    tft_layout,
)


def main() -> None:
    rules = default_cnt_rules()

    # 1. Parameter extraction: fit the compact model to "measured" data.
    print("1. compact-model extraction")
    true_device = CntTft(
        100.0, 10.0,
        TftParameters(mobility_cm2=28.0, vth=-0.75, subthreshold_swing=0.13),
    )
    vgs = np.linspace(-3.0, 0.2, 40)
    rng = np.random.default_rng(0)
    measured = np.maximum(true_device.drain_current(vgs, -1.0), 1e-15)
    measured = measured * np.exp(rng.normal(0.0, 0.02, size=measured.shape))
    fit = extract_parameters(vgs, -1.0, measured, 100.0, 10.0)
    print(f"   {fit.summary()}")

    # 2. Cell characterisation: delay vs load.
    print("2. inverter delay characterisation")
    for point in characterize_inverter(loads_farads=(1e-11, 3e-11, 1e-10)):
        print(f"   load {point.load_farads * 1e12:6.0f} pF -> "
              f"{point.delay_s * 1e6:6.2f} us")

    # 3.-4. PCells + DRC.
    print("3. PCell generation + DRC")
    tft_cell = tft_layout(50.0, 10.0, rules)
    inverter_cell = inverter_layout(rules)
    for layout in (tft_cell, inverter_cell):
        print(f"   {run_drc(layout, rules).summary()}")

    # 5. Extraction.
    print("4. netlist extraction")
    netlist = extract(inverter_cell)
    print(f"   {netlist.device_count()} TFTs over nets {sorted(netlist.nets)}")

    # 6. LVS against the simulated schematic.
    print("5. LVS")
    schematic = Circuit("inv")
    schematic.add_voltage_source("vin", "IN", GROUND, 0.0)
    build_inverter(schematic, "u0", "IN", "OUT")
    print(f"   {compare(netlist, schematic).summary()}")

    # And show LVS catching a real mistake.
    broken = extract(inverter_layout(rules, drive_width_um=140.0))
    print(f"   (mis-sized layout) {compare(broken, schematic).summary()}")


if __name__ == "__main__":
    main()
