"""Circuit-level tour of the flexible CS encoder (Fig. 5).

Simulates the three fabricated building blocks at the transistor /
gate level and prints the measurements the paper reports:

  * Fig. 5b -- Pt temperature sensor linearity;
  * pseudo-CMOS inverter VTC (the logic family everything is built in);
  * Fig. 5c-d -- 8-stage, 304-TFT shift register at CLK 10 kHz;
  * Fig. 5e -- self-biased amplifier, 50 mV in at 30 kHz;
  * the sqrt(N)-cycle scan schedule a 16x16 encoder would run.

Run:  python examples/flexible_encoder_demo.py   (takes ~10 s)
"""

import numpy as np

from repro.array import ScanDrivers, ScanSchedule
from repro.circuits import (
    GROUND,
    Circuit,
    MnaSimulator,
    SelfBiasedAmplifier,
    ShiftRegister,
    build_inverter,
)
from repro.core import get_measurement
from repro.experiments.fig5_circuits import run_fig5b


def sensor_demo() -> None:
    curve = run_fig5b()
    print(curve.row())


def inverter_demo() -> None:
    circuit = Circuit("inv")
    circuit.add_voltage_source("vin", "IN", GROUND, 0.0)
    build_inverter(circuit, "u0", "IN", "OUT")
    sweep = MnaSimulator(circuit).dc_sweep(
        "vin", np.linspace(0.0, 3.0, 61), record=["OUT"]
    )
    gain = np.max(np.abs(np.gradient(sweep["OUT"], sweep["sweep"])))
    print(
        f"pseudo-CMOS inverter: VOH={sweep['OUT'][0]:.2f} V, "
        f"VOL={sweep['OUT'][-1]:.2f} V, peak |dVout/dVin|={gain:.1f}"
    )


def shift_register_demo() -> None:
    register = ShiftRegister(stages=8)
    result = register.simulate(clock_hz=10_000.0, data_hz=1_000.0, vdd=3.0)
    print(
        f"8-stage shift register: {result.tft_count} TFTs (paper: 304), "
        f"CLK 10 kHz / DATA 1 kHz @ 3 V -> functional={result.functional}"
    )
    fast = register.simulate(clock_hz=100_000.0, data_hz=10_000.0, vdd=3.0)
    print(f"  ...pushed to 100 kHz: functional={fast.functional} "
          "(flexible TFT logic tops out in the tens of kHz)")


def amplifier_demo() -> None:
    amplifier = SelfBiasedAmplifier()
    op = amplifier.operating_point()
    measurement = amplifier.measure()
    print(
        f"self-biased amplifier: bias point {op['stage1']:.2f} V "
        f"(gate {op['gate']:.2f} V -- self-biased), "
        f"50 mV @ 30 kHz -> {measurement.output_amplitude_v:.2f} V "
        f"({measurement.gain_db:.1f} dB; paper: 1.3 V / ~28 dB)"
    )


def scan_demo() -> None:
    shape = (16, 16)
    n = shape[0] * shape[1]
    phi = get_measurement("row_sampling").draw(
        shape, n // 2, np.random.default_rng(0)
    )
    schedule = ScanSchedule.from_phi(phi, shape)
    drivers = ScanDrivers(shape)
    cost = schedule.communication_cost()
    print(
        f"scan schedule: {cost['adc_conversions']} of {n} pixels in "
        f"{cost['scan_cycles']} cycles "
        f"({drivers.scan_time_s(schedule) * 1e3:.1f} ms at 10 kHz), "
        f"cost ratio {cost['cost_ratio']:.2f}"
    )


def main() -> None:
    print("Fig. 5 building blocks, simulated:")
    sensor_demo()
    inverter_demo()
    shift_register_demo()
    amplifier_demo()
    scan_demo()


if __name__ == "__main__":
    main()
