"""Large-area e-skin: block decoding under mixed defect populations.

Scales the robust sensing scheme toward the "large area" regime the
paper's title promises: a 64 x 64 pressure skin with

  * 6 % random pixel defects (the Fig. 6 population), plus
  * two broken row lines and one broken column line (the *structured*
    failure mode of a real active matrix -- a cracked driver trace
    kills the whole line),

decoded tile-by-tile with the :class:`~repro.core.BlockProcessor`
(4 independent 32x32 solves, the parallel-friendly path for arrays too
large for one program), with all known-defective pixels excluded from
sampling.

Each tile routes through the resilience runtime
(:class:`~repro.resilience.ResilientStrategy` around the oracle
exclusion strategy), so a diverging or crashing solve inside one tile
degrades *that tile* -- fallback solver or last-good hold -- instead of
killing the whole frame.  All tiles share one cached 32x32 operator
from the decode engine; the second, third and fourth tile pay no
construction cost.

Run:  python examples/large_area_eskin.py
"""

import numpy as np

from repro.core import BlockProcessor, OracleExclusionStrategy, rmse
from repro.datasets import PressureMapGenerator
from repro.devices import DefectMap, LineDefectMap
from repro.resilience import ResilientStrategy


def main() -> None:
    shape = (64, 64)
    rng = np.random.default_rng(0)

    generator = PressureMapGenerator(shape=shape, seed=4)
    frame = generator.frame()

    random_defects = DefectMap.sample(shape, 0.06, rng)
    line_defects = LineDefectMap.sample_lines(shape, num_rows=2, num_cols=1,
                                              rng=rng)
    combined_mask = random_defects.mask() | line_defects.mask()
    corrupted = line_defects.apply(random_defects.apply(frame))

    tile_strategy = ResilientStrategy(
        inner=OracleExclusionStrategy(sampling_fraction=0.55)
    )
    processor = BlockProcessor(block_shape=(32, 32), overlap=0,
                               strategy=tile_strategy)
    reconstructed = processor.reconstruct(
        corrupted, rng, exclude_mask=combined_mask
    )

    print("Large-area e-skin (64x64) with mixed defects")
    print(f"  random pixel defects:  {random_defects.defect_rate:.1%}")
    print(f"  dead lines:            rows {line_defects.dead_rows}, "
          f"cols {line_defects.dead_cols}")
    print(f"  total defective:       {combined_mask.mean():.1%} of pixels")
    print(f"  decode:                {processor.num_blocks(shape)} independent "
          f"32x32 tiles at 55% sampling, resilient per tile")
    for (r0, c0), outcome in processor.last_outcomes or []:
        print(f"    tile ({r0:>2},{c0:>2}):      {outcome.status} "
              f"via {outcome.solver} ({len(outcome.attempts)} attempt(s))")
    print(f"  RMSE, raw frame:       {rmse(frame, corrupted):.4f}")
    print(f"  RMSE, reconstructed:   {rmse(frame, reconstructed):.4f}")

    # Error inside the dead lines specifically: CS fills them in from
    # the surrounding samples.
    line_mask = line_defects.mask()
    line_rmse = float(
        np.sqrt(np.mean((frame[line_mask] - reconstructed[line_mask]) ** 2))
    )
    print(f"  RMSE inside dead lines: {line_rmse:.4f} "
          "(pixels that were never measured)")


if __name__ == "__main__":
    main()
