"""Sweep the three measurement families at matched M/N on one frame.

The measurement layer (docs/ENGINE.md, "Measurement layer") makes the
sampling code an axis of the decode plan: the paper's random
row-sampling encoder (Eq. 8), dense Bernoulli codes with summed
readout, and block-confined codes all decode through the same basis,
operator cache and solver -- only ``measurement=`` changes.  This
script decodes the same thermal frame with each family at the same
measurement budget and prints RMSE and wall-clock side by side.

Run:  PYTHONPATH=src python examples/measurement_families.py
"""

import time

import numpy as np

from repro.core import DecodeContext, DecodeEngine, rmse, use_engine
from repro.datasets import ThermalHandGenerator

FAMILIES = ("row_sampling", "dense_codes", "block_sampling")
SAMPLING_FRACTION = 0.5


def main() -> None:
    frame = ThermalHandGenerator(seed=7).frame()
    n = frame.size
    m = int(round(SAMPLING_FRACTION * n))

    print("Measurement-family sweep (32x32 thermal hand, fista)")
    print(f"  budget: M = {m} of N = {n} pixels (M/N = {m / n:.2f})")
    print()
    print(f"  {'family':<16} {'rmse':>8} {'wall_ms':>9}")
    with use_engine(DecodeEngine()) as engine:
        for family in FAMILIES:
            plan = DecodeContext(
                shape=frame.shape,
                sampling_fraction=SAMPLING_FRACTION,
                measurement=family,
            )
            engine.decode(frame, plan, np.random.default_rng(0))  # warm-up
            start = time.perf_counter()
            recon = engine.decode(frame, plan, np.random.default_rng(0))
            wall_ms = (time.perf_counter() - start) * 1e3
            print(
                f"  {family:<16} {rmse(frame, recon):>8.4f} {wall_ms:>9.2f}"
            )
    print()
    print(
        "All three families reconstruct the ~50%-DCT-sparse frame from "
        "half the pixels;\nrow_sampling is the paper's hardware encoder "
        "and the repo's bit-compatible default."
    )


if __name__ == "__main__":
    main()
