"""Quickstart: robust sensing of one frame with compressed sensing.

Generates a synthetic thermal frame, injects 10 % stuck-pixel errors
(the paper's defect model), then samples half of the healthy pixels and
reconstructs the frame from the DCT-domain L1 decoder -- reproducing
the paper's headline RMSE reduction on a single frame.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    OracleExclusionStrategy,
    evaluate_frame,
)
from repro.datasets import ThermalHandGenerator


def main() -> None:
    rng = np.random.default_rng(0)
    frame = ThermalHandGenerator(seed=7).frame()

    strategy = OracleExclusionStrategy(sampling_fraction=0.5, solver="fista")
    outcome = evaluate_frame(frame, error_rate=0.10, strategy=strategy, rng=rng)

    print("Robust flexible sensing quickstart")
    print(f"  frame:                 32x32 synthetic thermal hand")
    print(f"  sparse errors:         10% stuck-at-0/1 pixels")
    print(f"  sampling:              50% of healthy pixels (random)")
    print(f"  RMSE without CS:       {outcome.rmse_without_cs:.4f}  (paper: ~0.20)")
    print(f"  RMSE with CS:          {outcome.rmse_with_cs:.4f}  (paper: ~0.05)")
    reduction = outcome.rmse_without_cs / max(outcome.rmse_with_cs, 1e-12)
    print(f"  improvement:           {reduction:.1f}x")

    worst = np.unravel_index(
        np.argmax(np.abs(outcome.reconstructed - outcome.clean)),
        outcome.clean.shape,
    )
    print(f"  worst pixel error:     {np.max(np.abs(outcome.reconstructed - outcome.clean)):.3f} at {worst}")


if __name__ == "__main__":
    main()
