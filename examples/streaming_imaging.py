"""Streaming acquisition with transient errors and RPCA screening.

Runs the flexible encoder as a video camera: every frame draws a fresh
random sampling pattern, suffers fresh *transient* errors (Sec. 4.3's
hard case -- no defect map exists), and is decoded on the fly.  After a
few frames of history, the RPCA outlier detector starts catching the
transient errors before sampling, and the reconstruction error drops --
the streaming version of the paper's Fig. 6c strategy.

Every frame decodes through the shared engine (one cached 16x16
operator for the whole stream) under a
:class:`~repro.resilience.ResiliencePolicy`: a solver fault mid-stream
falls back down the fista -> bp_dr -> omp chain or serves the last good
frame, and the per-frame ``status`` column shows which path ran.  For
the self-tuning variant that also excludes detected stuck lines from
sampling, see ``examples/adaptive_resilience.py``.

Run:  python examples/streaming_imaging.py
"""

import numpy as np

from repro.array import ActiveMatrix, FlexibleEncoder, ReadoutChain, StreamingImager
from repro.core import SparseErrorModel, rmse
from repro.resilience import ResiliencePolicy


def make_scene(count: int, shape=(16, 16)) -> np.ndarray:
    """A slowly drifting warm blob (a fingertip resting on a skin patch).

    The drift is slow relative to the frame rate so the recent-frame
    stack stays approximately low rank -- the regime RPCA screening
    needs (fast motion would smear the low-rank component).
    """
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    frames = []
    for k in range(count):
        cy = shape[0] * (0.4 + 0.1 * np.sin(0.1 * k))
        cx = shape[1] * (0.5 + 0.1 * np.cos(0.1 * k))
        blob = np.exp(-((r - cy) ** 2 + (c - cx) ** 2) / 12.0)
        frames.append(np.clip(0.15 + 0.8 * blob, 0.0, 1.0))
    return np.stack(frames)


def main() -> None:
    shape = (16, 16)
    encoder = FlexibleEncoder(
        ActiveMatrix(shape),
        readout=ReadoutChain(noise_sigma_v=1e-3, adc_bits=12),
    )
    imager = StreamingImager(
        encoder,
        sampling_fraction=0.55,
        error_model=SparseErrorModel(transient_rate=0.06, seed=7),
        rpca_window=5,
        outlier_threshold=0.25,
        policy=ResiliencePolicy(),
        seed=0,
    )
    scene = make_scene(10, shape)
    print("Streaming CS imaging, 6% transient errors per frame:")
    print(f"{'frame':>6} {'raw RMSE':>9} {'CS RMSE':>8} {'excluded':>9} "
          f"{'status':>9}")
    records = imager.stream(scene)
    for record in records:
        raw = rmse(record.clean, record.corrupted)
        recon = rmse(record.clean, record.reconstructed)
        print(
            f"{record.index:>6} {raw:>9.4f} {recon:>8.4f} "
            f"{record.excluded_pixels:>9} {record.status:>9}"
        )
    early = np.mean(
        [rmse(r.clean, r.reconstructed) for r in records[:3]]
    )
    late = np.mean(
        [rmse(r.clean, r.reconstructed) for r in records[-3:]]
    )
    print(f"\nmean CS RMSE, first 3 frames (no history): {early:.4f}")
    print(f"mean CS RMSE, last 3 frames (RPCA active):  {late:.4f}")


if __name__ == "__main__":
    main()
