"""Case study 2: tactile-sensor based object recognition.

Reproduces the Fig. 6b experiment at example scale: train the NumPy
ResNet on clean synthetic grasp frames, then compare its accuracy on

  * corrupted test frames (10 % stuck pixels)      -- "w/o CS"
  * CS-reconstructed test frames (50 % sampling)   -- "w/ CS"

The paper reports 65 % -> 84 % at this error rate for the full
26-object dataset; this example uses a reduced class count so it runs
in about a minute (set ``NUM_CLASSES = 26`` for the full experiment).

Run:  python examples/tactile_recognition.py
"""

from repro.experiments.fig6b_accuracy import TactileExperiment

NUM_CLASSES = 10
SAMPLES_PER_CLASS = 16
EPOCHS = 12


def main() -> None:
    print(f"Training ResNet on {NUM_CLASSES} synthetic grasp classes...")
    experiment = TactileExperiment(
        samples_per_class=SAMPLES_PER_CLASS,
        epochs=EPOCHS,
        num_classes=NUM_CLASSES,
        seed=1,
    )
    history = experiment.fit(verbose=True)
    print(f"best validation accuracy: {max(history.val_accuracy):.1%} "
          f"(epoch {history.best_epoch})")
    print(f"clean test accuracy:      {experiment.clean_accuracy():.1%}")

    print("\nRobustness to sparse errors (50% sampling):")
    print(f"{'err rate':>9} {'w/o CS':>8} {'w/ CS':>8}")
    for rate in (0.0, 0.05, 0.10, 0.20):
        point = experiment.evaluate_point(0.5, rate)
        print(
            f"{rate:>9.2f} {point.accuracy_without_cs:>8.1%} "
            f"{point.accuracy_with_cs:>8.1%}"
        )
    print("\npaper (26 classes, 10% errors): 65% w/o CS -> 84% w/ CS")


if __name__ == "__main__":
    main()
