"""Case study 1: 2-D temperature imaging through the hardware stack.

Unlike the quickstart (pure math), this example runs the *full*
hardware-modelled chain of Fig. 4:

  thermal field (Celsius)
    -> Pt sensor + CNT access TFT per pixel (device variation, 8 %
       fabrication defects)
    -> per-pixel two-point calibration (the production-test step)
    -> sqrt(N)-cycle scan of a random Phi_M (defects excluded)
    -> amplifier / S-H / 10-bit ADC readout
    -> silicon-side FISTA decoder
    -> temperature map + RMSE in degrees Celsius

Run:  python examples/temperature_imaging.py
"""

import numpy as np

from repro.array import ActiveMatrix, FlexibleEncoder, ReadoutChain
from repro.core import get_engine, get_measurement, rmse, solve
from repro.datasets import ThermalHandGenerator
from repro.devices import DefectMap, VariationModel

T_LOW, T_HIGH = 20.0, 100.0


def main() -> None:
    shape = (32, 32)
    rng = np.random.default_rng(1)

    # Physical scene: a warm hand between 24 C and 33 C.
    generator = ThermalHandGenerator(shape=shape, seed=3)
    field = generator.celsius(generator.frame())

    # Fabricated array: mobility/Vth spread plus 8 % defective pixels.
    defects = DefectMap.sample(shape, 0.08, rng)
    array = ActiveMatrix(
        shape,
        variation=VariationModel(mobility_sigma=0.08, vth_sigma=0.03, seed=2),
        defect_map=defects,
    )
    _, max_current = array.current_bounds(T_LOW, T_HIGH)
    encoder = FlexibleEncoder(
        array, readout=ReadoutChain.for_current_range(max_current)
    )
    encoder.calibrate_temperature(T_LOW, T_HIGH)

    # FE-side encoding: random sampling of 55 % of the pixels, skipping
    # the defects found at test time.
    n = shape[0] * shape[1]
    phi = get_measurement("row_sampling").draw(
        shape,
        int(0.55 * n),
        rng,
        exclude=np.flatnonzero(defects.mask().ravel()),
    )
    output = encoder.scan_temperature(field, phi, T_LOW, T_HIGH)

    # Silicon-side decoding: bind the scan's Phi_M to the shared engine's
    # cached operator for this array shape.
    operator = get_engine().operator(phi, shape)
    result = solve("fista", operator, output.measurements)
    normalized = operator.synthesize(result.coefficients).reshape(shape)
    recovered = T_LOW + (1.0 - np.clip(normalized, 0, 1)) * (T_HIGH - T_LOW)

    cost = output.schedule.communication_cost()
    print("Temperature imaging through the flexible CS encoder")
    print(f"  array:            {shape[0]}x{shape[1]} Pt pixels, "
          f"{defects.defect_rate:.0%} defective")
    print(f"  scan:             {cost['scan_cycles']} cycles, "
          f"{cost['adc_conversions']} ADC conversions "
          f"(cost ratio {cost['cost_ratio']:.2f})")
    print(f"  scan time:        {output.scan_time_s * 1e3:.1f} ms at 10 kHz")
    print(f"  decoder:          FISTA, {result.iterations} iterations")
    print(f"  temperature RMSE: {rmse(field, recovered):.2f} C over "
          f"[{field.min():.1f}, {field.max():.1f}] C")

    coarse = np.array2string(
        recovered[::8, ::8], precision=1, suppress_small=True
    )
    print("  recovered 4x4 thumbnail (C):")
    print("   " + coarse.replace("\n", "\n   "))


if __name__ == "__main__":
    main()
