"""Setuptools shim (offline environment lacks the ``wheel`` package, so
PEP-517 editable installs are unavailable; metadata lives in pyproject.toml)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Robust large-area flexible electronics via compressed sensing "
        "(DAC 2020 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
