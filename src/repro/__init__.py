"""repro -- reproduction of "Robust Design of Large Area Flexible
Electronics via Compressed Sensing" (Shao et al., DAC 2020).

Subpackages
-----------
``repro.core``
    The compressed-sensing encoder/decoder math, robust sampling
    strategies and the Fig. 7 evaluation pipeline.
``repro.devices``
    CNT thin-film-transistor compact model, Pt temperature sensor,
    variation / defect / yield models.
``repro.circuits``
    Netlists, an MNA circuit simulator, the pseudo-CMOS cell library,
    the 8-stage shift register and the self-biased amplifier of Fig. 5.
``repro.array``
    The active-matrix flexible CS encoder of Fig. 4 (drivers, readout
    chain, scan scheduler).
``repro.datasets``
    Synthetic thermal / tactile / ultrasound frame generators matching
    the Fig. 2 sparsity statistics.
``repro.ml``
    NumPy-only CNN framework and the ResNet classifier of the tactile
    case study.
``repro.eda``
    The Sec. 3.3 design-methodology flow: DRC, netlist extraction, LVS,
    compact-model parameter extraction and cell characterisation.
``repro.experiments``
    One module per paper figure/table; see DESIGN.md for the index.
``repro.instrument``
    Dependency-free tracing/metrics subsystem and the profiling CLI
    (``python -m repro.instrument``); see docs/INSTRUMENTATION.md.
"""

__version__ = "1.0.0"

from . import instrument  # stdlib-only; must precede core (hooks import it)
from . import core

__all__ = ["core", "instrument", "__version__"]
