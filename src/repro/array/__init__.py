"""Active-matrix flexible CS encoder (Fig. 4).

``ActiveMatrix`` (pixels + access TFTs) -> ``ScanSchedule`` /
``ScanDrivers`` (sqrt(N)-cycle scan from ``Phi_M``) -> ``ReadoutChain``
(amplifier, S/H, ADC) -> ``FlexibleEncoder`` (the whole FE side,
producing the measurement vector the silicon decoder consumes).
"""

from .active_matrix import ActiveMatrix
from .drivers import DriverTiming, ScanDrivers
from .energy import EnergyModel, ScanEnergy
from .flexible_encoder import EncoderOutput, FlexibleEncoder
from .hooks import array_hooks, register_array_hook, unregister_array_hook
from .imager import FrameRecord, StreamingImager
from .programming import DriverProgram, program_drivers, verify_row_program
from .readout import ReadoutChain, detect_stuck_lines
from .scanner import ScanCycle, ScanSchedule

__all__ = [
    "register_array_hook",
    "unregister_array_hook",
    "array_hooks",
    "ActiveMatrix",
    "ScanDrivers",
    "DriverTiming",
    "ReadoutChain",
    "detect_stuck_lines",
    "ScanSchedule",
    "ScanCycle",
    "FlexibleEncoder",
    "EncoderOutput",
    "DriverProgram",
    "program_drivers",
    "verify_row_program",
    "StreamingImager",
    "FrameRecord",
    "EnergyModel",
    "ScanEnergy",
]
