"""Active-matrix sensor array model (Fig. 4, left).

The fabricated array puts one sensor plus one access TFT at each
crossing of the row/column grid; four interconnects (ground, row
control, column control, readout) serve the whole array, which is what
gives the active-matrix design its pin-count scalability.

This model captures the electrical behaviour the system experiments
need:

* per-pixel Pt-sensor + access-TFT read current (temperature mode) or
  a generic normalised transduction (normalised mode);
* per-pixel gain/offset spread from the device variation model;
* stuck pixels from a :class:`~repro.devices.defects.DefectMap`;
* off-pixel leakage summed onto the shared readout line.
"""

from __future__ import annotations

import numpy as np

from ..devices.cnt_tft import CntTft, TftParameters
from ..devices.defects import DefectMap
from ..devices.temperature_sensor import PtTemperatureSensor, TemperaturePixel
from ..devices.variation import VariationModel
from .hooks import _ARRAY_HOOKS, apply_transduce_hooks

__all__ = ["ActiveMatrix"]


class ActiveMatrix:
    """A ``rows x cols`` sensor array with access TFTs.

    Parameters
    ----------
    shape:
        ``(rows, cols)``.
    variation:
        Device variation model for the access TFTs (None = ideal).
    defect_map:
        Fabrication defects (None = defect-free).
    sensor:
        Pt sensor model shared by all pixels (temperature mode).
    word_line_v:
        Select voltage driven on an asserted row (low-enabled p-type).
    read_voltage:
        Bias across the selected pixel stack.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        variation: VariationModel | None = None,
        defect_map: DefectMap | None = None,
        sensor: PtTemperatureSensor | None = None,
        word_line_v: float = -3.0,
        read_voltage: float = 1.0,
    ):
        rows, cols = shape
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid array shape {shape}")
        if defect_map is not None and defect_map.shape != shape:
            raise ValueError("defect map shape mismatch")
        self.shape = (int(rows), int(cols))
        self.sensor = sensor if sensor is not None else PtTemperatureSensor()
        self.word_line_v = float(word_line_v)
        self.read_voltage = float(read_voltage)
        self.defect_map = defect_map
        nominal = TftParameters()
        pixel_reference = TemperaturePixel(
            sensor=self.sensor, read_voltage=self.read_voltage
        )
        self._reference_tft = pixel_reference.access_tft
        if variation is None:
            r_on = self._reference_tft.on_resistance(self.word_line_v)
            self._on_resistance = np.full(shape, r_on)
        else:
            parameter_grid = variation.sample_array(nominal, shape)
            self._on_resistance = np.empty(shape)
            for r in range(rows):
                for c in range(cols):
                    device = CntTft(
                        width_um=self._reference_tft.width_um,
                        length_um=self._reference_tft.length_um,
                        parameters=parameter_grid[r][c],
                    )
                    self._on_resistance[r, c] = device.on_resistance(self.word_line_v)
        self._defect_mask = (
            defect_map.mask() if defect_map is not None
            else np.zeros(shape, dtype=bool)
        )
        self._stuck = (
            defect_map.stuck_values() if defect_map is not None
            else np.full(shape, np.nan)
        )

    # -- temperature mode --------------------------------------------------
    def read_currents(self, field_celsius: np.ndarray) -> np.ndarray:
        """Read current (A) of every pixel for a temperature field.

        Defective pixels return their stuck extremes: opens read ~0 A,
        shorts read the full-rail current (sensor bypassed).
        """
        field_celsius = np.asarray(field_celsius, dtype=float)
        if field_celsius.shape != self.shape:
            raise ValueError(
                f"field shape {field_celsius.shape} != array {self.shape}"
            )
        r_pt = self.sensor.resistance(field_celsius)
        currents = self.read_voltage / (r_pt + self._on_resistance)
        if self.defect_map is not None:
            short_current = self.read_voltage / np.minimum(
                self._on_resistance, 1e3
            )
            stuck_high = self._defect_mask & (self._stuck >= 0.5)
            stuck_low = self._defect_mask & (self._stuck < 0.5)
            currents = np.where(stuck_high, short_current, currents)
            currents = np.where(stuck_low, 1e-12, currents)
        return currents

    def current_bounds(
        self, t_low: float, t_high: float
    ) -> tuple[float, float]:
        """Healthy-pixel current range over a temperature span.

        Uses the nominal (variation-free) access device, as a real
        system would calibrate against a golden reference.
        """
        r_on = self._reference_tft.on_resistance(self.word_line_v)
        currents = self.read_voltage / (
            self.sensor.resistance(np.array([t_low, t_high])) + r_on
        )
        lo, hi = float(currents.min()), float(currents.max())
        if lo == hi:
            raise ValueError("degenerate temperature span")
        return lo, hi

    # -- normalised mode ----------------------------------------------------
    def transduce(self, frame: np.ndarray) -> np.ndarray:
        """Normalised-frame transduction with variation + defects.

        For non-temperature modalities (tactile, ultrasound) the pixel
        physics differ but the error structure is the same: a per-pixel
        multiplicative gain error (from the access-TFT spread) and
        stuck extremes at defects.  Input and output are in [0, 1].

        Array-layer ``on_transduce`` fault hooks
        (:mod:`repro.array.hooks`) run last, so injected stuck-pixel
        rows overlay fabricated defects exactly like in-service
        failures on a production-tested array.
        """
        frame = np.asarray(frame, dtype=float)
        if frame.shape != self.shape:
            raise ValueError(f"frame shape {frame.shape} != array {self.shape}")
        nominal_r = self._reference_tft.on_resistance(self.word_line_v)
        gain = nominal_r / self._on_resistance
        out = np.clip(frame * gain, 0.0, 1.0)
        if self.defect_map is not None:
            out = np.where(self._defect_mask, np.nan_to_num(self._stuck), out)
        if _ARRAY_HOOKS:
            out = np.asarray(apply_transduce_hooks(self, out), dtype=float)
        return out

    @property
    def defect_mask(self) -> np.ndarray:
        """Boolean mask of fabricated defects (False everywhere if none)."""
        return self._defect_mask.copy()

    @property
    def on_resistances(self) -> np.ndarray:
        """Per-pixel access-TFT on-resistance (ohm)."""
        return self._on_resistance.copy()
