"""Row/column scan drivers built from shift registers (Fig. 4, right).

The silicon decoder streams the sensing-matrix control pattern into the
flexible row and column shift registers; each scan cycle the column SR
holds a one-hot column-select word while the row SR holds the row mask
of pixels to read in that column.

The drivers wrap the gate-level :class:`~repro.circuits.ShiftRegister`
for electrical validation (the timing feasibility of streaming the
pattern at the paper's 10 kHz clock) and provide a fast functional path
(:meth:`ScanDrivers.drive`) for the system-level experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.shift_register import ShiftRegister
from .hooks import _ARRAY_HOOKS, apply_scan_cycle_hooks
from .scanner import ScanSchedule

__all__ = ["DriverTiming", "ScanDrivers"]


@dataclass(frozen=True)
class DriverTiming:
    """Clocking parameters of the scan drivers."""

    clock_hz: float = 10_000.0
    vdd: float = 3.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")


class ScanDrivers:
    """Functional + electrical model of the row/column drivers.

    Parameters
    ----------
    array_shape:
        ``(rows, cols)`` of the active matrix.
    timing:
        Clock rate / supply used for the electrical feasibility check.
    """

    def __init__(
        self, array_shape: tuple[int, int], timing: DriverTiming | None = None
    ):
        rows, cols = array_shape
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid array shape {array_shape}")
        self.array_shape = (int(rows), int(cols))
        self.timing = timing or DriverTiming()

    def drive(self, schedule: ScanSchedule):
        """Yield ``(column_select, row_mask)`` vectors per scan cycle.

        ``column_select`` is the one-hot (boolean) column word;
        ``row_mask`` the boolean row word.  This is the functional view
        the encoder consumes.

        Cycles pass through the array-layer hook seam
        (:mod:`repro.array.hooks`): a registered fault injector may
        rewrite a cycle's row mask (a stuck or dead row-select line) or
        drop the cycle entirely (a missed scan); the encoder tolerates
        the resulting missing reads.
        """
        rows, cols = self.array_shape
        if schedule.array_shape != self.array_shape:
            raise ValueError("schedule shape mismatch")
        for cycle in schedule.cycles:
            column_select = np.zeros(cols, dtype=bool)
            column_select[cycle.column] = True
            row_mask = cycle.row_mask.astype(bool)
            if _ARRAY_HOOKS:
                hooked = apply_scan_cycle_hooks(self, column_select, row_mask)
                if hooked is None:
                    continue
                column_select, row_mask = hooked
            yield column_select, row_mask

    def scan_time_s(self, schedule: ScanSchedule) -> float:
        """Wall-clock time of a full scan at the configured clock.

        Each cycle needs ``rows`` clock ticks to stream the next row
        word through the row shift register (the column word advances
        by a single shift).
        """
        rows, _cols = self.array_shape
        return schedule.num_cycles * rows / self.timing.clock_hz

    def electrically_feasible(self, stages: int | None = None) -> bool:
        """Check the driver SR shifts correctly at the configured clock.

        Simulates a gate-level shift register of ``stages`` stages (the
        row count by default, capped for simulation cost) at the
        configured clock and supply.
        """
        rows, _cols = self.array_shape
        if stages is None:
            stages = min(rows, 8)
        register = ShiftRegister(stages=stages)
        result = register.simulate(
            clock_hz=self.timing.clock_hz,
            data_hz=self.timing.clock_hz / 10.0,
            vdd=self.timing.vdd,
        )
        return result.functional
