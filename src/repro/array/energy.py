"""Scan energy model: what the M/N cost ratio buys in joules.

Sec. 4.1 argues the communication-cost saving in conversions ("the A/D
conversion usually is the bottleneck of sensing applications").  This
model prices a full scan in energy:

* **ADC**: one conversion per sampled pixel, a fixed energy each (the
  dominant term the paper points at);
* **drivers**: dynamic switching of the row/column lines, ``C V^2`` per
  line toggle -- flexible interconnect is long and capacitive;
* **static**: pseudo-CMOS logic burns a ratioed static current, priced
  per scan-second.

The COMM bench uses it to report the energy ratio alongside the
conversion ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scanner import ScanSchedule

__all__ = ["EnergyModel", "ScanEnergy"]


@dataclass
class ScanEnergy:
    """Energy breakdown of one scan (joules)."""

    adc: float
    drivers: float
    static: float

    @property
    def total(self) -> float:
        """Total scan energy."""
        return self.adc + self.drivers + self.static


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy prices of the acquisition system.

    Attributes
    ----------
    adc_energy_j:
        Energy per A/D conversion (a ~10-bit SAR at flexible-system
        speeds: tens of pJ..nJ; the default is deliberately mid-range).
    line_capacitance_f:
        Capacitance of one row/column line (long flexible traces).
    swing_v:
        Driver voltage swing.
    static_power_w:
        Pseudo-CMOS static burn of the driver shift registers.
    clock_hz:
        Scan clock (sets the static-energy integration time).
    """

    adc_energy_j: float = 5.0e-10
    line_capacitance_f: float = 5.0e-11
    swing_v: float = 3.0
    static_power_w: float = 3.0e-6
    clock_hz: float = 10_000.0

    def __post_init__(self) -> None:
        if min(self.adc_energy_j, self.line_capacitance_f, self.swing_v) <= 0:
            raise ValueError("energy-model parameters must be positive")
        if self.static_power_w < 0 or self.clock_hz <= 0:
            raise ValueError("invalid static power or clock")

    def scan_energy(self, schedule: ScanSchedule) -> ScanEnergy:
        """Price one CS scan."""
        rows, _cols = schedule.array_shape
        conversions = schedule.total_reads
        line_toggles = 0
        for cycle in schedule.cycles:
            # one column-select toggle + one toggle per asserted row,
            # plus the serial reload of the row register (`rows` ticks).
            line_toggles += 1 + cycle.reads + rows
        switch_energy = self.line_capacitance_f * self.swing_v**2
        scan_seconds = schedule.num_cycles * rows / self.clock_hz
        return ScanEnergy(
            adc=conversions * self.adc_energy_j,
            drivers=line_toggles * switch_energy,
            static=self.static_power_w * scan_seconds,
        )

    def full_readout_energy(self, array_shape: tuple[int, int]) -> ScanEnergy:
        """Price the read-everything baseline (raster scan of N pixels)."""
        rows, cols = array_shape
        n = rows * cols
        # Raster: every pixel read; per cycle one column toggle + all
        # row toggles (each row is asserted once per column).
        line_toggles = cols * (1 + rows) + cols * rows  # reload included
        switch_energy = self.line_capacitance_f * self.swing_v**2
        scan_seconds = cols * rows / self.clock_hz
        return ScanEnergy(
            adc=n * self.adc_energy_j,
            drivers=line_toggles * switch_energy,
            static=self.static_power_w * scan_seconds,
        )

    def energy_ratio(self, schedule: ScanSchedule) -> float:
        """CS-scan energy over full-readout energy (< 1 is a saving)."""
        cs = self.scan_energy(schedule).total
        full = self.full_readout_energy(schedule.array_shape).total
        return cs / full
