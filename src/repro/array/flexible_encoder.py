"""End-to-end flexible CS encoder (Fig. 4).

Ties the substrate together: given a physical field and a sensing
matrix ``Phi_M``, the encoder

1. transduces the field through the :class:`~repro.array.active_matrix.ActiveMatrix`
   (device variation, defects, leakage),
2. scans the sampled pixels per the :class:`~repro.array.scanner.ScanSchedule`
   driven by the :class:`~repro.array.drivers.ScanDrivers`,
3. digitises each read through the :class:`~repro.array.readout.ReadoutChain`,

and returns the measurement vector ``b ~= Phi_M @ y + eps`` that the
silicon-side decoder consumes.  A calibration helper maps raw ADC codes
back to normalised pixel units so the decoder's model matches the
hardware's transfer function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import instrument
from ..core.measurement import resolve_measurement_for
from .active_matrix import ActiveMatrix
from .drivers import ScanDrivers
from .readout import ReadoutChain
from .scanner import ScanSchedule

__all__ = ["EncoderOutput", "FlexibleEncoder"]


@dataclass
class EncoderOutput:
    """What one encoder scan produces.

    Attributes
    ----------
    measurements:
        Normalised measurement vector ``b`` (length M); for row
        sampling, ordered to match ``phi.indices``.
    phi:
        The measurement code used (any registered family's carrier).
    schedule:
        The scan plan (for cost accounting).
    scan_time_s:
        Wall-clock scan duration at the driver clock.
    codes:
        The full 2-D frame of readout codes the scan sampled from
        (post-ADC).  Health consumers run
        :func:`~repro.array.readout.detect_stuck_lines` on it to feed
        stuck-line masks back into the sampling exclusions.
    missing_reads:
        Sampled pixels the drivers never delivered (dropped scan cycle
        or dead row-select line); their measurements read the dark code
        ``0.0``.
    """

    measurements: np.ndarray
    phi: object
    schedule: ScanSchedule
    scan_time_s: float
    codes: np.ndarray | None = None
    missing_reads: int = 0


class FlexibleEncoder:
    """The flexible-electronics side of the CS system.

    Parameters
    ----------
    array:
        The active-matrix sensor array.
    readout:
        The analog readout chain (defaults: 10-bit ADC, Fig. 5e-class
        amplifier gain).
    drivers:
        Scan drivers (defaults: 10 kHz clock at 3 V).
    """

    def __init__(
        self,
        array: ActiveMatrix,
        readout: ReadoutChain | None = None,
        drivers: ScanDrivers | None = None,
    ):
        self.array = array
        self.readout = readout if readout is not None else ReadoutChain()
        self.drivers = drivers if drivers is not None else ScanDrivers(array.shape)
        if self.drivers.array_shape != array.shape:
            raise ValueError("driver shape mismatch")
        self._cal_low: np.ndarray | None = None
        self._cal_span: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _scan(self, readings: np.ndarray, phi) -> EncoderOutput:
        """Drive the scan schedule and gather the sampled pixel codes.

        The code's registered
        :class:`~repro.core.measurement.MeasurementModel` supplies the
        scan plan (which pixels to read) and the combine step (how the
        per-pixel readings become measurements: a gather for row
        sampling, weighted sums for dense/block codes).  Because the
        drivers walk the same ``drive(schedule)`` seam for every
        family, all array-layer fault injectors perturb any family.

        Instrumented under the ``encoder.scan`` span (measurement count,
        scan cycles, modelled scan time) with ``encoder.scans`` /
        ``encoder.measurements`` counters.

        Pixels the code needs but the drivers never delivered -- a scan
        cycle dropped or a row-select line dead under array-layer fault
        injection -- read the dark code ``0.0`` (the S/H holds nothing)
        rather than crashing the scan; they are counted under
        ``encoder.missing_reads`` and reported on the output.
        """
        model = resolve_measurement_for(phi)
        with instrument.span("encoder.scan", m=int(phi.m)) as sp:
            rows, cols = self.array.shape
            schedule = ScanSchedule.from_phi(phi, self.array.shape)
            acquired: dict[int, float] = {}
            for column_select, row_mask in self.drivers.drive(schedule):
                column = int(np.flatnonzero(column_select)[0])
                for row in np.flatnonzero(row_mask):
                    acquired[int(row) * cols + column] = readings[int(row), column]
            measurements, missing = model.combine(phi, acquired)
            if missing:
                instrument.incr("encoder.missing_reads", missing)
            scan_time_s = self.drivers.scan_time_s(schedule)
            sp.set(cycles=schedule.num_cycles, scan_time_s=scan_time_s)
            instrument.incr("encoder.scans")
            instrument.incr("encoder.measurements", int(phi.m))
            return EncoderOutput(
                measurements=measurements,
                phi=phi,
                schedule=schedule,
                scan_time_s=scan_time_s,
                codes=np.asarray(readings, dtype=float),
                missing_reads=missing,
            )

    def scan_normalized(self, frame: np.ndarray, phi) -> EncoderOutput:
        """Scan a normalised frame: transduce -> scan -> digitise."""
        with instrument.span("encoder.scan_normalized"):
            frame = np.asarray(frame, dtype=float)
            transduced = self.array.transduce(frame)
            codes = self.readout.convert_normalized(transduced)
            return self._scan(codes, phi)

    def calibrate_temperature(
        self, t_low: float = 20.0, t_high: float = 100.0
    ) -> None:
        """Per-pixel two-point calibration (the production-test step).

        Exposes the array to two uniform reference temperatures and
        stores each pixel's code at both, cancelling the access-TFT
        variation that otherwise swamps the few-percent temperature
        signal.  Stuck pixels calibrate to a degenerate span and are
        clamped to a safe span of one LSB (their readings stay extreme,
        exactly like the fabricated array's defective pixels).

        Non-finite reference temperatures and a zero-width span are
        rejected up front: both would bake a degenerate calibration
        into every subsequent scan.
        """
        if not (np.isfinite(t_low) and np.isfinite(t_high)):
            raise ValueError(
                f"calibration temperatures must be finite, got "
                f"({t_low}, {t_high})"
            )
        if t_low == t_high:
            raise ValueError(
                f"zero-width calibration span: t_low == t_high == {t_low}"
            )
        codes = []
        for temperature in (t_low, t_high):
            uniform = np.full(self.array.shape, float(temperature))
            codes.append(
                self.readout.convert_currents(self.array.read_currents(uniform))
            )
        cold_code, hot_code = codes[0], codes[1]
        # Hot pixels read lower current (Pt resistance rises), so the
        # low reference code is the hot one.
        self._cal_low = hot_code
        span = cold_code - hot_code
        lsb = 1.0 / (2**self.readout.adc_bits - 1)
        self._cal_span = np.where(np.abs(span) < lsb, lsb, span)

    def scan_temperature(
        self,
        field_celsius: np.ndarray,
        phi,
        t_low: float = 20.0,
        t_high: float = 100.0,
    ) -> EncoderOutput:
        """Scan a temperature field in Celsius.

        The measurement vector is normalised so that 0 maps to the
        hottest reading (lowest current: the Pt resistance rises with
        temperature) and 1 to the coldest, matching the normalised
        [0, 1] convention of the decoding pipeline.  When
        :meth:`calibrate_temperature` has run, per-pixel calibration
        constants are applied (cancelling device variation); otherwise
        a single golden-reference calibration is used.
        """
        with instrument.span("encoder.scan_temperature"):
            currents = self.array.read_currents(field_celsius)
            codes = self.readout.convert_currents(currents)
            if self._cal_low is not None and self._cal_span is not None:
                normalized = (codes - self._cal_low) / self._cal_span
            else:
                low_current, high_current = self.array.current_bounds(
                    t_low, t_high
                )
                code_low = self.readout.convert_currents(
                    np.array([low_current])
                )[0]
                code_high = self.readout.convert_currents(
                    np.array([high_current])
                )[0]
                span = code_high - code_low
                if span == 0:
                    raise ValueError(
                        "degenerate calibration span: configure the readout "
                        "chain for the array's current range (see "
                        "ReadoutChain.for_current_range)"
                    )
                normalized = (codes - code_low) / span
            normalized = np.clip(normalized, 0.0, 1.0)
            return self._scan(normalized, phi)

    def full_readout_normalized(self, frame: np.ndarray) -> np.ndarray:
        """Read *every* pixel (the non-CS baseline): N conversions."""
        with instrument.span("encoder.full_readout"):
            frame = np.asarray(frame, dtype=float)
            transduced = self.array.transduce(frame)
            instrument.incr("encoder.full_readouts")
            return self.readout.convert_normalized(transduced)
