"""Fault/observation hook seam for the array layer.

The solver dispatch in :mod:`repro.core.solvers` exposes
``register_solve_hook`` so chaos injectors can attack the decode stack;
this module is the same seam for the *physical* layer -- the scan
drivers, the analog readout chain, the ADC and the active matrix.  A
hook is any object exposing one or more of the optional methods below;
each attaches to a different point of the acquisition path:

* ``on_scan_cycle(drivers, column_select, row_mask)`` -- called per
  scan cycle before the drivers yield it.  May return a replacement
  ``(column_select, row_mask)`` pair (a stuck or dead row-select line)
  or ``None`` to drop the cycle entirely (a missed scan).
* ``on_transduce(array, frame)`` -- called on the active matrix's
  transduced output; may return a replacement frame (stuck pixel rows).
* ``on_analog(chain, volts)`` -- called on the analog voltage vector
  before quantisation; may return a replacement (saturation bursts,
  gain drift, analog noise injection).
* ``on_codes(chain, codes)`` -- called on the raw *integer* ADC codes
  after quantisation and before normalisation; may return a
  replacement (bit flips).  Returned codes are re-clipped to the ADC
  range, matching real hardware registers.

Hooks run in registration order; with no hooks registered each seam
costs one empty-list check.  The attach point for
:mod:`repro.resilience.array_chaos` injectors is the shared
:func:`repro.resilience.chaos` context manager, which dispatches on
each injector's ``layer`` attribute.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "register_array_hook",
    "unregister_array_hook",
    "array_hooks",
    "apply_scan_cycle_hooks",
    "apply_transduce_hooks",
    "apply_analog_hooks",
    "apply_code_hooks",
]

_ARRAY_HOOKS: list = []


def register_array_hook(hook) -> None:
    """Install an array-layer hook (see the module docstring for the
    optional ``on_scan_cycle`` / ``on_transduce`` / ``on_analog`` /
    ``on_codes`` protocol)."""
    _ARRAY_HOOKS.append(hook)


def unregister_array_hook(hook) -> None:
    """Remove a previously registered hook (no-op if absent)."""
    try:
        _ARRAY_HOOKS.remove(hook)
    except ValueError:
        pass


def array_hooks() -> tuple:
    """The currently installed array hooks, in execution order."""
    return tuple(_ARRAY_HOOKS)


def apply_scan_cycle_hooks(drivers, column_select, row_mask):
    """Run ``on_scan_cycle`` hooks over one scan cycle.

    Returns the (possibly replaced) ``(column_select, row_mask)`` pair,
    or ``None`` when a hook dropped the cycle.
    """
    for hook in _ARRAY_HOOKS:
        method = getattr(hook, "on_scan_cycle", None)
        if method is None:
            continue
        replaced = method(drivers, column_select, row_mask)
        if replaced is None:
            return None
        column_select, row_mask = replaced
    return column_select, row_mask


def apply_transduce_hooks(array, frame: np.ndarray) -> np.ndarray:
    """Run ``on_transduce`` hooks over a transduced frame."""
    for hook in _ARRAY_HOOKS:
        method = getattr(hook, "on_transduce", None)
        if method is not None:
            frame = method(array, frame)
    return frame


def apply_analog_hooks(chain, volts: np.ndarray) -> np.ndarray:
    """Run ``on_analog`` hooks over a pre-quantisation voltage vector."""
    for hook in _ARRAY_HOOKS:
        method = getattr(hook, "on_analog", None)
        if method is not None:
            volts = method(chain, volts)
    return volts


def apply_code_hooks(chain, codes: np.ndarray) -> np.ndarray:
    """Run ``on_codes`` hooks over raw integer ADC codes."""
    for hook in _ARRAY_HOOKS:
        method = getattr(hook, "on_codes", None)
        if method is not None:
            codes = method(chain, codes)
    return codes
