"""Streaming imager: continuous CS acquisition with per-frame errors.

Wraps the :class:`~repro.array.flexible_encoder.FlexibleEncoder` into a
video-style loop: each frame draws a *fresh* random ``Phi_M`` (new
transient errors cannot hide behind a fixed pattern), scans, decodes,
and optionally feeds an RPCA outlier detector with the recent
reconstruction history -- the paper's Sec. 4.3 strategy in its natural
streaming habitat.

The decode side runs on the shared :mod:`repro.core.engine`: the imager
owns its measurement acquisition (the hardware scan), so it binds each
fresh ``Phi_M`` to the engine's cached operator template instead of
rebuilding basis + operator per frame.  Pass a
:class:`~repro.resilience.policies.ResiliencePolicy` to supervise the
per-frame solve with the fallback chain, health validation and
last-good-frame degradation -- a solver fault then costs one degraded
frame, not the stream.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from .. import instrument
from ..core.engine import get_engine
from ..core.errors import SparseErrorModel
from ..core.executor import collect_values, resolve_executor
from ..core.measurement import get_measurement
from ..core.rpca import detect_outliers
from ..core.solvers import solve
from ..resilience.health import FrameGuard, validate_reconstruction
from ..resilience.policies import ResiliencePolicy
from .flexible_encoder import FlexibleEncoder
from .readout import detect_stuck_lines

__all__ = ["FrameRecord", "StreamingImager"]


def _bare_solve_task(args):
    """Solve one scanned frame without a policy (picklable task body)."""
    solver, phi, measurements, shape = args
    operator = get_engine().operator(phi, shape)
    result = solve(solver, operator, measurements)
    return operator.synthesize(result.coefficients).reshape(shape)


@dataclass
class _Acquisition:
    """One acquired-but-not-yet-decoded frame (internal to the imager)."""

    index: int
    clean: np.ndarray
    corrupted: np.ndarray
    phi: object
    output: object
    excluded_pixels: int


@dataclass
class FrameRecord:
    """One acquired frame: truth, raw reading, reconstruction.

    ``status`` is ``"ok"`` for a clean first-choice solve, ``"degraded"``
    when a fallback solver delivered the frame, and ``"fallback"`` when
    every solver failed and the frame is the last-good-frame hold (only
    possible with a resilience policy; without one a solver fault
    propagates).  ``solver`` names the solver that produced the frame
    (``None`` for held frames).
    """

    index: int
    clean: np.ndarray
    corrupted: np.ndarray
    reconstructed: np.ndarray
    scan_time_s: float
    excluded_pixels: int
    status: str = "ok"
    solver: str | None = None


@dataclass
class StreamingImager:
    """Continuous acquisition loop over a flexible encoder.

    Parameters
    ----------
    encoder:
        The hardware-modelled FE side.
    sampling_fraction:
        Per-frame M/N.
    error_model:
        Transient/permanent error injector applied to each clean frame
        before it reaches the array (None = clean input).
    rpca_window:
        Number of recent *raw* frames kept for RPCA outlier detection;
        0 disables detection (only the permanent defect map, if the
        array has one, is excluded).
    outlier_threshold:
        RPCA sparse-component magnitude that flags a pixel.
    solver:
        Decoder name (first choice when a policy is set).
    policy:
        Optional :class:`~repro.resilience.policies.ResiliencePolicy`.
        When set, each frame's solve walks the policy's fallback chain
        under health validation; if every solver fails the frame is
        served from the last-good-frame guard and the record is marked
        ``"fallback"``.  ``None`` keeps the raw single-solver behaviour.
    adaptive:
        Optional :class:`~repro.resilience.adaptive.AdaptivePolicy`.
        When set, it supplies the (self-tuning) policy each frame, the
        full readout codes are run through
        :func:`~repro.array.readout.detect_stuck_lines` after every
        scan (detections feed the controller's sticky exclusion mask,
        steering the *next* frame's sampling away from dead lines),
        and each frame's delivery status is fed back so the policy
        escalates/de-escalates with the stream's health.
    measurement:
        Registered measurement family drawing the per-frame code
        (``"row_sampling"`` default).  Families without exclusion
        support skip the defect/RPCA/stuck-line masks (with an
        adaptive ``unsupported`` event when a controller is attached).
    seed:
        RNG seed for the per-frame code draws.
    """

    encoder: FlexibleEncoder
    sampling_fraction: float = 0.5
    error_model: SparseErrorModel | None = None
    rpca_window: int = 0
    outlier_threshold: float = 0.15
    solver: str = "fista"
    policy: ResiliencePolicy | None = None
    adaptive: object | None = None
    measurement: str = "row_sampling"
    seed: int = 0
    _history: list[np.ndarray] = field(default_factory=list, repr=False)
    _count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError("sampling_fraction must be in (0, 1]")
        if self.rpca_window < 0:
            raise ValueError("rpca_window must be >= 0")
        self._rng = np.random.default_rng(self.seed)
        self._guard = FrameGuard()

    def _effective_policy(self) -> ResiliencePolicy | None:
        """The policy governing the next frame (adaptive takes over)."""
        if self.adaptive is not None:
            return self.adaptive.policy
        return self.policy

    def _exclusions(self, corrupted: np.ndarray) -> np.ndarray:
        mask = self.encoder.array.defect_mask
        if self.rpca_window > 1 and len(self._history) >= 2:
            stack = np.stack([*self._history, corrupted])
            detected = detect_outliers(
                stack, threshold=self.outlier_threshold
            )[-1]
            if detected.mean() <= 0.5:  # sanity guard, as in the strategy
                mask = mask | detected
        if self.adaptive is not None:
            stuck = self.adaptive.exclusion_mask(mask.shape)
            if stuck is not None:
                mask = mask | stuck
        return mask

    def _solver_chain(self, policy: ResiliencePolicy | None) -> list[str]:
        """Solvers to try for one frame, first choice first."""
        if policy is None:
            return [self.solver]
        chain = [self.solver]
        chain.extend(s for s in policy.fallback_chain if s not in chain)
        return chain

    def _decode(
        self, measurements: np.ndarray, phi, shape: tuple
    ) -> tuple[np.ndarray, str, str | None]:
        """Solve the scanned measurements; returns (frame, status, solver).

        Without a policy this is a bare solve with the engine-cached
        operator.  With one (static or the adaptive controller's
        current tuning), each solver of the chain is tried in turn and
        its reconstruction health-validated; the guard serves the
        fallback frame when the whole chain fails.
        """
        operator = get_engine().operator(phi, shape)
        policy = self._effective_policy()
        if policy is None:
            result = solve(self.solver, operator, measurements)
            frame = operator.synthesize(result.coefficients).reshape(shape)
            self._guard.update(frame)
            return frame, "ok", self.solver
        for rank, solver in enumerate(self._solver_chain(policy)):
            options = policy.budget_for(solver).solver_options(solver)
            try:
                result = solve(solver, operator, measurements, **options)
            except Exception:
                continue
            frame = operator.synthesize(result.coefficients).reshape(shape)
            health = validate_reconstruction(
                frame,
                expected_shape=shape,
                value_range=policy.value_range,
                solver_result=result,
                measurements=measurements,
                residual_factor=policy.residual_factor,
            )
            if not health.ok:
                continue
            self._guard.update(frame)
            status = "ok" if rank == 0 and result.converged else "degraded"
            return frame, status, solver
        return self._guard.fallback(shape), "fallback", None

    def _acquire(self, clean_frame: np.ndarray) -> _Acquisition:
        """The RNG/hardware half of one capture: corrupt, draw, scan.

        Consumes randomness (error model, ``Phi_M`` draw) and advances
        stream state (RPCA history, stuck-line detections, frame
        counter) in exactly the per-frame order of :meth:`capture`, so
        batched windows acquire bitwise the same measurements as
        frame-at-a-time capture.
        """
        clean_frame = np.asarray(clean_frame, dtype=float)
        shape = self.encoder.array.shape
        if clean_frame.shape != shape:
            raise ValueError(
                f"frame shape {clean_frame.shape} != array {shape}"
            )
        if self.error_model is not None:
            corrupted, _ = self.error_model.corrupt(clean_frame)
        else:
            corrupted = clean_frame.copy()
        exclusion = self._exclusions(corrupted)
        model = get_measurement(self.measurement)
        n = clean_frame.size
        m = int(round(self.sampling_fraction * n))
        excluded = np.flatnonzero(exclusion.ravel())
        if len(excluded) and not model.supports_exclusions:
            if self.adaptive is not None:
                self.adaptive.note_unsupported(
                    f"measurement family {self.measurement!r} lacks "
                    f"exclusion support; ignoring {len(excluded)} "
                    "excluded pixels"
                )
            excluded = np.array([], dtype=int)
        exclude = excluded if len(excluded) else None
        m = model.budget(n, m, exclude)
        phi = model.draw(shape, m, self._rng, exclude=exclude)
        output = self.encoder.scan_normalized(corrupted, phi)
        if self.adaptive is not None and output.codes is not None:
            stuck = detect_stuck_lines(output.codes)
            if stuck.any():
                self.adaptive.observe_readout(stuck)
        if self.rpca_window > 1:
            self._history.append(corrupted)
            if len(self._history) > self.rpca_window:
                self._history.pop(0)
        index = self._count
        self._count += 1
        return _Acquisition(
            index=index,
            clean=clean_frame,
            corrupted=corrupted,
            phi=phi,
            output=output,
            excluded_pixels=len(excluded),
        )

    def _finish(
        self,
        acquisition: _Acquisition,
        reconstructed: np.ndarray,
        status: str,
        used_solver: str | None,
    ) -> FrameRecord:
        """Assemble the record and feed the adaptive controller."""
        if self.adaptive is not None:
            self.adaptive.observe_status(status)
        return FrameRecord(
            index=acquisition.index,
            clean=acquisition.clean,
            corrupted=acquisition.corrupted,
            reconstructed=reconstructed,
            scan_time_s=acquisition.output.scan_time_s,
            excluded_pixels=acquisition.excluded_pixels,
            status=status,
            solver=used_solver,
        )

    def capture(self, clean_frame: np.ndarray) -> FrameRecord:
        """Acquire one frame; returns the full record."""
        acquisition = self._acquire(clean_frame)
        reconstructed, status, used_solver = self._decode(
            acquisition.output.measurements,
            acquisition.phi,
            self.encoder.array.shape,
        )
        return self._finish(acquisition, reconstructed, status, used_solver)

    def _capture_batch(
        self, window: np.ndarray, executor
    ) -> list[FrameRecord]:
        """One batched window: sequential acquisition, fanned-out solves."""
        acquisitions = [self._acquire(frame) for frame in window]
        shape = self.encoder.array.shape
        if self.policy is None and executor is not None:
            tasks = [
                (self.solver, a.phi, a.output.measurements, shape)
                for a in acquisitions
            ]
            frames = collect_values(
                executor.map_tasks(_bare_solve_task, tasks, label="imager")
            )
            records = []
            for acquisition, frame in zip(acquisitions, frames):
                self._guard.update(frame)
                records.append(
                    self._finish(acquisition, frame, "ok", self.solver)
                )
            return records
        return [
            self._finish(
                a,
                *self._decode(a.output.measurements, a.phi, shape),
            )
            for a in acquisitions
        ]

    def stream(
        self,
        frames: np.ndarray,
        batch_size: int | None = None,
        executor=None,
    ) -> list[FrameRecord]:
        """Capture a whole ``(count, rows, cols)`` sequence.

        With ``batch_size`` the stream advances in windows: every frame
        in a window is acquired first (corruption, ``Phi_M`` draws,
        scans -- sequential, in frame order, so the RNG stream matches
        frame-at-a-time capture bit for bit), then the pure solves run
        -- in parallel across the window when an ``executor`` (any
        :func:`~repro.core.executor.resolve_executor` spec) is given
        and no resilience policy is set; policy-supervised solves stay
        sequential so breaker/guard state advances in frame order.
        Records are identical to the unbatched stream either way.

        With an ``adaptive`` controller batching degrades gracefully to
        per-frame capture (with a warning and an
        ``imager.batch_adaptive_fallback`` counter) instead of raising:
        the controller's feedback loop re-tunes the policy *between*
        frames, which a deferred decode would observe stale, so the
        resilience feature wins over the throughput one -- but the two
        compose instead of conflicting.
        """
        frames = np.asarray(frames, dtype=float)
        if frames.ndim != 3:
            raise ValueError(f"expected (count, rows, cols), got {frames.shape}")
        if batch_size is None or batch_size <= 1:
            return [self.capture(frame) for frame in frames]
        if self.adaptive is not None:
            warnings.warn(
                "batched streaming is incompatible with an adaptive "
                "policy (per-frame feedback); falling back to per-frame "
                "decoding",
                RuntimeWarning,
                stacklevel=2,
            )
            instrument.incr("imager.batch_adaptive_fallback")
            return [self.capture(frame) for frame in frames]
        resolved = resolve_executor(executor)
        records: list[FrameRecord] = []
        for start in range(0, len(frames), batch_size):
            records.extend(
                self._capture_batch(
                    frames[start:start + batch_size], resolved
                )
            )
        return records
