"""Driver bitstream programming: from ``Phi_M`` to shift-register bits.

Fig. 4's caption: "shift-registers are used for the column and row
drivers to scan out sensor information based on the sensing matrix
Phi_M" -- the silicon decoder serialises the sampling pattern into the
bit streams it clocks into the flexible registers.  This module
performs that serialisation and verifies it bit-accurately against the
gate-level shift register of Fig. 5c-d.

Protocol modelled (one of several workable ones):

* the **column register** is loaded with a single '1' and shifted one
  position per scan cycle (a walking one);
* the **row register** is re-loaded serially before every cycle with
  that cycle's row mask (``rows`` clock ticks per cycle), which is why
  a full scan takes ``cycles x rows`` driver clocks
  (:meth:`~repro.array.drivers.ScanDrivers.scan_time_s`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.shift_register import ShiftRegister
from ..core.sensing import RowSamplingMatrix
from .scanner import ScanSchedule

__all__ = ["DriverProgram", "program_drivers", "verify_row_program"]


@dataclass
class DriverProgram:
    """Serial bit streams for one full scan.

    Attributes
    ----------
    array_shape:
        ``(rows, cols)``.
    row_words:
        Per-cycle row words as shifted (index 0 enters the register
        first); after ``rows`` shifts, register stage ``i`` holds
        ``row_words[cycle][rows - 1 - i]`` = row mask bit ``i``.
    column_word:
        The walking-one column pattern (shifted once per cycle).
    """

    array_shape: tuple[int, int]
    row_words: list[np.ndarray]
    column_word: np.ndarray

    @property
    def cycles(self) -> int:
        """Scan cycles (= column count)."""
        return len(self.row_words)

    @property
    def total_row_bits(self) -> int:
        """Total serial bits for the row register over the scan."""
        rows, _ = self.array_shape
        return self.cycles * rows

    def register_contents(self, cycle: int) -> np.ndarray:
        """Row-register contents after loading cycle ``cycle``'s word."""
        word = self.row_words[cycle]
        return word[::-1].copy()


def program_drivers(
    phi: RowSamplingMatrix, array_shape: tuple[int, int]
) -> DriverProgram:
    """Serialise ``Phi_M`` into the driver bit streams."""
    rows, cols = array_shape
    schedule = ScanSchedule.from_phi(phi, array_shape)
    row_words = []
    for cycle in schedule.cycles:
        # Shift order: last register stage receives the first bit, so
        # serialise the mask reversed; register stage i then holds mask
        # bit i once the word is fully loaded.
        mask = cycle.row_mask.astype(int)
        row_words.append(mask[::-1].copy())
    column_word = np.zeros(cols, dtype=int)
    column_word[0] = 1
    return DriverProgram(
        array_shape=(rows, cols), row_words=row_words, column_word=column_word
    )


def verify_row_program(
    program: DriverProgram,
    cycle: int = 0,
    clock_hz: float = 10_000.0,
    vdd: float = 3.0,
) -> bool:
    """Clock one cycle's row word through the gate-level register.

    Builds the Fig. 5c-d shift register with one stage per array row,
    streams the serialised bits at the given clock, and checks that the
    settled register contents equal the intended row mask -- the
    bit-accurate link between ``Phi_M`` and the fabricated hardware.
    """
    rows, _cols = program.array_shape
    word = program.row_words[cycle]
    register = ShiftRegister(stages=rows)
    simulator = register._rescaled_simulator((3.0 - 0.8) / max(vdd - 0.8, 1e-3))
    period = 1.0 / clock_hz
    stop = (rows + 1.5) * period
    simulator.clock_stimulus("CLK", clock_hz, stop)
    changes = [(k * period, int(bit)) for k, bit in enumerate(word)]
    changes.append((rows * period, 0))
    simulator.set_stimulus("DATA", changes)
    waveforms = simulator.run(stop)
    # Sample after the final rising edge has fully propagated.
    sample_time = (rows - 1 + 0.95) * period
    contents = np.array(
        [
            waveforms[f"Q{i + 1}"].value_at(sample_time)
            for i in range(rows)
        ]
    )
    expected = program.register_contents(cycle)
    if np.any(contents == None):  # noqa: E711 - None = unresolved X
        return False
    return bool(np.array_equal(contents.astype(int), expected))
