"""Readout chain: near-sensor amplifier, sample-and-hold, ADC.

Sec. 4.1 assumes "the silicon chip implementing the decoder has sample
and hold circuitry followed by an Analog-to-Digital-Converter"; the
flexible side contributes the near-sensor amplifier of Fig. 5e.  The
chain here converts pixel read currents into quantised digital codes:

    current -> transimpedance (V) -> amplifier gain -> S/H droop
            -> additive noise -> ADC quantisation -> normalised code
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import instrument
from .hooks import _ARRAY_HOOKS, apply_analog_hooks, apply_code_hooks

__all__ = ["ReadoutChain", "detect_stuck_lines"]


def detect_stuck_lines(
    codes: np.ndarray, low: float = 0.0, high: float = 1.0
) -> np.ndarray:
    """Flag rows/columns whose every pixel reads a rail value.

    A broken gate driver or a shorted column line makes the *entire*
    line read one extreme code; unlike isolated stuck pixels these are
    structured faults that random sampling cannot average away, so the
    decode stack should exclude them (the returned mask plugs straight
    into ``sample_and_reconstruct(exclude_mask=...)``).

    Parameters
    ----------
    codes:
        2-D frame of normalised readout codes.
    low, high:
        The rail values that count as stuck (ADC zero and full scale).

    Returns
    -------
    numpy.ndarray
        Boolean mask, same shape as ``codes``, ``True`` on every pixel
        belonging to a fully stuck row or column.  All-``False`` when
        nothing is stuck (single-row/column frames are judged like any
        other line).  Non-finite readings count as at-rail: a line that
        reads NaN/Inf is broken by definition, even though the value is
        not literally a rail code.
    """
    codes = np.asarray(codes, dtype=float)
    if codes.ndim != 2:
        raise ValueError(f"expected a 2-D frame, got shape {codes.shape}")
    at_rail = (codes == low) | (codes == high) | ~np.isfinite(codes)
    stuck_rows = at_rail.all(axis=1)
    stuck_cols = at_rail.all(axis=0)
    mask = np.zeros(codes.shape, dtype=bool)
    mask[stuck_rows, :] = True
    mask[:, stuck_cols] = True
    if mask.any():
        instrument.incr("readout.stuck_lines",
                        int(stuck_rows.sum() + stuck_cols.sum()))
    return mask


@dataclass
class ReadoutChain:
    """Parameterised analog front end + ADC.

    Attributes
    ----------
    transimpedance_ohm:
        Current-to-voltage conversion at the column line.
    amplifier_gain:
        Voltage gain of the near-sensor amplifier (the Fig. 5e design
        delivers ~20x; see :class:`repro.circuits.SelfBiasedAmplifier`).
    sh_droop:
        Fractional droop of the sample-and-hold between sampling and
        conversion (0 = ideal).
    noise_sigma_v:
        RMS input-referred noise voltage added before quantisation.
    adc_bits:
        ADC resolution.
    full_scale_v:
        ADC input range ``[0, full_scale_v]``.
    seed:
        RNG seed for the noise stream.
    """

    transimpedance_ohm: float = 1.0e5
    amplifier_gain: float = 20.0
    sh_droop: float = 0.001
    noise_sigma_v: float = 1.0e-3
    adc_bits: int = 10
    full_scale_v: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name in (
            "transimpedance_ohm",
            "amplifier_gain",
            "sh_droop",
            "noise_sigma_v",
            "full_scale_v",
        ):
            value = getattr(self, field_name)
            if not np.isfinite(value):
                raise ValueError(
                    f"{field_name} must be finite, got {value}"
                )
        if self.transimpedance_ohm <= 0 or self.amplifier_gain <= 0:
            raise ValueError("gains must be positive")
        if not 0.0 <= self.sh_droop < 1.0:
            raise ValueError("sh_droop must be in [0, 1)")
        if self.noise_sigma_v < 0:
            raise ValueError("noise must be >= 0")
        if self.adc_bits < 1:
            raise ValueError("adc_bits must be >= 1")
        if self.full_scale_v <= 0:
            raise ValueError("full_scale_v must be positive")
        if self.lsb_v <= 0:
            raise ValueError(
                f"degenerate quantisation step: full_scale_v="
                f"{self.full_scale_v} over {self.adc_bits} bits gives "
                f"lsb_v={self.lsb_v}; lower adc_bits or raise full_scale_v"
            )
        self._rng = np.random.default_rng(self.seed)

    @classmethod
    def for_current_range(
        cls, max_current_a: float, headroom: float = 1.2, **kwargs
    ) -> "ReadoutChain":
        """Build a chain whose transimpedance ranges a given current.

        Picks ``transimpedance_ohm`` so that ``max_current_a`` lands at
        ``full_scale / headroom`` after the amplifier -- the auto-range
        step a real acquisition system performs at calibration time.
        Rejects non-finite calibration inputs and a current range whose
        auto-ranged transimpedance degenerates to zero (the "zero-width
        current range" configuration that would otherwise surface as a
        cryptic gain error deep in ``__post_init__``).
        """
        if not np.isfinite(max_current_a):
            raise ValueError(
                f"max_current_a must be finite, got {max_current_a}"
            )
        if max_current_a <= 0:
            raise ValueError("max_current_a must be positive")
        if not np.isfinite(headroom):
            raise ValueError(f"headroom must be finite, got {headroom}")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        probe = cls(**kwargs)
        transimpedance = probe.full_scale_v / (
            headroom * max_current_a * probe.amplifier_gain
        )
        if not np.isfinite(transimpedance) or transimpedance <= 0:
            raise ValueError(
                f"current range [0, {max_current_a}] A auto-ranges to a "
                f"degenerate transimpedance ({transimpedance}); the range "
                "is too wide for this amplifier/full-scale configuration"
            )
        kwargs["transimpedance_ohm"] = transimpedance
        return cls(**kwargs)

    @property
    def lsb_v(self) -> float:
        """ADC step size."""
        return self.full_scale_v / (2**self.adc_bits)

    def convert_currents(self, currents: np.ndarray) -> np.ndarray:
        """Run pixel currents through the chain; returns codes in [0, 1].

        Values are clipped to the ADC range before quantisation, so
        stuck-high defects saturate at full scale exactly as observed
        on the fabricated array.
        """
        currents = np.asarray(currents, dtype=float)
        instrument.incr("readout.conversions", currents.size)
        volts = currents * self.transimpedance_ohm * self.amplifier_gain
        volts = volts * (1.0 - self.sh_droop)
        if self.noise_sigma_v > 0:
            volts = volts + self._rng.normal(0.0, self.noise_sigma_v, volts.shape)
        return self._quantize(volts)

    def convert_normalized(self, values: np.ndarray) -> np.ndarray:
        """Chain for already-normalised pixel values in [0, 1].

        Applies S/H droop, input-referred noise (scaled to full scale)
        and quantisation -- the non-idealities survive even when the
        transduction is normalised out.
        """
        values = np.asarray(values, dtype=float)
        instrument.incr("readout.conversions", values.size)
        volts = values * self.full_scale_v * (1.0 - self.sh_droop)
        if self.noise_sigma_v > 0:
            volts = volts + self._rng.normal(0.0, self.noise_sigma_v, volts.shape)
        return self._quantize(volts)

    def _quantize(self, volts: np.ndarray) -> np.ndarray:
        """Clip to the ADC range, quantise, and count saturated samples.

        Saturation is a health signal: a pixel pinned at either rail is
        indistinguishable from a stuck defect downstream, so the counts
        (``readout.saturated_high`` / ``readout.saturated_low``) feed
        the resilience layer's stuck-line detection and the instrument
        report.  NaN inputs (a poisoned analog chain) are clamped to
        zero rather than silently quantised into garbage codes, and
        counted under ``readout.nonfinite``.

        Array-layer fault hooks (:mod:`repro.array.hooks`) attach here:
        ``on_analog`` injectors rewrite the voltage vector before the
        saturation/nonfinite accounting (so injected saturation bursts
        and gain drift are *counted* exactly like organic ones), and
        ``on_codes`` injectors rewrite the raw integer codes (ADC bit
        flips) before normalisation.
        """
        if _ARRAY_HOOKS:
            volts = np.asarray(
                apply_analog_hooks(self, volts), dtype=float
            )
        nonfinite = ~np.isfinite(volts)
        if nonfinite.any():
            instrument.incr("readout.nonfinite", int(nonfinite.sum()))
            volts = np.where(nonfinite, 0.0, volts)
        instrument.incr(
            "readout.saturated_high", int((volts >= self.full_scale_v).sum())
        )
        instrument.incr("readout.saturated_low", int((volts <= 0.0).sum()))
        volts = np.clip(volts, 0.0, self.full_scale_v)
        codes = np.round(volts / self.lsb_v)
        codes = np.minimum(codes, 2**self.adc_bits - 1)
        if _ARRAY_HOOKS:
            codes = np.clip(
                np.asarray(apply_code_hooks(self, codes), dtype=float),
                0,
                2**self.adc_bits - 1,
            )
        return codes / (2**self.adc_bits - 1)
