"""Scan scheduling: turning ``Phi_M`` into a sqrt(N)-cycle scan.

Fig. 4 and Sec. 4.1: because ``Phi_M`` holds at most one '1' per
column, the whole measurement set is acquired in ``sqrt(N)`` scan
cycles -- the column driver walks the columns once while the row driver
asserts, per cycle, exactly the rows whose pixels are sampled in that
column.  The schedule also yields the communication-cost accounting
(cycles, row assertions, ADC conversions) for the COMM experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sensing import RowSamplingMatrix, column_control_words

__all__ = ["ScanCycle", "ScanSchedule"]


@dataclass(frozen=True)
class ScanCycle:
    """One scan cycle: a column index plus the asserted row mask."""

    column: int
    row_mask: np.ndarray

    @property
    def reads(self) -> int:
        """Pixels read out during this cycle."""
        return int(np.count_nonzero(self.row_mask))


@dataclass
class ScanSchedule:
    """The full scan plan for one measurement matrix.

    Attributes
    ----------
    array_shape:
        ``(rows, cols)`` of the active matrix.
    cycles:
        One :class:`ScanCycle` per column, in scan order.
    """

    array_shape: tuple[int, int]
    cycles: list[ScanCycle]

    @classmethod
    def from_phi(
        cls, phi: RowSamplingMatrix, array_shape: tuple[int, int]
    ) -> "ScanSchedule":
        """Expand ``Phi_M`` into the per-column scan plan."""
        words = column_control_words(phi, array_shape)
        cycles = [ScanCycle(column=c, row_mask=mask) for c, mask in enumerate(words)]
        return cls(array_shape=array_shape, cycles=cycles)

    @property
    def num_cycles(self) -> int:
        """Scan cycles required: always the column count (sqrt(N) for
        square arrays), independent of M."""
        return len(self.cycles)

    @property
    def total_reads(self) -> int:
        """Total pixel reads = ADC conversions = M."""
        return sum(cycle.reads for cycle in self.cycles)

    def pixel_order(self) -> np.ndarray:
        """Flat pixel indices in acquisition order (column-major scan,
        rows ascending within a cycle)."""
        rows, cols = self.array_shape
        order = []
        for cycle in self.cycles:
            for r in np.flatnonzero(cycle.row_mask):
                order.append(int(r) * cols + cycle.column)
        return np.array(order, dtype=int)

    def communication_cost(self, baseline_reads: int | None = None) -> dict:
        """Cost accounting vs the read-everything baseline (Sec. 4.1).

        Returns cycle counts, ADC conversion counts and the cost ratio
        ``M / N`` that the paper estimates at ~0.5.
        """
        rows, cols = self.array_shape
        n = rows * cols
        if baseline_reads is None:
            baseline_reads = n
        reads = self.total_reads
        return {
            "scan_cycles": self.num_cycles,
            "adc_conversions": reads,
            "baseline_conversions": baseline_reads,
            "cost_ratio": reads / baseline_reads,
        }
