"""Scan scheduling: turning a measurement code into a sqrt(N)-cycle scan.

Fig. 4 and Sec. 4.1: the column driver walks the columns once while the
row driver asserts, per cycle, exactly the rows whose pixels the code
touches in that column.  For the paper's row-sampling ``Phi_M`` (at
most one '1' per column of ``Phi``) that reads each sampled pixel once;
dense and block codes assert every pixel in their support, and the
encoder combines the per-pixel readings into summed measurements
afterwards.  The control words come from the code's registered
:class:`~repro.core.measurement.MeasurementModel`, so any family drives
the same hardware seam.  The schedule also yields the
communication-cost accounting (cycles, row assertions, ADC conversions)
for the COMM experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.measurement import resolve_measurement_for

__all__ = ["ScanCycle", "ScanSchedule"]


@dataclass(frozen=True)
class ScanCycle:
    """One scan cycle: a column index plus the asserted row mask."""

    column: int
    row_mask: np.ndarray

    @property
    def reads(self) -> int:
        """Pixels read out during this cycle."""
        return int(np.count_nonzero(self.row_mask))


@dataclass
class ScanSchedule:
    """The full scan plan for one measurement matrix.

    Attributes
    ----------
    array_shape:
        ``(rows, cols)`` of the active matrix.
    cycles:
        One :class:`ScanCycle` per column, in scan order.
    """

    array_shape: tuple[int, int]
    cycles: list[ScanCycle]

    @classmethod
    def from_phi(
        cls, phi, array_shape: tuple[int, int]
    ) -> "ScanSchedule":
        """Expand any family's code into the per-column scan plan.

        The carrier's registered model supplies the control words
        (:meth:`~repro.core.measurement.MeasurementModel.control_words`);
        row-sampling codes keep the exact pre-refactor expansion.
        """
        words = resolve_measurement_for(phi).control_words(phi, array_shape)
        cycles = [ScanCycle(column=c, row_mask=mask) for c, mask in enumerate(words)]
        return cls(array_shape=array_shape, cycles=cycles)

    @property
    def num_cycles(self) -> int:
        """Scan cycles required: always the column count (sqrt(N) for
        square arrays), independent of M."""
        return len(self.cycles)

    @property
    def total_reads(self) -> int:
        """Total pixel reads = ADC conversions (= M for row sampling;
        the code's pixel support size for dense/block families)."""
        return sum(cycle.reads for cycle in self.cycles)

    def pixel_order(self) -> np.ndarray:
        """Flat pixel indices in acquisition order (column-major scan,
        rows ascending within a cycle)."""
        rows, cols = self.array_shape
        order = []
        for cycle in self.cycles:
            for r in np.flatnonzero(cycle.row_mask):
                order.append(int(r) * cols + cycle.column)
        return np.array(order, dtype=int)

    def communication_cost(self, baseline_reads: int | None = None) -> dict:
        """Cost accounting vs the read-everything baseline (Sec. 4.1).

        Returns cycle counts, ADC conversion counts and the cost ratio
        ``M / N`` that the paper estimates at ~0.5.
        """
        rows, cols = self.array_shape
        n = rows * cols
        if baseline_reads is None:
            baseline_reads = n
        reads = self.total_reads
        return {
            "scan_cycles": self.num_cycles,
            "adc_conversions": reads,
            "baseline_conversions": baseline_reads,
            "cost_ratio": reads / baseline_reads,
        }
