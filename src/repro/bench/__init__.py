"""repro.bench -- the declarative evaluation framework.

The repo's performance story used to live in scattered CI smoke gates
(fixed speedup ratios, no history).  This package makes it a recorded
*trajectory*:

* :mod:`.workloads` -- the standard workload matrix (thermal / tactile
  / ultrasound datasets x frame shapes x sampling ratios x fault
  rates), registered by name so pytest benchmarks, the driver and CI
  share one set of definitions;
* :mod:`.routes` -- the decode routes (serial engine loop,
  thread/process executor fan-out, shared-|Phi| vectorised
  ``decode_batch``, resilient and adaptive supervision);
* :mod:`.runner` -- runs (workload, route) cells, recording
  wall-clock, RMSE, delivery, operator-cache hit rate and executor
  speedup, plus a host calibration constant for cross-machine
  wall-clock comparison;
* :mod:`.schema` -- the versioned ``BENCH_<n>.json`` document
  (``repro.bench/v1``): build, validate, load, write;
* :mod:`.trend` -- folds the committed ``BENCH_*.json`` history into
  per-metric deltas, a combined markdown report and the CI regression
  gate (>10 % normalised wall-clock slip on any tier-1 cell fails).

One driver runs it all::

    PYTHONPATH=src python -m repro.bench --suite smoke   # run + emit
    PYTHONPATH=src python -m repro.bench --trend         # the report
    PYTHONPATH=src python -m repro.bench --trend --gate  # CI gate

See ``docs/BENCHMARKS.md`` for the protocol: the matrix, the JSON
schema field-by-field, how to add a workload and how to read the
trend report.
"""

from .routes import Route, RouteResult, get_route, register_route, route_names
from .runner import calibrate, run_cell, run_suite
from .schema import (
    BENCH_PATTERN,
    SCHEMA,
    bench_filename,
    build_bench,
    list_bench_files,
    load_bench,
    next_bench_id,
    validate_bench,
    write_bench,
)
from .trend import (
    check_regressions,
    compute_deltas,
    load_history,
    render_markdown,
    trajectory_markdown,
)
from .workloads import (
    Workload,
    cell_seed,
    dataset_names,
    get_workload,
    make_frames,
    register_workload,
    suite_cells,
    suite_names,
    workload_names,
)

__all__ = [
    "BENCH_PATTERN",
    "Route",
    "RouteResult",
    "SCHEMA",
    "Workload",
    "bench_filename",
    "build_bench",
    "calibrate",
    "cell_seed",
    "check_regressions",
    "compute_deltas",
    "dataset_names",
    "get_route",
    "get_workload",
    "list_bench_files",
    "load_bench",
    "load_history",
    "make_frames",
    "next_bench_id",
    "register_route",
    "register_workload",
    "render_markdown",
    "route_names",
    "run_cell",
    "run_suite",
    "suite_cells",
    "suite_names",
    "trajectory_markdown",
    "validate_bench",
    "workload_names",
    "write_bench",
]
