"""Benchmark driver CLI: run suites, render trends, gate regressions.

Examples::

    # Run the tier-1 smoke suite; writes BENCH_<next>.json at the root.
    PYTHONPATH=src python -m repro.bench --suite smoke

    # Same run, explicit trajectory id and instrumented counters.
    PYTHONPATH=src python -m repro.bench --suite smoke --bench-id 6 \\
        --instrument

    # Combined trend report over every committed BENCH_*.json.
    PYTHONPATH=src python -m repro.bench --trend

    # CI regression gate: exit 1 when the newest entry regresses.
    PYTHONPATH=src python -m repro.bench --trend --gate

    # Just the README trajectory table.
    PYTHONPATH=src python -m repro.bench --trajectory

    # Validate a document / list what is runnable.
    PYTHONPATH=src python -m repro.bench --validate BENCH_6.json
    PYTHONPATH=src python -m repro.bench --list

Exit codes: 0 success / no regression, 1 regression or invalid
document, 2 usage errors.  See ``docs/BENCHMARKS.md`` for the
protocol.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .routes import get_route, route_names
from .runner import run_suite
from .schema import (
    bench_filename,
    next_bench_id,
    validate_bench,
    write_bench,
)
from .trend import (
    DEFAULT_MAX_RMSE_SLIP,
    DEFAULT_MAX_WALL_SLIP,
    check_regressions,
    load_history,
    render_markdown,
    trajectory_markdown,
)
from .workloads import get_workload, suite_cells, suite_names, workload_names

__all__ = ["main"]


def _render_cells(doc: dict) -> str:
    """Human-readable table of one run's cells."""
    lines = [
        f"{'cell':<44} {'ms/frame':>9} {'rmse':>8} {'cache':>6} "
        f"{'vs serial':>10} {'deliver':>8}"
    ]
    for cell in doc["cells"]:
        metrics = cell["metrics"]
        cache = metrics.get("cache_hit_rate")
        speedup = metrics.get("speedup_vs_serial")
        cache_text = f"{cache:>6.2f}" if cache is not None else f"{'--':>6}"
        speed_text = (
            f"{speedup:>9.2f}x" if speedup is not None else f"{'--':>10}"
        )
        lines.append(
            f"{cell['workload'] + ' x ' + cell['route']:<44} "
            f"{metrics['ms_per_frame']:>9.2f} {metrics['rmse']:>8.4f} "
            f"{cache_text} {speed_text} {metrics['delivered']:>8.0%}"
        )
    return "\n".join(lines)


def _cmd_list() -> int:
    print("suites:")
    for suite in suite_names():
        cells = suite_cells(suite)
        print(f"  {suite:<8} ({len(cells)} cells)")
        for workload, route_name in cells:
            print(f"    {workload.name} x {route_name}")
    print("workloads:")
    for name in workload_names():
        workload = get_workload(name)
        print(
            f"  {name:<28} tier {workload.tier}, "
            f"{workload.frames} frames, solver {workload.solver}"
        )
    print("routes:")
    for name in route_names():
        print(f"  {name:<14} {get_route(name).description}")
    return 0


def _cmd_validate(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable: {exc}", file=sys.stderr)
        return 1
    problems = validate_bench(doc)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1
    print(f"{path}: valid ({len(doc['cells'])} cells, suite {doc['suite']!r})")
    return 0


def _cmd_trend(args) -> int:
    try:
        history = load_history(args.root)
    except ValueError as exc:
        print(f"corrupt trajectory: {exc}", file=sys.stderr)
        return 1
    print(
        render_markdown(
            history,
            max_wall_slip=args.max_wall_slip,
            max_rmse_slip=args.max_rmse_slip,
        )
    )
    if not args.gate:
        return 0
    if len(history) < 2:
        print(
            "gate: fewer than two trajectory entries, nothing to compare",
            file=sys.stderr,
        )
        return 0
    problems = check_regressions(
        history[-2],
        history[-1],
        max_wall_slip=args.max_wall_slip,
        max_rmse_slip=args.max_rmse_slip,
    )
    if problems:
        for problem in problems:
            print(f"gate: REGRESSION: {problem}", file=sys.stderr)
        return 1
    print("gate: no tier-1 regressions", file=sys.stderr)
    return 0


def _cmd_suite(args) -> int:
    root = Path(args.root)
    bench_id = (
        args.bench_id if args.bench_id is not None else next_bench_id(root)
    )
    doc = run_suite(
        args.suite,
        bench_id=bench_id,
        seed=args.seed,
        instrumented=args.instrument,
        progress=None if args.quiet else (
            lambda line: print(line, file=sys.stderr)
        ),
        repeats=args.repeats,
    )
    output = (
        Path(args.output) if args.output else root / bench_filename(bench_id)
    )
    write_bench(doc, output)
    if not args.quiet:
        print(_render_cells(doc))
        print(
            f"\ncalibration {doc['calibration_s']:.4f} s, "
            f"{len(doc['cells'])} cells"
        )
    print(f"benchmark document written to {output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the standard evaluation suites and manage the "
        "BENCH_*.json performance trajectory (see docs/BENCHMARKS.md).",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--suite", choices=suite_names(), help="run a named suite"
    )
    group.add_argument(
        "--trend", action="store_true",
        help="render the combined trend report over BENCH_*.json",
    )
    group.add_argument(
        "--trajectory", action="store_true",
        help="print just the tier-1 trajectory table (README embed)",
    )
    group.add_argument(
        "--validate", metavar="PATH",
        help="validate a benchmark document against the schema and exit",
    )
    group.add_argument(
        "--list", action="store_true",
        help="list suites, workloads and routes",
    )
    parser.add_argument(
        "--root", default=".",
        help="directory holding the BENCH_*.json trajectory (default: .)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--bench-id", type=int, default=None,
        help="trajectory id to stamp/emit (default: next free id)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the document here instead of ROOT/BENCH_<id>.json",
    )
    parser.add_argument(
        "--instrument", action="store_true",
        help="attach instrument counters to each cell (slight overhead)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed passes per cell; the quietest one is recorded "
        "(default 3)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="with --trend: exit 1 on tier-1 regression vs previous entry",
    )
    parser.add_argument(
        "--max-wall-slip", type=float, default=DEFAULT_MAX_WALL_SLIP,
        help="gate threshold for normalised wall-clock slip (default 0.10)",
    )
    parser.add_argument(
        "--max-rmse-slip", type=float, default=DEFAULT_MAX_RMSE_SLIP,
        help="gate threshold for RMSE slip (default 0.10)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress and tables"
    )
    args = parser.parse_args(argv)

    if args.list:
        return _cmd_list()
    if args.validate:
        return _cmd_validate(args.validate)
    if args.trajectory:
        print(trajectory_markdown(load_history(args.root)))
        return 0
    if args.trend:
        return _cmd_trend(args)
    return _cmd_suite(args)


if __name__ == "__main__":
    sys.exit(main())
