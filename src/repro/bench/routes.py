"""Decode routes: the "how" axis of the evaluation matrix.

A route takes the workload's frame stack and decodes it through one of
the repo's decode paths, returning the reconstructions plus
route-specific extras.  The registered routes cover every layer the
recent PRs added:

========================  ==============================================
route                     decode path
========================  ==============================================
``serial``                per-frame :meth:`DecodeEngine.decode` loop
                          (the reference arm every speedup is against)
``serial_dense``          the same loop in ``"dense"`` operator mode
                          (materialised ``A = Phi_M @ Psi``, the
                          pre-refactor representation; only supports
                          workloads under the engine's dense-mode size
                          guard)
``thread``                :meth:`DecodeEngine.decode_batch` with a
                          4-worker :class:`ThreadExecutor`
``process``               :meth:`DecodeEngine.decode_batch` with a
                          4-worker :class:`ProcessExecutor`
``batch_shared``          :meth:`DecodeEngine.decode_batch` with
                          ``shared_phi=True`` (one sampling pattern, N
                          readouts -- collapses into the vectorised
                          multi-RHS FISTA when available)
``resilient``             :class:`ResilientDecoder` under the static
                          default :class:`ResiliencePolicy`, with
                          solver-layer chaos at the workload's
                          ``fault_rate``
``resilient_batch``       :meth:`ResilientDecoder.decode_batch` with
                          ``shared_phi=True``: one optimistic
                          multi-RHS pass under the fallback chain,
                          per-frame supervised replay on any failure
``adaptive``              :class:`ResilientDecoder` with an
                          :class:`AdaptivePolicy` feedback controller,
                          same chaos mix
``resilient_journal``     the ``resilient`` path with a
                          :class:`~repro.serve.durability.VerdictJournal`
                          recording every admit + verdict (same decoder,
                          RNG and chaos seeds, so reconstructions are
                          bit-identical to ``resilient``; the journal
                          time is accumulated separately and reported
                          as ``extras["journal_wall_s"]`` -- the
                          ``journal_wall_s / wall_s`` fraction is the
                          overhead the CI crash-smoke job gates
                          at <= 10%)
========================  ==============================================

Engine routes refuse workloads with ``fault_rate > 0`` (an unsupervised
solve would simply raise on an injected fault -- that is the point of
the supervised routes); :meth:`Route.supports` encodes the rule so
suite definitions fail fast instead of mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .workloads import Workload

__all__ = [
    "Route",
    "RouteResult",
    "close_pools",
    "get_route",
    "register_route",
    "route_names",
]

_EXECUTOR_WORKERS = 4
"""Pool size of the ``thread`` / ``process`` routes (matches CI gates)."""

_POOLS: dict = {}
"""Executors shared across a suite run, keyed by spec string.

Pool construction (a process fork + per-worker import storm) would
otherwise land inside the first timed cell that uses the route; keeping
one pool per kind for the whole suite moves that cost into the warm-up
decode, exactly as the ``parallel_blocks`` instrument profile does.
The runner calls :func:`close_pools` when the suite finishes.
"""


def _pool(kind: str):
    from ..core import resolve_executor

    if kind not in _POOLS:
        _POOLS[kind] = resolve_executor(kind, workers=_EXECUTOR_WORKERS)
    return _POOLS[kind]


def close_pools() -> None:
    """Shut down the suite-lifetime executor pools (idempotent)."""
    while _POOLS:
        _, executor = _POOLS.popitem()
        executor.close()


@dataclass(frozen=True)
class RouteResult:
    """What a route hands back to the runner.

    ``reconstructions`` aligns with the input frame stack;
    ``delivered`` / ``ok`` count frames that arrived at all vs arrived
    healthy on the first try (identical to ``len(frames)`` for the
    unsupervised engine routes, which either succeed or raise);
    ``extras`` carries route-specific JSON-safe diagnostics.
    """

    reconstructions: list
    delivered: int
    ok: int
    extras: dict


_DENSE_MAX_CELLS = 8192
"""Largest ``N`` the dense route accepts.

Mirrors ``repro.core.engine._DENSE_MODE_MAX_N`` (pinned equal by a
bench test) so :meth:`Route.supports` refuses a dense cell at suite
definition time instead of the engine raising mid-run.
"""


@dataclass(frozen=True)
class Route:
    """A named decode route plus its workload-applicability rule.

    ``max_cells`` (when set) bounds the frame size ``N = rows * cols``
    the route accepts -- the dense-operator route uses it to mirror the
    engine's dense-mode memory guard.
    """

    name: str
    description: str
    runner: Callable[[np.ndarray, Workload, int], RouteResult]
    supervised: bool = False
    max_cells: int | None = None

    def supports(self, workload: Workload) -> bool:
        """Whether this route can run ``workload`` at all."""
        if self.max_cells is not None:
            rows, cols = workload.shape
            if rows * cols > self.max_cells:
                return False
        return self.supervised or workload.fault_rate == 0.0

    def run(
        self, frames: np.ndarray, workload: Workload, seed: int
    ) -> RouteResult:
        """Decode ``frames`` under ``workload``; see :class:`RouteResult`."""
        if not self.supports(workload):
            raise ValueError(
                f"route {self.name!r} cannot run workload "
                f"{workload.name!r} (fault_rate={workload.fault_rate}); "
                "only supervised routes accept injected faults"
            )
        return self.runner(frames, workload, seed)


def _plan(workload: Workload, operator_mode: str | None = None):
    from ..core import DecodeContext

    return DecodeContext(
        shape=workload.shape,
        sampling_fraction=workload.sampling_fraction,
        solver=workload.solver,
        operator_mode=operator_mode,
        measurement=workload.measurement,
    )


def _run_serial(frames, workload: Workload, seed: int) -> RouteResult:
    from ..core import get_engine

    engine = get_engine()
    plan = _plan(workload)
    rng = np.random.default_rng(seed)
    recons = [engine.decode(frame, plan, rng) for frame in frames]
    return RouteResult(recons, len(recons), len(recons), {})


def _run_serial_dense(frames, workload: Workload, seed: int) -> RouteResult:
    from ..core import get_engine

    engine = get_engine()
    plan = _plan(workload, operator_mode="dense")
    rng = np.random.default_rng(seed)
    recons = [engine.decode(frame, plan, rng) for frame in frames]
    return RouteResult(
        recons, len(recons), len(recons), {"operator_mode": "dense"}
    )


def _run_executor(kind: str):
    def runner(frames, workload: Workload, seed: int) -> RouteResult:
        from ..core import get_engine

        plan = _plan(workload)
        rng = np.random.default_rng(seed)
        recons = get_engine().decode_batch(
            list(frames), plan, rng, executor=_pool(kind)
        )
        return RouteResult(
            recons,
            len(recons),
            len(recons),
            {"executor": kind, "workers": _EXECUTOR_WORKERS},
        )

    return runner


def _run_batch_shared(frames, workload: Workload, seed: int) -> RouteResult:
    from ..core import get_engine

    plan = _plan(workload)
    rng = np.random.default_rng(seed)
    recons = get_engine().decode_batch(
        list(frames), plan, rng, shared_phi=True
    )
    return RouteResult(recons, len(recons), len(recons), {"shared_phi": True})


def _run_supervised(adaptive: bool):
    def runner(frames, workload: Workload, seed: int) -> RouteResult:
        from ..resilience import (
            AdaptivePolicy,
            ResilientDecoder,
            chaos,
            default_taxonomy,
        )

        decoder = ResilientDecoder(
            adaptive=AdaptivePolicy() if adaptive else None,
            measurement=workload.measurement,
        )
        rng = np.random.default_rng(seed)
        statuses: list[str] = []
        faults: set[str] = set()
        recons = []

        def decode_all() -> None:
            for frame in frames:
                outcome = decoder.decode(
                    frame, workload.sampling_fraction, rng
                )
                recons.append(outcome.frame)
                statuses.append(outcome.status)
                faults.update(outcome.faults_seen)

        if workload.fault_rate > 0.0:
            injectors = default_taxonomy(workload.fault_rate, seed=seed)
            with chaos(*injectors):
                decode_all()
        else:
            decode_all()
        delivered = sum(1 for s in statuses if s in ("ok", "degraded"))
        ok = sum(1 for s in statuses if s == "ok")
        return RouteResult(
            recons,
            delivered,
            ok,
            {
                "adaptive": adaptive,
                "statuses": statuses,
                "faults_seen": sorted(faults),
            },
        )

    return runner


def _run_resilient_batch(frames, workload: Workload, seed: int) -> RouteResult:
    from ..resilience import ResilientDecoder, chaos, default_taxonomy

    decoder = ResilientDecoder(measurement=workload.measurement)
    rng = np.random.default_rng(seed)

    def decode_all():
        return decoder.decode_batch(
            list(frames), workload.sampling_fraction, rng, shared_phi=True
        )

    if workload.fault_rate > 0.0:
        injectors = default_taxonomy(workload.fault_rate, seed=seed)
        with chaos(*injectors):
            outcomes = decode_all()
    else:
        outcomes = decode_all()
    statuses = [outcome.status for outcome in outcomes]
    faults: set[str] = set()
    for outcome in outcomes:
        faults.update(outcome.faults_seen)
    delivered = sum(1 for s in statuses if s in ("ok", "degraded"))
    ok = sum(1 for s in statuses if s == "ok")
    return RouteResult(
        [outcome.frame for outcome in outcomes],
        delivered,
        ok,
        {
            "shared_phi": True,
            "statuses": statuses,
            "faults_seen": sorted(faults),
        },
    )


def _run_resilient_journal(frames, workload: Workload, seed: int) -> RouteResult:
    from tempfile import TemporaryDirectory
    from time import perf_counter

    from ..resilience import ResilientDecoder, chaos, default_taxonomy
    from ..serve.durability import VerdictJournal, pack_frame

    decoder = ResilientDecoder(measurement=workload.measurement)
    rng = np.random.default_rng(seed)
    statuses: list[str] = []
    faults: set[str] = set()
    recons = []
    # Journal time is accumulated around every journal touch so the
    # cell can report the overhead *fraction* directly: wall-vs-wall
    # comparison against the ``resilient`` cell drowns in scheduler
    # noise at tier-1 sizes, but journal_wall_s / wall_s is measured
    # within one run, so decode noise inflates both sides together.
    journal_wall = 0.0
    with TemporaryDirectory() as tmp:
        journal_path = f"{tmp}/bench_journal.jsonl"
        # Group-commit batching mirrors the service's once-per-cycle
        # flush; per-record fsync would swamp the 10% overhead budget.
        tick = perf_counter()
        journal = VerdictJournal(journal_path, sync_every=32)
        journal_wall += perf_counter() - tick

        def decode_all() -> None:
            nonlocal journal_wall
            for index, frame in enumerate(frames):
                seq = index + 1
                tick = perf_counter()
                journal.append(
                    "admit",
                    {
                        "seq": seq,
                        "stream": "bench",
                        "tenant": "bench",
                        "priority": 0,
                        "submitted_at": 0.0,
                        "deadline": None,
                        "frame": pack_frame(frame),
                    },
                )
                journal_wall += perf_counter() - tick
                outcome = decoder.decode(
                    frame, workload.sampling_fraction, rng
                )
                recons.append(outcome.frame)
                statuses.append(outcome.status)
                faults.update(outcome.faults_seen)
                tick = perf_counter()
                journal.append(
                    "verdict",
                    {
                        "seq": seq,
                        "stream": "bench",
                        "tenant": "bench",
                        "priority": 0,
                        "status": outcome.status,
                        "reason": None,
                        "cycle": seq,
                        "deadline_missed": False,
                        "recovered": False,
                        "solver": outcome.solver,
                    },
                )
                journal_wall += perf_counter() - tick

        try:
            if workload.fault_rate > 0.0:
                injectors = default_taxonomy(workload.fault_rate, seed=seed)
                with chaos(*injectors):
                    decode_all()
            else:
                decode_all()
            tick = perf_counter()
            journal.flush()
            journal_wall += perf_counter() - tick
            journal_bytes = journal.path.stat().st_size
        finally:
            journal.close()
    delivered = sum(1 for s in statuses if s in ("ok", "degraded"))
    ok = sum(1 for s in statuses if s == "ok")
    return RouteResult(
        recons,
        delivered,
        ok,
        {
            "journalled": True,
            "journal_records": 2 * len(frames),
            "journal_bytes": journal_bytes,
            "journal_wall_s": journal_wall,
            "statuses": statuses,
            "faults_seen": sorted(faults),
        },
    )


_ROUTES: dict[str, Route] = {
    route.name: route
    for route in (
        Route(
            "serial",
            "per-frame engine decode loop (speedup reference)",
            _run_serial,
        ),
        Route(
            "serial_dense",
            "per-frame decode with a materialised dense operator "
            "(pre-refactor representation; size-guarded)",
            _run_serial_dense,
            max_cells=_DENSE_MAX_CELLS,
        ),
        Route(
            "thread",
            f"decode_batch over a {_EXECUTOR_WORKERS}-worker thread pool",
            _run_executor("thread"),
        ),
        Route(
            "process",
            f"decode_batch over a {_EXECUTOR_WORKERS}-worker process pool",
            _run_executor("process"),
        ),
        Route(
            "batch_shared",
            "decode_batch(shared_phi=True): vectorised multi-RHS solve",
            _run_batch_shared,
        ),
        Route(
            "resilient",
            "ResilientDecoder under the static default policy",
            _run_supervised(adaptive=False),
            supervised=True,
        ),
        Route(
            "resilient_batch",
            "ResilientDecoder.decode_batch(shared_phi=True): optimistic "
            "multi-RHS supervision with per-frame fallback replay",
            _run_resilient_batch,
            supervised=True,
        ),
        Route(
            "adaptive",
            "ResilientDecoder with the AdaptivePolicy controller",
            _run_supervised(adaptive=True),
            supervised=True,
        ),
        Route(
            "resilient_journal",
            "the resilient route with a write-ahead verdict journal "
            "(bit-identical reconstructions; the delta is journal "
            "overhead)",
            _run_resilient_journal,
            supervised=True,
        ),
    )
}


def register_route(route: Route) -> None:
    """Add (or replace) a decode route in the registry."""
    _ROUTES[route.name] = route


def get_route(name: str) -> Route:
    """Look up a registered route by name."""
    try:
        return _ROUTES[name]
    except KeyError:
        raise KeyError(
            f"unknown route {name!r}; registered: {route_names()}"
        ) from None


def route_names() -> tuple[str, ...]:
    """All registered route names, sorted."""
    return tuple(sorted(_ROUTES))
