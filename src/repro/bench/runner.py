"""Run workload x route cells and record their metric blocks.

One cell run is: generate the workload's frame stack, warm up the
decode route (operator-cache fill, lazy imports, pool forks), then time
a full decode of the stack -- best of ``repeats`` passes -- against a
fresh :class:`~repro.core.engine.DecodeEngine` and score the result.
Each cell yields the record documented in ``docs/BENCHMARKS.md``:

* ``wall_s`` / ``ms_per_frame`` -- wall-clock of the timed decode;
* ``rmse`` -- mean per-frame RMSE of reconstruction vs clean frame;
* ``delivered`` / ``ok_fraction`` -- fraction of frames that arrived
  at all / arrived healthy (only the supervised routes can degrade);
* ``cache_hit_rate`` -- operator-cache hits over lookups for the
  cell's private engine (warm-up included, so steady-state streams
  read close to 1.0; ``None`` when the route never touches the
  in-process cache, e.g. solves fanned to a process pool);
* ``operator_cache_bytes`` -- bytes the cell's private engine cache
  holds when the cell finishes: ~kB for the implicit (matrix-free)
  operator mode vs ``O(N^2)`` for the ``serial_dense`` route, which is
  the operator-memory axis of the implicit-vs-dense comparison;
* ``speedup_vs_serial`` -- this cell's wall-clock against the
  ``serial`` route of the same workload within the same suite run
  (``None`` when the suite did not run the serial reference).

Determinism: every cell derives its RNG seed from the master seed and
its workload's name (:func:`~repro.bench.workloads.cell_seed` --
shared across routes so speedups compare identical work), so cells can
be re-run individually and reproduce their in-suite numbers; RMSE,
delivery and cache metrics are bit-stable across runs, only wall-clock
varies.

Wall-clock portability: the suite measures a fixed NumPy reference
workload (:func:`calibrate`) on the same host and stamps it into the
document as ``calibration_s``; the trend gate compares *normalised*
wall-clock (``wall_s / calibration_s``) so a history recorded on one
machine still gates another.
"""

from __future__ import annotations

import time

import numpy as np

from .. import instrument
from .routes import Route, close_pools, get_route
from .schema import build_bench
from .workloads import Workload, cell_seed, make_frames, suite_cells

__all__ = ["calibrate", "run_cell", "run_suite"]

_COUNTER_PREFIXES = (
    "decode.",
    "engine.cache.",
    "executor.",
    "chaos.",
    "resilience.",
    "solver.",
)
"""Counter families attached to cells in instrumented mode."""


def calibrate(repeats: int = 3, loops: int = 40) -> float:
    """Wall time of a fixed NumPy reference workload on this host.

    A deterministic mix of the primitives the decode path leans on
    (dense GEMM and an FFT) sized to take tens of milliseconds.  The
    best of ``repeats`` timings is returned -- the minimum estimates
    the machine's unloaded speed, which is the right denominator for
    cross-machine wall-clock normalisation.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(128, 128))
    b = rng.normal(size=(128, 128))
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        acc = a
        for _ in range(max(1, loops)):
            acc = a @ acc + b
            np.fft.rfft2(acc)
        best = min(best, time.perf_counter() - start)
    # Guard against pathological clocks; the gate divides by this.
    return max(best, 1e-6)


def _timed_decode(route, frames, workload, seed, repeats):
    """Decode ``frames`` ``repeats`` times; keep the quietest repeat.

    Each repeat is paired with its own contemporaneous calibration
    measurement, and the repeat minimising the ``wall / calibration``
    *ratio* wins: that is the moment the machine was most unloaded for
    both measurements, so the recorded pair stays comparable across
    runs even when background load arrives in bursts.  Returns
    ``(result, wall_s, calibration_s)`` from the winning repeat (every
    repeat decodes from the same seed, so the result is identical).
    """
    best_ratio = float("inf")
    best = (None, float("inf"), 1.0)
    for _ in range(max(1, repeats)):
        calibration_s = calibrate(repeats=1, loops=20)
        start = time.perf_counter()
        result = route.run(frames, workload, seed)
        wall_s = time.perf_counter() - start
        ratio = wall_s / calibration_s
        if ratio < best_ratio:
            best_ratio = ratio
            best = (result, wall_s, calibration_s)
    return best


def _rmse(reconstructions, clean: np.ndarray) -> float:
    errors = [
        float(np.sqrt(np.mean((np.asarray(recon) - frame) ** 2)))
        for recon, frame in zip(reconstructions, clean)
    ]
    return float(np.mean(errors)) if errors else float("nan")


def run_cell(
    workload: Workload,
    route: Route | str,
    base_seed: int = 0,
    instrumented: bool = False,
    repeats: int = 3,
) -> dict:
    """Run one (workload, route) cell; returns its JSON-safe record.

    The cell decodes against a private engine scoped with
    :func:`~repro.core.engine.use_engine`, so cache accounting is exact
    and concurrent suites cannot cross-pollute.  A one-frame warm-up
    run (same route, same seed, result discarded) precedes the timed
    region; the timed decode runs ``repeats`` times, each paired with a
    contemporaneous calibration measurement, and the quietest repeat
    (minimum ``wall / calibration`` ratio -- see :func:`_timed_decode`)
    supplies both ``wall_s`` and the cell's ``calibration_s``, which
    keeps the trend gate from firing on scheduler noise (every repeat
    decodes from the same seed, so the scored result is identical).
    With ``instrumented`` the timed region
    additionally runs under :func:`repro.instrument.profiled` and the
    record gains a ``counters`` block (``decode.*``,
    ``engine.cache.*``, ``chaos.*``, ...) -- expect a few percent of
    timing overhead in that mode.
    """
    from ..core import DecodeEngine, use_engine

    if isinstance(route, str):
        route = get_route(route)
    seed = cell_seed(base_seed, workload.name)
    frames = make_frames(workload, seed)
    with use_engine(DecodeEngine()) as engine:
        route.run(frames[:1], workload, seed)  # warm-up, discarded
        if instrumented:
            # One timed pass only, so the counters describe exactly one
            # decode of the stack (timing has tracer overhead anyway).
            with instrument.profiled() as session:
                result, wall_s, calibration_s = _timed_decode(
                    route, frames, workload, seed, repeats=1
                )
                # The operator-cache fill happens in the warm-up, before
                # this session starts, so republish the footprint here
                # or the gauge would be absent from steady-state cells.
                instrument.set_gauge(
                    "operator_cache.bytes", engine.cache.bytes
                )
            report = session.report({"cell": f"{workload.name}/{route.name}"})
            counters = instrument.select_counters(report, _COUNTER_PREFIXES)
            # The cache footprint is a gauge, not a counter; surface it
            # in the same block so --instrument runs carry the
            # operator-memory trajectory alongside the hit/miss counts.
            gauges = report.get("metrics", {}).get("gauges", {})
            if "operator_cache.bytes" in gauges:
                counters["operator_cache.bytes"] = gauges[
                    "operator_cache.bytes"
                ]
        else:
            result, wall_s, calibration_s = _timed_decode(
                route, frames, workload, seed, repeats
            )
            counters = None
        stats = engine.cache.stats()
    lookups = stats["hits"] + stats["misses"]
    cell = {
        "workload": workload.name,
        "route": route.name,
        "dataset": workload.dataset,
        "shape": list(workload.shape),
        "sampling_fraction": workload.sampling_fraction,
        "fault_rate": workload.fault_rate,
        "frames": int(workload.frames),
        "solver": workload.solver,
        "measurement": workload.measurement,
        "tier": int(workload.tier),
        "seed": int(seed),
        "metrics": {
            "wall_s": float(wall_s),
            "calibration_s": float(calibration_s),
            "ms_per_frame": float(wall_s / len(frames) * 1e3),
            "rmse": _rmse(result.reconstructions, frames),
            "delivered": result.delivered / len(frames),
            "ok_fraction": result.ok / len(frames),
            "cache_hit_rate": (
                stats["hits"] / lookups if lookups else None
            ),
            "operator_cache_bytes": int(stats["bytes"]),
            "speedup_vs_serial": None,  # filled in by run_suite
        },
        "extras": dict(result.extras),
    }
    if counters is not None:
        cell["counters"] = counters
    return cell


def _fill_speedups(cells: list[dict]) -> None:
    """Compute ``speedup_vs_serial`` against each workload's serial cell."""
    serial_wall = {
        cell["workload"]: cell["metrics"]["wall_s"]
        for cell in cells
        if cell["route"] == "serial"
    }
    for cell in cells:
        reference = serial_wall.get(cell["workload"])
        if reference is None or cell["route"] == "serial":
            continue
        wall = cell["metrics"]["wall_s"]
        if wall > 0:
            cell["metrics"]["speedup_vs_serial"] = reference / wall


def run_suite(
    suite: str,
    bench_id: int,
    seed: int = 0,
    instrumented: bool = False,
    progress=None,
    repeats: int = 3,
) -> dict:
    """Run every cell of ``suite`` and assemble the benchmark document.

    ``progress`` (if given) is called with a one-line string before
    each cell -- the CLI passes ``print``.  ``repeats`` is forwarded to
    :func:`run_cell` (more repeats, quieter timings, linearly more
    runtime).  Returns a schema-valid document ready for
    :func:`repro.bench.schema.write_bench`.
    """
    cells_spec = suite_cells(suite)
    calibration_s = calibrate()
    records: list[dict] = []
    try:
        for index, (workload, route_name) in enumerate(cells_spec, start=1):
            if progress is not None:
                progress(
                    f"[{index}/{len(cells_spec)}] "
                    f"{workload.name} x {route_name}"
                )
            records.append(
                run_cell(
                    workload, route_name, base_seed=seed,
                    instrumented=instrumented, repeats=repeats,
                )
            )
    finally:
        close_pools()
    _fill_speedups(records)
    return build_bench(
        bench_id=bench_id,
        suite=suite,
        seed=seed,
        calibration_s=calibration_s,
        cells=records,
    )
