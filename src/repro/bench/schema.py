"""The ``BENCH_<n>.json`` document schema: build, validate, load, write.

Every run of the benchmark driver (``python -m repro.bench``) emits one
schema-versioned JSON document at the repository root, named
``BENCH_<n>.json`` where ``n`` is the PR number the run belongs to.
The committed sequence of these files *is* the repo's performance
history; :mod:`repro.bench.trend` folds them into per-metric deltas and
the CI regression gate.  ``docs/BENCHMARKS.md`` documents every field.

The document layout (``SCHEMA`` = ``"repro.bench/v1"``)::

    {
      "schema": "repro.bench/v1",
      "bench_id": 6,                  # position in the trajectory
      "suite": "smoke",               # suite that produced the run
      "seed": 0,                      # master seed (cells derive theirs)
      "created_unix": 1754600000.0,
      "calibration_s": 0.031,        # fixed-reference workload wall time
      "host": {"python": "...", "platform": "...", "numpy": "..."},
      "cells": [ { ... per-cell record ... }, ... ]
    }

``calibration_s`` is the wall time of a fixed, deterministic NumPy
reference workload measured on the same host immediately before the
suite.  Dividing any cell's ``wall_s`` by it yields a *normalised*
wall-clock that is comparable across machines of different speeds --
that is the quantity the trend gate thresholds, so a committed history
recorded on a laptop still gates a CI runner.

Cell records are produced by :mod:`repro.bench.runner`; their
``metrics`` block always carries ``wall_s``, ``ms_per_frame``,
``rmse``, ``delivered`` and ``ok_fraction``, plus ``cache_hit_rate``
and ``speedup_vs_serial`` where the route makes them meaningful.
"""

from __future__ import annotations

import json
import platform
import re
import sys
import time
from pathlib import Path

from ..instrument import json_safe

__all__ = [
    "SCHEMA",
    "BENCH_PATTERN",
    "bench_filename",
    "build_bench",
    "list_bench_files",
    "load_bench",
    "next_bench_id",
    "validate_bench",
    "write_bench",
]

SCHEMA = "repro.bench/v1"
"""Schema tag stamped into (and required of) every benchmark document."""

BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")
"""Filename pattern of a trajectory entry (``BENCH_<n>.json``).

Deliberately anchored to digits only, so the per-test instrumentation
dumps the benchmark conftest writes (``BENCH_<test>.instrument.json``)
never leak into the trajectory.
"""

_REQUIRED_TOP = {
    "schema": str,
    "bench_id": int,
    "suite": str,
    "seed": int,
    "created_unix": (int, float),
    "calibration_s": (int, float),
    "host": dict,
    "cells": list,
}

_REQUIRED_CELL = {
    "workload": str,
    "route": str,
    "dataset": str,
    "shape": list,
    "sampling_fraction": (int, float),
    "fault_rate": (int, float),
    "frames": int,
    "solver": str,
    "tier": int,
    "metrics": dict,
}

_REQUIRED_METRICS = {
    "wall_s": (int, float),
    "ms_per_frame": (int, float),
    "rmse": (int, float),
    "delivered": (int, float),
    "ok_fraction": (int, float),
}


def host_info() -> dict:
    """JSON-safe description of the machine that produced a run."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": numpy_version,
    }


def build_bench(
    bench_id: int,
    suite: str,
    seed: int,
    calibration_s: float,
    cells: list,
    meta: dict | None = None,
) -> dict:
    """Assemble a schema-valid benchmark document from run results.

    ``cells`` are the per-cell records from
    :func:`repro.bench.runner.run_suite`; ``meta`` (if given) is merged
    in under a ``"meta"`` key for free-form context such as a git SHA.
    The document is passed through
    :func:`repro.instrument.json_safe`, so numpy scalars and arrays in
    the cells come out as plain JSON types.
    """
    doc = {
        "schema": SCHEMA,
        "bench_id": int(bench_id),
        "suite": str(suite),
        "seed": int(seed),
        "created_unix": time.time(),
        "calibration_s": float(calibration_s),
        "host": host_info(),
        "cells": list(cells),
    }
    if meta:
        doc["meta"] = dict(meta)
    return json_safe(doc)


def validate_bench(doc) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid).

    Checks the top-level layout, every cell record and every cell's
    ``metrics`` block against the v1 schema.  Like
    :func:`repro.instrument.validate_report` this is a dependency-free
    structural check, not a JSON-Schema engine.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key, types in _REQUIRED_TOP.items():
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
        elif not isinstance(doc[key], types):
            problems.append(
                f"top-level {key!r} must be {types}, got "
                f"{type(doc[key]).__name__}"
            )
    if problems:
        return problems
    if doc["schema"] != SCHEMA:
        problems.append(
            f"schema must be {SCHEMA!r}, got {doc['schema']!r}"
        )
    if doc["bench_id"] < 0:
        problems.append(f"bench_id must be >= 0, got {doc['bench_id']}")
    if doc["calibration_s"] <= 0:
        problems.append(
            f"calibration_s must be > 0, got {doc['calibration_s']}"
        )
    seen: set[tuple[str, str]] = set()
    for i, cell in enumerate(doc["cells"]):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            problems.append(f"{where} must be an object")
            continue
        for key, types in _REQUIRED_CELL.items():
            if key not in cell:
                problems.append(f"{where} missing key {key!r}")
            elif not isinstance(cell[key], types):
                problems.append(
                    f"{where}.{key} must be {types}, got "
                    f"{type(cell[key]).__name__}"
                )
        if not isinstance(cell.get("metrics"), dict):
            continue
        for key, types in _REQUIRED_METRICS.items():
            value = cell["metrics"].get(key)
            if value is None:
                problems.append(f"{where}.metrics missing {key!r}")
            elif not isinstance(value, types):
                problems.append(
                    f"{where}.metrics.{key} must be a number, got "
                    f"{type(value).__name__}"
                )
        key = (cell.get("workload"), cell.get("route"))
        if all(isinstance(part, str) for part in key):
            if key in seen:
                problems.append(
                    f"{where} duplicates cell {key[0]!r} x {key[1]!r}"
                )
            seen.add(key)
    return problems


def bench_filename(bench_id: int) -> str:
    """The canonical trajectory filename for ``bench_id``."""
    return f"BENCH_{int(bench_id)}.json"


def list_bench_files(root) -> list[tuple[int, Path]]:
    """All trajectory files under ``root``, sorted by bench id."""
    root = Path(root)
    found = []
    for path in root.iterdir() if root.is_dir() else ():
        match = BENCH_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def next_bench_id(root) -> int:
    """The next free trajectory id under ``root`` (1 when none exist)."""
    existing = list_bench_files(root)
    return existing[-1][0] + 1 if existing else 1


def load_bench(path) -> dict:
    """Load and validate one trajectory file; raises on schema problems."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    problems = validate_bench(doc)
    if problems:
        raise ValueError(
            f"{path}: invalid benchmark document: " + "; ".join(problems)
        )
    return doc


def write_bench(doc: dict, path) -> None:
    """Validate ``doc`` and write it as stable, indented JSON."""
    problems = validate_bench(doc)
    if problems:
        raise ValueError(
            "refusing to write invalid benchmark document: "
            + "; ".join(problems)
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
