"""Trajectory analysis: deltas, the combined report, the regression gate.

This module folds the committed ``BENCH_<n>.json`` sequence into:

* **per-metric deltas** between consecutive trajectory entries
  (:func:`compute_deltas`) -- wall-clock is compared *normalised* by
  each run's ``calibration_s`` so entries recorded on different
  machines are comparable;
* a **combined markdown report** (:func:`render_markdown`): run
  overview, latest-vs-previous delta table, and per-metric trajectory
  tables across the whole history;
* the **regression gate** (:func:`check_regressions`): nonzero CI exit
  when any tier-1 cell's normalised wall-clock slips more than
  ``max_wall_slip`` (default 10 %) or its RMSE more than
  ``max_rmse_slip`` versus the previous entry.

The gate deliberately thresholds only tier-1 cells: higher-tier cells
are informational coverage (big shapes, extra sampling ratios) whose
noise would make the gate flaky.  ``python -m repro.bench --trend``
renders the report; ``--gate`` applies the thresholds (see
``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import time

from .schema import list_bench_files, load_bench

__all__ = [
    "check_regressions",
    "compute_deltas",
    "load_history",
    "normalized_wall",
    "render_markdown",
    "trajectory_markdown",
]

DEFAULT_MAX_WALL_SLIP = 0.10
"""Gate threshold: relative normalised wall-clock slip on tier-1 cells."""

DEFAULT_MAX_RMSE_SLIP = 0.10
"""Gate threshold: relative RMSE slip on tier-1 cells."""


def load_history(root) -> list[dict]:
    """All trajectory documents under ``root``, sorted by bench id.

    Invalid documents raise (a corrupted committed history should fail
    loudly, not silently shrink the trajectory).
    """
    return [load_bench(path) for _, path in list_bench_files(root)]


def normalized_wall(cell: dict, doc: dict) -> float:
    """Machine-independent wall-clock: ``wall_s / calibration_s``.

    Prefers the cell's own ``metrics.calibration_s`` (measured adjacent
    in time to the timed decode, so a load burst mid-suite normalises
    out) and falls back to the document-level constant for histories
    recorded before per-cell calibration existed.
    """
    calibration = cell["metrics"].get("calibration_s") or doc["calibration_s"]
    return cell["metrics"]["wall_s"] / calibration


def _cells_by_key(doc: dict) -> dict:
    return {(cell["workload"], cell["route"]): cell for cell in doc["cells"]}


def _rel(current: float, previous: float) -> float | None:
    """Relative change; ``None`` when the baseline is ~zero."""
    if previous is None or current is None or abs(previous) < 1e-12:
        return None
    return (current - previous) / previous


def compute_deltas(previous: dict, current: dict) -> list[dict]:
    """Per-cell deltas between two trajectory documents.

    One entry per cell key present in *either* document::

        {
          "workload": ..., "route": ..., "tier": ...,
          "status": "common" | "new" | "dropped",
          "wall_rel": ...,      # normalised wall-clock, relative
          "rmse_rel": ...,      # relative (None when baseline ~0)
          "rmse_abs": ...,      # absolute delta, always present
          "cache_hit_rate": (prev, curr),
          "speedup_vs_serial": (prev, curr),
        }

    Cells only in ``current`` are ``"new"`` (coverage grew -- never a
    regression); cells only in ``previous`` are ``"dropped"`` (the
    gate flags dropped *tier-1* cells, because silently losing a gated
    cell is how a regression hides).
    """
    prev_cells = _cells_by_key(previous)
    curr_cells = _cells_by_key(current)
    deltas = []
    for key in sorted(set(prev_cells) | set(curr_cells)):
        prev = prev_cells.get(key)
        curr = curr_cells.get(key)
        entry: dict = {
            "workload": key[0],
            "route": key[1],
            "tier": (curr or prev)["tier"],
            "status": (
                "common" if prev and curr else "new" if curr else "dropped"
            ),
        }
        if prev and curr:
            prev_wall = normalized_wall(prev, previous)
            curr_wall = normalized_wall(curr, current)
            entry["wall_rel"] = _rel(curr_wall, prev_wall)
            prev_rmse = prev["metrics"]["rmse"]
            curr_rmse = curr["metrics"]["rmse"]
            entry["rmse_rel"] = _rel(curr_rmse, prev_rmse)
            entry["rmse_abs"] = curr_rmse - prev_rmse
            for name in ("cache_hit_rate", "speedup_vs_serial"):
                entry[name] = (
                    prev["metrics"].get(name),
                    curr["metrics"].get(name),
                )
        deltas.append(entry)
    return deltas


def check_regressions(
    previous: dict,
    current: dict,
    max_wall_slip: float = DEFAULT_MAX_WALL_SLIP,
    max_rmse_slip: float = DEFAULT_MAX_RMSE_SLIP,
) -> list[str]:
    """Gate the latest entry against its predecessor.

    Returns human-readable regression descriptions (empty = pass).
    Only tier-1 cells are thresholded; see the module docstring.
    """
    problems = []
    for delta in compute_deltas(previous, current):
        if delta["tier"] != 1:
            continue
        label = f"{delta['workload']} x {delta['route']}"
        if delta["status"] == "dropped":
            problems.append(f"{label}: tier-1 cell dropped from the suite")
            continue
        if delta["status"] != "common":
            continue
        wall_rel = delta.get("wall_rel")
        if wall_rel is not None and wall_rel > max_wall_slip:
            problems.append(
                f"{label}: normalised wall-clock slipped "
                f"{wall_rel:+.1%} (threshold {max_wall_slip:+.1%})"
            )
        rmse_rel = delta.get("rmse_rel")
        if rmse_rel is not None and rmse_rel > max_rmse_slip:
            problems.append(
                f"{label}: RMSE slipped {rmse_rel:+.1%} "
                f"(threshold {max_rmse_slip:+.1%})"
            )
    return problems


def _fmt(value, spec: str = ".3f") -> str:
    if value is None:
        return "--"
    return format(value, spec)


def _date(doc: dict) -> str:
    return time.strftime("%Y-%m-%d", time.gmtime(doc["created_unix"]))


def trajectory_markdown(
    history: list[dict], metric: str = "ms_per_frame", tier: int = 1
) -> str:
    """One markdown table: ``metric`` per tier-``tier`` cell per entry.

    This is the table the README embeds for the headline trajectory;
    columns are bench ids, rows are cells.
    """
    if not history:
        return "_no trajectory entries (`BENCH_*.json`) found_"
    keys = sorted(
        {
            (cell["workload"], cell["route"])
            for doc in history
            for cell in doc["cells"]
            if cell["tier"] <= tier
        }
    )
    header = (
        f"| workload x route ({metric}) | "
        + " | ".join(f"PR {doc['bench_id']}" for doc in history)
        + " |"
    )
    rule = "|---" * (len(history) + 1) + "|"
    lines = [header, rule]
    for workload, route in keys:
        row = [f"| `{workload}` x `{route}` "]
        for doc in history:
            cell = _cells_by_key(doc).get((workload, route))
            value = cell["metrics"].get(metric) if cell else None
            spec = ".4f" if metric == "rmse" else ".2f"
            row.append(f"| {_fmt(value, spec)} ")
        lines.append("".join(row) + "|")
    return "\n".join(lines)


def render_markdown(
    history: list[dict],
    max_wall_slip: float = DEFAULT_MAX_WALL_SLIP,
    max_rmse_slip: float = DEFAULT_MAX_RMSE_SLIP,
) -> str:
    """The combined trend report over the whole committed history."""
    lines = ["# Benchmark trajectory", ""]
    if not history:
        lines.append("No `BENCH_*.json` entries found.")
        return "\n".join(lines)

    lines += [
        "## Runs",
        "",
        "| bench | suite | date | cells | calibration s | host |",
        "|---|---|---|---|---|---|",
    ]
    for doc in history:
        lines.append(
            f"| PR {doc['bench_id']} | {doc['suite']} | {_date(doc)} "
            f"| {len(doc['cells'])} | {doc['calibration_s']:.4f} "
            f"| {doc['host'].get('platform', '?')} |"
        )
    lines.append("")

    if len(history) >= 2:
        previous, current = history[-2], history[-1]
        lines += [
            f"## Latest deltas (PR {previous['bench_id']} -> "
            f"PR {current['bench_id']})",
            "",
            "| cell | tier | wall (norm) | RMSE | cache hit | speedup |",
            "|---|---|---|---|---|---|",
        ]
        for delta in compute_deltas(previous, current):
            label = f"`{delta['workload']}` x `{delta['route']}`"
            if delta["status"] != "common":
                lines.append(
                    f"| {label} | {delta['tier']} | *{delta['status']}* "
                    "| | | |"
                )
                continue
            cache_prev, cache_curr = delta["cache_hit_rate"]
            speed_prev, speed_curr = delta["speedup_vs_serial"]
            wall_rel = delta.get("wall_rel")
            lines.append(
                f"| {label} | {delta['tier']} "
                f"| {_fmt(wall_rel, '+.1%')} "
                f"| {_fmt(delta.get('rmse_rel'), '+.1%')} "
                f"| {_fmt(cache_prev, '.2f')} -> {_fmt(cache_curr, '.2f')} "
                f"| {_fmt(speed_prev, '.2f')} -> {_fmt(speed_curr, '.2f')} |"
            )
        lines.append("")
        problems = check_regressions(
            previous, current, max_wall_slip, max_rmse_slip
        )
        if problems:
            lines.append("**REGRESSIONS (tier-1):**")
            lines += [f"- {problem}" for problem in problems]
        else:
            lines.append(
                f"No tier-1 regressions (wall slip <= {max_wall_slip:.0%}, "
                f"RMSE slip <= {max_rmse_slip:.0%})."
            )
        lines.append("")

    lines += [
        "## Trajectory (tier-1 cells)",
        "",
        "### ms per frame",
        "",
        trajectory_markdown(history, "ms_per_frame"),
        "",
        "### RMSE",
        "",
        trajectory_markdown(history, "rmse"),
        "",
    ]
    return "\n".join(lines)
