"""The standard workload matrix: datasets x shapes x sampling x faults.

A *workload* is everything about a benchmark cell except how it is
decoded: which synthetic dataset generates the frames, the frame shape,
the sampling ratio ``M/N``, the injected fault rate and how many frames
the cell decodes.  Decode *routes* (serial loop, executor fan-out,
shared-|Phi| vectorised batch, resilient/adaptive supervision) live in
:mod:`repro.bench.routes`; a (workload, route) pair is one cell of the
evaluation matrix.

The axes follow the adaptive-readout literature the ROADMAP cites
(activity level and fault rate matter as much as frame shape): three
modalities (thermal / tactile / ultrasound), shapes from 16 x 16 smoke
frames to 128 x 128 e-skin sheets, sampling ratios around the paper's
M/N ~ 0.5 operating point, and fault rates 0 / 10 / 20 % matching the
Fig. 6a error grid and the resilience sweeps.

Workloads are declarative and registered by name, so the pytest
benchmarks, the ``python -m repro.bench`` driver and the CI gate all
run *the same definitions* -- adding a workload here adds it
everywhere.  Suites (``tiny`` / ``smoke`` / ``full``) select subsets of
the matrix by name; the ``smoke`` suite is the tier-1 gated set whose
trajectory the CI ``bench-trend`` job thresholds.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

__all__ = [
    "Workload",
    "cell_seed",
    "dataset_names",
    "get_workload",
    "make_frames",
    "register_workload",
    "suite_cells",
    "suite_names",
    "workload_names",
]


@dataclass(frozen=True)
class Workload:
    """One named point of the workload matrix (decode-route agnostic).

    Parameters
    ----------
    name:
        Registry key, by convention
        ``<dataset>-<rows>x<cols>-s<sampling%>-f<fault%>``.
    dataset:
        Generator family: ``"thermal"``, ``"tactile"`` or
        ``"ultrasound"`` (see :func:`make_frames`).
    shape:
        Frame shape ``(rows, cols)``.
    sampling_fraction:
        ``M / N`` of the sampling encoder.
    fault_rate:
        Combined solver-layer chaos rate injected while decoding
        (``0.0`` disables injection; only the supervised routes accept
        a non-zero rate).
    frames:
        Frames decoded per cell (more frames = less timer noise,
        linearly more runtime).
    solver:
        Decoder name for the engine routes and the head of the
        resilience fallback chain.
    measurement:
        Registered measurement-family name (see
        :mod:`repro.core.measurement`) the cell samples with; the
        default ``"row_sampling"`` keeps every pre-existing cell's
        trajectory comparable across PRs.  Validated at decode-plan
        time, keeping this module import-light.
    tier:
        ``1`` marks cells whose trajectory the CI regression gate
        thresholds; higher tiers are informational.
    """

    name: str
    dataset: str
    shape: tuple
    sampling_fraction: float
    fault_rate: float = 0.0
    frames: int = 4
    solver: str = "fista"
    measurement: str = "row_sampling"
    tier: int = 2

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        if len(shape) != 2 or any(s < 8 for s in shape):
            raise ValueError(f"workload shape must be >= 8x8, got {self.shape}")
        object.__setattr__(self, "shape", shape)
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError(
                f"sampling_fraction must be in (0, 1], got "
                f"{self.sampling_fraction}"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )
        if self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")
        if self.dataset not in _DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; expected one of "
                f"{dataset_names()}"
            )


def _thermal_factory(shape: tuple, seed: int):
    from ..datasets import ThermalHandGenerator

    return ThermalHandGenerator(shape=shape, seed=seed)


def _tactile_factory(shape: tuple, seed: int):
    from ..datasets import TactileObjectGenerator

    # Class 3 has a multi-patch signature, a representative mid-density
    # grasp; the per-cell seed still varies pose and pressure.
    return TactileObjectGenerator(class_index=3, shape=shape, seed=seed)


def _ultrasound_factory(shape: tuple, seed: int):
    from ..datasets import UltrasoundGenerator

    return UltrasoundGenerator(shape=shape, seed=seed)


_DATASETS = {
    "thermal": _thermal_factory,
    "tactile": _tactile_factory,
    "ultrasound": _ultrasound_factory,
}


def dataset_names() -> tuple[str, ...]:
    """The registered dataset families."""
    return tuple(sorted(_DATASETS))


def make_frames(workload: Workload, seed: int):
    """Generate the workload's frame stack (``(frames, rows, cols)``).

    Deterministic in ``(workload, seed)``: the dataset generator is
    seeded once and asked for ``workload.frames`` frames, so every
    route of the same workload decodes the identical scene.
    """
    generator = _DATASETS[workload.dataset](workload.shape, seed)
    return generator.frames(workload.frames)


def cell_seed(base_seed: int, workload_name: str) -> int:
    """Stable per-workload RNG seed derived from names, not run order.

    Cells must be re-runnable individually with the numbers they had
    inside a full suite run, so the derivation hashes the workload's
    name instead of advancing a shared generator.  The seed is shared
    by every *route* of the workload on purpose: routes then decode
    the identical scene from identical RNG state, so the engine routes
    reproduce each other bit-for-bit (the execution layer's
    determinism contract) and speedups compare identical work.
    """
    tag = workload_name.encode()
    return (int(base_seed) * 2654435761 + zlib.crc32(tag)) % (2**31)


def _matrix_name(
    dataset: str,
    shape: tuple,
    sampling: float,
    fault: float,
    measurement: str = "row_sampling",
) -> str:
    name = (
        f"{dataset}-{shape[0]}x{shape[1]}"
        f"-s{round(sampling * 100):02d}-f{round(fault * 100):02d}"
    )
    if measurement != "row_sampling":
        name += f"-{measurement}"
    return name


def _standard_matrix() -> dict[str, Workload]:
    """The standard matrix (see ``docs/BENCHMARKS.md`` for the table)."""
    matrix: dict[str, Workload] = {}

    def add(
        dataset,
        shape,
        sampling,
        fault=0.0,
        frames=4,
        tier=2,
        measurement="row_sampling",
    ) -> None:
        name = _matrix_name(dataset, shape, sampling, fault, measurement)
        matrix[name] = Workload(
            name=name,
            dataset=dataset,
            shape=shape,
            sampling_fraction=sampling,
            fault_rate=fault,
            frames=frames,
            measurement=measurement,
            tier=tier,
        )

    # Tier-1 gated cells (the smoke suite): one shape per modality at
    # the paper's M/N = 0.5 operating point, clean and 10 % faults.
    add("thermal", (32, 32), 0.5, 0.0, frames=4, tier=1)
    add("thermal", (32, 32), 0.5, 0.10, frames=4, tier=1)
    add("tactile", (32, 32), 0.5, 0.0, frames=4, tier=1)
    add("ultrasound", (32, 32), 0.5, 0.0, frames=4, tier=1)
    # Fault-rate axis (supervised routes only).
    add("thermal", (32, 32), 0.5, 0.20, frames=4)
    add("tactile", (32, 32), 0.5, 0.10, frames=4)
    add("ultrasound", (32, 32), 0.5, 0.10, frames=4)
    # Sampling-ratio axis.
    add("thermal", (32, 32), 0.35, 0.0, frames=4)
    add("tactile", (32, 32), 0.35, 0.0, frames=4)
    # Shape axis: 64 x 64 tiles and the 128 x 128 e-skin sheet.
    for dataset in ("thermal", "tactile", "ultrasound"):
        add(dataset, (64, 64), 0.5, 0.0, frames=3)
    add("thermal", (128, 128), 0.5, 0.0, frames=2)
    add("tactile", (128, 128), 0.5, 0.0, frames=2)
    # The implicit-operator route keeps 256 x 256 under the smoke
    # budget (a dense A here would be 34 GB; the FFT route holds ~0).
    add("thermal", (256, 256), 0.5, 0.0, frames=2)
    # Measurement-family axis: the dense-code and block-sampling
    # families at the operating point, small shapes only (their Phi is
    # an explicit M x N matrix, so cells scale O(M N) in memory).
    add("thermal", (32, 32), 0.5, 0.0, frames=3, measurement="dense_codes")
    add(
        "thermal", (32, 32), 0.5, 0.0, frames=3, measurement="block_sampling"
    )
    add("tactile", (32, 32), 0.5, 0.0, frames=3, measurement="dense_codes")
    add(
        "thermal",
        (16, 16),
        0.5,
        0.0,
        frames=3,
        tier=3,
        measurement="dense_codes",
    )
    add(
        "thermal",
        (16, 16),
        0.5,
        0.0,
        frames=3,
        tier=3,
        measurement="block_sampling",
    )
    # Tiny cells for fast unit tests and local iteration.
    matrix["thermal-16x16-s50-f00"] = Workload(
        name="thermal-16x16-s50-f00",
        dataset="thermal",
        shape=(16, 16),
        sampling_fraction=0.5,
        frames=3,
        tier=3,
    )
    matrix["thermal-16x16-s50-f20"] = Workload(
        name="thermal-16x16-s50-f20",
        dataset="thermal",
        shape=(16, 16),
        sampling_fraction=0.5,
        fault_rate=0.20,
        frames=3,
        tier=3,
    )
    return matrix


_WORKLOADS: dict[str, Workload] = _standard_matrix()


def register_workload(workload: Workload) -> None:
    """Add (or replace) a workload in the registry.

    Anything registered here is immediately runnable by name through
    the driver and addressable from suite definitions; see
    ``docs/BENCHMARKS.md`` ("Adding a workload").
    """
    _WORKLOADS[workload.name] = workload


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {workload_names()}"
        ) from None


def workload_names() -> tuple[str, ...]:
    """All registered workload names, sorted."""
    return tuple(sorted(_WORKLOADS))


@dataclass(frozen=True)
class _Suite:
    """A named subset of the matrix: (workload, routes) selections."""

    name: str
    cells: tuple = field(default_factory=tuple)


# Route vocabularies (resolved against repro.bench.routes at run time).
_ENGINE_ROUTES = ("serial", "thread", "batch_shared")
_ALL_ENGINE_ROUTES = ("serial", "thread", "process", "batch_shared")
_SUPERVISED_ROUTES = ("resilient", "adaptive")

_SUITES: dict[str, tuple[tuple[str, tuple], ...]] = {
    # One clean engine cell + one faulted supervised cell, 16x16:
    # seconds, not minutes -- what the tier-1 unit tests run end-to-end.
    "tiny": (
        ("thermal-16x16-s50-f00", ("serial", "batch_shared")),
        ("thermal-16x16-s50-f20", ("resilient",)),
    ),
    # The tier-1 gated set: every modality at the paper's operating
    # point through every cheap route, plus the faulted thermal cell
    # through the supervised routes.  The dense-operator arm and the
    # large implicit cells (128^2 serial + vectorised, 256^2
    # vectorised) ride along at tier 2 to keep the implicit-vs-dense
    # speedup and memory trajectory in every BENCH_<n>.json.
    # ~1-2 minutes on a laptop.
    "smoke": (
        ("thermal-32x32-s50-f00", _ENGINE_ROUTES + ("serial_dense",)),
        ("tactile-32x32-s50-f00", _ENGINE_ROUTES),
        ("ultrasound-32x32-s50-f00", _ENGINE_ROUTES),
        (
            "thermal-32x32-s50-f10",
            _SUPERVISED_ROUTES + ("resilient_batch", "resilient_journal"),
        ),
        ("thermal-128x128-s50-f00", ("serial", "batch_shared")),
        ("thermal-256x256-s50-f00", ("batch_shared",)),
        # Measurement-family smoke cells (tier 2: informational
        # trajectory for the dense-code and block-sampling families;
        # the gated row_sampling cells above are untouched).
        ("thermal-32x32-s50-f00-dense_codes", ("serial", "batch_shared")),
        ("thermal-32x32-s50-f00-block_sampling", ("serial", "batch_shared")),
    ),
    # The whole matrix: every engine route (incl. the process pool) on
    # every clean cell, supervised routes on every faulted cell, plus
    # the supervised routes' clean-baseline on the tier-1 cells.
    "full": tuple(
        [
            (name, _ALL_ENGINE_ROUTES)
            for name, w in sorted(_WORKLOADS.items())
            if w.fault_rate == 0.0 and w.tier <= 2
        ]
        + [
            (name, _SUPERVISED_ROUTES)
            for name, w in sorted(_WORKLOADS.items())
            if (w.fault_rate > 0.0 or w.tier == 1) and w.tier <= 2
        ]
    ),
}


def suite_names() -> tuple[str, ...]:
    """The defined suite names."""
    return tuple(sorted(_SUITES))


def suite_cells(suite: str) -> list[tuple[Workload, str]]:
    """Expand a suite into its ``(workload, route name)`` cells.

    Routes are returned as names (resolved by the runner) so suite
    expansion stays import-light; unknown workload names fail here,
    at definition time, rather than mid-run.
    """
    try:
        selections = _SUITES[suite]
    except KeyError:
        raise KeyError(
            f"unknown suite {suite!r}; defined: {suite_names()}"
        ) from None
    cells = []
    for workload_name, route_names in selections:
        workload = get_workload(workload_name)
        for route_name in route_names:
            cells.append((workload, route_name))
    return cells
