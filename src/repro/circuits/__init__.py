"""Circuit substrate: netlists, simulators and the Fig. 5 blocks.

Two complementary simulation levels:

* transistor level -- :class:`~repro.circuits.mna.MnaSimulator` solves
  the nonlinear MNA equations with the CNT-TFT compact model (used for
  the pseudo-CMOS cells and the self-biased amplifier);
* gate level -- :class:`~repro.circuits.logic_sim.LogicSimulator`
  event-drives the pseudo-CMOS cell library (used for the 304-TFT
  8-stage shift register).
"""

from .amplifier import AmplifierDesign, AmplifierMeasurement, SelfBiasedAmplifier
from .logic_sim import Gate, LogicSimulator, LogicWaveform
from .mna import ConvergenceError, MnaSimulator, OperatingPoint
from .netlist import (
    GROUND,
    Capacitor,
    Circuit,
    Resistor,
    Tft,
    VoltageSource,
    dc,
    pulse,
    pwl,
    sine,
)
from .pseudo_cmos import (
    CELL_LIBRARY,
    CellSpec,
    LogicLevels,
    build_inverter,
    build_inverter_pseudo_e,
    build_nand2,
    cell,
    default_logic_device,
)
from .spice_io import NetlistFormatError, dump_netlist, load_netlist
from .ring_oscillator import RingOscillator, RingOscillatorResult
from .shift_register import ShiftRegister, ShiftRegisterResult
from .waveform import (
    TransientResult,
    amplitude,
    crossing_times,
    dominant_frequency,
    gain_db,
    propagation_delay,
    to_logic,
)

__all__ = [
    "GROUND",
    "Circuit",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "Tft",
    "dc",
    "sine",
    "pulse",
    "pwl",
    "MnaSimulator",
    "OperatingPoint",
    "ConvergenceError",
    "LogicSimulator",
    "LogicWaveform",
    "Gate",
    "CellSpec",
    "CELL_LIBRARY",
    "cell",
    "LogicLevels",
    "build_inverter",
    "build_inverter_pseudo_e",
    "build_nand2",
    "default_logic_device",
    "ShiftRegister",
    "ShiftRegisterResult",
    "RingOscillator",
    "RingOscillatorResult",
    "dump_netlist",
    "load_netlist",
    "NetlistFormatError",
    "AmplifierDesign",
    "AmplifierMeasurement",
    "SelfBiasedAmplifier",
    "TransientResult",
    "amplitude",
    "gain_db",
    "dominant_frequency",
    "crossing_times",
    "propagation_delay",
    "to_logic",
]
