"""The two-stage self-biased high-gain amplifier of Fig. 5e.

The fabricated amplifier boosts sensor signals right at the array
output: "input = 50 mV, output = 1.3 V running at 30 kHz" -- a 28 dB
gain -- from a two-stage pseudo-CMOS topology:

* **Stage 1**: a pseudo-CMOS inverter (M1-M4) with a feedback CNT TFT
  (M9) biased in the linear region between its output and input, plus a
  series input capacitor (C = 1 nF) that blocks DC.  With no DC gate
  current, feedback forces ``V_in = V_out`` at DC, parking the inverter
  exactly at its switching threshold -- the high-gain region around
  half-VDD -- regardless of process corner (that is the "self-biased"
  part).
* **Stage 2**: a second pseudo-CMOS inverter (M5-M8) acting as a
  common-source buffer with fixed voltage gain.

Device sizing follows the Fig. 5 caption (L = 10 um; narrow always-on
loads, wide drive devices; C = 1 nF; VDD = 3 V, VSS = -3 V).  The
paper quotes Vtune = 1 V for the feedback gate; with our p-type
compact model that would leave M9 (and hence the self-bias node)
almost floating, so the model's tune voltage defaults to 0.8 V --
same role (a weakly-on linear-region feedback resistor), slightly
shifted reference (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..devices.cnt_tft import CntTft, TftParameters
from .mna import MnaSimulator
from .netlist import GROUND, Circuit, sine
from .waveform import TransientResult, amplitude, gain_db

__all__ = ["AmplifierDesign", "SelfBiasedAmplifier", "AmplifierMeasurement"]

#: Long-channel analog parameter set: analog stages use a longer
#: effective channel than logic, so channel-length modulation is weaker.
ANALOG_PARAMETERS = TftParameters(lambda_=0.01)


@dataclass(frozen=True)
class AmplifierDesign:
    """Sizing and bias of the two-stage amplifier (Fig. 5 caption).

    Attributes
    ----------
    drive_width_um:
        Width of the input/pull-up drive devices: 150 um.
    load_width_um:
        Width of the always-on level-shift loads: narrow (15 um) to
        maximise the stage-1 level-shifter gain.
    pulldown_width_um:
        Width of the output pull-down devices (their source sits at the
        output, so a narrow device raises the output impedance): 50 um,
        the Fig. 5 caption's narrow-device class.
    feedback_width_um:
        Width of the linear-region feedback TFT M9: 50 um (Fig. 5).
    length_um:
        Channel length: 10 um.
    coupling_c_farads:
        Input AC-coupling capacitor: 1 nF.
    vdd, vss:
        Supplies: +3 V / -3 V.
    vtune:
        Gate bias of the linear-region feedback TFT M9.
    """

    drive_width_um: float = 150.0
    load_width_um: float = 15.0
    pulldown_width_um: float = 50.0
    feedback_width_um: float = 50.0
    length_um: float = 10.0
    coupling_c_farads: float = 1.0e-9
    vdd: float = 3.0
    vss: float = -3.0
    vtune: float = 0.8

    def __post_init__(self) -> None:
        widths = (self.drive_width_um, self.load_width_um,
                  self.pulldown_width_um, self.feedback_width_um,
                  self.length_um)
        if min(widths) <= 0:
            raise ValueError("device dimensions must be positive")
        if self.coupling_c_farads <= 0:
            raise ValueError("coupling capacitor must be positive")
        if self.vdd <= 0 or self.vss >= 0:
            raise ValueError("expected vdd > 0 and vss < 0")


@dataclass
class AmplifierMeasurement:
    """Outcome of the Fig. 5e measurement."""

    input_amplitude_v: float
    output_amplitude_v: float
    gain_db: float
    frequency_hz: float
    result: TransientResult


class SelfBiasedAmplifier:
    """Transistor-level model of the Fig. 5e amplifier."""

    def __init__(self, design: AmplifierDesign | None = None):
        self.design = design or AmplifierDesign()
        self.circuit, self._nets = self._build()

    # ------------------------------------------------------------------
    def _device(self, width_um: float) -> CntTft:
        return CntTft(width_um, self.design.length_um, ANALOG_PARAMETERS)

    def _build(self) -> tuple[Circuit, dict[str, str]]:
        d = self.design
        c = Circuit("self_biased_amplifier")
        c.add_voltage_source("vdd_src", "VDD", GROUND, d.vdd)
        c.add_voltage_source("vss_src", "VSS", GROUND, d.vss)
        c.add_voltage_source("vtune_src", "VTUNE", GROUND, d.vtune)
        c.add_voltage_source("vin_src", "VIN", GROUND, 0.0)
        c.add_capacitor("c_in", "VIN", "G1", d.coupling_c_farads)

        wide = d.drive_width_um
        load = d.load_width_um
        pulldown = d.pulldown_width_um
        # Stage 1: pseudo-CMOS inverter M1-M4, input G1, output OUT1.
        c.add_tft("m1", gate="G1", drain="A1", source="VDD", device=self._device(wide))
        c.add_tft("m2", gate="VSS", drain="VSS", source="A1", device=self._device(load))
        c.add_tft("m3", gate="G1", drain="OUT1", source="VDD", device=self._device(wide))
        c.add_tft("m4", gate="A1", drain=GROUND, source="OUT1",
                  device=self._device(pulldown))
        # Feedback TFT M9: linear-region resistor OUT1 -> G1.
        c.add_tft("m9", gate="VTUNE", drain="G1", source="OUT1",
                  device=self._device(d.feedback_width_um))

        # Stage 2: pseudo-CMOS inverter M5-M8, input OUT1, output VOUT.
        c.add_tft("m5", gate="OUT1", drain="A2", source="VDD", device=self._device(wide))
        c.add_tft("m6", gate="VSS", drain="VSS", source="A2", device=self._device(load))
        c.add_tft("m7", gate="OUT1", drain="VOUT", source="VDD", device=self._device(wide))
        c.add_tft("m8", gate="A2", drain=GROUND, source="VOUT",
                  device=self._device(pulldown))
        nets = {"input": "VIN", "stage1": "OUT1", "output": "VOUT", "gate": "G1"}
        return c, nets

    # ------------------------------------------------------------------
    def operating_point(self) -> dict[str, float]:
        """DC bias voltages of the key nets (self-bias check)."""
        sim = MnaSimulator(self.circuit)
        op = sim.dc_operating_point()
        return {name: op[net] for name, net in self._nets.items()}

    def measure(
        self,
        input_amplitude_v: float = 0.05,
        frequency_hz: float = 30_000.0,
        periods: int = 8,
        points_per_period: int = 120,
    ) -> AmplifierMeasurement:
        """Drive a sine and measure the steady-state amplitude gain.

        Defaults replicate Fig. 5e: 50 mV input at 30 kHz.  The first
        half of the transient is discarded as settling; the measurement
        window covers the remaining periods.
        """
        if input_amplitude_v <= 0 or frequency_hz <= 0:
            raise ValueError("amplitude and frequency must be positive")
        source = next(
            s for s in self.circuit.voltage_sources() if s.name == "vin_src"
        )
        original = source.waveform
        object.__setattr__(
            source, "waveform", sine(input_amplitude_v, frequency_hz)
        )
        try:
            period = 1.0 / frequency_hz
            sim = MnaSimulator(self.circuit)
            result = sim.transient(
                stop_s=periods * period,
                step_s=period / points_per_period,
                record=["VIN", "G1", "OUT1", "VOUT"],
            )
        finally:
            object.__setattr__(source, "waveform", original)
        steady = result.window(0.5 * periods * period)
        out_amp = amplitude(steady["VOUT"])
        return AmplifierMeasurement(
            input_amplitude_v=input_amplitude_v,
            output_amplitude_v=out_amp,
            gain_db=gain_db(steady["VIN"], steady["VOUT"]),
            frequency_hz=frequency_hz,
            result=result,
        )

    def frequency_response(
        self, frequencies_hz: np.ndarray, input_amplitude_v: float = 0.02
    ) -> np.ndarray:
        """Gain (dB) at each frequency via repeated transient analysis."""
        gains = []
        for f in np.asarray(frequencies_hz, dtype=float):
            gains.append(self.measure(input_amplitude_v, float(f)).gain_db)
        return np.array(gains)

    def tft_count(self) -> int:
        """Transistor count (9: M1-M9)."""
        return self.circuit.tft_count()
