"""Event-driven gate-level logic simulator.

The transistor-level MNA engine handles cells and the amplifier; blocks
the size of the 8-stage shift register (304 TFTs) simulate at the gate
level instead, using the pseudo-CMOS :class:`~repro.circuits.pseudo_cmos.CellSpec`
delays.  Classic discrete-event semantics:

* three-valued nets (0, 1, ``None`` = unknown/X);
* inertial delay -- a scheduled output change is cancelled when the
  gate re-evaluates to something else before it matures;
* external stimuli are just pre-scheduled events on input nets.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from .pseudo_cmos import CellSpec, cell

__all__ = ["Gate", "LogicSimulator", "LogicWaveform"]


@dataclass(frozen=True)
class Gate:
    """One gate instance: a library cell bound to nets."""

    name: str
    spec: CellSpec
    inputs: tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if len(self.inputs) != self.spec.inputs:
            raise ValueError(
                f"gate {self.name}: cell {self.spec.name} needs "
                f"{self.spec.inputs} inputs, got {len(self.inputs)}"
            )


@dataclass
class LogicWaveform:
    """Per-net value-change record: (time, value) pairs."""

    changes: list[tuple[float, int | None]] = field(default_factory=list)

    def value_at(self, t: float) -> int | None:
        """Net value at time ``t`` (None before the first assignment)."""
        value: int | None = None
        for when, what in self.changes:
            if when > t:
                break
            value = what
        return value

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Sample onto a time grid; unknown (X) becomes -1."""
        out = np.empty(len(times), dtype=int)
        for i, t in enumerate(np.asarray(times, dtype=float)):
            v = self.value_at(float(t))
            out[i] = -1 if v is None else v
        return out

    def edges(self, rising: bool = True) -> list[float]:
        """Times of 0->1 (or 1->0) transitions."""
        out = []
        prev: int | None = None
        for when, what in self.changes:
            if prev is not None and what is not None and what != prev:
                if (rising and what == 1) or (not rising and what == 0):
                    out.append(when)
            if what is not None:
                prev = what
        return out


class LogicSimulator:
    """Discrete-event simulation of a gate-level netlist."""

    def __init__(self):
        self._gates: list[Gate] = []
        self._fanout: dict[str, list[Gate]] = {}
        self._values: dict[str, int | None] = {}
        self._stimuli: list[tuple[float, int, str, int]] = []
        self._counter = itertools.count()
        self._waveforms: dict[str, LogicWaveform] = {}

    def add_gate(self, name: str, cell_name: str, inputs: list[str], output: str) -> Gate:
        """Instantiate a library cell.

        ``inputs``/``output`` are net names; nets spring into existence
        (with unknown value) on first use.
        """
        if any(g.name == name for g in self._gates):
            raise ValueError(f"duplicate gate name {name!r}")
        gate = Gate(name, cell(cell_name), tuple(inputs), output)
        if any(g.output == output for g in self._gates):
            raise ValueError(f"net {output!r} already driven")
        self._gates.append(gate)
        for net in gate.inputs:
            self._fanout.setdefault(net, []).append(gate)
            self._values.setdefault(net, None)
        self._values.setdefault(output, None)
        return gate

    def set_stimulus(self, net: str, changes: list[tuple[float, int]]) -> None:
        """Schedule value changes on an input net: ``[(time, value), ...]``."""
        if any(g.output == net for g in self._gates):
            raise ValueError(f"net {net!r} is gate-driven; cannot stimulate")
        self._values.setdefault(net, None)
        for when, what in changes:
            if what not in (0, 1):
                raise ValueError(f"stimulus value must be 0/1, got {what!r}")
            self._stimuli.append((float(when), next(self._counter), net, int(what)))

    def clock_stimulus(
        self, net: str, frequency_hz: float, stop_s: float,
        start_value: int = 0, delay_s: float = 0.0,
    ) -> None:
        """Convenience 50 %-duty clock on ``net`` until ``stop_s``."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        half = 0.5 / frequency_hz
        changes = []
        t, v = delay_s, start_value
        while t < stop_s:
            changes.append((t, v))
            v = 1 - v
            t += half
        self.set_stimulus(net, changes)

    def tft_count(self) -> int:
        """Total TFTs across all instantiated cells."""
        return sum(g.spec.tft_count for g in self._gates)

    def nets(self) -> list[str]:
        """All net names."""
        return list(self._values)

    def run(self, stop_s: float) -> dict[str, LogicWaveform]:
        """Simulate until ``stop_s``; returns per-net waveforms."""
        if stop_s <= 0:
            raise ValueError("stop_s must be positive")
        queue: list[tuple[float, int, str, int | None]] = [
            (when, order, net, value)
            for when, order, net, value in self._stimuli
        ]
        heapq.heapify(queue)
        # pending[net] = (token, value) of the latest scheduled gate event;
        # popped events whose token no longer matches are stale (inertial
        # delay: a newer evaluation superseded them).
        pending: dict[str, tuple[int, int | None]] = {}
        gate_outputs = {g.output for g in self._gates}
        self._values = {net: None for net in self._values}
        waveforms = {net: LogicWaveform() for net in self._values}

        # initial evaluation so constant-input gates settle
        for gate in self._gates:
            self._schedule_gate(gate, 0.0, queue, pending)

        while queue:
            when, token, net, value = heapq.heappop(queue)
            if when > stop_s:
                break
            if net in gate_outputs:
                scheduled = pending.get(net)
                if scheduled is None or scheduled[0] != token:
                    continue  # superseded event
                pending.pop(net)
            if self._values.get(net) == value:
                continue
            self._values[net] = value
            waveforms[net].changes.append((when, value))
            for gate in self._fanout.get(net, []):
                self._schedule_gate(gate, when, queue, pending)
        self._waveforms = waveforms
        return waveforms

    @staticmethod
    def _evaluate_with_x(spec: CellSpec, values: tuple) -> int | None:
        """Three-valued evaluation: X inputs that cannot affect the
        output (controlling values elsewhere, e.g. NAND with a 0) still
        yield a defined result -- essential for latches to settle."""
        unknown = [i for i, v in enumerate(values) if v is None]
        if not unknown:
            return spec.evaluate(values)
        outcomes = set()
        for assignment in range(1 << len(unknown)):
            trial = list(values)
            for bit, position in enumerate(unknown):
                trial[position] = (assignment >> bit) & 1
            outcomes.add(spec.evaluate(tuple(trial)))
            if len(outcomes) > 1:
                return None
        return outcomes.pop()

    def _schedule_gate(self, gate: Gate, now: float, queue, pending) -> None:
        values = tuple(self._values.get(net) for net in gate.inputs)
        new_value = self._evaluate_with_x(gate.spec, values)
        scheduled = pending.get(gate.output)
        if scheduled is None:
            target = self._values.get(gate.output)
        else:
            target = scheduled[1]
        if new_value == target:
            return  # no change relative to what's already in flight
        mature = now + gate.spec.delay_s
        token = next(self._counter)
        pending[gate.output] = (token, new_value)
        heapq.heappush(queue, (mature, token, gate.output, new_value))
