"""Modified-nodal-analysis (MNA) circuit simulator.

A small but real nonlinear circuit engine for the transistor-level
flexible circuits of Fig. 5:

* **DC operating point** -- Newton-Raphson on the MNA equations with
  the CNT-TFT compact model linearised by numeric differentiation,
  voltage-step damping, a ``gmin`` leak to ground on every node and a
  source-stepping fallback for stubborn bias points.
* **Transient analysis** -- backward Euler with capacitor companion
  models and per-step Newton; fixed step chosen by the caller (the
  circuits of interest run at kHz, so microsecond steps are plenty).
* **DC sweep** -- re-solves the operating point across a source sweep
  (used for VTC and sensor-linearity curves).

The engine deliberately favours robustness and clarity over speed: the
largest circuit it simulates transistor-by-transistor (the two-stage
amplifier plus bias network) has ~15 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .netlist import GROUND, Capacitor, Circuit, Resistor, Tft, VoltageSource
from .waveform import TransientResult

__all__ = ["MnaSimulator", "OperatingPoint", "ConvergenceError"]

_GMIN = 1e-12
_VG_DELTA = 1e-5


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge."""


@dataclass
class OperatingPoint:
    """DC solution: node voltages and voltage-source branch currents."""

    voltages: dict[str, float]
    source_currents: dict[str, float]

    def __getitem__(self, net: str) -> float:
        if net == GROUND:
            return 0.0
        return self.voltages[net]


def _tft_terminal_current(device, vg: float, vd: float, vs: float) -> float:
    """Current flowing from the drain net *into* the TFT (A).

    Handles both polarities and reverse operation (drain/source roles
    swap when the nominal drain sits at the wrong potential), keeping
    the characteristic continuous at ``vd == vs``.
    """
    if device.polarity == "n":
        if vd >= vs:
            return device.drain_current(vg - vs, vd - vs)
        return -device.drain_current(vg - vd, vs - vd)
    # p-type: conducts when the gate is low relative to the (high) source.
    if vd <= vs:
        return -device.drain_current(vg - vs, vd - vs)
    return device.drain_current(vg - vd, vs - vd)


class MnaSimulator:
    """Simulate one :class:`~repro.circuits.netlist.Circuit`."""

    def __init__(self, circuit: Circuit, gmin: float = _GMIN):
        self.circuit = circuit
        self.gmin = float(gmin)
        self._nets = circuit.nets()
        self._index = {net: i for i, net in enumerate(self._nets)}
        self._sources = circuit.voltage_sources()
        self._num_nodes = len(self._nets)
        self._num_unknowns = self._num_nodes + len(self._sources)

    # ------------------------------------------------------------------
    def _node(self, net: str) -> int | None:
        """Matrix row of a net, or None for ground."""
        if net == GROUND:
            return None
        return self._index[net]

    def _stamp_conductance(self, g_matrix, a, b, conductance) -> None:
        ia, ib = self._node(a), self._node(b)
        if ia is not None:
            g_matrix[ia, ia] += conductance
        if ib is not None:
            g_matrix[ib, ib] += conductance
        if ia is not None and ib is not None:
            g_matrix[ia, ib] -= conductance
            g_matrix[ib, ia] -= conductance

    def _stamp_current(self, rhs, a, b, current) -> None:
        """Current source of ``current`` amps flowing from net a to net b."""
        ia, ib = self._node(a), self._node(b)
        if ia is not None:
            rhs[ia] -= current
        if ib is not None:
            rhs[ib] += current

    def _build_system(
        self,
        v: np.ndarray,
        t: float,
        dt: float | None,
        v_prev: np.ndarray | None,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the linearised MNA system ``J dv = -F`` at iterate v.

        Returns (jacobian, residual).  ``v`` holds node voltages followed
        by source branch currents.
        """
        n = self._num_unknowns
        jacobian = np.zeros((n, n))
        residual = np.zeros(n)

        def volt(net: str) -> float:
            i = self._node(net)
            return 0.0 if i is None else v[i]

        # gmin from every node to ground for conditioning
        for i in range(self._num_nodes):
            jacobian[i, i] += self.gmin
            residual[i] += self.gmin * v[i]

        for component in self.circuit.components:
            if isinstance(component, Resistor):
                g = 1.0 / component.ohms
                ia, ib = self._node(component.a), self._node(component.b)
                current = g * (volt(component.a) - volt(component.b))
                if ia is not None:
                    residual[ia] += current
                if ib is not None:
                    residual[ib] -= current
                self._stamp_conductance(jacobian, component.a, component.b, g)
            elif isinstance(component, Capacitor):
                if dt is None:
                    continue  # open circuit at DC
                g = component.farads / dt
                va, vb = volt(component.a), volt(component.b)
                if v_prev is None:
                    va_prev, vb_prev = va, vb
                else:
                    ia, ib = self._node(component.a), self._node(component.b)
                    va_prev = 0.0 if ia is None else v_prev[ia]
                    vb_prev = 0.0 if ib is None else v_prev[ib]
                current = g * ((va - vb) - (va_prev - vb_prev))
                ia, ib = self._node(component.a), self._node(component.b)
                if ia is not None:
                    residual[ia] += current
                if ib is not None:
                    residual[ib] -= current
                self._stamp_conductance(jacobian, component.a, component.b, g)
            elif isinstance(component, Tft):
                self._stamp_tft(component, v, jacobian, residual, volt)

        # voltage sources: extra branch-current unknowns
        for k, source in enumerate(self._sources):
            row = self._num_nodes + k
            branch_current = v[row]
            ip, im = self._node(source.positive), self._node(source.negative)
            if ip is not None:
                residual[ip] += branch_current
                jacobian[ip, row] += 1.0
                jacobian[row, ip] += 1.0
            if im is not None:
                residual[im] -= branch_current
                jacobian[im, row] -= 1.0
                jacobian[row, im] -= 1.0
            target = source_scale * source.value(t)
            residual[row] += volt(source.positive) - volt(source.negative) - target
        return jacobian, residual

    def _stamp_tft(self, component, v, jacobian, residual, volt) -> None:
        vg = volt(component.gate)
        vd = volt(component.drain)
        vs = volt(component.source)
        device = component.device
        current = _tft_terminal_current(device, vg, vd, vs)
        d = _VG_DELTA
        g_m = (
            _tft_terminal_current(device, vg + d, vd, vs)
            - _tft_terminal_current(device, vg - d, vd, vs)
        ) / (2 * d)
        g_d = (
            _tft_terminal_current(device, vg, vd + d, vs)
            - _tft_terminal_current(device, vg, vd - d, vs)
        ) / (2 * d)
        g_s = (
            _tft_terminal_current(device, vg, vd, vs + d)
            - _tft_terminal_current(device, vg, vd, vs - d)
        ) / (2 * d)
        i_drain = self._node(component.drain)
        i_source = self._node(component.source)
        i_gate = self._node(component.gate)
        if i_drain is not None:
            residual[i_drain] += current
            if i_gate is not None:
                jacobian[i_drain, i_gate] += g_m
            jacobian[i_drain, i_drain] += g_d
            if i_source is not None:
                jacobian[i_drain, i_source] += g_s
        if i_source is not None:
            residual[i_source] -= current
            if i_gate is not None:
                jacobian[i_source, i_gate] -= g_m
            if i_drain is not None:
                jacobian[i_source, i_drain] -= g_d
            jacobian[i_source, i_source] -= g_s

    # ------------------------------------------------------------------
    def _newton(
        self,
        v0: np.ndarray,
        t: float,
        dt: float | None,
        v_prev: np.ndarray | None,
        source_scale: float = 1.0,
        max_iterations: int = 200,
        tolerance: float = 1e-9,
        damping_v: float = 0.6,
    ) -> np.ndarray:
        v = v0.copy()
        for _ in range(max_iterations):
            jacobian, residual = self._build_system(
                v, t, dt, v_prev, source_scale
            )
            try:
                delta = np.linalg.solve(jacobian, -residual)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(f"singular MNA matrix: {exc}") from exc
            step = np.max(np.abs(delta[: self._num_nodes])) if self._num_nodes else 0.0
            if step > damping_v:
                delta = delta * (damping_v / step)
            v = v + delta
            if np.max(np.abs(delta)) < tolerance:
                return v
        raise ConvergenceError(
            f"Newton failed after {max_iterations} iterations "
            f"(circuit {self.circuit.name!r})"
        )

    def _initial_guess(self) -> np.ndarray:
        return np.zeros(self._num_unknowns)

    def dc_operating_point(self, t: float = 0.0) -> OperatingPoint:
        """Solve the DC bias point (capacitors open).

        Falls back to source stepping (ramping all sources from 0) when
        the direct Newton solve fails.
        """
        v = self._initial_guess()
        try:
            v = self._newton(v, t, None, None)
        except ConvergenceError:
            # Source stepping: ramp all sources from 10 % to 100 %,
            # warm-starting each step; a failed intermediate step keeps
            # the best iterate so far instead of aborting the ramp.
            for scale in np.linspace(0.1, 1.0, 20):
                try:
                    v = self._newton(
                        v, t, None, None,
                        source_scale=float(scale), max_iterations=400,
                    )
                except ConvergenceError:
                    if scale == 1.0:
                        raise
        return self._to_operating_point(v)

    def _to_operating_point(self, v: np.ndarray) -> OperatingPoint:
        voltages = {net: float(v[i]) for net, i in self._index.items()}
        currents = {
            source.name: float(v[self._num_nodes + k])
            for k, source in enumerate(self._sources)
        }
        return OperatingPoint(voltages=voltages, source_currents=currents)

    def dc_sweep(
        self, source_name: str, values: np.ndarray, record: list[str]
    ) -> dict[str, np.ndarray]:
        """Sweep one DC source and record net voltages.

        Parameters
        ----------
        source_name:
            Name of the voltage source to sweep (its waveform is
            overridden point by point).
        values:
            Sweep values (V).
        record:
            Net names to record.

        Returns
        -------
        dict
            ``{"sweep": values, net: voltages}``; source current of the
            swept source is recorded under ``"I(<source_name>)"``.
        """
        values = np.asarray(values, dtype=float)
        source = next(
            (s for s in self._sources if s.name == source_name), None
        )
        if source is None:
            raise KeyError(f"no voltage source named {source_name!r}")
        original = source.waveform
        results: dict[str, list[float]] = {net: [] for net in record}
        currents: list[float] = []
        v = self._initial_guess()
        try:
            for value in values:
                object.__setattr__(source, "waveform", lambda _t, _v=value: _v)
                try:
                    v = self._newton(v, 0.0, None, None)
                except ConvergenceError:
                    # Warm start failed (e.g. a sharp ratioed-logic
                    # transition): re-solve this point by source stepping
                    # from scratch.
                    v = self._initial_guess()
                    for scale in np.linspace(0.1, 1.0, 20):
                        try:
                            v = self._newton(
                                v, 0.0, None, None,
                                source_scale=float(scale),
                                max_iterations=400,
                            )
                        except ConvergenceError:
                            if scale == 1.0:
                                raise
                op = self._to_operating_point(v)
                for net in record:
                    results[net].append(op[net])
                currents.append(op.source_currents[source_name])
        finally:
            object.__setattr__(source, "waveform", original)
        out: dict[str, np.ndarray] = {"sweep": values}
        for net in record:
            out[net] = np.array(results[net])
        out[f"I({source_name})"] = np.array(currents)
        return out

    def transient(
        self,
        stop_s: float,
        step_s: float,
        record: list[str] | None = None,
        start_from_dc: bool = True,
    ) -> TransientResult:
        """Backward-Euler transient from 0 to ``stop_s``.

        Parameters
        ----------
        stop_s, step_s:
            Simulation span and fixed time step.
        record:
            Nets to record (all nets by default).
        start_from_dc:
            Start from the t=0 DC operating point (else from all-zero).
        """
        if stop_s <= 0 or step_s <= 0:
            raise ValueError("stop_s and step_s must be positive")
        if record is None:
            record = list(self._nets)
        missing = [net for net in record if net not in self._index]
        if missing:
            raise KeyError(f"unknown nets requested: {missing}")
        steps = int(round(stop_s / step_s))
        times = np.arange(steps + 1) * step_s
        if start_from_dc:
            v = self._initial_guess()
            try:
                v = self._newton(v, 0.0, None, None)
            except ConvergenceError:
                v = self._initial_guess()
        else:
            v = self._initial_guess()
        traces = {net: np.empty(steps + 1) for net in record}
        for net in record:
            traces[net][0] = v[self._index[net]]
        for k in range(1, steps + 1):
            v = self._newton(v.copy(), float(times[k]), step_s, v)
            for net in record:
                traces[net][k] = v[self._index[net]]
        return TransientResult(times=times, traces=traces)
