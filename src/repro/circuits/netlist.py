"""Netlist data model for transistor-level flexible circuits.

A tiny SPICE-like circuit description: named nets, two-terminal
primitives (resistor, capacitor, independent voltage source with DC /
pulse / sine / PWL stimuli) and the three-terminal CNT TFT from
:mod:`repro.devices`.  The MNA engine in :mod:`repro.circuits.mna`
simulates these netlists; :mod:`repro.eda.lvs` compares them against
extracted layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..devices.cnt_tft import CntTft

__all__ = [
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "Tft",
    "Circuit",
    "dc",
    "sine",
    "pulse",
    "pwl",
]

GROUND = "0"


def dc(value: float) -> Callable[[float], float]:
    """Constant stimulus."""
    return lambda _t: float(value)


def sine(
    amplitude: float, frequency_hz: float, offset: float = 0.0, phase: float = 0.0
) -> Callable[[float], float]:
    """Sinusoidal stimulus ``offset + A sin(2 pi f t + phase)``."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    omega = 2.0 * np.pi * frequency_hz

    def waveform(t: float) -> float:
        return offset + amplitude * np.sin(omega * t + phase)

    return waveform


def pulse(
    low: float,
    high: float,
    period_s: float,
    duty: float = 0.5,
    delay_s: float = 0.0,
    rise_s: float = 0.0,
) -> Callable[[float], float]:
    """Periodic trapezoidal pulse train (SPICE PULSE-like).

    ``rise_s`` applies to both edges; 0 gives ideal square edges.
    """
    if period_s <= 0:
        raise ValueError("period must be positive")
    if not 0.0 < duty < 1.0:
        raise ValueError("duty must be in (0, 1)")
    high_s = duty * period_s

    def waveform(t: float) -> float:
        tau = (t - delay_s) % period_s
        if t < delay_s:
            return float(low)
        if rise_s > 0.0:
            if tau < rise_s:
                return low + (high - low) * tau / rise_s
            if high_s <= tau < high_s + rise_s:
                return high - (high - low) * (tau - high_s) / rise_s
            return float(high if tau < high_s else low)
        return float(high if tau < high_s else low)

    return waveform


def pwl(points: list[tuple[float, float]]) -> Callable[[float], float]:
    """Piecewise-linear stimulus through ``(time, value)`` points."""
    if len(points) < 1:
        raise ValueError("pwl needs at least one point")
    times = np.array([p[0] for p in points], dtype=float)
    values = np.array([p[1] for p in points], dtype=float)
    if np.any(np.diff(times) < 0):
        raise ValueError("pwl times must be non-decreasing")

    def waveform(t: float) -> float:
        return float(np.interp(t, times, values))

    return waveform


@dataclass(frozen=True)
class Resistor:
    """Linear resistor between two nets."""

    name: str
    a: str
    b: str
    ohms: float

    def __post_init__(self) -> None:
        if self.ohms <= 0:
            raise ValueError(f"resistor {self.name}: ohms must be positive")


@dataclass(frozen=True)
class Capacitor:
    """Linear capacitor between two nets."""

    name: str
    a: str
    b: str
    farads: float

    def __post_init__(self) -> None:
        if self.farads <= 0:
            raise ValueError(f"capacitor {self.name}: farads must be positive")


@dataclass(frozen=True)
class VoltageSource:
    """Independent voltage source; ``waveform(t)`` gives the value."""

    name: str
    positive: str
    negative: str
    waveform: Callable[[float], float]

    def value(self, t: float) -> float:
        """Source voltage at time ``t`` (seconds)."""
        return float(self.waveform(t))


@dataclass(frozen=True)
class Tft:
    """CNT TFT instance: gate / drain / source nets + device model."""

    name: str
    gate: str
    drain: str
    source: str
    device: CntTft


@dataclass
class Circuit:
    """A named collection of components over string-named nets.

    Net ``"0"`` (:data:`GROUND`) is the reference.  Components are added
    through the ``add_*`` helpers which also validate name uniqueness.
    """

    name: str = "circuit"
    components: list = field(default_factory=list)

    def _check_name(self, name: str) -> None:
        if any(c.name == name for c in self.components):
            raise ValueError(f"duplicate component name {name!r}")

    def add_resistor(self, name: str, a: str, b: str, ohms: float) -> Resistor:
        """Add a resistor and return it."""
        self._check_name(name)
        component = Resistor(name, a, b, ohms)
        self.components.append(component)
        return component

    def add_capacitor(self, name: str, a: str, b: str, farads: float) -> Capacitor:
        """Add a capacitor and return it."""
        self._check_name(name)
        component = Capacitor(name, a, b, farads)
        self.components.append(component)
        return component

    def add_voltage_source(
        self, name: str, positive: str, negative: str, waveform
    ) -> VoltageSource:
        """Add a voltage source; ``waveform`` is a number or callable."""
        self._check_name(name)
        if not callable(waveform):
            waveform = dc(float(waveform))
        component = VoltageSource(name, positive, negative, waveform)
        self.components.append(component)
        return component

    def add_tft(
        self, name: str, gate: str, drain: str, source: str, device: CntTft
    ) -> Tft:
        """Add a CNT TFT and return it."""
        self._check_name(name)
        component = Tft(name, gate, drain, source, device)
        self.components.append(component)
        return component

    def nets(self) -> list[str]:
        """All net names, ground excluded, in first-use order."""
        seen: dict[str, None] = {}
        for component in self.components:
            if isinstance(component, Tft):
                terminals = (component.gate, component.drain, component.source)
            elif isinstance(component, VoltageSource):
                terminals = (component.positive, component.negative)
            else:
                terminals = (component.a, component.b)
            for net in terminals:
                if net != GROUND:
                    seen.setdefault(net, None)
        return list(seen)

    def tft_count(self) -> int:
        """Number of TFT instances (the paper counts circuit complexity
        in TFTs, e.g. 304 for the 8-stage shift register)."""
        return sum(1 for c in self.components if isinstance(c, Tft))

    def voltage_sources(self) -> list[VoltageSource]:
        """All voltage sources, in insertion order."""
        return [c for c in self.components if isinstance(c, VoltageSource)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, {len(self.components)} components, "
            f"{len(self.nets())} nets)"
        )
