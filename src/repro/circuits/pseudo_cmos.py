"""Pseudo-CMOS cell library for the p-type-only CNT process.

Sec. 3.2: air-stable n-type CNT TFTs are unavailable, so the paper
adopts the *pseudo-CMOS* design style (Huang et al., DATE 2010) which
builds rail-to-rail logic from mono-type transistors using a
level-shifted two-stage topology with an auxiliary negative supply VSS.

This module provides both views of the library:

* **Transistor level** -- netlist builders (:func:`build_inverter`,
  :func:`build_nand2`) that instantiate the pseudo-D topology with
  p-type CNT TFTs, simulated by :mod:`repro.circuits.mna` for VTC and
  delay characterisation;
* **Gate level** -- :class:`CellSpec` entries (logic function, TFT
  count, nominal delay) consumed by the event-driven simulator in
  :mod:`repro.circuits.logic_sim` for larger blocks like the 8-stage
  shift register.

Pseudo-D topology used here (all p-type; IN low = asserted pull-up):

* stage 1 (level shifter): M1 ``S=VDD, G=IN, D=A`` versus the
  always-on load M2 ``S=A, G=VSS, D=VSS`` -- node A swings VDD..VSS,
  inverted relative to IN;
* stage 2 (output): M3 ``S=VDD, G=IN, D=OUT`` pulls up when IN is low,
  M4 ``S=OUT, G=A, D=GND`` pulls down when A is low (i.e. IN high).

Four TFTs per inverter; NAND2 parallels the input devices (6 TFTs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..devices.cnt_tft import CntTft, TftParameters
from .netlist import GROUND, Circuit

__all__ = [
    "LogicLevels",
    "CellSpec",
    "CELL_LIBRARY",
    "cell",
    "build_inverter",
    "build_inverter_pseudo_e",
    "build_nand2",
    "default_logic_device",
]

#: Nominal supplies of the fabricated circuits (Fig. 5: VDD = 3 V,
#: VSS = -3 V).
VDD_NOMINAL = 3.0
VSS_NOMINAL = -3.0


@dataclass(frozen=True)
class LogicLevels:
    """Supply configuration of a pseudo-CMOS cell instance."""

    vdd: float = VDD_NOMINAL
    vss: float = VSS_NOMINAL

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.vss >= 0:
            raise ValueError("pseudo-CMOS needs a negative vss")


def default_logic_device(
    width_um: float = 50.0, length_um: float = 10.0
) -> CntTft:
    """A logic-sized p-type CNT TFT (the paper's logic L is 10 um)."""
    return CntTft(width_um=width_um, length_um=length_um,
                  parameters=TftParameters())


# ---------------------------------------------------------------------------
# Gate level
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellSpec:
    """Gate-level view of one pseudo-CMOS cell.

    Attributes
    ----------
    name:
        Library cell name.
    inputs:
        Number of logic inputs.
    function:
        ``tuple_of_bits -> bit`` evaluation.
    tft_count:
        Transistors in the pseudo-CMOS implementation (used for the
        complexity accounting that reproduces the paper's "304 CNT
        TFTs" figure).
    delay_s:
        Nominal propagation delay at VDD = 3 V.  Flexible CNT logic is
        slow -- ring-oscillator stage delays are microseconds -- so the
        default library sits at a few microseconds per gate, consistent
        with a shift register that "functions properly with a clock
        rate of 10 kHz".
    """

    name: str
    inputs: int
    function: Callable[[tuple[int, ...]], int]
    tft_count: int
    delay_s: float

    def evaluate(self, values: tuple[int, ...]) -> int:
        """Evaluate the cell's boolean function."""
        if len(values) != self.inputs:
            raise ValueError(
                f"cell {self.name} expects {self.inputs} inputs, got {len(values)}"
            )
        return int(self.function(values))


CELL_LIBRARY: dict[str, CellSpec] = {
    "INV": CellSpec("INV", 1, lambda v: 1 - v[0], tft_count=4, delay_s=2.0e-6),
    "BUF": CellSpec("BUF", 1, lambda v: v[0], tft_count=8, delay_s=4.0e-6),
    "NAND2": CellSpec(
        "NAND2", 2, lambda v: 1 - (v[0] & v[1]), tft_count=6, delay_s=3.0e-6
    ),
    "NOR2": CellSpec(
        "NOR2", 2, lambda v: 1 - (v[0] | v[1]), tft_count=6, delay_s=3.0e-6
    ),
    "AND2": CellSpec(
        "AND2", 2, lambda v: v[0] & v[1], tft_count=10, delay_s=5.0e-6
    ),
    "XOR2": CellSpec(
        "XOR2", 2, lambda v: v[0] ^ v[1], tft_count=10, delay_s=6.0e-6
    ),
    "MUX2": CellSpec(
        "MUX2", 3, lambda v: v[1] if v[0] else v[2], tft_count=12, delay_s=6.0e-6
    ),
}


def cell(name: str) -> CellSpec:
    """Look up a library cell by name."""
    try:
        return CELL_LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; library has {sorted(CELL_LIBRARY)}"
        ) from None


# ---------------------------------------------------------------------------
# Transistor level
# ---------------------------------------------------------------------------

def _supplies(circuit: Circuit, levels: LogicLevels, prefix: str) -> tuple[str, str]:
    """Ensure VDD/VSS rails exist in the circuit; returns their net names."""
    vdd_net, vss_net = "VDD", "VSS"
    names = {c.name for c in circuit.components}
    if f"{prefix}_vdd_src" not in names and "vdd_src" not in names:
        if not any(
            getattr(c, "positive", None) == vdd_net for c in circuit.components
        ):
            circuit.add_voltage_source("vdd_src", vdd_net, GROUND, levels.vdd)
        if not any(
            getattr(c, "positive", None) == vss_net for c in circuit.components
        ):
            circuit.add_voltage_source("vss_src", vss_net, GROUND, levels.vss)
    return vdd_net, vss_net


def build_inverter(
    circuit: Circuit,
    prefix: str,
    input_net: str,
    output_net: str,
    levels: LogicLevels | None = None,
    drive_width_um: float = 150.0,
    load_width_um: float = 50.0,
    length_um: float = 10.0,
    add_supplies: bool = True,
) -> str:
    """Instantiate a 4-TFT pseudo-D inverter; returns the internal net.

    Parameters
    ----------
    circuit:
        Target circuit (modified in place).
    prefix:
        Instance prefix for component and internal net names.
    input_net, output_net:
        Logic terminals.
    levels:
        Supply levels; rails are created on first use when
        ``add_supplies`` is set.
    drive_width_um, load_width_um, length_um:
        Device sizing: drive devices (M1, M3, M4) wide, the always-on
        level-shift load (M2) narrow, matching the paper's "M1, M5,
        M9 = 50 um, others = 150 um" flavour of ratioed sizing.
    """
    levels = levels or LogicLevels()
    if add_supplies:
        vdd, vss = _supplies(circuit, levels, prefix)
    else:
        vdd, vss = "VDD", "VSS"
    internal = f"{prefix}_a"
    drive = lambda: CntTft(drive_width_um, length_um)  # noqa: E731
    load = lambda: CntTft(load_width_um, length_um)  # noqa: E731
    circuit.add_tft(f"{prefix}_m1", gate=input_net, drain=internal, source=vdd,
                    device=drive())
    circuit.add_tft(f"{prefix}_m2", gate=vss, drain=vss, source=internal,
                    device=load())
    circuit.add_tft(f"{prefix}_m3", gate=input_net, drain=output_net, source=vdd,
                    device=drive())
    circuit.add_tft(f"{prefix}_m4", gate=internal, drain=GROUND, source=output_net,
                    device=drive())
    return internal


def build_inverter_pseudo_e(
    circuit: Circuit,
    prefix: str,
    input_net: str,
    output_net: str,
    levels: LogicLevels | None = None,
    drive_width_um: float = 150.0,
    load_width_um: float = 15.0,
    length_um: float = 10.0,
    add_supplies: bool = True,
) -> None:
    """Instantiate a 2-TFT *pseudo-E* inverter (the simpler style).

    Pseudo-E is the single-stage variant of the pseudo-CMOS family
    (Huang et al., DATE 2010): a drive device against an always-on
    level-shift load::

        M1: S=VDD, G=IN,  D=OUT   (pull-up when IN is low)
        M2: S=OUT, G=VSS, D=VSS   (always-on pull toward VSS)

    Half the transistors of pseudo-D, but *ratioed* output levels (the
    high level sags below VDD and the low level shifts toward VSS) and
    lower gain -- the trade the two-stage pseudo-D style exists to fix
    (see ``tests/circuits/test_pseudo_styles.py`` for the quantified
    comparison).  The default drive:load ratio is 10:1; weaker ratios
    sag V_OH further.
    """
    levels = levels or LogicLevels()
    if add_supplies:
        vdd, vss = _supplies(circuit, levels, prefix)
    else:
        vdd, vss = "VDD", "VSS"
    circuit.add_tft(
        f"{prefix}_m1", gate=input_net, drain=output_net, source=vdd,
        device=CntTft(drive_width_um, length_um),
    )
    circuit.add_tft(
        f"{prefix}_m2", gate=vss, drain=vss, source=output_net,
        device=CntTft(load_width_um, length_um),
    )


def build_nand2(
    circuit: Circuit,
    prefix: str,
    input_a: str,
    input_b: str,
    output_net: str,
    levels: LogicLevels | None = None,
    drive_width_um: float = 150.0,
    load_width_um: float = 50.0,
    length_um: float = 10.0,
    add_supplies: bool = True,
) -> str:
    """Instantiate a 6-TFT pseudo-D NAND2; returns the internal net.

    Pull-up devices parallel the two inputs (output high when either
    input is low); the stage-1 level shifter mirrors the same parallel
    pair so node A goes low only when both inputs are high, driving the
    single pull-down M4.
    """
    levels = levels or LogicLevels()
    if add_supplies:
        vdd, vss = _supplies(circuit, levels, prefix)
    else:
        vdd, vss = "VDD", "VSS"
    internal = f"{prefix}_a"
    drive = lambda: CntTft(drive_width_um, length_um)  # noqa: E731
    load = lambda: CntTft(load_width_um, length_um)  # noqa: E731
    circuit.add_tft(f"{prefix}_m1a", gate=input_a, drain=internal, source=vdd,
                    device=drive())
    circuit.add_tft(f"{prefix}_m1b", gate=input_b, drain=internal, source=vdd,
                    device=drive())
    circuit.add_tft(f"{prefix}_m2", gate=vss, drain=vss, source=internal,
                    device=load())
    circuit.add_tft(f"{prefix}_m3a", gate=input_a, drain=output_net, source=vdd,
                    device=drive())
    circuit.add_tft(f"{prefix}_m3b", gate=input_b, drain=output_net, source=vdd,
                    device=drive())
    circuit.add_tft(f"{prefix}_m4", gate=internal, drain=GROUND, source=output_net,
                    device=drive())
    return internal
