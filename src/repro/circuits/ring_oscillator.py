"""Five-stage pseudo-CMOS ring oscillator (the process test vehicle).

Sec. 3.2: the CNT process "was validated thoroughly with wafer level
fabrications and electrical measurements with > 5000 CNT TFTs and 44
five-stage ring oscillators".  This module rebuilds that test vehicle
at the transistor level: an odd chain of pseudo-D inverters closed on
itself, each stage loaded by its gate/wiring capacitance, simulated
with the MNA engine until steady oscillation and measured for
frequency and per-stage delay.

Stage loading combines the next stage's gate capacitance (Cox * W * L
of the two input devices) with a wiring-parasitic term -- flexible
substrates carry long, high-capacitance interconnect, which is what
keeps fabricated CNT ring oscillators in the kHz..100 kHz range rather
than the MHz the bare devices could do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..devices.cnt_tft import TftParameters
from .mna import MnaSimulator
from .netlist import GROUND, Circuit
from .pseudo_cmos import build_inverter
from .waveform import TransientResult, crossing_times

__all__ = ["RingOscillatorResult", "RingOscillator"]


@dataclass
class RingOscillatorResult:
    """Measured oscillation of one ring."""

    frequency_hz: float
    stage_delay_s: float
    amplitude_v: float
    stages: int
    result: TransientResult

    def row(self) -> str:
        """One-line summary."""
        return (
            f"{self.stages}-stage RO: f = {self.frequency_hz / 1e3:.1f} kHz, "
            f"stage delay = {self.stage_delay_s * 1e6:.2f} us, "
            f"swing = {2 * self.amplitude_v:.2f} Vpp"
        )


class RingOscillator:
    """Odd-stage pseudo-CMOS inverter ring.

    Parameters
    ----------
    stages:
        Ring length; must be odd (5 in the paper's test vehicle).
    wiring_c_farads:
        Per-stage wiring parasitic added to the gate load.
    drive_width_um, load_width_um, length_um:
        Inverter sizing (library defaults).
    """

    def __init__(
        self,
        stages: int = 5,
        wiring_c_farads: float = 2.0e-11,
        drive_width_um: float = 150.0,
        load_width_um: float = 50.0,
        length_um: float = 10.0,
    ):
        if stages < 3 or stages % 2 == 0:
            raise ValueError("ring needs an odd stage count >= 3")
        if wiring_c_farads < 0:
            raise ValueError("wiring capacitance must be >= 0")
        self.stages = stages
        self.wiring_c_farads = float(wiring_c_farads)
        self.drive_width_um = float(drive_width_um)
        self.load_width_um = float(load_width_um)
        self.length_um = float(length_um)
        self.circuit = self._build()

    def _stage_load_farads(self) -> float:
        """Gate capacitance of the next stage's two input devices plus
        the wiring parasitic."""
        cox = TftParameters().cox_f_per_m2
        gate_area_m2 = 2.0 * (self.drive_width_um * 1e-6) * (self.length_um * 1e-6)
        return cox * gate_area_m2 + self.wiring_c_farads

    def _build(self) -> Circuit:
        circuit = Circuit(f"ring_oscillator_{self.stages}")
        load = self._stage_load_farads()
        for stage in range(self.stages):
            input_net = f"n{stage}"
            output_net = f"n{(stage + 1) % self.stages}"
            build_inverter(
                circuit,
                f"inv{stage}",
                input_net,
                output_net,
                drive_width_um=self.drive_width_um,
                load_width_um=self.load_width_um,
                length_um=self.length_um,
            )
            circuit.add_capacitor(f"cl{stage}", output_net, GROUND, load)
        return circuit

    def tft_count(self) -> int:
        """Total transistors in the ring."""
        return self.circuit.tft_count()

    def simulate(
        self, periods_hint: int = 12, points_per_period: int = 60
    ) -> RingOscillatorResult:
        """Run the ring to steady oscillation and measure it.

        The simulation starts from the all-zero state (not a DC
        solution), which kicks the ring into oscillation; the first
        half of the transient is discarded as start-up.
        """
        # Rough period estimate from an RC-delay model to size the run.
        load = self._stage_load_farads()
        delay_estimate = 6.0e4 * load + 1.0e-7  # fitted to characterisation
        period_estimate = 2.0 * self.stages * delay_estimate
        stop = periods_hint * period_estimate
        step = period_estimate / points_per_period
        simulator = MnaSimulator(self.circuit)
        result = simulator.transient(
            stop_s=stop, step_s=step, record=["n0"], start_from_dc=False
        )
        steady = result.window(0.5 * stop)
        trace = steady["n0"]
        level = 0.5 * (trace.max() + trace.min())
        rising = crossing_times(steady.times, trace, level, rising=True)
        if len(rising) < 3:
            raise RuntimeError(
                "ring did not settle into oscillation; extend periods_hint"
            )
        period = float(np.median(np.diff(rising)))
        frequency = 1.0 / period
        return RingOscillatorResult(
            frequency_hz=frequency,
            stage_delay_s=period / (2.0 * self.stages),
            amplitude_v=0.5 * (trace.max() - trace.min()),
            stages=self.stages,
            result=result,
        )
