"""The 8-stage pseudo-CMOS shift register of Fig. 5c-d.

The fabricated SR consists of 304 CNT TFTs and "functions properly with
a clock rate of 10 kHz and a data rate of 1 kHz at a supply voltage of
3 V".  We rebuild it at the gate level from the pseudo-CMOS library:

* each stage is a rising-edge master-slave D flip-flop made of two
  multiplexer-feedback latches (``Q = EN ? D : Q``), a local clock
  inverter and an output buffer that drives the next stage:
  12 + 12 + 4 + 8 = 36 TFTs per stage;
* global input conditioning: one buffer each on the external CLK and
  DATA pads (2 x 8 = 16 TFTs);
* total: 8 x 36 + 16 = **304 TFTs**, matching the paper's count.

The module exposes :class:`ShiftRegister`, which builds the netlist on
a :class:`~repro.circuits.logic_sim.LogicSimulator`, drives the Fig. 5
stimulus (CLK 10 kHz, DATA 1 kHz, VDD 3 V) and verifies the shifting
behaviour edge by edge.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .logic_sim import LogicSimulator, LogicWaveform

__all__ = ["ShiftRegister", "ShiftRegisterResult"]


def _build_mux_latch(sim: LogicSimulator, prefix: str, d: str, enable: str, q: str) -> None:
    """Level-sensitive latch: one MUX2 with output feedback.

    Transparent (``q = d``) while ``enable`` is 1, holds otherwise.
    """
    sim.add_gate(f"{prefix}_mux", "MUX2", [enable, d, q], q)


def _build_dff(sim: LogicSimulator, prefix: str, d: str, clk: str, q: str) -> None:
    """Rising-edge master-slave DFF with buffered output.

    Master is transparent while CLK is low, slave while CLK is high, so
    the (buffered) output updates shortly after each rising edge.
    """
    clkb = f"{prefix}_clkb"
    qm = f"{prefix}_qm"
    qs = f"{prefix}_qs"
    sim.add_gate(f"{prefix}_clkinv", "INV", [clk], clkb)
    _build_mux_latch(sim, f"{prefix}_m", d, clkb, qm)
    _build_mux_latch(sim, f"{prefix}_s", qm, clk, qs)
    sim.add_gate(f"{prefix}_buf", "BUF", [qs], q)


@dataclass
class ShiftRegisterResult:
    """Simulation outcome of the Fig. 5c-d experiment."""

    waveforms: dict[str, LogicWaveform]
    stage_outputs: list[str]
    clock_hz: float
    data_hz: float
    functional: bool
    tft_count: int

    def sampled(self, times: np.ndarray) -> dict[str, np.ndarray]:
        """Sample clock, data and all stage outputs onto a time grid."""
        nets = ["CLK", "DATA", *self.stage_outputs]
        return {net: self.waveforms[net].sample(times) for net in nets}


class ShiftRegister:
    """Gate-level model of the fabricated 8-stage shift register.

    Parameters
    ----------
    stages:
        Number of DFF stages (8 in the paper).
    """

    #: TFTs in the CLK and DATA pad buffers (one BUF each).
    PAD_BUFFER_TFTS = 16

    def __init__(self, stages: int = 8):
        if stages < 1:
            raise ValueError("need at least one stage")
        self.stages = stages
        self.simulator = LogicSimulator()
        self.stage_outputs = [f"Q{i}" for i in range(1, stages + 1)]
        previous = "DATA"
        for i, q in enumerate(self.stage_outputs, start=1):
            _build_dff(self.simulator, f"dff{i}", previous, "CLK", q)
            previous = q

    def tft_count(self) -> int:
        """Total TFT count including the pad buffers.

        For the paper's 8-stage configuration this is exactly 304.
        """
        return self.simulator.tft_count() + self.PAD_BUFFER_TFTS

    def simulate(
        self,
        clock_hz: float = 10_000.0,
        data_hz: float = 1_000.0,
        vdd: float = 3.0,
        periods: int = 40,
    ) -> ShiftRegisterResult:
        """Run the Fig. 5c-d stimulus and check shifting behaviour.

        The data input is a square wave at ``data_hz`` (the paper drives
        1 kHz data against a 10 kHz clock).  ``vdd`` scales all gate
        delays as ``delay ~ 1 / (vdd - |vth|)`` relative to the 3 V
        nominal library -- the standard first-order supply scaling --
        so the register that works at 3 V fails functionally when the
        supply (and hence speed) drops too far or the clock is pushed
        too fast.

        Returns
        -------
        ShiftRegisterResult
            ``functional`` is True when every stage captures its input
            correctly on every rising clock edge (after pipe priming).
        """
        if clock_hz <= 0 or data_hz <= 0:
            raise ValueError("clock and data rates must be positive")
        if vdd <= 1.0:
            raise ValueError("vdd too low for pseudo-CMOS logic (> 1 V)")
        scale = (3.0 - 0.8) / max(vdd - 0.8, 1e-3)
        sim = self._rescaled_simulator(scale)
        stop = periods / clock_hz
        sim.clock_stimulus("CLK", clock_hz, stop)
        sim.clock_stimulus("DATA", data_hz, stop, start_value=1)
        waveforms = sim.run(stop)
        functional = self._check_shifting(waveforms, clock_hz, stop)
        return ShiftRegisterResult(
            waveforms=waveforms,
            stage_outputs=list(self.stage_outputs),
            clock_hz=clock_hz,
            data_hz=data_hz,
            functional=functional,
            tft_count=self.tft_count(),
        )

    def _rescaled_simulator(self, delay_scale: float) -> LogicSimulator:
        """Clone the netlist with all cell delays scaled."""
        clone = LogicSimulator()
        for gate in self.simulator._gates:
            spec = replace(gate.spec, delay_s=gate.spec.delay_s * delay_scale)
            clone._gates.append(type(gate)(gate.name, spec, gate.inputs, gate.output))
            for net in gate.inputs:
                clone._fanout.setdefault(net, []).append(clone._gates[-1])
                clone._values.setdefault(net, None)
            clone._values.setdefault(gate.output, None)
        return clone

    def _check_shifting(
        self, waveforms: dict[str, LogicWaveform], clock_hz: float, stop: float
    ) -> bool:
        """Edge-by-edge DFF check: each stage's output after rising edge
        ``e`` must equal its input just before ``e``."""
        period = 1.0 / clock_hz
        edges = np.asarray(waveforms["CLK"].edges(rising=True))
        # Skip priming edges (the pipe needs `stages` edges to fill) and
        # edges whose settling window runs past the simulation end.
        edges = edges[self.stages + 1:]
        edges = edges[edges + 0.45 * period < stop]
        if len(edges) < 4:
            return False
        chain = ["DATA", *self.stage_outputs]
        for upstream, downstream in zip(chain[:-1], chain[1:]):
            before = waveforms[upstream].sample(edges - 0.02 * period)
            after = waveforms[downstream].sample(edges + 0.45 * period)
            if np.any(before < 0) or np.any(after < 0):
                return False
            if not np.array_equal(before, after):
                return False
        return True

    def max_functional_clock(
        self,
        vdd: float = 3.0,
        low_hz: float = 1_000.0,
        high_hz: float = 1.0e6,
        resolution: float = 0.1,
    ) -> float:
        """Binary-search the highest functional clock rate at ``vdd``.

        Returns the largest clock (Hz, within ``resolution`` relative
        accuracy) at which :meth:`simulate` still shifts correctly --
        the register's speed characterisation (the fabricated part is
        reported working at 10 kHz; its ceiling is not published).
        """
        if low_hz <= 0 or high_hz <= low_hz:
            raise ValueError("need 0 < low_hz < high_hz")
        if not self.simulate(clock_hz=low_hz, data_hz=low_hz / 10, vdd=vdd).functional:
            raise ValueError(f"register not functional even at {low_hz} Hz")
        lo, hi = low_hz, high_hz
        if self.simulate(clock_hz=hi, data_hz=hi / 10, vdd=vdd).functional:
            return hi
        while hi / lo > 1.0 + resolution:
            mid = (lo * hi) ** 0.5
            if self.simulate(clock_hz=mid, data_hz=mid / 10, vdd=vdd).functional:
                lo = mid
            else:
                hi = mid
        return lo
