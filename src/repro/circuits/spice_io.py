"""SPICE-like netlist serialisation.

Interchange format for the transistor-level circuits: a SPICE-flavoured
card deck with one component per line, so netlists survive round trips
to disk and diff cleanly in reviews.

Supported cards::

    * comment
    .title <name>
    R<name> <a> <b> <ohms>
    C<name> <a> <b> <farads>
    V<name> <p> <n> DC <volts>
    M<name> <drain> <gate> <source> W=<um> L=<um> [POLARITY=p|n]
    .end

Only DC sources serialise (time-varying stimuli are Python callables);
loading produces a fully simulatable :class:`~repro.circuits.netlist.Circuit`.
TFT model parameters beyond geometry/polarity use the library defaults
on load (pass ``parameters`` to override).
"""

from __future__ import annotations

import re

from ..devices.cnt_tft import CntTft, TftParameters
from .netlist import Capacitor, Circuit, Resistor, Tft, VoltageSource

__all__ = ["dump_netlist", "load_netlist", "NetlistFormatError"]


class NetlistFormatError(ValueError):
    """The text is not a valid netlist deck."""


def _format_value(value: float) -> str:
    return f"{value:.6g}"


def dump_netlist(circuit: Circuit) -> str:
    """Serialise a circuit to the card-deck text format.

    Raises :class:`NetlistFormatError` for sources with non-constant
    waveforms (evaluate-at-zero is deliberately not silently assumed).
    """
    lines = [f".title {circuit.name}"]
    for component in circuit.components:
        if isinstance(component, Resistor):
            lines.append(
                f"R{component.name} {component.a} {component.b} "
                f"{_format_value(component.ohms)}"
            )
        elif isinstance(component, Capacitor):
            lines.append(
                f"C{component.name} {component.a} {component.b} "
                f"{_format_value(component.farads)}"
            )
        elif isinstance(component, VoltageSource):
            v0 = component.value(0.0)
            v1 = component.value(1.0)
            if v0 != v1:
                raise NetlistFormatError(
                    f"source {component.name!r} is time-varying; only DC "
                    "sources serialise"
                )
            lines.append(
                f"V{component.name} {component.positive} {component.negative} "
                f"DC {_format_value(v0)}"
            )
        elif isinstance(component, Tft):
            device = component.device
            lines.append(
                f"M{component.name} {component.drain} {component.gate} "
                f"{component.source} W={_format_value(device.width_um)} "
                f"L={_format_value(device.length_um)} "
                f"POLARITY={device.polarity}"
            )
        else:  # pragma: no cover - future component types
            raise NetlistFormatError(f"cannot serialise {component!r}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


_TFT_RE = re.compile(
    r"W=(?P<w>[\d.eE+-]+)\s+L=(?P<l>[\d.eE+-]+)(?:\s+POLARITY=(?P<pol>[pn]))?",
)


def load_netlist(
    text: str, parameters: TftParameters | None = None
) -> Circuit:
    """Parse the card-deck format back into a :class:`Circuit`."""
    circuit = Circuit()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("*"):
            continue
        if line.startswith(".title"):
            circuit.name = line[len(".title"):].strip() or "circuit"
            continue
        if line == ".end":
            break
        kind = line[0].upper()
        try:
            if kind == "R":
                name, a, b, value = line[1:].split()
                circuit.add_resistor(name, a, b, float(value))
            elif kind == "C":
                name, a, b, value = line[1:].split()
                circuit.add_capacitor(name, a, b, float(value))
            elif kind == "V":
                name, p, n, dc_kw, value = line[1:].split()
                if dc_kw.upper() != "DC":
                    raise NetlistFormatError(
                        f"line {line_number}: only DC sources supported"
                    )
                circuit.add_voltage_source(name, p, n, float(value))
            elif kind == "M":
                head, _, tail = line[1:].partition(" W=")
                name, drain, gate, source = head.split()
                match = _TFT_RE.search("W=" + tail)
                if match is None:
                    raise NetlistFormatError(
                        f"line {line_number}: malformed TFT card"
                    )
                device = CntTft(
                    width_um=float(match.group("w")),
                    length_um=float(match.group("l")),
                    parameters=parameters,
                    polarity=match.group("pol") or "p",
                )
                circuit.add_tft(name, gate=gate, drain=drain, source=source,
                                device=device)
            else:
                raise NetlistFormatError(
                    f"line {line_number}: unknown card {line[0]!r}"
                )
        except NetlistFormatError:
            raise
        except ValueError as exc:
            raise NetlistFormatError(
                f"line {line_number}: {exc}"
            ) from exc
    return circuit
