"""Waveform containers and measurement helpers.

Both simulators (MNA transient, gate-level event-driven) produce
waveforms; the Fig. 5 benches measure them the way the paper's scope
shots are read: amplitude, gain in dB, dominant frequency, edge delays
and logic levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransientResult", "amplitude", "gain_db", "dominant_frequency",
           "crossing_times", "propagation_delay", "to_logic"]


@dataclass
class TransientResult:
    """Sampled transient traces: shared time axis + per-net voltages."""

    times: np.ndarray
    traces: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        for net, trace in self.traces.items():
            if len(trace) != len(self.times):
                raise ValueError(f"trace {net!r} length mismatch")

    def __getitem__(self, net: str) -> np.ndarray:
        return self.traces[net]

    def window(self, t_start: float, t_stop: float | None = None) -> "TransientResult":
        """Slice all traces to ``[t_start, t_stop]`` (end by default)."""
        if t_stop is None:
            t_stop = float(self.times[-1])
        mask = (self.times >= t_start) & (self.times <= t_stop)
        return TransientResult(
            times=self.times[mask],
            traces={net: trace[mask] for net, trace in self.traces.items()},
        )

    def nets(self) -> list[str]:
        """Recorded net names."""
        return list(self.traces)


def amplitude(trace: np.ndarray) -> float:
    """Half the peak-to-peak excursion of a (steady-state) trace."""
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        raise ValueError("empty trace")
    return float(0.5 * (trace.max() - trace.min()))


def gain_db(input_trace: np.ndarray, output_trace: np.ndarray) -> float:
    """Amplitude gain ``20 log10(A_out / A_in)`` in dB."""
    a_in = amplitude(input_trace)
    a_out = amplitude(output_trace)
    if a_in == 0.0:
        raise ValueError("input trace has zero amplitude")
    if a_out == 0.0:
        return float("-inf")
    return float(20.0 * np.log10(a_out / a_in))


def dominant_frequency(times: np.ndarray, trace: np.ndarray) -> float:
    """Frequency (Hz) of the largest non-DC FFT bin.

    Assumes a uniform time axis.
    """
    times = np.asarray(times, dtype=float)
    trace = np.asarray(trace, dtype=float)
    if len(times) != len(trace) or len(times) < 4:
        raise ValueError("need matching traces with >= 4 samples")
    dt = float(times[1] - times[0])
    spectrum = np.abs(np.fft.rfft(trace - trace.mean()))
    frequencies = np.fft.rfftfreq(len(trace), dt)
    return float(frequencies[int(np.argmax(spectrum))])


def crossing_times(
    times: np.ndarray, trace: np.ndarray, level: float, rising: bool = True
) -> np.ndarray:
    """Linear-interpolated times where ``trace`` crosses ``level``."""
    times = np.asarray(times, dtype=float)
    trace = np.asarray(trace, dtype=float)
    above = trace >= level
    if rising:
        hits = np.flatnonzero(~above[:-1] & above[1:])
    else:
        hits = np.flatnonzero(above[:-1] & ~above[1:])
    out = []
    for i in hits:
        v0, v1 = trace[i], trace[i + 1]
        if v1 == v0:
            out.append(times[i])
        else:
            frac = (level - v0) / (v1 - v0)
            out.append(times[i] + frac * (times[i + 1] - times[i]))
    return np.array(out)


def propagation_delay(
    times: np.ndarray,
    input_trace: np.ndarray,
    output_trace: np.ndarray,
    level: float,
    input_rising: bool = True,
    output_rising: bool = False,
) -> float:
    """Median delay from input edges to the next output edge (seconds)."""
    t_in = crossing_times(times, input_trace, level, rising=input_rising)
    t_out = crossing_times(times, output_trace, level, rising=output_rising)
    if len(t_in) == 0 or len(t_out) == 0:
        raise ValueError("no edges found at the given level")
    delays = []
    for t in t_in:
        later = t_out[t_out > t]
        if len(later) > 0:
            delays.append(later[0] - t)
    if not delays:
        raise ValueError("no output edge follows any input edge")
    return float(np.median(delays))


def to_logic(trace: np.ndarray, vdd: float, threshold: float = 0.5) -> np.ndarray:
    """Quantise an analog trace to 0/1 at ``threshold * vdd``."""
    if vdd <= 0:
        raise ValueError("vdd must be positive")
    return (np.asarray(trace, dtype=float) >= threshold * vdd).astype(int)
