"""Core compressed-sensing library (the paper's primary contribution).

Public surface:

* :mod:`repro.core.dct` -- Eq. (4)-(7) DCT bases and fast transforms;
* :mod:`repro.core.sensing` -- the row-sampling encoder matrix ``Phi_M``
  and classic dense baselines;
* :mod:`repro.core.measurement` -- pluggable measurement families: the
  :class:`~repro.core.measurement.MeasurementModel` protocol, the
  ``register_measurement`` registry (mirroring ``register_basis``), and
  the built-in ``row_sampling`` / ``dense_codes`` / ``block_sampling``
  families;
* :mod:`repro.core.operators` -- the combined ``A = Phi_M @ Psi`` map;
* :mod:`repro.core.engine` -- the shared decode engine: frozen
  :class:`~repro.core.engine.DecodeContext` plans, the bounded
  ``(shape, basis)`` operator cache, and the canonical
  sample -> solve -> reshape path every layer routes through;
* :mod:`repro.core.executor` -- the execution seam: serial / thread /
  process backends behind one ``map_tasks`` protocol, used by every
  fan-out (tiles, batched decodes, sweeps);
* :mod:`repro.core.solvers` -- L1 / greedy decoders for Eq. (9);
* :mod:`repro.core.rpca` -- robust PCA outlier detection;
* :mod:`repro.core.strategies` -- oracle / resampling / RPCA sampling;
* :mod:`repro.core.pipeline` -- the Fig. 7 evaluation pipeline;
* :mod:`repro.core.theory` -- Eq. (1)/(2) estimates;
* :mod:`repro.core.errors`, :mod:`repro.core.metrics` -- injection and
  evaluation helpers.
"""

from .blocks import BlockProcessor
from .dct import Dct2Basis, dct2, dct_basis_1d, dct_basis_2d, idct2
from .engine import (
    OPERATOR_MODES,
    DecodeContext,
    DecodeEngine,
    OperatorCache,
    get_engine,
    register_basis,
    set_engine,
    use_engine,
)
from .errors import SparseErrorModel, add_measurement_noise, inject_sparse_errors
from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    SupervisedExecutor,
    TaskError,
    TaskResult,
    ThreadExecutor,
    WorkerCrash,
    WorkerLossEvent,
    collect_values,
    default_workers,
    resolve_executor,
)
from .metrics import (
    classification_accuracy,
    confusion_matrix,
    normalized_error,
    psnr,
    rmse,
)
from .operators import (
    CompositeOperator,
    DenseOperator,
    LinearOperator,
    SensingOperator,
    SeparableDCTOperator,
)
from .pipeline import (
    FrameOutcome,
    RobustnessSweep,
    SweepPoint,
    evaluate_frame,
    normalize_frame,
    process_frames,
)
from .measurement import (
    BlockSamplingMatrix,
    BlockSamplingModel,
    DenseCodeMatrix,
    DenseCodesModel,
    MeasurementModel,
    RowSamplingModel,
    get_measurement,
    measurement_names,
    register_measurement,
    resolve_measurement_for,
)
from .rpca import RpcaResult, detect_outliers, rpca
from .sensing import (
    RowSamplingMatrix,
    bernoulli_matrix,
    column_control_words,
    gaussian_matrix,
    hadamard_matrix,
    sample_indices,
    weighted_sample_indices,
)
from .solvers import (
    SolverResult,
    batch_solver_names,
    debias_on_support,
    solve,
    solve_batch,
    solve_bp_dr,
    solver_names,
)
from .strategies import (
    DecodeResult,
    NaiveStrategy,
    OracleExclusionStrategy,
    ResamplingStrategy,
    RpcaExclusionStrategy,
    WeightedSamplingStrategy,
    sample_and_reconstruct,
    validate_decode_inputs,
)
from .video import Dct3Basis, dct3, idct3, reconstruct_burst
from .wavelet import Haar2Basis, haar2, ihaar2
from .theory import (
    best_k_term,
    error_bound,
    mutual_coherence,
    recoverable_sparsity,
    required_measurements,
    significant_coefficients,
    sparsity_fraction,
)

__all__ = [
    "Dct2Basis",
    "BlockProcessor",
    "dct2",
    "idct2",
    "dct_basis_1d",
    "dct_basis_2d",
    "SparseErrorModel",
    "inject_sparse_errors",
    "add_measurement_noise",
    "rmse",
    "psnr",
    "normalized_error",
    "classification_accuracy",
    "confusion_matrix",
    "LinearOperator",
    "DenseOperator",
    "CompositeOperator",
    "SeparableDCTOperator",
    "SensingOperator",
    "OPERATOR_MODES",
    "RowSamplingMatrix",
    "gaussian_matrix",
    "bernoulli_matrix",
    "hadamard_matrix",
    "sample_indices",
    "column_control_words",
    "MeasurementModel",
    "RowSamplingModel",
    "DenseCodesModel",
    "BlockSamplingModel",
    "DenseCodeMatrix",
    "BlockSamplingMatrix",
    "get_measurement",
    "measurement_names",
    "register_measurement",
    "resolve_measurement_for",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SupervisedExecutor",
    "WorkerCrash",
    "WorkerLossEvent",
    "TaskResult",
    "TaskError",
    "collect_values",
    "default_workers",
    "resolve_executor",
    "SolverResult",
    "solve",
    "solve_batch",
    "solver_names",
    "batch_solver_names",
    "debias_on_support",
    "solve_bp_dr",
    "RpcaResult",
    "rpca",
    "detect_outliers",
    "NaiveStrategy",
    "OracleExclusionStrategy",
    "ResamplingStrategy",
    "RpcaExclusionStrategy",
    "WeightedSamplingStrategy",
    "sample_and_reconstruct",
    "DecodeResult",
    "validate_decode_inputs",
    "DecodeContext",
    "DecodeEngine",
    "OperatorCache",
    "get_engine",
    "register_basis",
    "set_engine",
    "use_engine",
    "Haar2Basis",
    "Dct3Basis",
    "dct3",
    "idct3",
    "reconstruct_burst",
    "haar2",
    "ihaar2",
    "weighted_sample_indices",
    "normalize_frame",
    "evaluate_frame",
    "process_frames",
    "FrameOutcome",
    "SweepPoint",
    "RobustnessSweep",
    "required_measurements",
    "recoverable_sparsity",
    "error_bound",
    "best_k_term",
    "significant_coefficients",
    "sparsity_fraction",
    "mutual_coherence",
]
