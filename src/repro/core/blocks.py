"""Block-wise compressed sensing for large arrays.

The decode cost of the whole-frame solver grows super-linearly in N
(each FISTA iteration is O(N log N) and the iteration count grows too),
which matters for the "large area" part of the paper's title: a
1000 x 1000 e-skin should not solve one million-variable program per
frame.  The standard engineering answer is *tiling*: partition the
array into blocks, decode each block independently (embarrassingly
parallel in silicon), and blend overlapping block borders to hide
seams.

:class:`BlockProcessor` wraps any per-block reconstruction callable and
handles the tiling, the per-block measurement bookkeeping and the
overlap blending.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dct import Dct2Basis
from .operators import SensingOperator
from .sensing import RowSamplingMatrix
from .solvers import solve

__all__ = ["BlockProcessor"]


@dataclass
class BlockProcessor:
    """Tile-and-decode for frames larger than one solver call should be.

    Parameters
    ----------
    block_shape:
        Tile size; frame dimensions must be divisible by it after
        accounting for ``overlap`` striding.
    overlap:
        Pixels of overlap between adjacent tiles (blended linearly);
        0 = disjoint tiles.
    solver:
        Decoder name for the per-block solve.
    sampling_fraction:
        M/N within each block.
    """

    block_shape: tuple[int, int] = (32, 32)
    overlap: int = 0
    solver: str = "fista"
    sampling_fraction: float = 0.5
    solver_options: dict | None = None

    def __post_init__(self) -> None:
        rows, cols = self.block_shape
        if rows < 4 or cols < 4:
            raise ValueError("blocks must be at least 4x4")
        if self.overlap < 0 or self.overlap >= min(rows, cols):
            raise ValueError("overlap must be in [0, min(block dims))")
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError("sampling_fraction must be in (0, 1]")

    def _tiles(self, frame_shape: tuple[int, int]) -> list[tuple[int, int]]:
        rows, cols = frame_shape
        br, bc = self.block_shape
        step_r, step_c = br - self.overlap, bc - self.overlap
        if (rows - self.overlap) % step_r or (cols - self.overlap) % step_c:
            raise ValueError(
                f"frame {frame_shape} not tileable by blocks {self.block_shape} "
                f"with overlap {self.overlap}"
            )
        origins = []
        for r0 in range(0, rows - br + 1, step_r):
            for c0 in range(0, cols - bc + 1, step_c):
                origins.append((r0, c0))
        return origins

    def _block_weight(self) -> np.ndarray:
        """Blending weight: linear ramps over the overlap margins."""
        br, bc = self.block_shape
        if self.overlap == 0:
            return np.ones(self.block_shape)
        ramp_r = np.minimum(
            np.minimum(np.arange(br) + 1, br - np.arange(br)),
            self.overlap + 1,
        ) / (self.overlap + 1)
        ramp_c = np.minimum(
            np.minimum(np.arange(bc) + 1, bc - np.arange(bc)),
            self.overlap + 1,
        ) / (self.overlap + 1)
        return np.outer(ramp_r, ramp_c)

    def reconstruct(
        self,
        frame: np.ndarray,
        rng: np.random.Generator,
        exclude_mask: np.ndarray | None = None,
        noise_sigma: float = 0.0,
    ) -> np.ndarray:
        """Sample + decode every tile; returns the blended frame.

        ``exclude_mask`` marks pixels (e.g. known defects) that no tile
        may sample.
        """
        frame = np.asarray(frame, dtype=float)
        if frame.ndim != 2:
            raise ValueError(f"expected a 2-D frame, got {frame.shape}")
        if exclude_mask is not None:
            exclude_mask = np.asarray(exclude_mask, dtype=bool)
            if exclude_mask.shape != frame.shape:
                raise ValueError("exclude_mask shape must match frame")
        br, bc = self.block_shape
        n_block = br * bc
        basis = Dct2Basis(self.block_shape)
        weight = self._block_weight()
        accumulator = np.zeros_like(frame)
        weight_sum = np.zeros_like(frame)
        for r0, c0 in self._tiles(frame.shape):
            tile = frame[r0:r0 + br, c0:c0 + bc]
            exclude = None
            if exclude_mask is not None:
                local = exclude_mask[r0:r0 + br, c0:c0 + bc]
                exclude = np.flatnonzero(local.ravel())
            m = max(1, int(round(self.sampling_fraction * n_block)))
            if exclude is not None:
                m = min(m, n_block - len(exclude))
            phi = RowSamplingMatrix.random(n_block, m, rng, exclude=exclude)
            operator = SensingOperator(phi, basis)
            measurements = phi.apply(tile.ravel())
            if noise_sigma > 0:
                measurements = measurements + rng.normal(
                    0.0, noise_sigma, size=measurements.shape
                )
            result = solve(
                self.solver, operator, measurements,
                **(self.solver_options or {}),
            )
            recon = operator.synthesize(result.coefficients).reshape(
                self.block_shape
            )
            accumulator[r0:r0 + br, c0:c0 + bc] += recon * weight
            weight_sum[r0:r0 + br, c0:c0 + bc] += weight
        if np.any(weight_sum == 0):
            raise RuntimeError("tiling left uncovered pixels")
        return accumulator / weight_sum

    def num_blocks(self, frame_shape: tuple[int, int]) -> int:
        """Tile count for a frame shape."""
        return len(self._tiles(frame_shape))
