"""Block-wise compressed sensing for large arrays.

The decode cost of the whole-frame solver grows super-linearly in N
(each FISTA iteration is O(N log N) and the iteration count grows too),
which matters for the "large area" part of the paper's title: a
1000 x 1000 e-skin should not solve one million-variable program per
frame.  The standard engineering answer is *tiling*: partition the
array into blocks, decode each block independently (embarrassingly
parallel in silicon), and blend overlapping block borders to hide
seams.

:class:`BlockProcessor` handles the tiling, the per-block measurement
bookkeeping and the overlap blending.  All tiles share one cached
operator template from :mod:`repro.core.engine` (tiles have one shape,
so the pre-engine per-tile basis/operator rebuild was N-fold waste),
and an optional ``strategy`` hook routes each tile through any strategy
object -- most usefully
:class:`~repro.resilience.runtime.ResilientStrategy`, which turns a
solver fault inside one tile into a degraded *tile* instead of a lost
frame.

Tiles are *actually* decoded in parallel when an ``executor=`` is set
(see :mod:`repro.core.executor`): each tile gets its own spawned child
generator, so the per-tile decode stream is independent of scheduling
and the reconstruction is bit-identical across the serial, thread and
process backends.  A process pool ships the frozen (picklable)
:class:`~repro.core.engine.DecodeContext` to each worker, whose own
engine cache amortises the shared operator template exactly like the
parent's.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np

from .engine import DecodeContext, _validate_operator_mode, get_engine
from .executor import collect_values, resolve_executor

__all__ = ["BlockProcessor"]


def _engine_tile_task(args):
    """Decode one tile through the engine plan (picklable task body)."""
    plan, tile, local_mask, rng = args
    if local_mask is not None and bool(local_mask.all()):
        # Every pixel excluded: nothing measurable, decode to zeros
        # (matches the empty-measurement solve this tile used to run).
        return np.zeros(plan.shape), None
    if local_mask is not None:
        plan = replace(plan, exclude_mask=local_mask)
    return get_engine().decode(tile, plan, rng), None


def _strategy_tile_task(args):
    """Decode one tile through a private strategy copy (picklable)."""
    strategy, tile, local_mask, rng = args
    kwargs = {} if local_mask is None else {"error_mask": local_mask}
    recon = strategy.reconstruct(tile, rng, **kwargs)
    return np.asarray(recon, dtype=float), getattr(
        strategy, "last_outcome", None
    )


@dataclass
class BlockProcessor:
    """Tile-and-decode for frames larger than one solver call should be.

    Parameters
    ----------
    block_shape:
        Tile size.  Frames at least as large as one block in each
        dimension are tileable: the grid strides by
        ``block - overlap`` and a short final row/column of tiles is
        shifted inward so every pixel is covered (ragged edges decode
        as full-size tiles with extra overlap, blended like any other
        overlap).
    overlap:
        Pixels of overlap between adjacent tiles (blended linearly);
        0 = disjoint tiles.
    solver:
        Decoder name for the per-block solve.
    sampling_fraction:
        M/N within each block.
    strategy:
        Optional per-tile reconstruction strategy (any object with
        ``reconstruct(tile, rng, **kwargs)``, e.g. a strategy from
        :mod:`repro.core.strategies` or a
        :class:`~repro.resilience.runtime.ResilientStrategy` wrapper
        for per-block graceful degradation).  When set, the strategy's
        own sampling/solver configuration governs each tile and
        ``solver`` / ``sampling_fraction`` / ``solver_options`` here
        are ignored; per-tile exclusion masks are forwarded as
        ``error_mask``.
    executor:
        Optional parallel tile decode: anything
        :func:`~repro.core.executor.resolve_executor` accepts (``None``
        keeps the legacy sequential loop).  Each tile decodes from its
        own ``rng.spawn`` child and strategies are copied per tile, so
        every backend -- serial, thread, process -- reconstructs the
        frame bit-identically for a given seed.
    operator_mode:
        Per-tile operator mode forwarded to the engine plans:
        ``"implicit"`` (matrix-free, default), ``"dense"``
        (materialised ``A``), or ``None`` for the engine default.
        Tiles are small, so ``"dense"`` is actually viable here and
        lets benches compare the two routes at block granularity.

    Attributes
    ----------
    last_outcomes:
        After a ``reconstruct`` call with a strategy that exposes
        ``last_outcome`` (the resilient wrapper does), the list of
        ``((row0, col0), DecodeOutcome)`` pairs per tile, in tile-grid
        (row-major origin) order; ``None`` otherwise.  The ordering is
        stable across executor backends.
    """

    block_shape: tuple[int, int] = (32, 32)
    overlap: int = 0
    solver: str = "fista"
    sampling_fraction: float = 0.5
    solver_options: dict | None = None
    strategy: object | None = None
    executor: object | None = None
    operator_mode: str | None = None
    last_outcomes: list | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        rows, cols = self.block_shape
        if rows < 4 or cols < 4:
            raise ValueError("blocks must be at least 4x4")
        if self.overlap < 0 or self.overlap >= min(rows, cols):
            raise ValueError("overlap must be in [0, min(block dims))")
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError("sampling_fraction must be in (0, 1]")
        _validate_operator_mode(self.operator_mode)
        if self.strategy is not None and not hasattr(
            self.strategy, "reconstruct"
        ):
            raise TypeError(
                f"{type(self.strategy).__name__} has no reconstruct(); "
                "pass a strategy object or None"
            )

    @staticmethod
    def _axis_origins(size: int, block: int, step: int) -> list[int]:
        """Tile origins along one axis, shifting a ragged tail inward."""
        origins = list(range(0, size - block + 1, step))
        if origins[-1] + block < size:
            origins.append(size - block)
        return origins

    def _tiles(self, frame_shape: tuple[int, int]) -> list[tuple[int, int]]:
        rows, cols = frame_shape
        br, bc = self.block_shape
        if rows < br or cols < bc:
            raise ValueError(
                f"frame {frame_shape} smaller than one block "
                f"{self.block_shape}; shrink the blocks"
            )
        step_r, step_c = br - self.overlap, bc - self.overlap
        return [
            (r0, c0)
            for r0 in self._axis_origins(rows, br, step_r)
            for c0 in self._axis_origins(cols, bc, step_c)
        ]

    def _block_weight(self) -> np.ndarray:
        """Blending weight: linear ramps over the overlap margins."""
        br, bc = self.block_shape
        if self.overlap == 0:
            return np.ones(self.block_shape)
        ramp_r = np.minimum(
            np.minimum(np.arange(br) + 1, br - np.arange(br)),
            self.overlap + 1,
        ) / (self.overlap + 1)
        ramp_c = np.minimum(
            np.minimum(np.arange(bc) + 1, bc - np.arange(bc)),
            self.overlap + 1,
        ) / (self.overlap + 1)
        return np.outer(ramp_r, ramp_c)

    def _decode_tile(
        self,
        tile: np.ndarray,
        local_mask: np.ndarray | None,
        plan: DecodeContext,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One tile through the strategy hook or the engine plan."""
        if self.strategy is not None:
            kwargs = {} if local_mask is None else {"error_mask": local_mask}
            recon = self.strategy.reconstruct(tile, rng, **kwargs)
            outcome = getattr(self.strategy, "last_outcome", None)
            if outcome is not None and self.last_outcomes is not None:
                self.last_outcomes.append(outcome)
            return np.asarray(recon, dtype=float)
        if local_mask is not None and bool(local_mask.all()):
            # Every pixel excluded: nothing measurable, decode to zeros
            # (matches the empty-measurement solve this tile used to run).
            return np.zeros(self.block_shape)
        if local_mask is not None:
            plan = replace(plan, exclude_mask=local_mask)
        return get_engine().decode(tile, plan, rng)

    def _decode_tiles_executor(
        self,
        frame: np.ndarray,
        exclude_mask: np.ndarray | None,
        plan: DecodeContext,
        rng: np.random.Generator,
        origins: list[tuple[int, int]],
        executor,
    ) -> list[tuple[np.ndarray, object]]:
        """All tiles through the executor; per-tile spawned RNG children.

        Each tile gets an independent ``rng.spawn`` child, so the
        decode stream inside a tile never depends on which worker ran
        it or in what order -- the determinism contract behind the
        serial/thread/process bit-identity tests.  Strategies are
        deep-copied per tile: parallel tiles must not share the mutable
        per-attempt state of e.g. ``ResilientStrategy``.
        """
        br, bc = self.block_shape
        children = rng.spawn(len(origins))
        tasks = []
        for (r0, c0), child in zip(origins, children):
            tile = np.ascontiguousarray(frame[r0:r0 + br, c0:c0 + bc])
            local = None
            if exclude_mask is not None:
                local = np.ascontiguousarray(
                    exclude_mask[r0:r0 + br, c0:c0 + bc]
                )
            if self.strategy is not None:
                tasks.append((copy.deepcopy(self.strategy), tile, local, child))
            else:
                tasks.append((plan, tile, local, child))
        fn = (
            _strategy_tile_task
            if self.strategy is not None
            else _engine_tile_task
        )
        return collect_values(executor.map_tasks(fn, tasks, label="blocks"))

    def reconstruct(
        self,
        frame: np.ndarray,
        rng: np.random.Generator,
        exclude_mask: np.ndarray | None = None,
        noise_sigma: float = 0.0,
    ) -> np.ndarray:
        """Sample + decode every tile; returns the blended frame.

        ``exclude_mask`` marks pixels (e.g. known defects) that no tile
        may sample.  ``noise_sigma`` applies to the engine path; when a
        ``strategy`` is set its own noise configuration governs.  With
        an ``executor`` the tiles decode in parallel (each from a
        spawned child generator); without one the legacy sequential
        loop consumes ``rng`` directly.
        """
        frame = np.asarray(frame, dtype=float)
        if frame.ndim != 2:
            raise ValueError(f"expected a 2-D frame, got {frame.shape}")
        if exclude_mask is not None:
            exclude_mask = np.asarray(exclude_mask, dtype=bool)
            if exclude_mask.shape != frame.shape:
                raise ValueError("exclude_mask shape must match frame")
        br, bc = self.block_shape
        plan = DecodeContext(
            shape=self.block_shape,
            sampling_fraction=self.sampling_fraction,
            solver=self.solver,
            solver_options=self.solver_options or {},
            noise_sigma=noise_sigma,
            operator_mode=self.operator_mode,
        )
        weight = self._block_weight()
        accumulator = np.zeros_like(frame)
        weight_sum = np.zeros_like(frame)
        self.last_outcomes = [] if self.strategy is not None else None
        origins = self._tiles(frame.shape)
        outcome_origins: list[tuple[int, int]] = []
        executor = resolve_executor(self.executor)
        if executor is not None:
            decoded = self._decode_tiles_executor(
                frame, exclude_mask, plan, rng, origins, executor
            )
            for (r0, c0), (recon, outcome) in zip(origins, decoded):
                if outcome is not None and self.last_outcomes is not None:
                    outcome_origins.append((r0, c0))
                    self.last_outcomes.append(outcome)
                accumulator[r0:r0 + br, c0:c0 + bc] += recon * weight
                weight_sum[r0:r0 + br, c0:c0 + bc] += weight
        else:
            for r0, c0 in origins:
                tile = frame[r0:r0 + br, c0:c0 + bc]
                local = None
                if exclude_mask is not None:
                    local = exclude_mask[r0:r0 + br, c0:c0 + bc]
                before = (
                    len(self.last_outcomes)
                    if self.last_outcomes is not None
                    else 0
                )
                recon = self._decode_tile(tile, local, plan, rng)
                if self.last_outcomes is not None and len(
                    self.last_outcomes
                ) > before:
                    outcome_origins.append((r0, c0))
                accumulator[r0:r0 + br, c0:c0 + bc] += recon * weight
                weight_sum[r0:r0 + br, c0:c0 + bc] += weight
        if self.last_outcomes is not None:
            self.last_outcomes = list(zip(outcome_origins, self.last_outcomes))
        if np.any(weight_sum == 0):
            raise RuntimeError("tiling left uncovered pixels")
        return accumulator / weight_sum

    def num_blocks(self, frame_shape: tuple[int, int]) -> int:
        """Tile count for a frame shape."""
        return len(self._tiles(frame_shape))
