"""Two-dimensional DCT bases and fast transform operators.

The paper (Sec. 3.1, Eqs. 3-7) expresses the sensor-array image ``y`` as a
product of an N x N inverse-DCT basis ``Psi`` and a sparse coefficient
vector ``x``::

    y = Psi @ x

where ``y`` stacks the pixel values ``f(a, b)`` of a sqrt(N) x sqrt(N)
array and ``x`` stacks the DCT-II coefficients ``F(u, v)``.  This module
builds the explicit ``Psi`` matrix exactly as written in Eqs. (4)-(7) and
also provides fast separable transforms (via ``scipy.fft``) that apply the
same orthonormal DCT without materialising the matrix.

Conventions
-----------
* Images are 2-D ``numpy`` arrays of shape ``(rows, cols)``.
* Vectorisation is row-major (C order): ``vec = image.ravel()``.
* All transforms are orthonormal, so ``Psi`` is an orthogonal matrix and
  ``Psi.T`` performs the forward DCT.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as _fft

__all__ = [
    "dct2",
    "idct2",
    "dct_basis_1d",
    "dct_basis_2d",
    "Dct2Basis",
    "SeparableDct2Basis",
]


def dct2(image: np.ndarray) -> np.ndarray:
    """Forward orthonormal 2-D DCT-II of ``image``.

    Parameters
    ----------
    image:
        2-D array of pixel values ``f(a, b)``.

    Returns
    -------
    numpy.ndarray
        Array of DCT coefficients ``F(u, v)`` with the same shape.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"dct2 expects a 2-D array, got shape {image.shape}")
    return _fft.dctn(image, type=2, norm="ortho")


def idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse orthonormal 2-D DCT-II (i.e. the ``Psi @ x`` product)."""
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.ndim != 2:
        raise ValueError(
            f"idct2 expects a 2-D array, got shape {coefficients.shape}"
        )
    return _fft.idctn(coefficients, type=2, norm="ortho")


def dct_basis_1d(n: int) -> np.ndarray:
    """Return the ``n x n`` orthonormal DCT-II synthesis matrix.

    Column ``u`` holds the ``u``-th DCT basis vector, i.e. the matrix maps
    coefficients to samples: ``samples = C @ coeffs``.  Entries follow the
    paper's Eq. (5) scaling (Eq. 7 normalisation constants)::

        C[a, u] = alpha_u * cos(pi * (2 a + 1) * u / (2 n))

    with ``alpha_0 = sqrt(1/n)`` and ``alpha_u = sqrt(2/n)`` otherwise.
    """
    if n < 1:
        raise ValueError(f"basis size must be >= 1, got {n}")
    a = np.arange(n)[:, None]
    u = np.arange(n)[None, :]
    basis = np.cos(np.pi * (2 * a + 1) * u / (2 * n))
    scale = np.full(n, np.sqrt(2.0 / n))
    scale[0] = np.sqrt(1.0 / n)
    return basis * scale[None, :]


def dct_basis_2d(rows: int, cols: int | None = None) -> np.ndarray:
    """Return the explicit ``N x N`` 2-D IDCT basis ``Psi`` of Eqs. (4)-(7).

    ``N = rows * cols``.  The matrix satisfies ``image.ravel() = Psi @
    coeffs.ravel()`` for row-major vectorisation, and is orthogonal:
    ``Psi.T @ Psi == I``.

    The paper writes the square case (``cols == rows == sqrt(N)``); we
    support rectangular arrays (e.g. the 100 x 33 ultrasound frames of
    Fig. 2) through the separable Kronecker construction
    ``Psi = C_rows (x) C_cols``.
    """
    if cols is None:
        cols = rows
    return np.kron(dct_basis_1d(rows), dct_basis_1d(cols))


class Dct2Basis:
    """Matrix-free orthonormal 2-D DCT basis for a fixed array shape.

    Acts like the explicit ``Psi`` of :func:`dct_basis_2d` but applies the
    separable fast transform (``O(N log N)`` instead of ``O(N^2)``), which
    is what the CS solvers use on every iteration.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` of the sensor array.
    """

    orthonormal = True

    def __init__(self, shape: tuple[int, int]):
        rows, cols = shape
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid array shape {shape}")
        self.shape = (int(rows), int(cols))
        self.n = int(rows) * int(cols)

    @property
    def nbytes(self) -> int:
        """Memory held by the basis representation (FFT plans: none)."""
        return 0

    def synthesize(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x``: map coefficient vector ``x`` to pixel vector ``y``."""
        coeffs = np.asarray(coeffs, dtype=float)
        return idct2(coeffs.reshape(self.shape)).ravel()

    def analyze(self, pixels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y``: map pixel vector ``y`` to coefficient vector."""
        pixels = np.asarray(pixels, dtype=float)
        return dct2(pixels.reshape(self.shape)).ravel()

    def synthesize_batch(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x`` over a ``(k, n)`` stack of coefficient vectors.

        One batched ``idctn`` over the trailing two axes runs the same
        per-slice transform as :meth:`synthesize` (pocketfft applies
        each 2-D slice independently), so each row of the result is
        bitwise the serial apply -- the property the lockstep multi-RHS
        solvers rely on.
        """
        coeffs = np.asarray(coeffs, dtype=float).reshape(-1, *self.shape)
        pixels = _fft.idctn(coeffs, type=2, norm="ortho", axes=(-2, -1))
        return pixels.reshape(len(coeffs), self.n)

    def analyze_batch(self, pixels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y`` over a ``(k, n)`` stack of pixel vectors."""
        pixels = np.asarray(pixels, dtype=float).reshape(-1, *self.shape)
        coeffs = _fft.dctn(pixels, type=2, norm="ortho", axes=(-2, -1))
        return coeffs.reshape(len(pixels), self.n)

    def to_matrix(self) -> np.ndarray:
        """Materialise the explicit ``N x N`` basis (testing / small N)."""
        return dct_basis_2d(*self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dct2Basis(shape={self.shape})"


class SeparableDct2Basis:
    """Orthonormal 2-D DCT basis applied as two small dense matmuls.

    Numerically equivalent to :class:`Dct2Basis` (same orthonormal
    DCT-II, different rounding), but each apply is two ``rows x rows`` /
    ``cols x cols`` BLAS products instead of a ``scipy.fft.dctn``
    dispatch.  At e-skin frame sizes the dispatch overhead dominates the
    transform cost, so this is the faster representation -- but it
    scales as ``O(N^1.5)`` versus the FFT's ``O(N log N)``, hence the
    engine only selects it for small shapes.
    """

    orthonormal = True

    def __init__(self, shape: tuple[int, int]):
        rows, cols = shape
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid array shape {shape}")
        self.shape = (int(rows), int(cols))
        self.n = int(rows) * int(cols)
        # Synthesis factors: image = C_r @ coeffs_2d @ C_c.T
        self._c_rows = dct_basis_1d(int(rows))
        self._c_cols = dct_basis_1d(int(cols))
        self._c_rows.setflags(write=False)
        self._c_cols.setflags(write=False)

    @property
    def nbytes(self) -> int:
        """Memory held by the two 1-D factor matrices."""
        return int(self._c_rows.nbytes + self._c_cols.nbytes)

    def synthesize(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x``: map coefficient vector ``x`` to pixel vector ``y``."""
        coeffs = np.asarray(coeffs, dtype=float).reshape(self.shape)
        return (self._c_rows @ coeffs @ self._c_cols.T).ravel()

    def analyze(self, pixels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y``: map pixel vector ``y`` to coefficient vector."""
        pixels = np.asarray(pixels, dtype=float).reshape(self.shape)
        return (self._c_rows.T @ pixels @ self._c_cols).ravel()

    def synthesize_batch(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x`` over a ``(k, n)`` stack of coefficient vectors.

        ``np.matmul`` broadcasting runs the same two per-slice GEMMs as
        :meth:`synthesize` (same operand shapes, same evaluation order),
        so each row of the result is bitwise the serial apply -- the
        property the lockstep multi-RHS solvers rely on.
        """
        coeffs = np.asarray(coeffs, dtype=float).reshape(-1, *self.shape)
        pixels = np.matmul(np.matmul(self._c_rows, coeffs), self._c_cols.T)
        return pixels.reshape(len(coeffs), self.n)

    def analyze_batch(self, pixels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y`` over a ``(k, n)`` stack of pixel vectors."""
        pixels = np.asarray(pixels, dtype=float).reshape(-1, *self.shape)
        coeffs = np.matmul(np.matmul(self._c_rows.T, pixels), self._c_cols)
        return coeffs.reshape(len(pixels), self.n)

    def to_matrix(self) -> np.ndarray:
        """Materialise the explicit ``N x N`` basis (testing / small N)."""
        return np.kron(self._c_rows, self._c_cols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeparableDct2Basis(shape={self.shape})"
