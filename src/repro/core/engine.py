"""The unified decode engine: one canonical sample -> solve -> reshape path.

Every decode entry point in the repo (the strategy layer, the block
processor, the streaming imager, the video burst decoder, the
resilience runtime and the theory experiments) used to rebuild a
:class:`~repro.core.dct.Dct2Basis` and a
:class:`~repro.core.operators.SensingOperator` per call -- per *round*
in the resampling loop, per *tile* in the block processor, per
*attempt* in the resilience retry chain.  For the streaming workloads
the ROADMAP targets (thousands of same-shape frames decoded
back-to-back) that per-call setup is pure waste: the basis depends only
on ``(shape, kind)``, and for the paper's row-sampling encoder with an
orthonormal basis the solver step size is a constant.

This module is the seam that amortises all of it:

* :class:`DecodeContext` -- a frozen decode plan (shape, sampling
  fraction, solver config, exclusion mask, sampling weights, operator
  mode) that can be built once per stream and reused per frame;
* :class:`OperatorCache` -- a bounded, thread-safe LRU cache of basis
  entries keyed on ``(shape, basis kind, operator mode, measurement
  family)``, with hit/miss/eviction/byte counters exported through
  :mod:`repro.instrument`;
* :class:`DecodeEngine` -- ``decode(frame, plan, rng)``, the single
  canonical sample -> solve -> validate -> reshape path (including the
  ``full_output`` :class:`DecodeResult` plumbing) that every other
  layer now routes through.

The engine hands out :class:`~repro.core.operators.LinearOperator`
implementations, never matrices.  Two operator modes exist:

* ``"implicit"`` (default): row-sampled separable-DCT applies through
  :class:`~repro.core.operators.SeparableDCTOperator` -- ``O(N log N)``
  time, ``O(1)`` memory beyond the sampling mask.  For small shapes the
  2-D DCT is applied as two tiny BLAS matmuls
  (:class:`~repro.core.dct.SeparableDct2Basis`) instead of two
  ``scipy.fft`` dispatches per solver iteration; the operator carries a
  cached spectral-norm hint (``||A||_2 = 1`` for row sampling of an
  orthonormal basis), so gradient solvers skip the 30-round power
  iteration they otherwise run per solve.
* ``"dense"``: the cache materialises ``Psi`` once per key and hands
  out :class:`~repro.core.operators.DenseOperator` views -- ``O(N^2)``
  memory and applies.  The control arm for the implicit-vs-dense
  benchmarks and the escape hatch for exotic bases; guarded to small
  frames (see ``docs/ENGINE.md``).

All cached objects are deterministic functions of
``(shape, kind, mode, measurement)``, so cached and cache-disabled
decodes are bit-identical under a fixed seed (covered by regression
tests).
Construction of ``Dct2Basis`` / ``SensingOperator`` outside the
operator layer is forbidden in library and example code, as is dense
materialisation (``to_dense`` / ``to_matrix``); CI enforces both seams
with ``tools/check_engine_seam.py``.

Set ``REPRO_ENGINE_CACHE=0`` in the environment to disable the default
engine's cache (per-call rebuild, same numerics); see ``docs/ENGINE.md``
for cache keys, invalidation and how to plug a custom basis.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Callable, Mapping, NamedTuple

import numpy as np

from .. import instrument
from .dct import Dct2Basis, SeparableDct2Basis
from .measurement import (
    MeasurementModel,
    get_measurement,
    resolve_measurement_for,
)
from .operators import DenseOperator, SensingOperator
from .solvers import SolverResult, solve

__all__ = [
    "BasisSpec",
    "CacheEntry",
    "DecodeContext",
    "DecodeEngine",
    "DecodeResult",
    "EngineOperator",
    "OPERATOR_MODES",
    "OperatorCache",
    "SeparableDct2Basis",
    "get_engine",
    "register_basis",
    "set_engine",
    "use_engine",
    "validate_decode_inputs",
]

#: The operator representations the engine can hand out.
OPERATOR_MODES = ("implicit", "dense")

# Dense mode materialises an N x N basis; above this N the matrix would
# dwarf the implicit representation by orders of magnitude (128^2 frames
# already need a 2 GiB Psi), so the engine refuses instead of thrashing.
_DENSE_MODE_MAX_N = 8192


def _validate_operator_mode(mode: str | None) -> str | None:
    if mode is not None and mode not in OPERATOR_MODES:
        raise ValueError(
            f"operator_mode must be one of {OPERATOR_MODES} (or None), "
            f"got {mode!r}"
        )
    return mode


class DecodeResult(NamedTuple):
    """Full output of one decode round (``full_output=True``).

    ``reconstruction`` is what the plain call returns; ``solver_result``
    and ``measurements`` expose the solver diagnostics (residual,
    convergence, divergence flags) and the measurement vector the
    resilience layer needs for health validation.
    """

    reconstruction: np.ndarray
    solver_result: SolverResult
    measurements: np.ndarray


def validate_decode_inputs(
    frame: np.ndarray,
    sampling_fraction: float,
    noise_sigma: float = 0.0,
) -> np.ndarray:
    """Validate the shared decode inputs; returns the frame as float.

    Rejects non-2-D frames, NaN/Inf-poisoned frames (they would
    propagate through ``Phi_M`` into the solver and surface as a
    cryptic linalg failure many layers down), a ``sampling_fraction``
    outside ``(0, 1]`` and a negative ``noise_sigma``.
    """
    frame = np.asarray(frame, dtype=float)
    if frame.ndim != 2:
        raise ValueError(f"expected a 2-D frame, got shape {frame.shape}")
    if frame.size == 0:
        raise ValueError(f"frame is empty, got shape {frame.shape}")
    if not np.all(np.isfinite(frame)):
        bad = int(np.count_nonzero(~np.isfinite(frame)))
        raise ValueError(
            f"frame contains {bad} NaN/Inf pixel(s); sanitise or gate the "
            "frame before decoding"
        )
    if not 0.0 < sampling_fraction <= 1.0:
        raise ValueError(
            f"sampling_fraction must be in (0, 1], got {sampling_fraction}"
        )
    if noise_sigma < 0.0:
        raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
    return frame


class EngineOperator(SensingOperator):
    """A :class:`SensingOperator` carrying engine-cached acceleration.

    Identical forward/adjoint behaviour; the only difference is that
    the engine supplies the optional spectral-norm hint when the basis
    is known orthonormal and ``phi`` is a row-sampling matrix (then
    ``||A||_2 <= 1`` exactly, so gradient solvers may take the unit
    step without running the power iteration).  Hint handling itself
    lives on :class:`~repro.core.operators.LinearOperator`.
    """


@dataclass(frozen=True)
class BasisSpec:
    """How the engine builds a sparsifying basis for one ``kind``.

    ``factory`` is the reference constructor; ``fast_factory`` (if any)
    builds an accelerated but numerically-equivalent representation the
    engine prefers when ``fast_basis`` is on.  ``orthonormal`` declares
    ``||Psi||_2 == 1``, which lets the engine hint the operator spectral
    norm for row-sampling encoders.
    """

    factory: Callable[[tuple], object]
    fast_factory: Callable[[tuple], object] | None = None
    orthonormal: bool = False


def _dct3_factory(shape):
    from .video import Dct3Basis  # function-level: video routes through us

    return Dct3Basis(shape)


def _haar2_factory(shape):
    from .wavelet import Haar2Basis

    return Haar2Basis(shape)


# Above this edge length the separable matmul loses to the FFT path.
_SEPARABLE_MAX_DIM = 64


def _fast_dct2_factory(shape):
    if max(int(shape[0]), int(shape[1])) <= _SEPARABLE_MAX_DIM:
        return SeparableDct2Basis(shape)
    return Dct2Basis(shape)


_BASIS_KINDS: dict[str, BasisSpec] = {
    "dct2": BasisSpec(
        factory=Dct2Basis, fast_factory=_fast_dct2_factory, orthonormal=True
    ),
    "dct3": BasisSpec(factory=_dct3_factory, orthonormal=True),
    "haar2": BasisSpec(factory=_haar2_factory, orthonormal=True),
}


def register_basis(
    kind: str,
    factory: Callable[[tuple], object],
    fast_factory: Callable[[tuple], object] | None = None,
    orthonormal: bool = False,
) -> None:
    """Register a custom sparsifying basis under ``kind``.

    ``factory(shape)`` must return an object with the matrix-free basis
    API (``synthesize`` / ``analyze`` / ``n``).  Set ``orthonormal``
    only if ``||Psi||_2 == 1`` holds exactly -- it authorises the
    unit-step spectral-norm hint for gradient solvers.  Registering an
    existing ``kind`` replaces it; cached entries for the old spec are
    *not* invalidated, so call :meth:`OperatorCache.clear` on engines
    that may hold stale entries.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError(f"basis kind must be a non-empty string, got {kind!r}")
    _BASIS_KINDS[kind] = BasisSpec(
        factory=factory, fast_factory=fast_factory, orthonormal=orthonormal
    )


def basis_kinds() -> tuple[str, ...]:
    """The registered basis kinds (cache-key vocabulary)."""
    return tuple(sorted(_BASIS_KINDS))


@dataclass(frozen=True)
class CacheEntry:
    """One cached operator template: the basis plus solver hints.

    ``mode`` records the operator representation the entry backs
    (``"implicit"`` holds a matrix-free basis object, ``"dense"`` the
    materialised ``N x N`` ``Psi``); ``nbytes`` is the true memory the
    entry pins, which the cache aggregates into its byte gauge.
    """

    key: tuple
    basis: object
    spectral_norm_hint: float | None = None
    mode: str = "implicit"
    nbytes: int = 0


class OperatorCache:
    """Bounded, thread-safe LRU cache of :class:`CacheEntry` objects.

    Keys are ``(shape, basis kind, operator mode, measurement family)``
    tuples: everything else about a decode (the random code draw, the
    solver, the measurements) changes per call, while the basis and its
    solver hints are pure functions of the key.  Entries are immutable and
    safe to share across threads; the cache itself serialises access
    with a lock.

    Hit/miss/eviction counts and the resident byte total are kept both
    as plain attributes (always on, readable via :meth:`stats`) and as
    ``engine.cache.*`` counters plus the ``operator_cache.bytes`` gauge
    in :mod:`repro.instrument` when collection is enabled.  The byte
    total is *true* memory: implicit DCT entries pin only their factor
    matrices (or nothing at all on the FFT path), dense entries pin the
    full ``N x N`` basis.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0

    def _publish_bytes(self) -> None:
        instrument.set_gauge("engine.cache.bytes", self.bytes)
        instrument.set_gauge("operator_cache.bytes", self.bytes)

    def get_or_create(
        self, key: tuple, builder: Callable[[], CacheEntry]
    ) -> CacheEntry:
        """Return the entry for ``key``, building and inserting on miss.

        The builder runs under the cache lock, so concurrent same-shape
        decodes build each entry exactly once.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                instrument.incr("engine.cache.hits")
                return entry
            entry = builder()
            self._entries[key] = entry
            self.bytes += int(getattr(entry, "nbytes", 0) or 0)
            self.misses += 1
            instrument.incr("engine.cache.misses")
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                self.bytes -= int(getattr(evicted, "nbytes", 0) or 0)
                self.evictions += 1
                instrument.incr("engine.cache.evictions")
            instrument.set_gauge("engine.cache.size", len(self._entries))
            self._publish_bytes()
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry (invalidation hook; counters are kept)."""
        with self._lock:
            self._entries.clear()
            self.bytes = 0
            instrument.set_gauge("engine.cache.size", 0)
            self._publish_bytes()

    def stats(self) -> dict:
        """Accounting snapshot: hits/misses/evictions/size/capacity/bytes."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
                "bytes": self.bytes,
            }


@dataclass(frozen=True)
class DecodeContext:
    """A frozen decode plan: everything about a decode except the frame.

    Build one per stream (or per tile shape) and reuse it for every
    frame; the engine keys its operator cache on ``(shape, basis)``, so
    same-plan decodes pay construction cost exactly once.

    Parameters
    ----------
    shape:
        Frame shape the plan applies to; frames are checked against it.
    sampling_fraction:
        ``M / N`` before exclusions.
    solver, solver_options:
        Decoder name and extra solver kwargs (stored read-only).
    basis:
        Registered basis kind (``"dct2"`` default; see
        :func:`register_basis`).
    noise_sigma:
        Std-dev of additive measurement noise.
    exclude_mask:
        Boolean mask of pixels that must never be sampled (stored as a
        read-only copy; excluded from equality/compare).
    weights:
        Optional per-pixel sampling weights (energy-weighted sampling);
        ``None`` means uniform random sampling.
    operator_mode:
        Operator representation for this plan: ``"implicit"``
        (matrix-free applies), ``"dense"`` (materialised matrix), or
        ``None`` to defer to the engine's default.
    measurement:
        Registered measurement family drawing the per-frame code
        (``"row_sampling"`` default -- the paper's encoder; see
        :func:`~repro.core.measurement.register_measurement`).
    """

    shape: tuple
    sampling_fraction: float
    solver: str = "fista"
    solver_options: Mapping = field(default_factory=dict)
    basis: str = "dct2"
    noise_sigma: float = 0.0
    exclude_mask: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )
    weights: np.ndarray | None = field(default=None, compare=False, repr=False)
    operator_mode: str | None = None
    measurement: str = "row_sampling"

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        if len(shape) < 2 or any(s < 1 for s in shape):
            raise ValueError(f"invalid plan shape {self.shape}")
        object.__setattr__(self, "shape", shape)
        _validate_operator_mode(self.operator_mode)
        get_measurement(self.measurement)  # typo check; raises KeyError
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError(
                f"sampling_fraction must be in (0, 1], got "
                f"{self.sampling_fraction}"
            )
        if self.noise_sigma < 0.0:
            raise ValueError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )
        object.__setattr__(
            self,
            "solver_options",
            MappingProxyType(dict(self.solver_options or {})),
        )
        if self.exclude_mask is not None:
            mask = np.array(self.exclude_mask, dtype=bool)
            if mask.shape != shape:
                raise ValueError(
                    "exclude_mask shape must match frame shape "
                    f"(mask {mask.shape}, plan {shape})"
                )
            mask.setflags(write=False)
            object.__setattr__(self, "exclude_mask", mask)
        if self.weights is not None:
            weights = np.array(self.weights, dtype=float)
            if weights.size != int(np.prod(shape)):
                raise ValueError(
                    f"weights must have {int(np.prod(shape))} entries, "
                    f"got {weights.size}"
                )
            weights.setflags(write=False)
            object.__setattr__(self, "weights", weights)

    def __getstate__(self) -> dict:
        """Picklable state (``solver_options`` as a plain dict).

        The live plan stores ``solver_options`` behind a
        ``MappingProxyType``, which cannot cross a process boundary;
        pickling is what lets one frozen plan fan out to a
        :class:`~repro.core.executor.ProcessExecutor` worker pool.
        """
        state = dict(self.__dict__)
        state["solver_options"] = dict(self.solver_options)
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore a pickled plan, re-freezing the mutable views."""
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(
            self,
            "solver_options",
            MappingProxyType(dict(state.get("solver_options") or {})),
        )
        for name in ("exclude_mask", "weights"):
            value = getattr(self, name)
            if value is not None:
                value = np.asarray(value)
                value.setflags(write=False)
                object.__setattr__(self, name, value)

    @classmethod
    def for_frame(
        cls, frame: np.ndarray, sampling_fraction: float, **kwargs
    ) -> "DecodeContext":
        """Plan matching ``frame.shape`` (convenience constructor)."""
        return cls(
            shape=np.asarray(frame).shape,
            sampling_fraction=sampling_fraction,
            **kwargs,
        )

    def with_exclusions(
        self, mask: np.ndarray | None
    ) -> "DecodeContext":
        """A copy of this plan with ``mask`` OR-merged into its exclusions.

        ``None`` (or an all-``False`` mask) returns ``self`` unchanged,
        so streaming callers can apply a health-derived stuck-line mask
        per frame without paying a plan rebuild on healthy frames.
        """
        if mask is None:
            return self
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.shape:
            raise ValueError(
                f"exclusion mask shape {mask.shape} does not match plan "
                f"shape {self.shape}"
            )
        if not mask.any():
            return self
        if not get_measurement(self.measurement).supports_exclusions:
            raise ValueError(
                f"measurement family {self.measurement!r} does not support "
                "exclusion masks; clear the mask or switch families"
            )
        merged = (
            mask if self.exclude_mask is None else (self.exclude_mask | mask)
        )
        return replace(self, exclude_mask=merged)


@dataclass
class DecodeEngine:
    """The shared decode runtime: cached operators + the canonical path.

    Parameters
    ----------
    cache:
        The operator cache; ``None`` rebuilds per call (same numerics,
        no amortisation -- the cache-bypass mode used by the bit-exact
        regression tests and the bench baseline's control arm).
    fast_basis:
        Prefer accelerated basis representations (separable-matmul DCT,
        spectral-norm hints).  ``False`` reproduces the pre-engine
        per-call recipe exactly (FFT basis, per-solve power iteration);
        it exists for the before/after bench comparison.
    operator_mode:
        Default operator representation when a plan leaves
        ``operator_mode=None``: ``"implicit"`` (matrix-free, the
        default) or ``"dense"`` (materialised matrices, benchmark
        control arm).
    """

    cache: OperatorCache | None = field(default_factory=OperatorCache)
    fast_basis: bool = True
    operator_mode: str = "implicit"

    def __post_init__(self) -> None:
        _validate_operator_mode(self.operator_mode)

    def _resolve_mode(self, mode: str | None) -> str:
        return _validate_operator_mode(mode) or self.operator_mode

    # -- operator construction (the only sanctioned site) -----------------
    def _build_entry(
        self,
        shape: tuple,
        kind: str,
        mode: str,
        measurement: str = "row_sampling",
    ) -> CacheEntry:
        spec = _BASIS_KINDS.get(kind)
        if spec is None:
            raise KeyError(
                f"unknown basis kind {kind!r}; registered: {basis_kinds()}"
            )
        hint = 1.0 if (self.fast_basis and spec.orthonormal) else None
        key = (tuple(shape), kind, mode, measurement)
        if mode == "dense":
            n = int(np.prod([int(s) for s in shape]))
            if n > _DENSE_MODE_MAX_N:
                raise ValueError(
                    f"dense operator mode materialises an {n} x {n} basis "
                    f"({n * n * 8 / 2**20:.0f} MiB); the engine caps dense "
                    f"mode at N={_DENSE_MODE_MAX_N} -- use the implicit "
                    "mode for large frames"
                )
            psi = np.ascontiguousarray(spec.factory(shape).to_matrix())
            psi.setflags(write=False)
            return CacheEntry(
                key=key,
                basis=psi,
                spectral_norm_hint=hint,
                mode="dense",
                nbytes=int(psi.nbytes),
            )
        if self.fast_basis and spec.fast_factory is not None:
            basis = spec.fast_factory(shape)
        else:
            basis = spec.factory(shape)
        return CacheEntry(
            key=key,
            basis=basis,
            spectral_norm_hint=hint,
            mode="implicit",
            nbytes=int(getattr(basis, "nbytes", 0) or 0),
        )

    def entry_for(
        self,
        shape: tuple,
        basis: str = "dct2",
        mode: str | None = None,
        measurement: str = "row_sampling",
    ) -> CacheEntry:
        """The cached template for ``(shape, basis, mode, measurement)``.

        The measurement axis keys the cache even though the basis
        itself is family-independent: the entry's solver hints (and any
        family-registered basis spec swap) are allowed to differ per
        family, so entries never leak across the axis.
        """
        shape = tuple(int(s) for s in shape)
        mode = self._resolve_mode(mode)
        if self.cache is None:
            return self._build_entry(shape, basis, mode, measurement)
        return self.cache.get_or_create(
            (shape, basis, mode, measurement),
            lambda: self._build_entry(shape, basis, mode, measurement),
        )

    def basis_for(self, shape: tuple, basis: str = "dct2"):
        """The (cached) matrix-free sparsifying basis for ``(shape, basis)``.

        Always resolves the implicit entry: callers want the basis
        *object* (``synthesize`` / ``analyze``), which the dense mode
        does not keep.
        """
        return self.entry_for(shape, basis, mode="implicit").basis

    def operator(
        self,
        phi,
        shape: tuple,
        basis: str = "dct2",
        mode: str | None = None,
        measurement: str | None = None,
    ):
        """Bind a measurement code to the cached template for ``shape``.

        This is the repo's only sanctioned operator construction site
        (CI enforces the seam); every decode path -- including ones
        that own their measurement acquisition, like the hardware-scan
        imager or the video burst decoder -- gets its operator here.

        ``measurement`` names the family that drew ``phi``; ``None``
        recovers it from the carrier type
        (:func:`~repro.core.measurement.resolve_measurement_for`).  The
        model then builds the :class:`~repro.core.operators.LinearOperator`
        (row sampling keeps the pre-refactor recipe exactly:
        :class:`~repro.core.operators.SeparableDCTOperator` on the
        implicit separable-DCT path, :class:`EngineOperator` otherwise,
        row-gathered :class:`~repro.core.operators.DenseOperator` in
        dense mode).  A raw dense ``(m, n)`` ndarray is still accepted
        for backward compatibility and treated as an anonymous dense
        code.
        """
        model: MeasurementModel | None
        if measurement is not None:
            model = get_measurement(measurement)
            if model.phi_type is not None and not isinstance(
                phi, model.phi_type
            ):
                raise TypeError(
                    f"measurement family {measurement!r} expects "
                    f"{model.phi_type.__name__} codes, got "
                    f"{type(phi).__name__}"
                )
        else:
            try:
                model = resolve_measurement_for(phi)
            except TypeError:
                model = None  # legacy raw-ndarray Phi
        if model is None:
            entry = self.entry_for(shape, basis, mode)
            if entry.mode == "dense":
                a = np.asarray(phi, dtype=float) @ entry.basis
                return DenseOperator(
                    a, basis=entry.basis, spectral_norm_hint=None
                )
            return EngineOperator(phi, entry.basis, spectral_norm_hint=None)
        entry = self.entry_for(
            shape, basis, mode, measurement=measurement or model.name
        )
        return model.build_operator(phi, entry, operator_cls=EngineOperator)

    # -- the canonical decode path -----------------------------------------
    @staticmethod
    def _validate_frame(frame: np.ndarray, plan: DecodeContext) -> np.ndarray:
        frame = validate_decode_inputs(
            frame, plan.sampling_fraction, plan.noise_sigma
        )
        if frame.shape != plan.shape:
            raise ValueError(
                f"frame shape {frame.shape} does not match plan shape "
                f"{plan.shape}"
            )
        return frame

    @staticmethod
    def _measurement_budget(
        plan: DecodeContext, n: int
    ) -> tuple[int, np.ndarray | None]:
        """The measurement count ``m`` and flat excluded indices.

        The family decides how exclusions shrink the budget: row
        sampling clamps ``m`` to the surviving pixels, dense codes keep
        ``m`` (they zero excluded columns instead).
        """
        m = max(1, int(round(plan.sampling_fraction * n)))
        exclude = None
        if plan.exclude_mask is not None:
            exclude = np.flatnonzero(plan.exclude_mask.ravel())
        m = get_measurement(plan.measurement).budget(n, m, exclude)
        return m, exclude

    @staticmethod
    def _draw_phi(
        plan: DecodeContext,
        n: int,
        m: int,
        exclude: np.ndarray | None,
        rng: np.random.Generator,
    ):
        """Draw one per-frame code under the plan (the only sampling RNG use)."""
        return get_measurement(plan.measurement).draw(
            plan.shape, m, rng, exclude=exclude, weights=plan.weights
        )

    @staticmethod
    def _measure(
        frame: np.ndarray,
        plan: DecodeContext,
        phi,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply the code to the frame, adding plan noise if configured."""
        measurements = get_measurement(plan.measurement).measure(
            frame.ravel(), phi
        )
        if plan.noise_sigma > 0.0:
            measurements = measurements + rng.normal(
                0.0, plan.noise_sigma, size=measurements.shape
            )
        return measurements

    def _solve_acquired(
        self,
        plan: DecodeContext,
        phi,
        measurements: np.ndarray,
        full_output: bool = False,
    ) -> np.ndarray | DecodeResult:
        """Solve one already-acquired measurement vector under ``plan``.

        The RNG-free half of :meth:`decode`: operator lookup, solver
        dispatch, reshape.  Because it consumes no randomness it can run
        on any worker in any order without perturbing determinism --
        this is what :meth:`decode_batch` fans out.
        """
        operator = self.operator(
            phi,
            plan.shape,
            plan.basis,
            mode=plan.operator_mode,
            measurement=plan.measurement,
        )
        result = solve(
            plan.solver, operator, measurements, **dict(plan.solver_options)
        )
        reconstruction = operator.synthesize(result.coefficients).reshape(
            plan.shape
        )
        if full_output:
            return DecodeResult(reconstruction, result, measurements)
        return reconstruction

    def decode(
        self,
        frame: np.ndarray,
        plan: DecodeContext,
        rng: np.random.Generator,
        full_output: bool = False,
    ) -> np.ndarray | DecodeResult:
        """One sample + L1-reconstruction round under ``plan``.

        The single canonical decode recipe: validate -> draw ``Phi_M``
        (uniform or weighted, honouring the exclusion mask) -> measure
        (+ optional noise) -> solve -> reshape.  Returns the
        reconstructed frame, or the full :class:`DecodeResult` when
        ``full_output`` is set.
        """
        frame = self._validate_frame(frame, plan)
        n = frame.size
        m, exclude = self._measurement_budget(plan, n)
        span_name = (
            "decode.weighted_sample_and_reconstruct"
            if plan.weights is not None
            else "decode.sample_and_reconstruct"
        )
        with instrument.span(span_name, n=n, m=m, solver=plan.solver):
            instrument.incr("decode.calls")
            instrument.incr("decode.measurements", m)
            phi = self._draw_phi(plan, n, m, exclude, rng)
            measurements = self._measure(frame, plan, phi, rng)
            return self._solve_acquired(plan, phi, measurements, full_output)

    def decode_batch(
        self,
        frames,
        plan: DecodeContext,
        rng: np.random.Generator,
        executor=None,
        shared_phi: bool = False,
        vectorize: bool | None = None,
        full_output: bool = False,
    ) -> list:
        """Decode N frames against one frozen plan, bit-identical to serial.

        The batch path splits the canonical recipe into two phases:

        1. **Acquisition** (always sequential, in frame order): per frame,
           draw ``Phi_M`` then the measurement noise -- the exact RNG
           consumption order of N back-to-back :meth:`decode` calls, so
           the measurements are bitwise those of the serial loop.  With
           ``shared_phi`` a single ``Phi_M`` is drawn up front and reused
           for every frame (one sampling pattern, N readouts -- the
           streaming-hardware regime).
        2. **Solve** (pure, freely parallel): each acquired system is
           solved through :meth:`_solve_acquired`.  With an ``executor``
           the solves fan out across workers; with ``shared_phi`` and a
           multi-RHS-capable configuration the solves collapse into one
           vectorised lockstep call (see
           :func:`repro.core.solvers.solve_batch`).  All three routes
           return bit-identical results in input order.

        Parameters
        ----------
        frames:
            Sequence of frames, all matching ``plan.shape``.
        plan, rng:
            As for :meth:`decode`; the RNG advances exactly as if each
            frame had been decoded serially (or once, for the shared
            draw).
        executor:
            Anything :func:`~repro.core.executor.resolve_executor`
            accepts; ``None`` solves in-process.
        shared_phi:
            Reuse one sampling pattern for the whole batch.
        vectorize:
            Force (``True``) or forbid (``False``) the multi-RHS solve;
            ``None`` uses it when available.  Only meaningful with
            ``shared_phi``.
        full_output:
            Return :class:`DecodeResult` per frame instead of bare
            reconstructions.
        """
        from .executor import collect_values, resolve_executor

        frames = [self._validate_frame(f, plan) for f in frames]
        if not frames:
            return []
        n = frames[0].size
        m, exclude = self._measurement_budget(plan, n)
        with instrument.span(
            "decode.batch",
            frames=len(frames),
            n=n,
            m=m,
            solver=plan.solver,
            shared_phi=shared_phi,
        ):
            instrument.incr("decode.batches")
            instrument.incr("decode.calls", len(frames))
            instrument.incr("decode.measurements", m * len(frames))
            # Phase 1: sequential acquisition in frame order.
            if shared_phi:
                phi = self._draw_phi(plan, n, m, exclude, rng)
                acquired = [
                    (phi, self._measure(frame, plan, phi, rng))
                    for frame in frames
                ]
            else:
                acquired = []
                for frame in frames:
                    phi = self._draw_phi(plan, n, m, exclude, rng)
                    acquired.append(
                        (phi, self._measure(frame, plan, phi, rng))
                    )
            # Phase 2: pure solves -- vectorised, fanned out, or serial.
            if shared_phi and vectorize is not False and len(frames) > 1:
                if get_measurement(plan.measurement).supports_multi_rhs:
                    batched = self._solve_batch_vectorized(
                        plan,
                        acquired[0][0],
                        [b for _, b in acquired],
                        full_output,
                    )
                    if batched is not None:
                        return batched
                if vectorize:
                    raise ValueError(
                        f"solver {plan.solver!r} / measurement "
                        f"{plan.measurement!r} has no vectorised multi-RHS "
                        "path for this configuration"
                    )
            ex = resolve_executor(executor)
            if ex is None:
                return [
                    self._solve_acquired(plan, phi, b, full_output)
                    for phi, b in acquired
                ]
            tasks = [(plan, phi, b, full_output) for phi, b in acquired]
            return collect_values(
                ex.map_tasks(_solve_acquired_task, tasks, label="decode_batch")
            )

    def _solve_batch_vectorized(
        self,
        plan: DecodeContext,
        phi,
        measurements: list,
        full_output: bool,
    ) -> list | None:
        """Multi-RHS lockstep solve; ``None`` when unsupported here."""
        from .solvers import solve_batch

        operator = self.operator(
            phi,
            plan.shape,
            plan.basis,
            mode=plan.operator_mode,
            measurement=plan.measurement,
        )
        results = solve_batch(
            plan.solver,
            operator,
            np.stack(measurements),
            **dict(plan.solver_options),
        )
        if results is None:
            return None
        out = []
        for result, b in zip(results, measurements):
            reconstruction = operator.synthesize(
                result.coefficients
            ).reshape(plan.shape)
            out.append(
                DecodeResult(reconstruction, result, b)
                if full_output
                else reconstruction
            )
        return out


def _solve_acquired_task(args):
    """Executor task body for one acquired system (picklable)."""
    plan, phi, measurements, full_output = args
    return get_engine()._solve_acquired(plan, phi, measurements, full_output)


def _default_engine() -> DecodeEngine:
    if os.environ.get("REPRO_ENGINE_CACHE", "") in ("0", "off"):
        return DecodeEngine(cache=None)
    return DecodeEngine()


_engine = _default_engine()
_engine_lock = threading.Lock()


def get_engine() -> DecodeEngine:
    """The process-wide default engine every decode path routes through."""
    return _engine


def set_engine(engine: DecodeEngine) -> DecodeEngine:
    """Swap the process-wide engine; returns the previous one."""
    global _engine
    with _engine_lock:
        previous = _engine
        _engine = engine
    return previous


@contextmanager
def use_engine(engine: DecodeEngine):
    """Scope the process-wide engine to a ``with`` block (tests, benches)."""
    previous = set_engine(engine)
    try:
        yield engine
    finally:
        set_engine(previous)
