"""Sparse-error and measurement-noise injection models.

Sec. 4.2 of the paper describes how device defects and transient errors
manifest in the fabricated temperature array: affected pixels "usually
show extreme results, either very high or almost zero currents".  The
experiment of Fig. 7 therefore normalises frames to [0, 1] and forces a
randomly chosen fraction of pixels to exactly 0 or 1.

This module implements that model plus the distinction between
*permanent* defects (same pixels every frame -- detectable by testing)
and *transient* errors (fresh pixels every frame), and the additive
measurement noise ``eps`` of Eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SparseErrorModel", "inject_sparse_errors", "add_measurement_noise"]


def inject_sparse_errors(
    frame: np.ndarray,
    error_rate: float,
    rng: np.random.Generator,
    low_value: float = 0.0,
    high_value: float = 1.0,
    high_fraction: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Force a random fraction of pixels to extreme stuck values.

    Parameters
    ----------
    frame:
        Input frame (any shape), assumed normalised to ``[0, 1]``.
    error_rate:
        Fraction of pixels to corrupt, in ``[0, 1]``.
    rng:
        Source of randomness.
    low_value, high_value:
        The "almost zero" and "very high" stuck readings.
    high_fraction:
        Fraction of corrupted pixels that stick high rather than low.
        Rounded deterministically: exactly ``round(high_fraction *
        count)`` of the ``count`` corrupted pixels go high, so 0.0 and
        1.0 are exact and e.g. 0.5 splits a 1-pixel corruption to the
        nearest integer rather than by a coin flip.

    Returns
    -------
    (corrupted, error_mask):
        The corrupted copy of ``frame`` and a boolean mask of corrupted
        pixels (same shape as ``frame``).

    Raises
    ------
    ValueError
        For an empty frame or rates outside ``[0, 1]``.  The corrupted
        count is ``round(error_rate * N)`` clamped to ``N``, so
        ``error_rate=0.0`` is an exact identity (with a defensive copy)
        and ``error_rate=1.0`` corrupts every pixel, including on
        1-pixel frames.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
    if not 0.0 <= high_fraction <= 1.0:
        raise ValueError(f"high_fraction must be in [0, 1], got {high_fraction}")
    frame = np.asarray(frame, dtype=float)
    n = frame.size
    if n == 0:
        raise ValueError(f"frame is empty, got shape {frame.shape}")
    count = min(n, int(round(error_rate * n)))
    mask = np.zeros(n, dtype=bool)
    corrupted = frame.copy().ravel()
    if count > 0:
        positions = rng.choice(n, size=count, replace=False)
        mask[positions] = True
        num_high = int(round(high_fraction * count))
        stuck_high = np.zeros(count, dtype=bool)
        stuck_high[rng.permutation(count)[:num_high]] = True
        corrupted[positions] = np.where(stuck_high, high_value, low_value)
    return corrupted.reshape(frame.shape), mask.reshape(frame.shape)


@dataclass
class SparseErrorModel:
    """Stateful error model distinguishing permanent and transient errors.

    Parameters
    ----------
    permanent_rate:
        Fraction of pixels with permanent defects (fixed across frames;
        these are what production testing can identify, Sec. 4.2).
    transient_rate:
        Fraction of additional pixels hit by transient errors, redrawn
        per frame (not detectable in advance, Sec. 4.3).
    seed:
        Seed for the model's private RNG.
    low_value, high_value, high_fraction:
        Stuck-value parameters, as in :func:`inject_sparse_errors`.
    """

    permanent_rate: float = 0.0
    transient_rate: float = 0.0
    seed: int = 0
    low_value: float = 0.0
    high_value: float = 1.0
    high_fraction: float = 0.5

    def __post_init__(self) -> None:
        total = self.permanent_rate + self.transient_rate
        if not 0.0 <= self.permanent_rate <= 1.0:
            raise ValueError("permanent_rate must be in [0, 1]")
        if not 0.0 <= self.transient_rate <= 1.0:
            raise ValueError("transient_rate must be in [0, 1]")
        if total > 1.0:
            raise ValueError("combined error rate exceeds 1.0")
        self._rng = np.random.default_rng(self.seed)
        self._permanent_mask: np.ndarray | None = None

    def permanent_mask(self, shape: tuple[int, ...]) -> np.ndarray:
        """The fixed defect mask for this model instance (lazily drawn)."""
        if self._permanent_mask is None or self._permanent_mask.shape != shape:
            n = int(np.prod(shape))
            count = int(round(self.permanent_rate * n))
            mask = np.zeros(n, dtype=bool)
            if count > 0:
                mask[self._rng.choice(n, size=count, replace=False)] = True
            self._permanent_mask = mask.reshape(shape)
        return self._permanent_mask

    def corrupt(self, frame: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Apply permanent + transient errors to one frame.

        Returns the corrupted frame and the combined error mask.
        Transient positions are redrawn on every call; permanent
        positions are stable for the lifetime of the model.
        """
        frame = np.asarray(frame, dtype=float)
        permanent = self.permanent_mask(frame.shape)
        corrupted = frame.copy()
        self._stick(corrupted, permanent)
        transient = np.zeros(frame.shape, dtype=bool)
        n = frame.size
        count = int(round(self.transient_rate * n))
        if count > 0:
            healthy = np.flatnonzero(~permanent.ravel())
            count = min(count, len(healthy))
            hits = self._rng.choice(healthy, size=count, replace=False)
            transient.ravel()[hits] = True
            self._stick(corrupted, transient)
        return corrupted, permanent | transient

    def _stick(self, frame: np.ndarray, mask: np.ndarray) -> None:
        count = int(mask.sum())
        if count == 0:
            return
        stuck_high = self._rng.random(count) < self.high_fraction
        frame[mask] = np.where(stuck_high, self.high_value, self.low_value)


def add_measurement_noise(
    measurements: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Additive white Gaussian readout noise ``eps`` (Eq. 2).

    Models the analog chain (amplifier + S/H + ADC front end) noise on
    the FE side; ``sigma`` is expressed in normalised pixel units.
    """
    if sigma < 0:
        raise ValueError(f"noise sigma must be >= 0, got {sigma}")
    measurements = np.asarray(measurements, dtype=float)
    if sigma == 0.0:
        return measurements.copy()
    return measurements + rng.normal(0.0, sigma, size=measurements.shape)
