"""Pluggable execution backends for every fan-out in the repo.

The repo has one recurring shape of work: *many independent decode
tasks* -- tiles in :class:`~repro.core.blocks.BlockProcessor`, frames in
a :class:`~repro.array.imager.StreamingImager` window, redundant draws
in :class:`~repro.core.strategies.ResamplingStrategy`, grid points in
:class:`~repro.core.pipeline.RobustnessSweep` and the tolerance / RES
experiments.  Each used to hand-roll its own loop; none could use a
pool without duplicating pool bookkeeping, ordering and error handling.

This module is the one sanctioned seam for parallelism
(``tools/check_engine_seam.py`` forbids raw ``concurrent.futures`` /
``multiprocessing`` pool construction anywhere else):

* :class:`Executor` -- the protocol: ``map_tasks(fn, items)`` returns a
  :class:`TaskResult` per item **in submission order**, with per-task
  error capture (a failing task yields an error string instead of
  poisoning its siblings) and ``executor.*`` metrics via
  :mod:`repro.instrument`;
* :class:`SerialExecutor` -- in-process loop, the reference backend
  every parallel backend must match bit-for-bit;
* :class:`ThreadExecutor` -- ``ThreadPoolExecutor`` backend, right for
  workloads that release the GIL (BLAS-heavy solves) or mix I/O;
* :class:`ProcessExecutor` -- ``ProcessPoolExecutor`` backend for
  CPU-bound fan-out; tasks and results must be picklable (the frozen
  :class:`~repro.core.engine.DecodeContext` is, by design);
* :func:`resolve_executor` -- the shared ``executor=`` argument
  convention (``None`` | ``"serial"`` | ``"thread"`` | ``"process"`` |
  worker count | instance) every call site accepts.

Determinism contract: ``map_tasks`` never reorders results, and the
call sites built on it draw all RNG-consuming work (``Phi_M`` draws,
measurement noise) *before* fanning out or from per-task spawned
generators -- so serial, thread and process backends produce
bit-identical output under a fixed seed.  Regression tests assert this.
"""

from __future__ import annotations

import os
import time
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .. import instrument

__all__ = [
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "SupervisedExecutor",
    "TaskError",
    "TaskResult",
    "ThreadExecutor",
    "WorkerCrash",
    "WorkerLossEvent",
    "collect_values",
    "default_workers",
    "register_worker_hook",
    "resolve_executor",
    "unregister_worker_hook",
]


class WorkerCrash(RuntimeError):
    """A worker died (or simulated dying) while running a task.

    Raised by the ``worker_crash`` chaos injector
    (:mod:`repro.resilience.worker_chaos`) to simulate process death on
    the executor seam; :class:`SupervisedExecutor` treats it -- along
    with real pool breakage (``BrokenProcessPool``) and heartbeat
    timeouts -- as a *worker loss*: the task is retried on a surviving
    worker instead of failing the whole map.
    """


#: Error-string prefixes :class:`SupervisedExecutor` treats as worker
#: loss (retryable infrastructure death) rather than task failure.
_LOSS_PREFIXES = (
    "WorkerCrash",
    "WorkerTimeout",
    "BrokenProcessPool",
    "BrokenThreadPool",
)

_WORKER_HOOKS: list = []
"""Registered worker-chaos hooks, consulted by :func:`_run_task`.

The executor-layer analogue of the solver/array hook seams: each hook's
``before_task(label, index)`` runs at the top of every task body, where
it may sleep (hang / slow-start injection) or raise
:class:`WorkerCrash` (crash injection).  Hooks live in the *submitting*
process's registry, so they reach serial and thread backends; process
pool workers run in child interpreters whose registries are empty --
kill real processes to chaos-test that path.
"""


def register_worker_hook(hook) -> None:
    """Attach a worker-chaos hook to the executor task seam."""
    _WORKER_HOOKS.append(hook)


def unregister_worker_hook(hook) -> None:
    """Detach a previously registered worker-chaos hook (idempotent)."""
    try:
        _WORKER_HOOKS.remove(hook)
    except ValueError:
        pass


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task submitted through :meth:`Executor.map_tasks`.

    Attributes
    ----------
    index:
        Position of the task's item in the submitted sequence; results
        come back sorted by it, so ``results[i]`` always corresponds to
        ``items[i]``.
    value:
        The task function's return value (``None`` when it failed).
    error:
        ``None`` on success; otherwise ``"ExcType: message"`` captured
        from the task (the exception object itself may not survive a
        process boundary, the string always does).
    duration_s:
        Wall-clock seconds the task body ran.
    """

    index: int
    value: Any = None
    error: str | None = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the task completed without raising."""
        return self.error is None


class TaskError(RuntimeError):
    """Raised by :func:`collect_values` when any task in a map failed."""


def collect_values(results: Sequence[TaskResult]) -> list:
    """Unwrap ``map_tasks`` results into plain values, or raise.

    Raises :class:`TaskError` naming every failed task when any task
    errored; call sites that want partial results inspect the
    :class:`TaskResult` list directly instead.
    """
    failed = [r for r in results if not r.ok]
    if failed:
        details = "; ".join(f"task {r.index}: {r.error}" for r in failed)
        raise TaskError(
            f"{len(failed)} of {len(results)} task(s) failed: {details}"
        )
    return [r.value for r in results]


def default_workers() -> int:
    """Default worker count: the machine's CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _run_task(fn: Callable, index: int, item, label: str = "map") -> TaskResult:
    """Run one task body, capturing errors and timing (picklable)."""
    start = time.perf_counter()
    try:
        for hook in tuple(_WORKER_HOOKS):
            before = getattr(hook, "before_task", None)
            if before is not None:
                before(label, index)
        value = fn(item)
    except Exception as exc:  # noqa: BLE001 - per-task containment
        return TaskResult(
            index=index,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
        )
    return TaskResult(
        index=index, value=value, duration_s=time.perf_counter() - start
    )


class Executor:
    """Base class / protocol for the pluggable execution backends.

    Subclasses implement :meth:`_run`; :meth:`map_tasks` wraps it with
    the shared contract -- deterministic submission-order results,
    per-task error capture, and ``executor.*`` instrumentation
    (``map_calls`` / ``tasks`` / ``task_errors`` counters plus an
    ``executor.<label>`` span per map).
    """

    name = "executor"

    @property
    def workers(self) -> int:
        """Worker slots this backend runs tasks on (1 for serial)."""
        return 1

    def map_tasks(
        self, fn: Callable, items: Iterable, label: str = "map"
    ) -> list[TaskResult]:
        """Apply ``fn`` to every item; results in submission order.

        ``fn`` must accept one positional argument (the item).  A task
        that raises is captured as a failed :class:`TaskResult` -- the
        map always returns ``len(items)`` results.
        """
        items = list(items)
        with instrument.span(
            f"executor.{label}",
            backend=self.name,
            tasks=len(items),
            workers=self.workers,
        ):
            instrument.incr("executor.map_calls")
            instrument.incr("executor.tasks", len(items))
            instrument.set_gauge("executor.workers", self.workers)
            results = self._run(fn, items, label)
            errors = sum(1 for r in results if not r.ok)
            if errors:
                instrument.incr("executor.task_errors", errors)
        return results

    def _run(
        self, fn: Callable, items: list, label: str = "map"
    ) -> list[TaskResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (no-op for pool-less backends)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process, in-order execution -- the reference backend.

    Parallel backends are validated against it bit-for-bit; it is also
    the fallback :func:`resolve_executor` picks for a worker count of 1.
    """

    name = "serial"

    def _run(
        self, fn: Callable, items: list, label: str = "map"
    ) -> list[TaskResult]:
        return [
            _run_task(fn, index, item, label)
            for index, item in enumerate(items)
        ]


class _PooledExecutor(Executor):
    """Shared pool lifecycle for the thread/process backends."""

    _pool_factory: Callable[..., futures.Executor]

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = int(workers) if workers is not None else None
        self._pool: futures.Executor | None = None

    @property
    def workers(self) -> int:
        """Configured worker count (defaults to :func:`default_workers`)."""
        return self._workers or default_workers()

    def _ensure_pool(self) -> futures.Executor:
        if self._pool is None:
            self._pool = type(self)._pool_factory(max_workers=self.workers)
        return self._pool

    def _run(
        self, fn: Callable, items: list, label: str = "map"
    ) -> list[TaskResult]:
        pool = self._ensure_pool()
        pending = [
            pool.submit(_run_task, fn, index, item, label)
            for index, item in enumerate(items)
        ]
        results = []
        for index, future in enumerate(pending):
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 - submission failures
                # e.g. an unpicklable task on the process backend: the
                # worker never saw it, so capture the error here.
                results.append(
                    TaskResult(
                        index=index, error=f"{type(exc).__name__}: {exc}"
                    )
                )
        return results

    def close(self) -> None:
        """Shut the pool down (it is lazily rebuilt on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadExecutor(_PooledExecutor):
    """Thread-pool backend (lazy ``ThreadPoolExecutor``).

    Tasks share the process, so they may close over unpicklable state --
    but they must be thread-safe.  Best for workloads dominated by
    GIL-releasing native code (BLAS matmuls in the solvers).
    """

    name = "thread"
    _pool_factory = futures.ThreadPoolExecutor


class ProcessExecutor(_PooledExecutor):
    """Process-pool backend (lazy ``ProcessPoolExecutor``).

    Task functions, items and return values must be picklable.  Each
    worker owns its own default :class:`~repro.core.engine.DecodeEngine`
    (and operator cache), so same-shape tasks amortise template
    construction inside every worker just like the parent does.
    """

    name = "process"
    _pool_factory = futures.ProcessPoolExecutor


@dataclass(frozen=True)
class WorkerLossEvent:
    """One worker loss a :class:`SupervisedExecutor` detected.

    Attributes
    ----------
    label:
        The ``map_tasks`` label the loss occurred under.
    index:
        Submission index of the lost task.
    kind:
        ``"crash"`` (the task raised :class:`WorkerCrash` / the pool
        broke) or ``"timeout"`` (no result within ``timeout_s`` despite
        heartbeat polling).
    error:
        The captured error string.
    retry_round:
        0 for a loss on the first attempt, ``n`` for a loss during the
        ``n``-th retry.
    """

    label: str
    index: int
    kind: str
    error: str
    retry_round: int


class SupervisedExecutor(Executor):
    """Worker supervision wrapped around any inner backend.

    The unsupervised backends equate a dead or hung worker with a
    failed *task*: a :class:`WorkerCrash` surfaces as an error result,
    and a hang blocks ``map_tasks`` forever.  This wrapper treats both
    as *infrastructure* faults and contains them:

    * **heartbeat/timeout detection** -- on pooled inner backends each
      task's future is polled every ``heartbeat_s``; a task with no
      result after ``timeout_s`` is declared lost (``"timeout"``) and
      its future abandoned, so one hung worker can never stall the
      dispatch loop (serial inner backends cannot be preempted:
      overlong serial tasks are counted under ``executor.worker_slow``
      but keep their results);
    * **retry on surviving workers** -- lost tasks are resubmitted (up
      to ``max_retries`` rounds) with ``backoff_s * round`` linear
      backoff between rounds; a broken process pool is torn down first
      so the lazy rebuild provisions fresh workers;
    * **accounting** -- every loss increments ``executor.worker_lost``
      (and ``executor.worker_lost.<kind>``), every resubmission
      ``executor.worker_retries``, and a drainable
      :class:`WorkerLossEvent` trail (:meth:`pop_losses`) lets the
      decode service raise per-stream alerts.

    Tasks must be idempotent to retry -- true for every decode fan-out
    in this repo, whose RNG-consuming acquisition happens *before* the
    fan-out (the execution-layer determinism contract).
    """

    name = "supervised"

    def __init__(
        self,
        inner: "Executor | str | int | None" = None,
        timeout_s: float | None = None,
        heartbeat_s: float = 0.05,
        max_retries: int = 2,
        backoff_s: float = 0.0,
    ):
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        resolved = resolve_executor(inner) if inner is not None else None
        self.inner = resolved if resolved is not None else SerialExecutor()
        if isinstance(self.inner, SupervisedExecutor):
            raise ValueError("cannot nest SupervisedExecutor in itself")
        self.timeout_s = timeout_s
        self.heartbeat_s = float(heartbeat_s)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self._losses: list[WorkerLossEvent] = []

    @property
    def workers(self) -> int:
        """Worker slots of the wrapped backend."""
        return self.inner.workers

    def pop_losses(self) -> tuple[WorkerLossEvent, ...]:
        """Drain the worker-loss events recorded since the last call."""
        losses = tuple(self._losses)
        self._losses.clear()
        return losses

    def close(self) -> None:
        """Release the wrapped backend's pooled workers."""
        self.inner.close()

    # -- supervision internals ----------------------------------------------
    @staticmethod
    def _loss_kind(result: TaskResult) -> str | None:
        """Classify a task result as a worker loss (or ``None``)."""
        if result.ok or result.error is None:
            return None
        if result.error.startswith("WorkerTimeout"):
            return "timeout"
        if result.error.startswith(_LOSS_PREFIXES):
            return "crash"
        return None

    def _run(
        self, fn: Callable, items: list, label: str = "map"
    ) -> list[TaskResult]:
        results: dict[int, TaskResult] = {}
        todo = list(range(len(items)))
        for attempt in range(self.max_retries + 1):
            if not todo:
                break
            if attempt and self.backoff_s:
                time.sleep(self.backoff_s * attempt)
            batch = self._attempt(fn, items, todo, label)
            retry: list[int] = []
            for index, result in zip(todo, batch):
                kind = self._loss_kind(result)
                if kind is None:
                    results[index] = result
                    continue
                self._losses.append(
                    WorkerLossEvent(
                        label=label,
                        index=index,
                        kind=kind,
                        error=result.error or "",
                        retry_round=attempt,
                    )
                )
                instrument.incr("executor.worker_lost")
                instrument.incr(f"executor.worker_lost.{kind}")
                if kind == "crash" and not result.error.startswith(
                    "WorkerCrash"
                ):
                    # Real pool breakage: tear it down so the lazy
                    # rebuild provisions fresh workers for the retry.
                    self.inner.close()
                if attempt < self.max_retries:
                    instrument.incr("executor.worker_retries")
                    retry.append(index)
                else:
                    results[index] = result
            todo = retry
        return [results[index] for index in range(len(items))]

    def _attempt(
        self, fn: Callable, items: list, indices: list, label: str
    ) -> list[TaskResult]:
        """Run the tasks at ``indices`` once through the inner backend."""
        if isinstance(self.inner, _PooledExecutor):
            pool = self.inner._ensure_pool()
            pending = []
            for index in indices:
                try:
                    pending.append(
                        pool.submit(_run_task, fn, index, items[index], label)
                    )
                except Exception as exc:  # noqa: BLE001 - broken pool
                    pending.append(
                        TaskResult(
                            index=index,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
            return [
                entry
                if isinstance(entry, TaskResult)
                else self._await(entry, index)
                for index, entry in zip(indices, pending)
            ]
        results = []
        for index in indices:
            result = _run_task(fn, index, items[index], label)
            if (
                self.timeout_s is not None
                and result.ok
                and result.duration_s > self.timeout_s
            ):
                # A serial task cannot be preempted; flag the overrun
                # but keep its (already computed) result.
                instrument.incr("executor.worker_slow")
            results.append(result)
        return results

    def _await(self, future, index: int) -> TaskResult:
        """Heartbeat-poll one future; declare it lost on timeout."""
        waited = 0.0
        while True:
            step = self.heartbeat_s
            if self.timeout_s is not None:
                step = min(step, max(1e-6, self.timeout_s - waited))
            try:
                return future.result(timeout=step)
            except futures.TimeoutError:
                waited += step
                instrument.incr("executor.heartbeats")
                if self.timeout_s is not None and waited >= self.timeout_s:
                    future.cancel()
                    return TaskResult(
                        index=index,
                        error=(
                            f"WorkerTimeout: no result within "
                            f"{self.timeout_s}s (heartbeat "
                            f"{self.heartbeat_s}s)"
                        ),
                        duration_s=waited,
                    )
            except Exception as exc:  # noqa: BLE001 - pool breakage
                return TaskResult(
                    index=index, error=f"{type(exc).__name__}: {exc}"
                )


def resolve_executor(spec, workers: int | None = None) -> Executor | None:
    """Normalise the shared ``executor=`` argument convention.

    ===============================  =====================================
    ``spec``                         resolves to
    ===============================  =====================================
    ``None``                         ``None`` (call site keeps its
                                     legacy sequential path)
    an :class:`Executor` instance    itself (any object with
                                     ``map_tasks`` qualifies)
    ``"serial"``                     :class:`SerialExecutor`
    ``"thread"`` / ``"threads"``     :class:`ThreadExecutor`
    ``"process"`` / ``"processes"``  :class:`ProcessExecutor`
    ``int n``                        ``n <= 1`` -> serial, else a
                                     process pool with ``n`` workers
    ===============================  =====================================

    ``workers`` overrides the pool size for the string forms.

    Invalid specs fail *here*, with a message naming the accepted
    forms, rather than surfacing later as a cryptic pool-construction
    error deep inside ``concurrent.futures``: a zero/negative worker
    count (as ``spec`` or as ``workers``) and an unknown spec string
    are both rejected with :class:`ValueError` up front.
    """
    if workers is not None and workers < 1:
        raise ValueError(
            f"workers must be >= 1, got {workers} (pass None to use the "
            "backend default)"
        )
    if spec is None:
        return None
    if hasattr(spec, "map_tasks"):
        return spec
    if isinstance(spec, bool):
        raise ValueError(
            f"cannot resolve executor spec {spec!r}; expected None, an "
            "Executor instance, 'serial' | 'thread' | 'threads' | "
            "'process' | 'processes', or a worker count >= 1"
        )
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError(
                f"worker count must be >= 1, got {spec}; pass 1 for the "
                "serial backend or n >= 2 for an n-worker process pool"
            )
        return SerialExecutor() if spec == 1 else ProcessExecutor(spec)
    if isinstance(spec, str):
        kind = spec.strip().lower()
        if kind == "serial":
            return SerialExecutor()
        if kind in ("thread", "threads"):
            return ThreadExecutor(workers)
        if kind in ("process", "processes"):
            return ProcessExecutor(workers)
        raise ValueError(
            f"unknown executor spec {spec!r}; accepted strings are "
            "'serial', 'thread'/'threads' and 'process'/'processes'"
        )
    raise ValueError(
        f"cannot resolve executor spec {spec!r}; expected None, an "
        "Executor instance, 'serial' | 'thread' | 'threads' | 'process' "
        "| 'processes', or a worker count >= 1"
    )
