"""Pluggable execution backends for every fan-out in the repo.

The repo has one recurring shape of work: *many independent decode
tasks* -- tiles in :class:`~repro.core.blocks.BlockProcessor`, frames in
a :class:`~repro.array.imager.StreamingImager` window, redundant draws
in :class:`~repro.core.strategies.ResamplingStrategy`, grid points in
:class:`~repro.core.pipeline.RobustnessSweep` and the tolerance / RES
experiments.  Each used to hand-roll its own loop; none could use a
pool without duplicating pool bookkeeping, ordering and error handling.

This module is the one sanctioned seam for parallelism
(``tools/check_engine_seam.py`` forbids raw ``concurrent.futures`` /
``multiprocessing`` pool construction anywhere else):

* :class:`Executor` -- the protocol: ``map_tasks(fn, items)`` returns a
  :class:`TaskResult` per item **in submission order**, with per-task
  error capture (a failing task yields an error string instead of
  poisoning its siblings) and ``executor.*`` metrics via
  :mod:`repro.instrument`;
* :class:`SerialExecutor` -- in-process loop, the reference backend
  every parallel backend must match bit-for-bit;
* :class:`ThreadExecutor` -- ``ThreadPoolExecutor`` backend, right for
  workloads that release the GIL (BLAS-heavy solves) or mix I/O;
* :class:`ProcessExecutor` -- ``ProcessPoolExecutor`` backend for
  CPU-bound fan-out; tasks and results must be picklable (the frozen
  :class:`~repro.core.engine.DecodeContext` is, by design);
* :func:`resolve_executor` -- the shared ``executor=`` argument
  convention (``None`` | ``"serial"`` | ``"thread"`` | ``"process"`` |
  worker count | instance) every call site accepts.

Determinism contract: ``map_tasks`` never reorders results, and the
call sites built on it draw all RNG-consuming work (``Phi_M`` draws,
measurement noise) *before* fanning out or from per-task spawned
generators -- so serial, thread and process backends produce
bit-identical output under a fixed seed.  Regression tests assert this.
"""

from __future__ import annotations

import os
import time
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .. import instrument

__all__ = [
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "TaskError",
    "TaskResult",
    "ThreadExecutor",
    "collect_values",
    "default_workers",
    "resolve_executor",
]


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task submitted through :meth:`Executor.map_tasks`.

    Attributes
    ----------
    index:
        Position of the task's item in the submitted sequence; results
        come back sorted by it, so ``results[i]`` always corresponds to
        ``items[i]``.
    value:
        The task function's return value (``None`` when it failed).
    error:
        ``None`` on success; otherwise ``"ExcType: message"`` captured
        from the task (the exception object itself may not survive a
        process boundary, the string always does).
    duration_s:
        Wall-clock seconds the task body ran.
    """

    index: int
    value: Any = None
    error: str | None = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the task completed without raising."""
        return self.error is None


class TaskError(RuntimeError):
    """Raised by :func:`collect_values` when any task in a map failed."""


def collect_values(results: Sequence[TaskResult]) -> list:
    """Unwrap ``map_tasks`` results into plain values, or raise.

    Raises :class:`TaskError` naming every failed task when any task
    errored; call sites that want partial results inspect the
    :class:`TaskResult` list directly instead.
    """
    failed = [r for r in results if not r.ok]
    if failed:
        details = "; ".join(f"task {r.index}: {r.error}" for r in failed)
        raise TaskError(
            f"{len(failed)} of {len(results)} task(s) failed: {details}"
        )
    return [r.value for r in results]


def default_workers() -> int:
    """Default worker count: the machine's CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _run_task(fn: Callable, index: int, item) -> TaskResult:
    """Run one task body, capturing errors and timing (picklable)."""
    start = time.perf_counter()
    try:
        value = fn(item)
    except Exception as exc:  # noqa: BLE001 - per-task containment
        return TaskResult(
            index=index,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
        )
    return TaskResult(
        index=index, value=value, duration_s=time.perf_counter() - start
    )


class Executor:
    """Base class / protocol for the pluggable execution backends.

    Subclasses implement :meth:`_run`; :meth:`map_tasks` wraps it with
    the shared contract -- deterministic submission-order results,
    per-task error capture, and ``executor.*`` instrumentation
    (``map_calls`` / ``tasks`` / ``task_errors`` counters plus an
    ``executor.<label>`` span per map).
    """

    name = "executor"

    @property
    def workers(self) -> int:
        """Worker slots this backend runs tasks on (1 for serial)."""
        return 1

    def map_tasks(
        self, fn: Callable, items: Iterable, label: str = "map"
    ) -> list[TaskResult]:
        """Apply ``fn`` to every item; results in submission order.

        ``fn`` must accept one positional argument (the item).  A task
        that raises is captured as a failed :class:`TaskResult` -- the
        map always returns ``len(items)`` results.
        """
        items = list(items)
        with instrument.span(
            f"executor.{label}",
            backend=self.name,
            tasks=len(items),
            workers=self.workers,
        ):
            instrument.incr("executor.map_calls")
            instrument.incr("executor.tasks", len(items))
            instrument.set_gauge("executor.workers", self.workers)
            results = self._run(fn, items)
            errors = sum(1 for r in results if not r.ok)
            if errors:
                instrument.incr("executor.task_errors", errors)
        return results

    def _run(self, fn: Callable, items: list) -> list[TaskResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (no-op for pool-less backends)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process, in-order execution -- the reference backend.

    Parallel backends are validated against it bit-for-bit; it is also
    the fallback :func:`resolve_executor` picks for a worker count of 1.
    """

    name = "serial"

    def _run(self, fn: Callable, items: list) -> list[TaskResult]:
        return [_run_task(fn, index, item) for index, item in enumerate(items)]


class _PooledExecutor(Executor):
    """Shared pool lifecycle for the thread/process backends."""

    _pool_factory: Callable[..., futures.Executor]

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = int(workers) if workers is not None else None
        self._pool: futures.Executor | None = None

    @property
    def workers(self) -> int:
        """Configured worker count (defaults to :func:`default_workers`)."""
        return self._workers or default_workers()

    def _ensure_pool(self) -> futures.Executor:
        if self._pool is None:
            self._pool = type(self)._pool_factory(max_workers=self.workers)
        return self._pool

    def _run(self, fn: Callable, items: list) -> list[TaskResult]:
        pool = self._ensure_pool()
        pending = [
            pool.submit(_run_task, fn, index, item)
            for index, item in enumerate(items)
        ]
        results = []
        for index, future in enumerate(pending):
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 - submission failures
                # e.g. an unpicklable task on the process backend: the
                # worker never saw it, so capture the error here.
                results.append(
                    TaskResult(
                        index=index, error=f"{type(exc).__name__}: {exc}"
                    )
                )
        return results

    def close(self) -> None:
        """Shut the pool down (it is lazily rebuilt on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadExecutor(_PooledExecutor):
    """Thread-pool backend (lazy ``ThreadPoolExecutor``).

    Tasks share the process, so they may close over unpicklable state --
    but they must be thread-safe.  Best for workloads dominated by
    GIL-releasing native code (BLAS matmuls in the solvers).
    """

    name = "thread"
    _pool_factory = futures.ThreadPoolExecutor


class ProcessExecutor(_PooledExecutor):
    """Process-pool backend (lazy ``ProcessPoolExecutor``).

    Task functions, items and return values must be picklable.  Each
    worker owns its own default :class:`~repro.core.engine.DecodeEngine`
    (and operator cache), so same-shape tasks amortise template
    construction inside every worker just like the parent does.
    """

    name = "process"
    _pool_factory = futures.ProcessPoolExecutor


def resolve_executor(spec, workers: int | None = None) -> Executor | None:
    """Normalise the shared ``executor=`` argument convention.

    ===============================  =====================================
    ``spec``                         resolves to
    ===============================  =====================================
    ``None``                         ``None`` (call site keeps its
                                     legacy sequential path)
    an :class:`Executor` instance    itself (any object with
                                     ``map_tasks`` qualifies)
    ``"serial"``                     :class:`SerialExecutor`
    ``"thread"`` / ``"threads"``     :class:`ThreadExecutor`
    ``"process"`` / ``"processes"``  :class:`ProcessExecutor`
    ``int n``                        ``n <= 1`` -> serial, else a
                                     process pool with ``n`` workers
    ===============================  =====================================

    ``workers`` overrides the pool size for the string forms.

    Invalid specs fail *here*, with a message naming the accepted
    forms, rather than surfacing later as a cryptic pool-construction
    error deep inside ``concurrent.futures``: a zero/negative worker
    count (as ``spec`` or as ``workers``) and an unknown spec string
    are both rejected with :class:`ValueError` up front.
    """
    if workers is not None and workers < 1:
        raise ValueError(
            f"workers must be >= 1, got {workers} (pass None to use the "
            "backend default)"
        )
    if spec is None:
        return None
    if hasattr(spec, "map_tasks"):
        return spec
    if isinstance(spec, bool):
        raise ValueError(
            f"cannot resolve executor spec {spec!r}; expected None, an "
            "Executor instance, 'serial' | 'thread' | 'threads' | "
            "'process' | 'processes', or a worker count >= 1"
        )
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError(
                f"worker count must be >= 1, got {spec}; pass 1 for the "
                "serial backend or n >= 2 for an n-worker process pool"
            )
        return SerialExecutor() if spec == 1 else ProcessExecutor(spec)
    if isinstance(spec, str):
        kind = spec.strip().lower()
        if kind == "serial":
            return SerialExecutor()
        if kind in ("thread", "threads"):
            return ThreadExecutor(workers)
        if kind in ("process", "processes"):
            return ProcessExecutor(workers)
        raise ValueError(
            f"unknown executor spec {spec!r}; accepted strings are "
            "'serial', 'thread'/'threads' and 'process'/'processes'"
        )
    raise ValueError(
        f"cannot resolve executor spec {spec!r}; expected None, an "
        "Executor instance, 'serial' | 'thread' | 'threads' | 'process' "
        "| 'processes', or a worker count >= 1"
    )
