"""Pluggable measurement families: the ``MeasurementModel`` abstraction.

The paper's encoder is one point in measurement space -- ``Phi_M`` as
``M`` random identity rows (Sec. 3.1, Eq. 8), i.e. *scan out a random
pixel subset*.  Related work reads the same hardware differently:
single-pixel-style summed readout with dense Bernoulli / Hadamard codes
(Slepyan et al., arXiv 2511.16898) and on-sensor block-wise acquisition
(arXiv 1709.07041).  This module turns "row sampling with exceptions"
into "family-parameterised with row sampling as one instance": a
:class:`MeasurementModel` owns everything family-specific about one
measurement scheme, and every layer (engine, array scan path,
resilience, bench) talks to the model instead of assuming indices.

A model answers seven questions:

* :meth:`~MeasurementModel.budget` -- how many measurements ``m`` are
  actually possible given an exclusion set (row sampling clamps to the
  surviving pixels; dense codes keep ``m`` and zero excluded columns);
* :meth:`~MeasurementModel.draw` -- draw the per-frame code ``Phi``
  (the *only* RNG consumer on the sampling side);
* :meth:`~MeasurementModel.measure` -- apply ``Phi`` to a pixel vector;
* :meth:`~MeasurementModel.build_operator` -- bind ``Phi`` to a cached
  basis entry as a matrix-free
  :class:`~repro.core.operators.LinearOperator`;
* :meth:`~MeasurementModel.support_mask` /
  :meth:`~MeasurementModel.control_words` -- which pixels the code
  touches, expanded to per-scan-cycle row-driver words for the
  active-matrix hardware (Fig. 4);
* :meth:`~MeasurementModel.combine` -- turn the per-pixel readings the
  scan hardware returns into the measurement vector.

Capability flags (``supports_exclusions`` / ``supports_weights`` /
``supports_multi_rhs``) let callers degrade explicitly instead of
silently: :meth:`DecodeContext.with_exclusions
<repro.core.engine.DecodeContext.with_exclusions>` and the resilience
layer consult them.

Families are registered under a string name (the ``measurement=`` axis
of :class:`~repro.core.engine.DecodeContext`) through
:func:`register_measurement`, mirroring
:func:`~repro.core.engine.register_basis`.  Three ship by default:

* ``"row_sampling"`` -- the paper's encoder, bit-identical to the
  pre-refactor decode path (the control arm);
* ``"dense_codes"`` -- dense ``+-1/sqrt(m)`` Bernoulli summed readout
  (:class:`DenseCodesModel` also supports Hadamard and Gaussian codes);
* ``"block_sampling"`` -- block-diagonal codes: each measurement sums
  one spatial tile of the array, the on-sensor acquisition regime.

This module (together with :mod:`repro.core.sensing`) is the only
sanctioned construction site for measurement matrices; CI enforces the
seam with ``tools/check_engine_seam.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dct import Dct2Basis, SeparableDct2Basis
from .operators import CompositeOperator, DenseOperator, SeparableDCTOperator
from .sensing import (
    RowSamplingMatrix,
    _zero_excluded_columns,
    bernoulli_matrix,
    column_control_words,
    gaussian_matrix,
    hadamard_matrix,
    weighted_sample_indices,
)

__all__ = [
    "BlockSamplingMatrix",
    "BlockSamplingModel",
    "DenseCodeMatrix",
    "DenseCodesModel",
    "MeasurementModel",
    "RowSamplingModel",
    "get_measurement",
    "measurement_names",
    "register_measurement",
    "resolve_measurement_for",
]


# --------------------------------------------------------------------------
# Code carriers: what a family's ``draw`` hands back.
# --------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class DenseCodeMatrix:
    """A dense measurement code: an explicit ``(m, n)`` matrix ``Phi``.

    The carrier for summed-readout families (every measurement is a
    weighted sum over many pixels).  The matrix is stored read-only;
    ``code`` records which ensemble drew it (``"bernoulli"``,
    ``"hadamard"``, ``"gaussian"``, ``"block"``).
    """

    matrix: np.ndarray = field(repr=False)
    code: str = "bernoulli"

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"dense code must be a 2-D matrix, got shape {matrix.shape}"
            )
        matrix = np.ascontiguousarray(matrix)
        matrix.setflags(write=False)
        object.__setattr__(self, "matrix", matrix)

    @property
    def m(self) -> int:
        """Number of measurements (matrix rows)."""
        return self.matrix.shape[0]

    @property
    def n(self) -> int:
        """Number of pixels (matrix columns)."""
        return self.matrix.shape[1]

    def apply(self, y: np.ndarray) -> np.ndarray:
        """``Phi @ y``: one summed readout per measurement row."""
        y = np.asarray(y, dtype=float)
        if y.shape[0] != self.n:
            raise ValueError(
                f"vector length {y.shape[0]} does not match n={self.n}"
            )
        return self.matrix @ y

    def adjoint(self, v: np.ndarray) -> np.ndarray:
        """``Phi.T @ v``: back-project measurements onto the pixels."""
        v = np.asarray(v, dtype=float)
        if v.shape[0] != self.m:
            raise ValueError(
                f"vector length {v.shape[0]} does not match m={self.m}"
            )
        return self.matrix.T @ v


@dataclass(frozen=True, eq=False)
class BlockSamplingMatrix(DenseCodeMatrix):
    """A block-diagonal dense code: each measurement sums one tile.

    ``block_shape`` records the tile size the generating model used;
    the matrix itself is an ordinary dense code whose rows have support
    confined to single spatial blocks (on-sensor acquisition,
    arXiv 1709.07041).
    """

    block_shape: tuple = (8, 8)


# --------------------------------------------------------------------------
# The model protocol.
# --------------------------------------------------------------------------


class MeasurementModel:
    """One measurement family: code generation, applies, hardware words.

    Subclasses set the class attributes and implement :meth:`draw`,
    :meth:`measure` and :meth:`build_operator`; the support/combine
    defaults are generic over any carrier the model can describe via
    :meth:`support_mask`.

    Attributes
    ----------
    name:
        Registry name (the ``measurement=`` plan axis).
    phi_type:
        Carrier class :meth:`draw` returns; used by
        :func:`resolve_measurement_for` to recover the model from a
        bare carrier.
    supports_exclusions:
        Whether :meth:`draw` honours an exclusion index set.
    supports_weights:
        Whether :meth:`draw` honours per-pixel sampling weights.
    supports_multi_rhs:
        Whether the family's operators take the vectorised multi-RHS
        solve path (shared-``Phi`` batch decodes).
    """

    name: str = "abstract"
    phi_type: type | None = None
    supports_exclusions: bool = True
    supports_weights: bool = False
    supports_multi_rhs: bool = True

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _pixel_count(shape) -> int:
        if isinstance(shape, (int, np.integer)):
            return int(shape)
        return int(np.prod([int(s) for s in shape]))

    def _reject_weights(self, weights) -> None:
        if weights is not None and not self.supports_weights:
            raise ValueError(
                f"measurement family {self.name!r} does not support "
                "per-pixel sampling weights; use row_sampling"
            )

    # -- family-specific (subclass responsibility) -------------------------
    def budget(self, n: int, m: int, exclude: np.ndarray | None = None) -> int:
        """Measurement count actually possible under the exclusion set.

        The default keeps ``m`` (summed-readout codes drop excluded
        *columns*, not measurements) and rejects exclusions outright
        for families that cannot honour them.
        """
        if (
            exclude is not None
            and len(exclude) > 0
            and not self.supports_exclusions
        ):
            raise ValueError(
                f"measurement family {self.name!r} does not support "
                "exclusion masks"
            )
        return m

    def draw(
        self,
        shape,
        m: int,
        rng: np.random.Generator,
        exclude: np.ndarray | None = None,
        weights: np.ndarray | None = None,
    ):
        """Draw one per-frame code (the only sampling-side RNG consumer)."""
        raise NotImplementedError

    def measure(self, pixels: np.ndarray, phi) -> np.ndarray:
        """``Phi @ pixels`` for this family's carrier."""
        raise NotImplementedError

    def build_operator(self, phi, entry, operator_cls: type | None = None):
        """Bind a drawn code to a cached basis entry as a LinearOperator.

        ``entry`` is a :class:`~repro.core.engine.CacheEntry`;
        ``operator_cls`` lets the engine substitute its own composite
        subclass (:class:`~repro.core.engine.EngineOperator`) without a
        circular import.
        """
        raise NotImplementedError

    # -- generic hardware expansion ----------------------------------------
    def support_mask(self, phi) -> np.ndarray:
        """Boolean length-``n`` mask of pixels the code ever touches."""
        raise NotImplementedError

    def control_words(
        self, phi, array_shape: tuple[int, int]
    ) -> list[np.ndarray]:
        """Per-scan-cycle row-driver control words (Fig. 4).

        Word ``c`` asserts the rows whose pixels in column ``c``
        contribute to at least one measurement; the generic expansion
        works for any family via :meth:`support_mask`.
        """
        rows, cols = array_shape
        n = int(phi.n)
        if rows * cols != n:
            raise ValueError(
                f"array shape {array_shape} does not hold n={n} pixels"
            )
        grid = self.support_mask(phi).reshape(rows, cols)
        return [grid[:, c].copy() for c in range(cols)]

    def combine(self, phi, acquired: dict) -> tuple[np.ndarray, int]:
        """Measurement vector from per-pixel scan readings.

        ``acquired`` maps flat pixel index to the reading the scan
        hardware produced; pixels the code needs but the scan never
        delivered count as ``missing`` and contribute 0 (a dropped-read
        fault).  Returns ``(measurements, missing)``.
        """
        support = np.flatnonzero(self.support_mask(phi))
        missing = sum(1 for i in support if int(i) not in acquired)
        pixels = np.zeros(int(phi.n), dtype=float)
        for i in support:
            pixels[i] = acquired.get(int(i), 0.0)
        return np.asarray(self.measure(pixels, phi), dtype=float), missing


# --------------------------------------------------------------------------
# Family: row_sampling (the paper's encoder -- the control arm).
# --------------------------------------------------------------------------


class RowSamplingModel(MeasurementModel):
    """``Phi_M`` as ``M`` random identity rows (paper Sec. 3.1, Eq. 8).

    Bit-identical to the pre-refactor decode path: the RNG consumption
    of :meth:`draw`, the budget clamp (and its error message), the
    measurement gather and the operator construction all reproduce the
    engine's previous hard-wired recipe exactly -- regression tests pin
    this.
    """

    name = "row_sampling"
    phi_type = RowSamplingMatrix
    supports_exclusions = True
    supports_weights = True
    supports_multi_rhs = True

    def budget(self, n: int, m: int, exclude: np.ndarray | None = None) -> int:
        if exclude is not None:
            m = min(m, n - len(exclude))
            if m < 1:
                raise ValueError(
                    f"exclusion mask leaves no pixels to sample "
                    f"({len(exclude)} of {n} pixels excluded); relax the "
                    "mask or fall back to unmasked sampling"
                )
        return m

    def draw(
        self,
        shape,
        m: int,
        rng: np.random.Generator,
        exclude: np.ndarray | None = None,
        weights: np.ndarray | None = None,
    ) -> RowSamplingMatrix:
        n = self._pixel_count(shape)
        if weights is not None:
            indices = weighted_sample_indices(
                n,
                m,
                np.asarray(weights, dtype=float).ravel(),
                rng,
                exclude=exclude,
            )
            return RowSamplingMatrix(n=n, indices=indices)
        return RowSamplingMatrix.random(n, m, rng, exclude=exclude)

    def from_indices(self, n: int, indices: np.ndarray) -> RowSamplingMatrix:
        """Carrier from a precomputed index set (video voxel stacking)."""
        return RowSamplingMatrix(n=n, indices=indices)

    def measure(self, pixels: np.ndarray, phi: RowSamplingMatrix) -> np.ndarray:
        return phi.apply(pixels)

    def build_operator(
        self, phi: RowSamplingMatrix, entry, operator_cls: type | None = None
    ):
        hint = entry.spectral_norm_hint
        if entry.mode == "dense":
            psi = entry.basis
            return DenseOperator(
                psi[phi.indices, :], basis=psi, spectral_norm_hint=hint
            )
        if isinstance(entry.basis, (Dct2Basis, SeparableDct2Basis)):
            return SeparableDCTOperator(
                phi, entry.basis, spectral_norm_hint=hint
            )
        cls = operator_cls or CompositeOperator
        return cls(phi, entry.basis, spectral_norm_hint=hint)

    def support_mask(self, phi: RowSamplingMatrix) -> np.ndarray:
        mask = np.zeros(phi.n, dtype=bool)
        mask[phi.indices] = True
        return mask

    def control_words(
        self, phi: RowSamplingMatrix, array_shape: tuple[int, int]
    ) -> list[np.ndarray]:
        return column_control_words(phi, array_shape)

    def combine(
        self, phi: RowSamplingMatrix, acquired: dict
    ) -> tuple[np.ndarray, int]:
        # The exact pre-refactor encoder recipe: gather in index order.
        missing = sum(1 for i in phi.indices if i not in acquired)
        measurements = np.array(
            [acquired.get(i, 0.0) for i in phi.indices], dtype=float
        )
        return measurements, missing


# --------------------------------------------------------------------------
# Dense summed-readout families.
# --------------------------------------------------------------------------


class _DenseFamilyModel(MeasurementModel):
    """Shared behaviour of families carrying an explicit dense matrix."""

    supports_exclusions = True
    supports_weights = False
    supports_multi_rhs = True

    def measure(self, pixels: np.ndarray, phi: DenseCodeMatrix) -> np.ndarray:
        return phi.apply(pixels)

    def build_operator(
        self, phi: DenseCodeMatrix, entry, operator_cls: type | None = None
    ):
        # The unit-norm hint only holds for row sampling of an
        # orthonormal basis; dense codes always estimate ||A||_2.
        if entry.mode == "dense":
            a = phi.matrix @ entry.basis
            return DenseOperator(a, basis=entry.basis, spectral_norm_hint=None)
        cls = operator_cls or CompositeOperator
        return cls(phi.matrix, entry.basis, spectral_norm_hint=None)

    def support_mask(self, phi: DenseCodeMatrix) -> np.ndarray:
        return np.any(phi.matrix != 0.0, axis=0)


class DenseCodesModel(_DenseFamilyModel):
    """Dense summed-readout codes (single-pixel style, arXiv 2511.16898).

    Every measurement is a random weighted sum over the whole array;
    the ``code`` parameter selects the ensemble -- ``"bernoulli"``
    (default, ``+-1/sqrt(m)``), ``"hadamard"`` (randomised partial
    Sylvester-Hadamard) or ``"gaussian"`` (``N(0, 1/m)``, the classic
    theory baseline).  Exclusion masks zero the defective pixels'
    columns; the RNG consumption is mask-independent.
    """

    name = "dense_codes"
    phi_type = DenseCodeMatrix

    _CODE_FACTORIES = {
        "bernoulli": bernoulli_matrix,
        "hadamard": hadamard_matrix,
        "gaussian": gaussian_matrix,
    }

    def __init__(self, code: str = "bernoulli"):
        if code not in self._CODE_FACTORIES:
            raise ValueError(
                f"unknown dense code ensemble {code!r}; supported: "
                f"{tuple(sorted(self._CODE_FACTORIES))}"
            )
        self.code = code

    def draw(
        self,
        shape,
        m: int,
        rng: np.random.Generator,
        exclude: np.ndarray | None = None,
        weights: np.ndarray | None = None,
    ) -> DenseCodeMatrix:
        self._reject_weights(weights)
        n = self._pixel_count(shape)
        matrix = self._CODE_FACTORIES[self.code](m, n, rng, exclude=exclude)
        return DenseCodeMatrix(matrix=matrix, code=self.code)


class BlockSamplingModel(_DenseFamilyModel):
    """Block-diagonal codes: on-sensor block acquisition (arXiv 1709.07041).

    The frame is tiled into ``block_size x block_size`` blocks (partial
    blocks at the edges); the ``m`` measurements are distributed
    round-robin over the blocks in raster order, and each measurement
    is a random ``+-1/sqrt(m_b)`` sum over its own block's pixels only.
    Locality keeps the readout wiring per-tile -- the acquisition
    regime of block-based CS hardware.  Exclusions zero defective
    columns after the draw (mask-independent RNG, uniform with the
    other families).
    """

    name = "block_sampling"
    phi_type = BlockSamplingMatrix

    def __init__(self, block_size: int = 8):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)

    def draw(
        self,
        shape,
        m: int,
        rng: np.random.Generator,
        exclude: np.ndarray | None = None,
        weights: np.ndarray | None = None,
    ) -> BlockSamplingMatrix:
        self._reject_weights(weights)
        if isinstance(shape, (int, np.integer)) or len(shape) != 2:
            raise ValueError(
                "block_sampling requires a 2-D frame shape, got "
                f"{shape!r}; use dense_codes for flat pixel vectors"
            )
        rows, cols = int(shape[0]), int(shape[1])
        n = rows * cols
        if m < 1:
            raise ValueError(f"cannot take {m} measurements")
        b = self.block_size
        blocks = []
        for r0 in range(0, rows, b):
            for c0 in range(0, cols, b):
                rr = np.arange(r0, min(r0 + b, rows))
                cc = np.arange(c0, min(c0 + b, cols))
                blocks.append((rr[:, None] * cols + cc[None, :]).ravel())
        base, rem = divmod(m, len(blocks))
        matrix = np.zeros((m, n))
        row = 0
        for index, pixels in enumerate(blocks):
            m_b = base + (1 if index < rem else 0)
            if m_b == 0:
                continue
            signs = rng.choice([-1.0, 1.0], size=(m_b, len(pixels)))
            matrix[row : row + m_b, pixels] = signs / np.sqrt(m_b)
            row += m_b
        matrix = _zero_excluded_columns(matrix, n, exclude)
        return BlockSamplingMatrix(
            matrix=matrix, code="block", block_shape=(b, b)
        )


# --------------------------------------------------------------------------
# Registry (mirrors ``register_basis``).
# --------------------------------------------------------------------------

_MEASUREMENT_MODELS: dict[str, MeasurementModel] = {}


def register_measurement(name: str, model) -> None:
    """Register a measurement family under ``name``.

    ``model`` is a :class:`MeasurementModel` instance (models are
    stateless singletons) or a zero-argument factory producing one.
    Registering an existing name replaces it; engine cache entries are
    keyed on the *name*, so call
    :meth:`~repro.core.engine.OperatorCache.clear` on engines that may
    hold entries built for the old family.
    """
    if not name or not isinstance(name, str):
        raise ValueError(
            f"measurement name must be a non-empty string, got {name!r}"
        )
    if callable(model) and not isinstance(model, MeasurementModel):
        model = model()
    if not isinstance(model, MeasurementModel):
        raise TypeError(
            f"expected a MeasurementModel, got {type(model).__name__}"
        )
    model.name = name  # the registry name is authoritative for cache keys
    _MEASUREMENT_MODELS[name] = model


def get_measurement(name: str) -> MeasurementModel:
    """The registered model for ``name`` (KeyError with the vocabulary)."""
    model = _MEASUREMENT_MODELS.get(name)
    if model is None:
        raise KeyError(
            f"unknown measurement family {name!r}; registered: "
            f"{measurement_names()}"
        )
    return model


def measurement_names() -> tuple[str, ...]:
    """The registered family names (plan-axis vocabulary)."""
    return tuple(sorted(_MEASUREMENT_MODELS))


def resolve_measurement_for(phi) -> MeasurementModel:
    """Recover the family from a bare code carrier.

    Exact carrier type wins over subclass matches (a
    :class:`BlockSamplingMatrix` *is a* :class:`DenseCodeMatrix`, but
    belongs to ``block_sampling``).
    """
    for model in _MEASUREMENT_MODELS.values():
        if model.phi_type is not None and type(phi) is model.phi_type:
            return model
    for model in _MEASUREMENT_MODELS.values():
        if model.phi_type is not None and isinstance(phi, model.phi_type):
            return model
    raise TypeError(
        f"no registered measurement family handles "
        f"{type(phi).__name__} carriers"
    )


register_measurement("row_sampling", RowSamplingModel())
register_measurement("dense_codes", DenseCodesModel())
register_measurement("block_sampling", BlockSamplingModel())
