"""Evaluation metrics used by the paper's case studies.

Fig. 6 reports root-mean-square error (temperature imaging) and
classification accuracy (tactile object recognition).  PSNR and a
normalised-error variant are included for the extended analyses in
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rmse",
    "psnr",
    "normalized_error",
    "classification_accuracy",
    "confusion_matrix",
]


def rmse(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Root-mean-square error between two arrays of identical shape."""
    reference = np.asarray(reference, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    if reference.shape != estimate.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {estimate.shape}"
        )
    return float(np.sqrt(np.mean((reference - estimate) ** 2)))


def psnr(reference: np.ndarray, estimate: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for an exact match)."""
    error = rmse(reference, estimate)
    if error == 0.0:
        return float("inf")
    return float(20.0 * np.log10(peak / error))


def normalized_error(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Relative L2 error ``||est - ref|| / ||ref||`` (0 for exact match)."""
    reference = np.asarray(reference, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    if reference.shape != estimate.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {estimate.shape}"
        )
    denom = np.linalg.norm(reference)
    if denom == 0.0:
        return float(np.linalg.norm(estimate))
    return float(np.linalg.norm(estimate - reference) / denom)


def classification_accuracy(
    true_labels: np.ndarray, predicted_labels: np.ndarray
) -> float:
    """Fraction of correct predictions."""
    true_labels = np.asarray(true_labels)
    predicted_labels = np.asarray(predicted_labels)
    if true_labels.shape != predicted_labels.shape:
        raise ValueError(
            f"shape mismatch: {true_labels.shape} vs {predicted_labels.shape}"
        )
    if true_labels.size == 0:
        raise ValueError("cannot compute accuracy of zero predictions")
    return float(np.mean(true_labels == predicted_labels))


def confusion_matrix(
    true_labels: np.ndarray, predicted_labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``(num_classes, num_classes)`` count matrix, rows = true class."""
    true_labels = np.asarray(true_labels, dtype=int)
    predicted_labels = np.asarray(predicted_labels, dtype=int)
    if true_labels.shape != predicted_labels.shape:
        raise ValueError(
            f"shape mismatch: {true_labels.shape} vs {predicted_labels.shape}"
        )
    if np.any(true_labels < 0) or np.any(true_labels >= num_classes):
        raise ValueError("true labels out of range")
    if np.any(predicted_labels < 0) or np.any(predicted_labels >= num_classes):
        raise ValueError("predicted labels out of range")
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(matrix, (true_labels, predicted_labels), 1)
    return matrix
