"""Implicit linear operators: the decoder-side view of ``A = Phi_M @ Psi``.

Eq. (8) of the paper splits the CS system into the FE-side encoder
(``Phi_M @ y``) and the silicon-side decoder model (``Phi_M @ Psi @ x``).
Every solver in :mod:`repro.core.solvers` works against the linear map

    ``A x = Phi_M (Psi x)``,   ``A^T r = Psi^T (Phi_M^T r)``

and only ever needs applies, never entries.  This module is the operator
layer: a small :class:`LinearOperator` abstraction (``matvec`` /
``rmatvec`` / ``matmat``, shape, dtype, a spectral-norm hint with a
cached power-iteration fallback, and a ``to_dense()`` escape hatch) plus
the three concrete implementations the engine hands out:

* :class:`DenseOperator` -- an explicit ``(m, n)`` matrix; ``O(N^2)``
  memory and applies.  The bit-exact dense fallback and the control arm
  of the implicit-vs-dense benchmarks.
* :class:`SeparableDCTOperator` -- row-subsampled separable 2-D DCT:
  applies run through the fast separable transform (``scipy.fft`` or
  two small GEMMs), ``O(N log N)`` time and ``O(1)`` extra memory
  beyond the sampling index vector.
* :class:`CompositeOperator` -- the general ``Phi o Psi`` chain for any
  measurement matrix / sparsifying basis pairing (Gaussian and
  Bernoulli ablations, Haar wavelets, 3-D video DCT...).

:class:`SensingOperator` remains as the backward-compatible name for
the composite; new code should construct operators only through
:meth:`repro.core.engine.DecodeEngine.operator` (CI enforces the seam),
and dense materialisation (``to_dense`` / ``to_matrix``) is forbidden
outside this module and its allow-listed callers
(``tools/check_engine_seam.py``).
"""

from __future__ import annotations

import numpy as np

from .sensing import RowSamplingMatrix

__all__ = [
    "LinearOperator",
    "DenseOperator",
    "CompositeOperator",
    "SeparableDCTOperator",
    "SensingOperator",
]


def _is_matrix_free(basis) -> bool:
    return (
        hasattr(basis, "synthesize")
        and hasattr(basis, "analyze")
        and hasattr(basis, "n")
    )


class LinearOperator:
    """Abstract ``(m, n)`` linear map defined by its applies.

    Subclasses implement :meth:`matvec` / :meth:`rmatvec`; everything
    else (batched applies, ``matmat``, dense materialisation, the
    spectral norm) has a generic default built on them.  The batched
    applies use the row-stack convention (``(k, n) -> (k, m)``) because
    that is what the lockstep multi-RHS solvers consume; ``matmat`` /
    ``rmatmat`` expose the conventional column layout on top of them.

    Parameters
    ----------
    shape:
        ``(m, n)`` of the map.
    dtype:
        Element dtype (all repo operators are float64).
    spectral_norm_hint:
        Exact (or safe upper-bound) value for ``||A||_2``; when set,
        :meth:`spectral_norm` returns it without running the power
        iteration.  Gradient solvers divide by its square for the step
        size, so an upper bound keeps them convergent.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        dtype=float,
        spectral_norm_hint: float | None = None,
    ):
        m, n = shape
        if m < 1 or n < 1:
            raise ValueError(f"invalid operator shape {shape}")
        self.m = int(m)
        self.n = int(n)
        self.shape = (self.m, self.n)
        self.dtype = np.dtype(dtype)
        self._spectral_norm_hint = (
            None if spectral_norm_hint is None else float(spectral_norm_hint)
        )
        self._sigma_cache: dict[tuple[int, int], float] = {}

    # -- core applies (subclass responsibility) ----------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a coefficient vector ``x`` of length ``n``."""
        raise NotImplementedError

    def rmatvec(self, r: np.ndarray) -> np.ndarray:
        """``A.T @ r`` for a measurement vector ``r`` of length ``m``."""
        raise NotImplementedError

    # -- batched applies (multi-RHS solves) --------------------------------
    def matvec_batch(self, x: np.ndarray) -> np.ndarray:
        """``A @ x_i`` for every row of a ``(k, n)`` stack.

        Row ``i`` of the result is ``matvec(x[i])``; the generic default
        loops, subclasses with a vectorised path override it (and report
        so through :meth:`supports_batch`).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n:
            raise ValueError(
                f"expected a (k, {self.n}) coefficient stack, got {x.shape}"
            )
        return np.stack([self.matvec(row) for row in x])

    def rmatvec_batch(self, r: np.ndarray) -> np.ndarray:
        """``A.T @ r_i`` for every row of a ``(k, m)`` stack."""
        r = np.asarray(r, dtype=float)
        if r.ndim != 2 or r.shape[1] != self.m:
            raise ValueError(
                f"expected a (k, {self.m}) measurement stack, got {r.shape}"
            )
        return np.stack([self.rmatvec(row) for row in r])

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """``A @ X`` for a dense ``(n, k)`` block; returns ``(m, k)``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] != self.n:
            raise ValueError(
                f"expected an ({self.n}, k) block, got {x.shape}"
            )
        return self.matvec_batch(x.T).T

    def rmatmat(self, r: np.ndarray) -> np.ndarray:
        """``A.T @ R`` for a dense ``(m, k)`` block; returns ``(n, k)``."""
        r = np.asarray(r, dtype=float)
        if r.ndim != 2 or r.shape[0] != self.m:
            raise ValueError(
                f"expected an ({self.m}, k) block, got {r.shape}"
            )
        return self.rmatvec_batch(r.T).T

    def supports_batch(self) -> bool:
        """Whether the batched applies take a vectorised fast path."""
        return False

    # -- basis bridging (decode reshape path) ------------------------------
    def synthesize(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x``: coefficients to pixel vector (identity default)."""
        return np.asarray(coeffs, dtype=float)

    def analyze(self, pixels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y``: pixel vector to coefficients (identity default)."""
        return np.asarray(pixels, dtype=float)

    # -- accounting / escape hatches ---------------------------------------
    @property
    def nbytes(self) -> int:
        """Memory held by the operator representation (0 when implicit)."""
        return 0

    @property
    def spectral_norm_hint(self) -> float | None:
        """The cached exact/upper-bound ``||A||_2``, when one is known."""
        return self._spectral_norm_hint

    def to_dense(self) -> np.ndarray:
        """Materialise the dense ``(m, n)`` matrix ``A`` (small problems).

        This is the escape hatch for algorithms that genuinely need
        entries (the basis-pursuit LP); ``O(m n)`` memory, so CI forbids
        calls outside the allow-listed modules.
        """
        return self.matmat(np.eye(self.n))

    def to_matrix(self) -> np.ndarray:
        """Alias of :meth:`to_dense` (backward-compatible name)."""
        return self.to_dense()

    def spectral_norm(self, iterations: int = 30, seed: int = 0) -> float:
        """``||A||_2``: the hint when set, else cached power iteration.

        The power iteration runs on ``A.T A`` from a seeded start and
        the estimate is cached per ``(iterations, seed)`` on the
        operator instance, so repeated solves against one operator
        (retry chains, batch fan-outs) pay for it once.
        """
        if self._spectral_norm_hint is not None:
            return self._spectral_norm_hint
        key = (int(iterations), int(seed))
        cached = self._sigma_cache.get(key)
        if cached is not None:
            return cached
        rng = np.random.default_rng(seed)
        v = rng.normal(size=self.n)
        v /= np.linalg.norm(v)
        sigma = 1.0
        for _ in range(iterations):
            w = self.rmatvec(self.matvec(v))
            norm = np.linalg.norm(w)
            if norm == 0.0:
                sigma = 0.0
                break
            v = w / norm
            sigma = np.sqrt(norm)
        sigma = float(sigma)
        self._sigma_cache[key] = sigma
        return sigma

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(m={self.m}, n={self.n})"


class DenseOperator(LinearOperator):
    """An explicit dense ``(m, n)`` matrix behind the operator protocol.

    The bit-exact fallback and benchmark control arm: every apply is a
    BLAS product against the stored matrix, so memory and per-apply cost
    are both ``O(m n)``.  An optional ``basis`` (matrix-free object,
    dense ``(n, n)`` array or ``None``) supplies the ``synthesize`` /
    ``analyze`` bridging the decode reshape path needs.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        basis=None,
        spectral_norm_hint: float | None = None,
    ):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"dense operator needs a 2-D matrix, got shape {matrix.shape}"
            )
        super().__init__(matrix.shape, spectral_norm_hint=spectral_norm_hint)
        self._matrix = matrix
        self._basis = basis

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matrix @ np.asarray(x, dtype=float)

    def rmatvec(self, r: np.ndarray) -> np.ndarray:
        return self._matrix.T @ np.asarray(r, dtype=float)

    def matvec_batch(self, x: np.ndarray) -> np.ndarray:
        """Batched forward applies via per-slice broadcast matmul.

        ``np.matmul`` broadcasting applies the same ``(m, n) @ (n, 1)``
        product to each slice as :meth:`matvec`, keeping each row
        bitwise the serial apply.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n:
            raise ValueError(
                f"expected a (k, {self.n}) coefficient stack, got {x.shape}"
            )
        return np.matmul(self._matrix, x[:, :, None])[..., 0]

    def rmatvec_batch(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=float)
        if r.ndim != 2 or r.shape[1] != self.m:
            raise ValueError(
                f"expected a (k, {self.m}) measurement stack, got {r.shape}"
            )
        return np.matmul(self._matrix.T, r[:, :, None])[..., 0]

    def supports_batch(self) -> bool:
        return True

    def synthesize(self, coeffs: np.ndarray) -> np.ndarray:
        if self._basis is None:
            return np.asarray(coeffs, dtype=float)
        if _is_matrix_free(self._basis):
            return self._basis.synthesize(coeffs)
        return np.asarray(self._basis, dtype=float) @ coeffs

    def analyze(self, pixels: np.ndarray) -> np.ndarray:
        if self._basis is None:
            return np.asarray(pixels, dtype=float)
        if _is_matrix_free(self._basis):
            return self._basis.analyze(pixels)
        return np.asarray(self._basis, dtype=float).T @ pixels

    @property
    def nbytes(self) -> int:
        return int(self._matrix.nbytes)

    def to_dense(self) -> np.ndarray:
        return self._matrix


class CompositeOperator(LinearOperator):
    """Linear operator ``A = Phi @ Psi`` with forward and adjoint applies.

    Parameters
    ----------
    phi:
        Measurement matrix: either a :class:`RowSamplingMatrix` (the
        paper's hardware-friendly encoder) or a dense ``(m, n)`` array.
    basis:
        Sparsifying synthesis basis: any matrix-free basis object
        exposing ``synthesize`` / ``analyze`` / ``n`` (e.g.
        :class:`~repro.core.dct.Dct2Basis` or
        :class:`~repro.core.wavelet.Haar2Basis`), a dense ``(n, n)``
        array, or ``None`` for the identity basis (the "no transform"
        ablation).
    spectral_norm_hint:
        As for :class:`LinearOperator`; the engine sets ``1.0`` when
        ``phi`` is row-sampling and the basis is orthonormal.
    """

    def __init__(
        self,
        phi: RowSamplingMatrix | np.ndarray,
        basis,
        spectral_norm_hint: float | None = None,
    ):
        self._phi = phi
        self._basis = basis
        if isinstance(phi, RowSamplingMatrix):
            m, n = phi.m, phi.n
        else:
            phi = np.asarray(phi, dtype=float)
            if phi.ndim != 2:
                raise ValueError("dense phi must be a 2-D array")
            self._phi = phi
            m, n = phi.shape
        basis_n = self._basis_size()
        if basis_n is not None and basis_n != n:
            raise ValueError(
                f"basis size {basis_n} does not match phi columns {n}"
            )
        super().__init__((m, n), spectral_norm_hint=spectral_norm_hint)

    @staticmethod
    def _is_matrix_free(basis) -> bool:
        return _is_matrix_free(basis)

    def _basis_size(self) -> int | None:
        if self._basis is None:
            return None
        if _is_matrix_free(self._basis):
            return int(self._basis.n)
        self._basis = np.asarray(self._basis, dtype=float)
        if self._basis.ndim != 2 or self._basis.shape[0] != self._basis.shape[1]:
            raise ValueError("dense basis must be a square 2-D array")
        return self._basis.shape[0]

    # -- basis applies ----------------------------------------------------
    def synthesize(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x``: coefficients to pixel vector."""
        if self._basis is None:
            return np.asarray(coeffs, dtype=float)
        if _is_matrix_free(self._basis):
            return self._basis.synthesize(coeffs)
        return self._basis @ coeffs

    def analyze(self, pixels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y``: pixel vector to coefficients."""
        if self._basis is None:
            return np.asarray(pixels, dtype=float)
        if _is_matrix_free(self._basis):
            return self._basis.analyze(pixels)
        return self._basis.T @ pixels

    # -- full operator applies --------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a coefficient vector ``x`` of length ``n``."""
        y = self.synthesize(x)
        if isinstance(self._phi, RowSamplingMatrix):
            return self._phi.apply(y)
        return self._phi @ y

    def rmatvec(self, r: np.ndarray) -> np.ndarray:
        """``A.T @ r`` for a measurement vector ``r`` of length ``m``."""
        if isinstance(self._phi, RowSamplingMatrix):
            scattered = self._phi.adjoint(r)
        else:
            scattered = self._phi.T @ np.asarray(r, dtype=float)
        return self.analyze(scattered)

    # -- batched applies (multi-RHS solves) --------------------------------
    def _has_batch_basis(self) -> bool:
        return (
            isinstance(self._phi, RowSamplingMatrix)
            and self._basis is not None
            and hasattr(self._basis, "synthesize_batch")
            and hasattr(self._basis, "analyze_batch")
        )

    def _has_dense_phi_batch(self) -> bool:
        # Dense Phi vectorises through broadcast matmul for any basis
        # except a matrix-free one without batched applies.
        return not isinstance(self._phi, RowSamplingMatrix) and (
            self._basis is None
            or not _is_matrix_free(self._basis)
            or (
                hasattr(self._basis, "synthesize_batch")
                and hasattr(self._basis, "analyze_batch")
            )
        )

    def _synthesize_batch(self, x: np.ndarray) -> np.ndarray:
        """``Psi @ x_i`` per row, bitwise the serial :meth:`synthesize`."""
        if self._basis is None:
            return x
        if _is_matrix_free(self._basis):
            return self._basis.synthesize_batch(x)
        return np.matmul(self._basis, x[:, :, None])[..., 0]

    def _analyze_batch(self, y: np.ndarray) -> np.ndarray:
        """``Psi.T @ y_i`` per row, bitwise the serial :meth:`analyze`."""
        if self._basis is None:
            return y
        if _is_matrix_free(self._basis):
            return self._basis.analyze_batch(y)
        return np.matmul(self._basis.T, y[:, :, None])[..., 0]

    def matvec_batch(self, x: np.ndarray) -> np.ndarray:
        """``A @ x_i`` for every row of a ``(k, n)`` stack.

        Row ``i`` of the result is bitwise ``matvec(x[i])``: row
        sampling uses the basis's batched apply (same per-slice
        arithmetic) plus fancy indexing, dense codes use broadcast
        matmul (``np.matmul`` applies the identical ``(m, n) @ (n, 1)``
        product per slice), and configurations without either fall back
        to a per-row loop.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n:
            raise ValueError(
                f"expected a (k, {self.n}) coefficient stack, got {x.shape}"
            )
        if self._has_batch_basis():
            return self._basis.synthesize_batch(x)[:, self._phi.indices]
        if self._has_dense_phi_batch():
            return np.matmul(self._phi, self._synthesize_batch(x)[:, :, None])[
                ..., 0
            ]
        return np.stack([self.matvec(row) for row in x])

    def rmatvec_batch(self, r: np.ndarray) -> np.ndarray:
        """``A.T @ r_i`` for every row of a ``(k, m)`` stack."""
        r = np.asarray(r, dtype=float)
        if r.ndim != 2 or r.shape[1] != self.m:
            raise ValueError(
                f"expected a (k, {self.m}) measurement stack, got {r.shape}"
            )
        if self._has_batch_basis():
            scattered = np.zeros((r.shape[0], self.n))
            scattered[:, self._phi.indices] = r
            return self._basis.analyze_batch(scattered)
        if self._has_dense_phi_batch():
            scattered = np.matmul(self._phi.T, r[:, :, None])[..., 0]
            return self._analyze_batch(scattered)
        return np.stack([self.rmatvec(row) for row in r])

    def supports_batch(self) -> bool:
        """Whether the batched applies take a vectorised fast path."""
        return self._has_batch_basis() or self._has_dense_phi_batch()

    @property
    def nbytes(self) -> int:
        """Memory held by the operator: sampling indices + basis factors."""
        total = 0
        if isinstance(self._phi, RowSamplingMatrix):
            total += int(np.asarray(self._phi.indices).nbytes)
        else:
            total += int(self._phi.nbytes)
        if self._basis is not None:
            if _is_matrix_free(self._basis):
                total += int(getattr(self._basis, "nbytes", 0))
            else:
                total += int(self._basis.nbytes)
        return total

    def to_dense(self) -> np.ndarray:
        """Materialise the dense ``(m, n)`` matrix ``A`` (small problems)."""
        if isinstance(self._phi, RowSamplingMatrix):
            phi = self._phi.to_matrix()
        else:
            phi = self._phi
        if self._basis is None:
            return phi.copy()
        if _is_matrix_free(self._basis):
            return phi @ self._basis.to_matrix()
        return phi @ self._basis

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = (
            "row-sampling"
            if isinstance(self._phi, RowSamplingMatrix)
            else "dense"
        )
        basis = (
            "identity"
            if self._basis is None
            else (
                type(self._basis).__name__
                if _is_matrix_free(self._basis)
                else "dense"
            )
        )
        return (
            f"{type(self).__name__}(m={self.m}, n={self.n}, "
            f"phi={kind}, basis={basis})"
        )


class SensingOperator(CompositeOperator):
    """Backward-compatible name for the ``Phi o Psi`` composite operator."""


class SeparableDCTOperator(CompositeOperator):
    """Row-subsampled separable 2-D DCT: the implicit fast path.

    ``A = Phi_M o Psi`` where ``Phi_M`` is a
    :class:`~repro.core.sensing.RowSamplingMatrix` and ``Psi`` a
    separable DCT basis (:class:`~repro.core.dct.Dct2Basis` on the FFT
    path, :class:`~repro.core.dct.SeparableDct2Basis` on the
    two-small-GEMM path).  Applies cost ``O(N log N)`` (or two
    ``sqrt(N)``-sized GEMMs) and the representation holds only the
    sampling index vector plus the basis factors -- no ``O(N^2)``
    matrix ever exists.

    Row subsampling of an orthonormal basis keeps every singular value
    at most 1, so the spectral-norm hint defaults to ``1.0`` (the exact
    value whenever at least one full row survives); gradient solvers
    take the unit step without a power iteration.  Batched applies are
    always vectorised: both DCT bases expose bitwise per-slice
    ``synthesize_batch`` / ``analyze_batch``.
    """

    def __init__(
        self,
        phi: RowSamplingMatrix,
        basis,
        spectral_norm_hint: float | None = 1.0,
    ):
        if not isinstance(phi, RowSamplingMatrix):
            raise TypeError(
                "SeparableDCTOperator requires a RowSamplingMatrix encoder, "
                f"got {type(phi).__name__}"
            )
        if not (
            hasattr(basis, "synthesize_batch")
            and hasattr(basis, "analyze_batch")
        ):
            raise TypeError(
                "SeparableDCTOperator requires a separable basis with "
                f"batched applies, got {type(basis).__name__}"
            )
        super().__init__(phi, basis, spectral_norm_hint=spectral_norm_hint)
