"""The combined encode/synthesis operator ``A = Phi_M @ Psi``.

Eq. (8) of the paper splits the CS system into the FE-side encoder
(``Phi_M @ y``) and the silicon-side decoder model (``Phi_M @ Psi @ x``).
Every solver in :mod:`repro.core.solvers` works against the linear map

    ``A x = Phi_M (Psi x)``,   ``A^T r = Psi^T (Phi_M^T r)``

This module wraps that map in a small operator class that supports both a
matrix-free fast path (row sampling + fast DCT, ``O(N log N)`` per apply)
and a dense path for arbitrary matrices (Gaussian / Bernoulli ablations).
"""

from __future__ import annotations

import numpy as np

from .sensing import RowSamplingMatrix

__all__ = ["SensingOperator"]


class SensingOperator:
    """Linear operator ``A = Phi @ Psi`` with forward and adjoint applies.

    Parameters
    ----------
    phi:
        Measurement matrix: either a :class:`RowSamplingMatrix` (the
        paper's hardware-friendly encoder) or a dense ``(m, n)`` array.
    basis:
        Sparsifying synthesis basis: any matrix-free basis object
        exposing ``synthesize`` / ``analyze`` / ``n`` (e.g.
        :class:`Dct2Basis` or :class:`~repro.core.wavelet.Haar2Basis`),
        a dense ``(n, n)`` array, or ``None`` for the identity basis
        (the "no transform" ablation).
    """

    def __init__(
        self,
        phi: RowSamplingMatrix | np.ndarray,
        basis,
    ):
        self._phi = phi
        self._basis = basis
        if isinstance(phi, RowSamplingMatrix):
            self.m, self.n = phi.m, phi.n
        else:
            phi = np.asarray(phi, dtype=float)
            if phi.ndim != 2:
                raise ValueError("dense phi must be a 2-D array")
            self._phi = phi
            self.m, self.n = phi.shape
        basis_n = self._basis_size()
        if basis_n is not None and basis_n != self.n:
            raise ValueError(
                f"basis size {basis_n} does not match phi columns {self.n}"
            )
        self.shape = (self.m, self.n)

    @staticmethod
    def _is_matrix_free(basis) -> bool:
        return (
            hasattr(basis, "synthesize")
            and hasattr(basis, "analyze")
            and hasattr(basis, "n")
        )

    def _basis_size(self) -> int | None:
        if self._basis is None:
            return None
        if self._is_matrix_free(self._basis):
            return int(self._basis.n)
        self._basis = np.asarray(self._basis, dtype=float)
        if self._basis.ndim != 2 or self._basis.shape[0] != self._basis.shape[1]:
            raise ValueError("dense basis must be a square 2-D array")
        return self._basis.shape[0]

    # -- basis applies ----------------------------------------------------
    def synthesize(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x``: coefficients to pixel vector."""
        if self._basis is None:
            return np.asarray(coeffs, dtype=float)
        if self._is_matrix_free(self._basis):
            return self._basis.synthesize(coeffs)
        return self._basis @ coeffs

    def analyze(self, pixels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y``: pixel vector to coefficients."""
        if self._basis is None:
            return np.asarray(pixels, dtype=float)
        if self._is_matrix_free(self._basis):
            return self._basis.analyze(pixels)
        return self._basis.T @ pixels

    # -- full operator applies --------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a coefficient vector ``x`` of length ``n``."""
        y = self.synthesize(x)
        if isinstance(self._phi, RowSamplingMatrix):
            return self._phi.apply(y)
        return self._phi @ y

    def rmatvec(self, r: np.ndarray) -> np.ndarray:
        """``A.T @ r`` for a measurement vector ``r`` of length ``m``."""
        if isinstance(self._phi, RowSamplingMatrix):
            scattered = self._phi.adjoint(r)
        else:
            scattered = self._phi.T @ np.asarray(r, dtype=float)
        return self.analyze(scattered)

    # -- batched applies (multi-RHS solves) --------------------------------
    def _has_batch_basis(self) -> bool:
        return (
            isinstance(self._phi, RowSamplingMatrix)
            and self._basis is not None
            and hasattr(self._basis, "synthesize_batch")
            and hasattr(self._basis, "analyze_batch")
        )

    def matvec_batch(self, x: np.ndarray) -> np.ndarray:
        """``A @ x_i`` for every row of a ``(k, n)`` stack.

        Row ``i`` of the result is bitwise ``matvec(x[i])``: the fast
        path uses the basis's batched apply (same per-slice arithmetic)
        plus row-sampling fancy indexing, and configurations without a
        batched basis fall back to a per-row loop.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n:
            raise ValueError(
                f"expected a (k, {self.n}) coefficient stack, got {x.shape}"
            )
        if self._has_batch_basis():
            return self._basis.synthesize_batch(x)[:, self._phi.indices]
        return np.stack([self.matvec(row) for row in x])

    def rmatvec_batch(self, r: np.ndarray) -> np.ndarray:
        """``A.T @ r_i`` for every row of a ``(k, m)`` stack."""
        r = np.asarray(r, dtype=float)
        if r.ndim != 2 or r.shape[1] != self.m:
            raise ValueError(
                f"expected a (k, {self.m}) measurement stack, got {r.shape}"
            )
        if self._has_batch_basis():
            scattered = np.zeros((r.shape[0], self.n))
            scattered[:, self._phi.indices] = r
            return self._basis.analyze_batch(scattered)
        return np.stack([self.rmatvec(row) for row in r])

    def supports_batch(self) -> bool:
        """Whether the batched applies take the vectorised fast path."""
        return self._has_batch_basis()

    def to_matrix(self) -> np.ndarray:
        """Materialise the dense ``(m, n)`` matrix ``A`` (small problems)."""
        if isinstance(self._phi, RowSamplingMatrix):
            phi = self._phi.to_matrix()
        else:
            phi = self._phi
        if self._basis is None:
            return phi.copy()
        if self._is_matrix_free(self._basis):
            return phi @ self._basis.to_matrix()
        return phi @ self._basis

    def spectral_norm(self, iterations: int = 30, seed: int = 0) -> float:
        """Estimate ``||A||_2`` by power iteration on ``A.T A``.

        Used by gradient solvers (ISTA/FISTA/IHT) to pick a safe step
        size.  For an orthonormal basis and row sampling the exact value
        is 1, but the estimate keeps solvers correct for dense ablations.
        """
        rng = np.random.default_rng(seed)
        v = rng.normal(size=self.n)
        v /= np.linalg.norm(v)
        sigma = 1.0
        for _ in range(iterations):
            w = self.rmatvec(self.matvec(v))
            norm = np.linalg.norm(w)
            if norm == 0.0:
                return 0.0
            v = w / norm
            sigma = np.sqrt(norm)
        return float(sigma)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = (
            "row-sampling"
            if isinstance(self._phi, RowSamplingMatrix)
            else "dense"
        )
        basis = (
            "identity"
            if self._basis is None
            else (
                type(self._basis).__name__
                if self._is_matrix_free(self._basis)
                else "dense"
            )
        )
        return f"SensingOperator(m={self.m}, n={self.n}, phi={kind}, basis={basis})"
