"""The Fig. 7 experiment pipeline.

The paper's evaluation flow (Fig. 7) is::

    dataset -> normalise to [0, 1] -> inject sparse errors (stuck 0/1)
            -> exclude detected defects -> random sampling
            -> L1 reconstruction -> RMSE / classifier evaluation

This module provides the pipeline as composable pieces:

* :func:`normalize_frame` -- min/max normalisation to [0, 1];
* :func:`evaluate_frame` -- run one frame through the full chain and
  report RMSE with CS and without CS (the "w/o CS" baseline is using
  the corrupted frame directly, as in Fig. 6);
* :class:`RobustnessSweep` -- the (sampling fraction x error rate) grid
  of Fig. 6a/6b, averaging over frames and random repetitions;
* :func:`process_frames` -- batch reconstruction used by the tactile
  classification case study (Fig. 6b), which needs the reconstructed
  frames themselves rather than their RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import instrument
from .errors import inject_sparse_errors
from .executor import collect_values, resolve_executor
from .metrics import rmse
from .strategies import OracleExclusionStrategy

__all__ = [
    "normalize_frame",
    "evaluate_frame",
    "FrameOutcome",
    "SweepPoint",
    "RobustnessSweep",
    "process_frames",
]


def normalize_frame(frame: np.ndarray) -> np.ndarray:
    """Min/max normalise a frame to ``[0, 1]`` (first step of Fig. 7).

    A constant frame maps to all zeros.
    """
    frame = np.asarray(frame, dtype=float)
    low = frame.min()
    span = frame.max() - low
    if span == 0.0:
        return np.zeros_like(frame)
    return (frame - low) / span


@dataclass
class FrameOutcome:
    """Everything the pipeline produced for one frame.

    ``decode_outcome`` is populated when the strategy exposes a
    ``last_outcome`` attribute (e.g. it is wrapped in
    :class:`repro.resilience.ResilientStrategy`); plain strategies
    leave it ``None``.
    """

    clean: np.ndarray
    corrupted: np.ndarray
    error_mask: np.ndarray
    reconstructed: np.ndarray
    rmse_with_cs: float
    rmse_without_cs: float
    decode_outcome: object | None = None


def evaluate_frame(
    frame: np.ndarray,
    error_rate: float,
    strategy,
    rng: np.random.Generator,
    already_normalized: bool = False,
) -> FrameOutcome:
    """Run one frame through the Fig. 7 pipeline.

    Parameters
    ----------
    frame:
        The clean sensor frame.
    error_rate:
        Fraction of pixels to corrupt with stuck-0/1 values.
    strategy:
        Any strategy object from :mod:`repro.core.strategies`; its
        ``reconstruct(corrupted, rng, error_mask=...)`` method is called.
    rng:
        Randomness for injection and sampling.
    already_normalized:
        Skip normalisation when the caller did it (e.g. on a shared
        dataset-wide scale).
    """
    with instrument.span(
        "pipeline.evaluate_frame", error_rate=error_rate
    ) as sp:
        clean = np.asarray(frame, dtype=float)
        if not already_normalized:
            clean = normalize_frame(clean)
        corrupted, mask = inject_sparse_errors(clean, error_rate, rng)
        reconstructed = strategy.reconstruct(corrupted, rng, error_mask=mask)
        decode_outcome = getattr(strategy, "last_outcome", None)
        outcome = FrameOutcome(
            clean=clean,
            corrupted=corrupted,
            error_mask=mask,
            reconstructed=reconstructed,
            rmse_with_cs=rmse(clean, reconstructed),
            rmse_without_cs=rmse(clean, corrupted),
            decode_outcome=decode_outcome,
        )
        sp.set(
            rmse_with_cs=outcome.rmse_with_cs,
            rmse_without_cs=outcome.rmse_without_cs,
        )
        if decode_outcome is not None:
            sp.set(decode_status=decode_outcome.status)
            instrument.incr(
                f"pipeline.frames_{decode_outcome.status}"
            )
        instrument.incr("pipeline.frames")
        return outcome


@dataclass
class SweepPoint:
    """Aggregated result at one (sampling fraction, error rate) grid point."""

    sampling_fraction: float
    error_rate: float
    rmse_with_cs: float
    rmse_without_cs: float
    rmse_with_cs_std: float
    num_frames: int


def _sweep_point_task(args):
    """Evaluate one independent grid point (picklable task body).

    Each point derives its own RNG from ``(seed, fraction, rate)`` --
    the same derivation the sequential loop uses -- so points are
    order-independent and distribute across workers without changing
    results.
    """
    strategy, frames, fraction, rate, seed = args
    rng = np.random.default_rng(
        [seed, int(fraction * 1000), int(rate * 1000)]
    )
    with_cs: list[float] = []
    without_cs: list[float] = []
    with instrument.span(
        "pipeline.sweep_point",
        sampling_fraction=fraction,
        error_rate=rate,
        frames=len(frames),
    ):
        for frame in frames:
            outcome = evaluate_frame(frame, rate, strategy, rng)
            with_cs.append(outcome.rmse_with_cs)
            without_cs.append(outcome.rmse_without_cs)
    return SweepPoint(
        sampling_fraction=fraction,
        error_rate=rate,
        rmse_with_cs=float(np.mean(with_cs)),
        rmse_without_cs=float(np.mean(without_cs)),
        rmse_with_cs_std=float(np.std(with_cs)),
        num_frames=len(frames),
    )


@dataclass
class RobustnessSweep:
    """The Fig. 6a grid: RMSE over sampling fractions x sparse-error rates.

    Parameters
    ----------
    sampling_fractions:
        The M/N values to sweep (the paper uses 0.45-0.60).
    error_rates:
        Sparse-error fractions (the paper uses 0-0.20).
    strategy_factory:
        Callable ``sampling_fraction -> strategy``; defaults to the
        paper's oracle-exclusion strategy with the FISTA decoder.
    seed:
        Base RNG seed (each grid point derives its own stream).
    """

    sampling_fractions: tuple[float, ...] = (0.45, 0.50, 0.55, 0.60)
    error_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20)
    strategy_factory: object = None
    seed: int = 0
    _results: list[SweepPoint] = field(default_factory=list, repr=False)

    def _make_strategy(self, sampling_fraction: float):
        if self.strategy_factory is None:
            return OracleExclusionStrategy(sampling_fraction=sampling_fraction)
        return self.strategy_factory(sampling_fraction)

    def run(
        self, frames: np.ndarray, executor=None
    ) -> list[SweepPoint]:
        """Evaluate every grid point over all ``frames``.

        ``frames`` has shape ``(num_frames, rows, cols)``.  Returns the
        grid as a flat list of :class:`SweepPoint`, also stored on the
        instance for :meth:`table`.

        ``executor`` (any :func:`~repro.core.executor.resolve_executor`
        spec) distributes grid points over workers.  Every point
        derives its RNG from ``(seed, fraction, rate)``, so the grid is
        embarrassingly parallel and the distributed results equal the
        sequential ones exactly; the parallel path builds one fresh
        strategy per point (the sequential loop shares one per
        fraction), identical for the stateless strategies the sweep is
        designed around.
        """
        frames = np.asarray(frames, dtype=float)
        if frames.ndim != 3:
            raise ValueError(
                f"expected (frames, rows, cols), got shape {frames.shape}"
            )
        resolved = resolve_executor(executor)
        if resolved is not None:
            tasks = [
                (
                    self._make_strategy(fraction),
                    frames,
                    fraction,
                    rate,
                    self.seed,
                )
                for fraction in self.sampling_fractions
                for rate in self.error_rates
            ]
            self._results = collect_values(
                resolved.map_tasks(_sweep_point_task, tasks, label="sweep")
            )
            return self._results
        self._results = []
        for fraction in self.sampling_fractions:
            strategy = self._make_strategy(fraction)
            for rate in self.error_rates:
                rng = np.random.default_rng(
                    [self.seed, int(fraction * 1000), int(rate * 1000)]
                )
                with_cs: list[float] = []
                without_cs: list[float] = []
                with instrument.span(
                    "pipeline.sweep_point",
                    sampling_fraction=fraction,
                    error_rate=rate,
                    frames=len(frames),
                ):
                    for frame in frames:
                        outcome = evaluate_frame(frame, rate, strategy, rng)
                        with_cs.append(outcome.rmse_with_cs)
                        without_cs.append(outcome.rmse_without_cs)
                self._results.append(
                    SweepPoint(
                        sampling_fraction=fraction,
                        error_rate=rate,
                        rmse_with_cs=float(np.mean(with_cs)),
                        rmse_without_cs=float(np.mean(without_cs)),
                        rmse_with_cs_std=float(np.std(with_cs)),
                        num_frames=len(frames),
                    )
                )
        return self._results

    def table(self) -> str:
        """Render the last :meth:`run` as the Fig. 6a text table."""
        if not self._results:
            raise RuntimeError("call run() before table()")
        lines = [
            f"{'sampling':>9} {'err rate':>9} {'RMSE w/ CS':>11} {'RMSE w/o CS':>12}"
        ]
        for point in self._results:
            lines.append(
                f"{point.sampling_fraction:>9.2f} {point.error_rate:>9.2f} "
                f"{point.rmse_with_cs:>11.4f} {point.rmse_without_cs:>12.4f}"
            )
        return "\n".join(lines)


def process_frames(
    frames: np.ndarray,
    error_rate: float,
    strategy,
    seed: int = 0,
    already_normalized: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Corrupt + reconstruct a batch of frames (Fig. 6b front end).

    Returns ``(corrupted, reconstructed)`` stacks with the same shape as
    ``frames``; the classifier case study evaluates accuracy on both to
    obtain the "w/o CS" and "w/ CS" curves.
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 3:
        raise ValueError(
            f"expected (frames, rows, cols), got shape {frames.shape}"
        )
    rng = np.random.default_rng(seed)
    corrupted_stack = np.empty_like(frames)
    reconstructed_stack = np.empty_like(frames)
    with instrument.span(
        "pipeline.process_frames",
        frames=len(frames),
        error_rate=error_rate,
    ):
        for i, frame in enumerate(frames):
            clean = frame if already_normalized else normalize_frame(frame)
            corrupted, mask = inject_sparse_errors(clean, error_rate, rng)
            corrupted_stack[i] = corrupted
            reconstructed_stack[i] = strategy.reconstruct(
                corrupted, rng, error_mask=mask
            )
            instrument.incr("pipeline.frames")
    return corrupted_stack, reconstructed_stack
