"""Robust principal component analysis (RPCA) via inexact ALM.

Sec. 4.3 ("Outlier Detection") uses RPCA [Wright et al., NeurIPS 2009] to
detect and exclude sparsely corrupted pixels before sampling: a stack of
sensor frames is decomposed as ``D = L + S`` where ``L`` is low rank
(the smooth body-signal content, consistent across frames) and ``S`` is
sparse (the stuck-pixel outliers).  Pixels with large entries in ``S``
are flagged as defective.

The solver is the standard inexact augmented-Lagrange-multiplier (IALM)
scheme for principal component pursuit::

    minimize ||L||_* + lam * ||S||_1   subject to   L + S = D
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .solvers.base import soft_threshold

__all__ = ["RpcaResult", "rpca", "detect_outliers"]


@dataclass
class RpcaResult:
    """Decomposition ``D ~= low_rank + sparse`` plus solver diagnostics."""

    low_rank: np.ndarray
    sparse: np.ndarray
    iterations: int
    converged: bool
    rank: int
    sparse_fraction: float


def _singular_value_threshold(
    matrix: np.ndarray, threshold: float
) -> tuple[np.ndarray, int]:
    """Shrink singular values by ``threshold``; return (result, new rank)."""
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    shrunk = np.maximum(s - threshold, 0.0)
    rank = int(np.count_nonzero(shrunk))
    if rank == 0:
        return np.zeros_like(matrix), 0
    return (u[:, :rank] * shrunk[:rank]) @ vt[:rank], rank


def rpca(
    data: np.ndarray,
    lam: float | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-7,
) -> RpcaResult:
    """Principal component pursuit by inexact ALM (Lin et al., 2010).

    Parameters
    ----------
    data:
        ``(p, q)`` data matrix; for outlier detection on sensor frames,
        each column is one vectorised frame.
    lam:
        Sparsity weight; default ``1 / sqrt(max(p, q))`` (the standard
        PCP choice with exact-recovery guarantees).
    max_iterations, tolerance:
        Stop when ``||D - L - S||_F / ||D||_F <= tolerance``.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"rpca expects a 2-D matrix, got shape {data.shape}")
    p, q = data.shape
    if lam is None:
        lam = 1.0 / np.sqrt(max(p, q))
    norm_d = np.linalg.norm(data)
    if norm_d == 0.0:
        zeros = np.zeros_like(data)
        return RpcaResult(zeros, zeros.copy(), 0, True, 0, 0.0)

    spectral = np.linalg.norm(data, 2)
    mu = 1.25 / spectral
    mu_max = mu * 1e7
    rho = 1.5
    dual = data / max(spectral, np.max(np.abs(data)) / lam)
    low_rank = np.zeros_like(data)
    sparse = np.zeros_like(data)
    converged = False
    iteration = 0
    rank = 0
    for iteration in range(1, max_iterations + 1):
        low_rank, rank = _singular_value_threshold(
            data - sparse + dual / mu, 1.0 / mu
        )
        sparse = soft_threshold(data - low_rank + dual / mu, lam / mu)
        gap = data - low_rank - sparse
        dual = dual + mu * gap
        mu = min(mu * rho, mu_max)
        if np.linalg.norm(gap) / norm_d <= tolerance:
            converged = True
            break
    return RpcaResult(
        low_rank=low_rank,
        sparse=sparse,
        iterations=iteration,
        converged=converged,
        rank=rank,
        sparse_fraction=float(np.count_nonzero(sparse) / sparse.size),
    )


def detect_outliers(
    frames: np.ndarray,
    threshold: float = 0.1,
    lam: float | None = None,
    max_iterations: int = 200,
) -> np.ndarray:
    """Flag outlier pixels in a stack of frames via RPCA (Sec. 4.3).

    Parameters
    ----------
    frames:
        Array of shape ``(num_frames, rows, cols)`` or ``(num_frames, n)``.
        A single 2-D frame of shape ``(rows, cols)`` is also accepted and
        treated as a one-column data matrix only if explicitly 3-D; pass
        stacks for meaningful detection.
    threshold:
        A pixel is an outlier in a frame when ``|S|`` exceeds this value
        (in normalised units).
    lam, max_iterations:
        Forwarded to :func:`rpca`.

    Returns
    -------
    numpy.ndarray
        Boolean mask with the same shape as ``frames``: True marks
        detected outlier entries.
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim == 2:
        stack = frames[None, ...]
    elif frames.ndim == 3:
        stack = frames
    else:
        raise ValueError(f"expected 2-D or 3-D input, got shape {frames.shape}")
    num_frames = stack.shape[0]
    flattened = stack.reshape(num_frames, -1).T  # pixels x frames
    result = rpca(flattened, lam=lam, max_iterations=max_iterations)
    mask = np.abs(result.sparse) > threshold
    mask = mask.T.reshape(stack.shape)
    if frames.ndim == 2:
        return mask[0]
    return mask
