"""Sensing (measurement) matrices for the compressed-sensing encoder.

The paper's encoder (Sec. 3.1, Eq. 8 and Fig. 4) uses a sampling matrix
``Phi_M`` consisting of ``M`` randomly chosen rows of the ``N x N``
identity matrix: the flexible-electronics side simply *scans out a random
subset of pixels*.  This module provides that matrix (in an efficient
index-based representation), classic dense baselines (Gaussian /
Bernoulli) used by the ablation benches, and the expansion of ``Phi_M``
into per-column driver control words for the active-matrix scan schedule
of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RowSamplingMatrix",
    "gaussian_matrix",
    "bernoulli_matrix",
    "hadamard_matrix",
    "sample_indices",
    "weighted_sample_indices",
    "column_control_words",
]


def _zero_excluded_columns(
    matrix: np.ndarray, n: int, exclude: np.ndarray | None
) -> np.ndarray:
    """Zero the columns of excluded pixels (defect-aware dense codes).

    Dense code families honour an exclusion mask by never *weighting*
    an excluded pixel: its column is zeroed after the full matrix is
    drawn, so the RNG consumption is independent of the mask (two runs
    with and without exclusions share every other entry bit for bit)
    and the excluded pixel contributes nothing to any measurement --
    the dense analogue of :func:`sample_indices` never picking it.
    """
    if exclude is None or len(exclude) == 0:
        return matrix
    exclude = np.asarray(exclude, dtype=int)
    if len(exclude) and (exclude.min() < 0 or exclude.max() >= n):
        raise ValueError("excluded indices out of range")
    if len(np.unique(exclude)) >= n:
        raise ValueError(
            f"exclusion set covers all {n} pixels; nothing left to measure"
        )
    matrix[:, exclude] = 0.0
    return matrix


def sample_indices(
    n: int,
    m: int,
    rng: np.random.Generator,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Choose ``m`` distinct pixel indices out of ``n`` uniformly at random.

    Parameters
    ----------
    n:
        Total number of sensors (pixels).
    m:
        Number of measurements to take.
    rng:
        Source of randomness.
    exclude:
        Optional array of pixel indices that must not be sampled (e.g.
        pixels identified as defective by testing, Sec. 4.2).

    Returns
    -------
    numpy.ndarray
        Sorted integer array of ``m`` sampled indices.
    """
    if m < 0:
        raise ValueError(f"cannot take {m} measurements")
    candidates = np.arange(n)
    if exclude is not None and len(exclude) > 0:
        mask = np.ones(n, dtype=bool)
        mask[np.asarray(exclude, dtype=int)] = False
        candidates = candidates[mask]
    if m > len(candidates):
        raise ValueError(
            f"requested {m} measurements but only {len(candidates)} "
            "non-excluded pixels are available"
        )
    chosen = rng.choice(candidates, size=m, replace=False)
    return np.sort(chosen)


def weighted_sample_indices(
    n: int,
    m: int,
    weights: np.ndarray,
    rng: np.random.Generator,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Sample ``m`` distinct indices with probability proportional to
    ``weights`` (an informative-pixel prior; see
    :class:`~repro.core.strategies.WeightedSamplingStrategy`).

    Excluded indices get zero probability.  Weights must be
    non-negative with at least ``m`` strictly positive entries after
    exclusion.
    """
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.shape != (n,):
        raise ValueError(f"weights must have length {n}, got {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    probabilities = weights.copy()
    if exclude is not None and len(exclude) > 0:
        probabilities[np.asarray(exclude, dtype=int)] = 0.0
    positive = np.count_nonzero(probabilities)
    if m > positive:
        raise ValueError(
            f"requested {m} samples but only {positive} pixels have "
            "positive weight"
        )
    probabilities = probabilities / probabilities.sum()
    chosen = rng.choice(n, size=m, replace=False, p=probabilities)
    return np.sort(chosen)


@dataclass(frozen=True)
class RowSamplingMatrix:
    """``Phi_M``: ``M`` randomly sampled rows of the ``N x N`` identity.

    Stored as the sorted index set of sampled pixels rather than a dense
    matrix, because applying it is just fancy indexing.

    Attributes
    ----------
    n:
        Number of columns (total sensors).
    indices:
        Sorted array of the ``M`` sampled pixel indices.
    """

    n: int
    indices: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        idx = np.asarray(self.indices, dtype=int)
        if idx.ndim != 1:
            raise ValueError("indices must be a 1-D integer array")
        if len(np.unique(idx)) != len(idx):
            raise ValueError("sampled row indices must be distinct")
        if len(idx) > 0 and (idx.min() < 0 or idx.max() >= self.n):
            raise ValueError("sampled indices out of range")
        object.__setattr__(self, "indices", np.sort(idx))

    @classmethod
    def random(
        cls,
        n: int,
        m: int,
        rng: np.random.Generator,
        exclude: np.ndarray | None = None,
    ) -> "RowSamplingMatrix":
        """Draw a random ``Phi_M`` avoiding the ``exclude`` pixel set."""
        return cls(n=n, indices=sample_indices(n, m, rng, exclude=exclude))

    @property
    def m(self) -> int:
        """Number of measurements (sampled rows)."""
        return len(self.indices)

    def apply(self, y: np.ndarray) -> np.ndarray:
        """``Phi_M @ y``: select the sampled entries of the pixel vector."""
        y = np.asarray(y)
        if y.shape[0] != self.n:
            raise ValueError(
                f"vector length {y.shape[0]} does not match n={self.n}"
            )
        return y[self.indices]

    def adjoint(self, v: np.ndarray) -> np.ndarray:
        """``Phi_M.T @ v``: scatter measurements back into an N-vector."""
        v = np.asarray(v, dtype=float)
        if v.shape[0] != self.m:
            raise ValueError(
                f"vector length {v.shape[0]} does not match m={self.m}"
            )
        out = np.zeros(self.n, dtype=float)
        out[self.indices] = v
        return out

    def to_matrix(self) -> np.ndarray:
        """Materialise the dense ``M x N`` 0/1 matrix (testing / small N)."""
        phi = np.zeros((self.m, self.n))
        phi[np.arange(self.m), self.indices] = 1.0
        return phi


def gaussian_matrix(
    m: int,
    n: int,
    rng: np.random.Generator,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Dense i.i.d. Gaussian sensing matrix with unit-norm expected columns.

    Classic CS baseline used by the sensing-matrix ablation; entries are
    ``N(0, 1/m)`` so that column norms concentrate around 1.  Excluded
    pixel columns (known defects, Sec. 4.2) are zeroed after the draw,
    so the mask changes no other entry.
    """
    if m < 1 or n < 1:
        raise ValueError(f"invalid matrix shape ({m}, {n})")
    matrix = rng.normal(0.0, 1.0 / np.sqrt(m), size=(m, n))
    return _zero_excluded_columns(matrix, n, exclude)


def bernoulli_matrix(
    m: int,
    n: int,
    rng: np.random.Generator,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Dense random +-1/sqrt(m) Bernoulli sensing matrix (summed readout).

    The single-pixel-style code family: every measurement sums half the
    array with random signs.  Excluded pixel columns are zeroed after
    the draw (defect-aware sampling, uniform with
    :func:`sample_indices`).
    """
    if m < 1 or n < 1:
        raise ValueError(f"invalid matrix shape ({m}, {n})")
    signs = rng.choice([-1.0, 1.0], size=(m, n))
    return _zero_excluded_columns(signs / np.sqrt(m), n, exclude)


def hadamard_matrix(
    m: int,
    n: int,
    rng: np.random.Generator,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Randomised partial Hadamard sensing matrix (structured dense codes).

    ``m`` rows are drawn without replacement from the order-``p``
    Sylvester-Hadamard matrix (``p`` the next power of two at or above
    ``n``), the columns get random sign flips (breaking coherence with
    the DC row), and the result is truncated to ``n`` columns and
    scaled by ``1/sqrt(m)``.  Excluded pixel columns are zeroed after
    the draw, exactly like the other dense families.
    """
    if m < 1 or n < 1:
        raise ValueError(f"invalid matrix shape ({m}, {n})")
    from scipy.linalg import hadamard as _hadamard

    p = 1 << max(0, int(np.ceil(np.log2(n))))
    if m > p:
        raise ValueError(
            f"cannot draw {m} distinct Hadamard rows of order {p}"
        )
    rows = rng.choice(p, size=m, replace=False)
    signs = rng.choice([-1.0, 1.0], size=n)
    matrix = _hadamard(p)[rows][:, :n] * signs / np.sqrt(m)
    return _zero_excluded_columns(matrix, n, exclude)


def column_control_words(
    phi: RowSamplingMatrix, array_shape: tuple[int, int]
) -> list[np.ndarray]:
    """Expand ``Phi_M`` into per-scan-cycle row-driver control words.

    Fig. 4: summing the rows of ``Phi_M`` gives a 1 x N vector that splits
    into ``sqrt(N)`` blocks, one per column of the active matrix.  During
    scan cycle ``c`` the column driver enables column ``c`` and the row
    driver asserts the rows whose pixels in that column were sampled.
    Because each column of ``Phi_M`` contains at most one '1', each pixel
    is read at most once.

    Parameters
    ----------
    phi:
        The row-sampling measurement matrix.
    array_shape:
        ``(rows, cols)`` of the active matrix; ``rows * cols == phi.n``.

    Returns
    -------
    list of numpy.ndarray
        ``cols`` boolean vectors of length ``rows``; element ``r`` of word
        ``c`` is True when pixel ``(r, c)`` must be scanned out.
    """
    rows, cols = array_shape
    if rows * cols != phi.n:
        raise ValueError(
            f"array shape {array_shape} does not hold n={phi.n} pixels"
        )
    mask = np.zeros(phi.n, dtype=bool)
    mask[phi.indices] = True
    grid = mask.reshape(rows, cols)
    return [grid[:, c].copy() for c in range(cols)]
