"""Sparse-recovery solvers for the silicon-side CS decoder (Eq. 9).

The registry in :func:`solve` lets the pipeline and the ablation benches
pick a decoder by name:

=========  ====================================================  ===========
name       algorithm                                             scaling
=========  ====================================================  ===========
``bp``     basis pursuit via linear programming (reference)      dense LP
``bp_dr``  basis pursuit via Douglas-Rachford splitting          matrix-free
``ista``   proximal gradient on BPDN                             matrix-free
``fista``  accelerated proximal gradient on BPDN (default)       matrix-free
``omp``    orthogonal matching pursuit                           LS per atom
``cosamp`` CoSaMP                                                LS per iter
``iht``    iterative hard thresholding                           matrix-free
=========  ====================================================  ===========
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ... import instrument
from ..operators import SensingOperator
from .admm import solve_bp_dr
from .base import (
    DivergenceGuard,
    SolveDeadline,
    SolverResult,
    hard_threshold,
    soft_threshold,
)
from .basis_pursuit import solve_basis_pursuit
from .debias import debias_on_support
from .fista import (
    default_lambda,
    solve_fista,
    solve_fista_batch,
    solve_ista,
    solve_ista_batch,
)
from .greedy import solve_cosamp, solve_iht, solve_iht_batch, solve_omp

__all__ = [
    "SolverResult",
    "DivergenceGuard",
    "SolveDeadline",
    "solve",
    "solve_batch",
    "solver_names",
    "batch_solver_names",
    "solve_basis_pursuit",
    "solve_bp_dr",
    "solve_ista",
    "solve_fista",
    "solve_ista_batch",
    "solve_fista_batch",
    "solve_omp",
    "solve_cosamp",
    "solve_iht",
    "solve_iht_batch",
    "debias_on_support",
    "soft_threshold",
    "hard_threshold",
    "default_lambda",
    "register_solve_hook",
    "unregister_solve_hook",
    "solve_hooks",
]

_GRADIENT_SOLVERS: dict[str, Callable[..., SolverResult]] = {
    "ista": solve_ista,
    "fista": solve_fista,
}
_GREEDY_SOLVERS: dict[str, Callable[..., SolverResult]] = {
    "omp": solve_omp,
    "cosamp": solve_cosamp,
    "iht": solve_iht,
}


def solver_names() -> tuple[str, ...]:
    """All registered solver names."""
    return ("bp", "bp_dr", *_GRADIENT_SOLVERS, *_GREEDY_SOLVERS)


_SOLVE_HOOKS: list = []


def register_solve_hook(hook) -> None:
    """Install a fault/observation hook around every :func:`solve`.

    A hook is any object exposing (either or both of)

    * ``before_solve(name, operator, b) -> b`` -- called before
      dispatch; may return a *replacement* measurement vector, or raise
      to abort the solve (this is how chaos injectors simulate solver
      crashes and measurement corruption);
    * ``after_solve(name, result) -> result`` -- called after dispatch;
      may return a replacement :class:`SolverResult` (divergence
      injection, budget-exhaustion simulation).

    Hooks run in registration order.  The seam is the attach point for
    :mod:`repro.resilience.chaos`; with no hooks registered the cost is
    one empty-list check per solve.
    """
    _SOLVE_HOOKS.append(hook)


def unregister_solve_hook(hook) -> None:
    """Remove a previously registered hook (no-op if absent)."""
    try:
        _SOLVE_HOOKS.remove(hook)
    except ValueError:
        pass


def solve_hooks() -> tuple:
    """The currently installed solve hooks, in execution order."""
    return tuple(_SOLVE_HOOKS)


def solve(
    name: str,
    operator: SensingOperator,
    b: np.ndarray,
    sparsity: int | None = None,
    **options,
) -> SolverResult:
    """Dispatch a recovery solve to the named algorithm.

    Parameters
    ----------
    name:
        One of :func:`solver_names`.
    operator, b:
        Sensing operator ``A = Phi_M @ Psi`` and measurements ``b``.
    sparsity:
        Target sparsity ``K``; required by the greedy solvers and
        ignored by the convex ones.
    options:
        Forwarded to the underlying solver (``lam``, ``step``,
        ``max_iterations``, ``tolerance``...).

    Raises
    ------
    ValueError
        For an unknown solver name, or a measurement vector that is not
        1-D finite (NaN/Inf measurements from the *caller* are an input
        bug; faults injected by hooks bypass this check on purpose so
        the downstream containment paths get exercised).

    Notes
    -----
    Every dispatched solve is observable through
    :mod:`repro.instrument`: the underlying solver opens a
    ``solver.<name>`` span carrying iterations, convergence flag, final
    residual and (for the iterative solvers) the residual trajectory,
    and this dispatcher counts requests under ``decoder.requests``.
    Hooks installed via :func:`register_solve_hook` run around the
    dispatch (fault injection / chaos testing).
    """
    instrument.incr("decoder.requests")
    if name not in solver_names():
        raise ValueError(
            f"unknown solver {name!r}; expected one of {solver_names()}"
        )
    b = np.asarray(b, dtype=float)
    if b.ndim != 1:
        raise ValueError(f"measurement vector must be 1-D, got shape {b.shape}")
    if not np.all(np.isfinite(b)):
        raise ValueError(
            "measurement vector contains NaN/Inf; reject or repair "
            "measurements before solving"
        )
    for hook in _SOLVE_HOOKS:
        before = getattr(hook, "before_solve", None)
        if before is not None:
            b = before(name, operator, b)
    if name == "bp":
        result = solve_basis_pursuit(operator, b, **options)
    elif name == "bp_dr":
        result = solve_bp_dr(operator, b, **options)
    elif name in _GRADIENT_SOLVERS:
        result = _GRADIENT_SOLVERS[name](operator, b, **options)
    else:
        if sparsity is None:
            # Eq. (1) read backwards: with M ~ K log(N/K) measurements
            # available, assume roughly K ~ M / 2 recoverable atoms.
            sparsity = max(1, operator.m // 2)
        result = _GREEDY_SOLVERS[name](operator, b, sparsity=sparsity, **options)
    for hook in _SOLVE_HOOKS:
        after = getattr(hook, "after_solve", None)
        if after is not None:
            result = after(name, result)
    return result


_BATCH_SOLVERS: dict[str, Callable[..., list]] = {
    "fista": solve_fista_batch,
    "ista": solve_ista_batch,
    "iht": solve_iht_batch,
}
# Batched solvers that take a sparsity argument (greedy family).
_SPARSE_BATCH_SOLVERS = frozenset({"iht"})


def batch_solver_names() -> tuple[str, ...]:
    """Solvers with a vectorised multi-RHS implementation."""
    return tuple(sorted(_BATCH_SOLVERS))


def solve_batch(
    name: str,
    operator: SensingOperator,
    b_stack: np.ndarray,
    sparsity: int | None = None,
    **options,
) -> list[SolverResult] | None:
    """Vectorised multi-RHS dispatch: N solves against one operator.

    Decodes every row of ``b_stack`` (shape ``(k, m)``) in one lockstep
    call when the named solver has a batch implementation (see
    :func:`batch_solver_names`) and the operator's batched applies take
    the fast path.  Per-row results are **bitwise identical** to ``k``
    serial :func:`solve` calls -- the batch only amortises dispatch and
    python overhead, never changes arithmetic -- so callers may treat
    the two paths as interchangeable.

    Returns ``None`` when no batch path applies (unknown/unbatched
    solver, or an operator without vectorised applies), letting callers
    fall back to per-row :func:`solve` without special-casing.  Raises
    ``ValueError`` for malformed stacks, mirroring :func:`solve`'s
    input validation.

    Solve hooks (chaos injection) run per row in row order, exactly as
    ``k`` serial dispatches would, so fault-injection semantics are
    preserved; ``sparsity`` reaches the greedy batch solvers (``iht``)
    with the same ``max(1, m // 2)`` default as :func:`solve`.
    """
    if name not in _BATCH_SOLVERS:
        return None
    supports = getattr(operator, "supports_batch", None)
    if supports is None or not supports():
        return None
    b_stack = np.asarray(b_stack, dtype=float)
    if b_stack.ndim != 2:
        raise ValueError(
            f"measurement stack must be 2-D, got shape {b_stack.shape}"
        )
    if not np.all(np.isfinite(b_stack)):
        raise ValueError(
            "measurement stack contains NaN/Inf; reject or repair "
            "measurements before solving"
        )
    instrument.incr("decoder.requests", b_stack.shape[0])
    instrument.incr("decoder.batch_requests")
    if _SOLVE_HOOKS:
        rows = []
        for b in b_stack:
            for hook in _SOLVE_HOOKS:
                before = getattr(hook, "before_solve", None)
                if before is not None:
                    b = before(name, operator, b)
            rows.append(np.asarray(b, dtype=float))
        b_stack = np.stack(rows)
    if name in _SPARSE_BATCH_SOLVERS:
        if sparsity is None:
            # Same default as solve(): K ~ M / 2 recoverable atoms.
            sparsity = max(1, operator.m // 2)
        options = {"sparsity": sparsity, **options}
    results = _BATCH_SOLVERS[name](operator, b_stack, **options)
    if _SOLVE_HOOKS:
        finished = []
        for result in results:
            for hook in _SOLVE_HOOKS:
                after = getattr(hook, "after_solve", None)
                if after is not None:
                    result = after(name, result)
            finished.append(result)
        results = finished
    return results
