"""Sparse-recovery solvers for the silicon-side CS decoder (Eq. 9).

The registry in :func:`solve` lets the pipeline and the ablation benches
pick a decoder by name:

=========  ====================================================  ===========
name       algorithm                                             scaling
=========  ====================================================  ===========
``bp``     basis pursuit via linear programming (reference)      dense LP
``bp_dr``  basis pursuit via Douglas-Rachford splitting          matrix-free
``ista``   proximal gradient on BPDN                             matrix-free
``fista``  accelerated proximal gradient on BPDN (default)       matrix-free
``omp``    orthogonal matching pursuit                           LS per atom
``cosamp`` CoSaMP                                                LS per iter
``iht``    iterative hard thresholding                           matrix-free
=========  ====================================================  ===========
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ... import instrument
from ..operators import SensingOperator
from .admm import solve_bp_dr
from .base import SolverResult, hard_threshold, soft_threshold
from .basis_pursuit import solve_basis_pursuit
from .debias import debias_on_support
from .fista import default_lambda, solve_fista, solve_ista
from .greedy import solve_cosamp, solve_iht, solve_omp

__all__ = [
    "SolverResult",
    "solve",
    "solver_names",
    "solve_basis_pursuit",
    "solve_bp_dr",
    "solve_ista",
    "solve_fista",
    "solve_omp",
    "solve_cosamp",
    "solve_iht",
    "debias_on_support",
    "soft_threshold",
    "hard_threshold",
    "default_lambda",
]

_GRADIENT_SOLVERS: dict[str, Callable[..., SolverResult]] = {
    "ista": solve_ista,
    "fista": solve_fista,
}
_GREEDY_SOLVERS: dict[str, Callable[..., SolverResult]] = {
    "omp": solve_omp,
    "cosamp": solve_cosamp,
    "iht": solve_iht,
}


def solver_names() -> tuple[str, ...]:
    """All registered solver names."""
    return ("bp", "bp_dr", *_GRADIENT_SOLVERS, *_GREEDY_SOLVERS)


def solve(
    name: str,
    operator: SensingOperator,
    b: np.ndarray,
    sparsity: int | None = None,
    **options,
) -> SolverResult:
    """Dispatch a recovery solve to the named algorithm.

    Parameters
    ----------
    name:
        One of :func:`solver_names`.
    operator, b:
        Sensing operator ``A = Phi_M @ Psi`` and measurements ``b``.
    sparsity:
        Target sparsity ``K``; required by the greedy solvers and
        ignored by the convex ones.
    options:
        Forwarded to the underlying solver (``lam``, ``step``,
        ``max_iterations``, ``tolerance``...).

    Notes
    -----
    Every dispatched solve is observable through
    :mod:`repro.instrument`: the underlying solver opens a
    ``solver.<name>`` span carrying iterations, convergence flag, final
    residual and (for the iterative solvers) the residual trajectory,
    and this dispatcher counts requests under ``decoder.requests``.
    """
    instrument.incr("decoder.requests")
    if name == "bp":
        return solve_basis_pursuit(operator, b, **options)
    if name == "bp_dr":
        return solve_bp_dr(operator, b, **options)
    if name in _GRADIENT_SOLVERS:
        return _GRADIENT_SOLVERS[name](operator, b, **options)
    if name in _GREEDY_SOLVERS:
        if sparsity is None:
            # Eq. (1) read backwards: with M ~ K log(N/K) measurements
            # available, assume roughly K ~ M / 2 recoverable atoms.
            sparsity = max(1, operator.m // 2)
        return _GREEDY_SOLVERS[name](operator, b, sparsity=sparsity, **options)
    raise ValueError(
        f"unknown solver {name!r}; expected one of {solver_names()}"
    )
