"""Douglas-Rachford splitting for *exact* basis pursuit.

FISTA solves the noiseless Eq. (9) only in the ``lam -> 0`` limit; the
LP solves it exactly but needs the dense matrix.  Douglas-Rachford
splitting gets both: it solves

    minimize ||x||_1   subject to   A x = b

by alternating the L1 proximal map (soft threshold) with the exact
projection onto the affine constraint set ``{x : A x = b}``,

    P(x) = x + A^T (A A^T)^{-1} (b - A x).

For the paper's encoder the projection is *free*: with ``Phi_M`` made
of identity rows and ``Psi`` orthonormal, ``A A^T = I`` exactly, so
``P(x) = x + A^T (b - A x)`` -- one forward and one adjoint apply.  For
general matrices the inner system is solved by conjugate gradients on
``A A^T`` (still matrix-free).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import LinearOperator, cg

from ... import instrument
from ..operators import SensingOperator
from .base import (
    DivergenceGuard,
    SolveDeadline,
    SolverResult,
    finish_solve_span,
    residual_norm,
    soft_threshold,
)

__all__ = ["solve_bp_dr"]


def _make_projector(operator: SensingOperator, b: np.ndarray):
    """Projection onto {x : A x = b}, fast path when A A^T == I."""
    rng = np.random.default_rng(0)
    probe = rng.normal(size=operator.m)
    gram_probe = operator.matvec(operator.rmatvec(probe))
    tight_frame = np.allclose(gram_probe, probe, atol=1e-10)
    if tight_frame:

        def project(x: np.ndarray) -> np.ndarray:
            return x + operator.rmatvec(b - operator.matvec(x))

        return project, True

    gram = LinearOperator(
        shape=(operator.m, operator.m),
        matvec=lambda v: operator.matvec(operator.rmatvec(v)),
    )

    def project(x: np.ndarray) -> np.ndarray:
        residual = b - operator.matvec(x)
        correction, _info = cg(gram, residual, rtol=1e-12, atol=1e-14,
                               maxiter=200)
        return x + operator.rmatvec(correction)

    return project, False


def solve_bp_dr(
    operator: SensingOperator,
    b: np.ndarray,
    gamma: float = 0.1,
    max_iterations: int = 1000,
    tolerance: float = 1e-9,
    time_limit_s: float | None = None,
) -> SolverResult:
    """Solve Eq. (9) exactly by Douglas-Rachford splitting.

    Parameters
    ----------
    operator, b:
        Sensing operator ``A = Phi_M @ Psi`` and measurements.
    gamma:
        Proximal step (any positive value converges; ~0.1x the
        coefficient scale is a good default).
    max_iterations, tolerance:
        Stop when the relative iterate change of the auxiliary variable
        ``z`` falls below ``tolerance``; ``converged`` is ``False``
        when the iteration cap is hit first.
    time_limit_s:
        Optional wall-clock budget; on expiry the solve stops at the
        current iterate with ``converged=False`` and
        ``info['deadline']=True``.  A divergence guard likewise stops
        runs whose iterates go non-finite (``info['diverged']=True``).

    Returns
    -------
    SolverResult
        ``info['gamma']`` echoes the proximal step;
        ``info['tight_frame']`` records whether the closed-form
        projection (the hardware-encoder case) was available.  When
        instrumentation is enabled the ``solver.bp_dr`` span records
        the per-iteration relative-change trajectory (the solver's own
        stopping quantity; the L1 iterate is infeasible until the final
        projection, so the residual is not meaningful mid-run).
    """
    with instrument.span("solver.bp_dr", m=operator.m, n=operator.n) as sp:
        b = np.asarray(b, dtype=float)
        if b.shape != (operator.m,):
            raise ValueError(
                f"measurement vector shape {b.shape} does not match m={operator.m}"
            )
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        project, tight_frame = _make_projector(operator, b)
        guard = DivergenceGuard()
        deadline = SolveDeadline(time_limit_s)
        # Start from the minimum-norm interpolant (already feasible).
        z = project(np.zeros(operator.n))
        x = z.copy()
        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            if guard.diverged(np.linalg.norm(z)) or deadline.expired():
                break
            x = soft_threshold(z, gamma)
            reflected = project(2.0 * x - z)
            z_next = z + reflected - x
            change = np.linalg.norm(z_next - z)
            z = z_next
            if sp.active:
                sp.record(change / max(1.0, np.linalg.norm(z)))
            if change <= tolerance * max(1.0, np.linalg.norm(z)):
                converged = True
                break
        # The constraint-feasible iterate is the projection of the final x.
        x = project(soft_threshold(z, gamma))
        info = {"gamma": gamma, "tight_frame": tight_frame}
        if guard.tripped:
            info["diverged"] = True
        if deadline.expired_flag:
            info["deadline"] = True
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=iteration,
            converged=converged,
            residual=residual_norm(operator, x, b),
            solver="bp_dr",
            info=info,
        ))
