"""Common interfaces for the CS recovery solvers.

All solvers take the :class:`~repro.core.operators.SensingOperator`
``A = Phi_M @ Psi`` and the measurement vector ``b = Phi_M @ y`` and
return an estimate of the sparse coefficient vector ``x`` solving (or
approximating) the paper's Eq. (9)::

    minimize ||x||_1  subject to  A x = b
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..operators import SensingOperator

__all__ = ["SolverResult", "soft_threshold", "hard_threshold", "residual_norm"]


@dataclass
class SolverResult:
    """Outcome of a sparse-recovery solve.

    Attributes
    ----------
    coefficients:
        Recovered coefficient vector ``x_cs`` (length ``n``).
    iterations:
        Number of iterations the solver ran.
    converged:
        Whether the solver's own stopping criterion was met (as opposed
        to hitting the iteration cap).
    residual:
        Final ``||A x - b||_2``.
    solver:
        Name of the solver that produced this result.
    info:
        Solver-specific diagnostics (e.g. LP status, support size).
    """

    coefficients: np.ndarray
    iterations: int
    converged: bool
    residual: float
    solver: str
    info: dict = field(default_factory=dict)


def soft_threshold(x: np.ndarray, threshold: float) -> np.ndarray:
    """Soft-thresholding (proximal operator of ``threshold * ||.||_1``)."""
    return np.sign(x) * np.maximum(np.abs(x) - threshold, 0.0)


def hard_threshold(x: np.ndarray, k: int) -> np.ndarray:
    """Keep the ``k`` largest-magnitude entries of ``x``, zero the rest."""
    if k <= 0:
        return np.zeros_like(x)
    if k >= len(x):
        return x.copy()
    out = np.zeros_like(x)
    keep = np.argpartition(np.abs(x), -k)[-k:]
    out[keep] = x[keep]
    return out


def residual_norm(
    operator: SensingOperator, x: np.ndarray, b: np.ndarray
) -> float:
    """``||A x - b||_2`` for reporting in :class:`SolverResult`."""
    return float(np.linalg.norm(operator.matvec(x) - b))
