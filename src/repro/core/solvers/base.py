"""Common interfaces for the CS recovery solvers.

All solvers take the :class:`~repro.core.operators.SensingOperator`
``A = Phi_M @ Psi`` and the measurement vector ``b = Phi_M @ y`` and
return an estimate of the sparse coefficient vector ``x`` solving (or
approximating) the paper's Eq. (9)::

    minimize ||x||_1  subject to  A x = b
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ... import instrument
from ..operators import SensingOperator

__all__ = [
    "SolverResult",
    "finish_solve_span",
    "soft_threshold",
    "hard_threshold",
    "residual_norm",
]


@dataclass
class SolverResult:
    """Outcome of a sparse-recovery solve.

    Attributes
    ----------
    coefficients:
        Recovered coefficient vector ``x_cs`` (length ``n``).
    iterations:
        Number of iterations the solver ran.
    converged:
        Whether the solver's own stopping criterion was met (as opposed
        to hitting the iteration cap).
    residual:
        Final ``||A x - b||_2``.
    solver:
        Name of the solver that produced this result.
    info:
        Solver-specific diagnostics.  Keys by solver:

        ================  ==============================================
        solver            ``info`` keys
        ================  ==============================================
        ``basis_pursuit`` ``status`` -- the HiGHS LP status message
        ``bp_dr``         ``gamma`` -- proximal step used;
                          ``tight_frame`` -- whether the closed-form
                          affine projection (``A A^T = I``) applied
        ``ista``          ``lambda`` -- L1 weight; ``step`` -- gradient
                          step size
        ``fista``         ``lambda``, ``step`` -- as for ``ista``;
                          ``stages`` -- continuation stages executed
        ``omp``           ``support_size`` -- atoms in the final support
        ``cosamp``        ``sparsity`` -- target sparsity after clipping
                          to ``min(K, m // 2, n)``
        ``iht``           ``sparsity`` -- target sparsity; ``step`` --
                          gradient step size
        ================  ==============================================
    """

    coefficients: np.ndarray
    iterations: int
    converged: bool
    residual: float
    solver: str
    info: dict = field(default_factory=dict)


def soft_threshold(x: np.ndarray, threshold: float) -> np.ndarray:
    """Soft-thresholding (proximal operator of ``threshold * ||.||_1``)."""
    return np.sign(x) * np.maximum(np.abs(x) - threshold, 0.0)


def hard_threshold(x: np.ndarray, k: int) -> np.ndarray:
    """Keep the ``k`` largest-magnitude entries of ``x``, zero the rest."""
    if k <= 0:
        return np.zeros_like(x)
    if k >= len(x):
        return x.copy()
    out = np.zeros_like(x)
    keep = np.argpartition(np.abs(x), -k)[-k:]
    out[keep] = x[keep]
    return out


def residual_norm(
    operator: SensingOperator, x: np.ndarray, b: np.ndarray
) -> float:
    """``||A x - b||_2`` for reporting in :class:`SolverResult`."""
    return float(np.linalg.norm(operator.matvec(x) - b))


def finish_solve_span(span, result: SolverResult) -> SolverResult:
    """Publish a finished solve to the instrumentation layer.

    Attaches the :class:`SolverResult` diagnostics (iterations,
    convergence flag, final residual, scalar ``info`` entries) to the
    enclosing ``solver.*`` span and feeds the per-solver call counter
    and iteration/residual histograms.  A no-op when instrumentation is
    disabled (``span`` is then the null span), so solvers can call it
    unconditionally.  Returns ``result`` for use in return statements.
    """
    if span.active:
        span.set(
            solver=result.solver,
            iterations=result.iterations,
            converged=result.converged,
            residual=result.residual,
            **{
                key: value
                for key, value in result.info.items()
                if isinstance(value, (bool, int, float, str))
            },
        )
        instrument.incr(f"solver.{result.solver}.calls")
        instrument.observe(f"solver.{result.solver}.iterations", result.iterations)
        instrument.observe(f"solver.{result.solver}.residual", result.residual)
        if not result.converged:
            instrument.incr(f"solver.{result.solver}.nonconverged")
    return result
