"""Common interfaces for the CS recovery solvers.

All solvers take the :class:`~repro.core.operators.SensingOperator`
``A = Phi_M @ Psi`` and the measurement vector ``b = Phi_M @ y`` and
return an estimate of the sparse coefficient vector ``x`` solving (or
approximating) the paper's Eq. (9)::

    minimize ||x||_1  subject to  A x = b
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ... import instrument
from ..operators import SensingOperator

__all__ = [
    "SolverResult",
    "DivergenceGuard",
    "SolveDeadline",
    "finish_solve_span",
    "soft_threshold",
    "hard_threshold",
    "residual_norm",
]


@dataclass
class SolverResult:
    """Outcome of a sparse-recovery solve.

    Attributes
    ----------
    coefficients:
        Recovered coefficient vector ``x_cs`` (length ``n``).
    iterations:
        Number of iterations the solver ran.
    converged:
        Whether the solver's own stopping criterion was met (as opposed
        to hitting the iteration cap).
    residual:
        Final ``||A x - b||_2``.
    solver:
        Name of the solver that produced this result.
    info:
        Solver-specific diagnostics.  Keys by solver:

        ================  ==============================================
        solver            ``info`` keys
        ================  ==============================================
        ``basis_pursuit`` ``status`` -- the HiGHS LP status message
        ``bp_dr``         ``gamma`` -- proximal step used;
                          ``tight_frame`` -- whether the closed-form
                          affine projection (``A A^T = I``) applied
        ``ista``          ``lambda`` -- L1 weight; ``step`` -- gradient
                          step size
        ``fista``         ``lambda``, ``step`` -- as for ``ista``;
                          ``stages`` -- continuation stages executed
        ``omp``           ``support_size`` -- atoms in the final support
        ``cosamp``        ``sparsity`` -- target sparsity after clipping
                          to ``min(K, m // 2, n)``
        ``iht``           ``sparsity`` -- target sparsity; ``step`` --
                          gradient step size
        ================  ==============================================
    """

    coefficients: np.ndarray
    iterations: int
    converged: bool
    residual: float
    solver: str
    info: dict = field(default_factory=dict)


class DivergenceGuard:
    """Detect a diverging iterative solve from its residual trajectory.

    The iterative solvers (ISTA/FISTA/IHT/Douglas-Rachford) are only
    guaranteed to descend for well-conditioned steps; a poisoned
    measurement vector (NaN/Inf), an injected fault, or a pathological
    operator can send the iterates off to infinity instead.  The guard
    watches one scalar per iteration (the residual norm, or any
    monotone-ish progress measure) and trips when the value goes
    non-finite or blows past ``blowup_factor`` times its starting level.

    Solvers break out of their loop when :meth:`diverged` returns
    ``True`` and report ``converged=False`` with ``info['diverged']``
    set, so the failure is contained rather than a 400-iteration NaN
    churn.

    Parameters
    ----------
    blowup_factor:
        How far above the first observed value the measure may grow
        before the solve is declared divergent.
    """

    __slots__ = ("blowup_factor", "baseline", "tripped")

    def __init__(self, blowup_factor: float = 1e6):
        self.blowup_factor = float(blowup_factor)
        self.baseline: float | None = None
        self.tripped = False

    def diverged(self, value: float) -> bool:
        """Feed one iteration's progress measure; ``True`` trips the guard."""
        value = float(value)
        if not np.isfinite(value):
            self.tripped = True
            return True
        if self.baseline is None:
            self.baseline = max(value, 1.0)
            return False
        if value > self.blowup_factor * self.baseline:
            self.tripped = True
            return True
        return False


class SolveDeadline:
    """Wall-clock budget for one solve (``None`` disables the check).

    Iterative solvers consult :meth:`expired` once per iteration; when
    the budget runs out they stop where they are and report
    ``converged=False`` with ``info['deadline']`` set.  This is the
    enforcement half of the resilience runtime's per-solver time
    budgets.
    """

    __slots__ = ("limit_s", "_start", "expired_flag")

    def __init__(self, limit_s: float | None = None):
        if limit_s is not None and limit_s <= 0:
            raise ValueError(f"time_limit_s must be positive, got {limit_s}")
        self.limit_s = limit_s
        self._start = time.perf_counter()
        self.expired_flag = False

    def expired(self) -> bool:
        """Whether the budget has been exhausted (sticky once ``True``)."""
        if self.limit_s is None:
            return False
        if not self.expired_flag:
            self.expired_flag = (
                time.perf_counter() - self._start >= self.limit_s
            )
        return self.expired_flag


def soft_threshold(x: np.ndarray, threshold: float) -> np.ndarray:
    """Soft-thresholding (proximal operator of ``threshold * ||.||_1``)."""
    return np.sign(x) * np.maximum(np.abs(x) - threshold, 0.0)


def hard_threshold(x: np.ndarray, k: int) -> np.ndarray:
    """Keep the ``k`` largest-magnitude entries of ``x``, zero the rest."""
    if k <= 0:
        return np.zeros_like(x)
    if k >= len(x):
        return x.copy()
    out = np.zeros_like(x)
    keep = np.argpartition(np.abs(x), -k)[-k:]
    out[keep] = x[keep]
    return out


def residual_norm(
    operator: SensingOperator, x: np.ndarray, b: np.ndarray
) -> float:
    """``||A x - b||_2`` for reporting in :class:`SolverResult`."""
    return float(np.linalg.norm(operator.matvec(x) - b))


def finish_solve_span(span, result: SolverResult) -> SolverResult:
    """Publish a finished solve to the instrumentation layer.

    Attaches the :class:`SolverResult` diagnostics (iterations,
    convergence flag, final residual, scalar ``info`` entries) to the
    enclosing ``solver.*`` span and feeds the per-solver call counter
    and iteration/residual histograms.  A no-op when instrumentation is
    disabled (``span`` is then the null span), so solvers can call it
    unconditionally.  Returns ``result`` for use in return statements.
    """
    if span.active:
        span.set(
            solver=result.solver,
            iterations=result.iterations,
            converged=result.converged,
            residual=result.residual,
            **{
                key: value
                for key, value in result.info.items()
                if isinstance(value, (bool, int, float, str))
            },
        )
        instrument.incr(f"solver.{result.solver}.calls")
        instrument.observe(f"solver.{result.solver}.iterations", result.iterations)
        instrument.observe(f"solver.{result.solver}.residual", result.residual)
        if not result.converged:
            instrument.incr(f"solver.{result.solver}.nonconverged")
        if result.info.get("diverged"):
            instrument.incr(f"solver.{result.solver}.diverged")
        if result.info.get("deadline"):
            instrument.incr(f"solver.{result.solver}.deadline_expired")
    return result
