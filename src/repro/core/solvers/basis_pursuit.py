"""Basis pursuit: exact L1 minimisation via linear programming.

Sec. 3.1 notes that the L1-norm problem of Eq. (9) "can be re-formulated
as a linear programming problem and solved efficiently in the silicon
side".  This module performs exactly that re-formulation.

Splitting ``x = u - v`` with ``u, v >= 0`` turns

    minimize ||x||_1   subject to   A x = b

into the LP

    minimize 1^T u + 1^T v   subject to   A u - A v = b,  u, v >= 0

which we hand to ``scipy.optimize.linprog`` (HiGHS).  The LP needs the
dense matrix, so this solver is the reference implementation for small /
moderate ``N``; the iterative solvers are the fast path for sweeps.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ... import instrument
from ..operators import SensingOperator
from .base import SolverResult, finish_solve_span, residual_norm

__all__ = ["solve_basis_pursuit"]


def solve_basis_pursuit(
    operator: SensingOperator,
    b: np.ndarray,
    tolerance: float = 1e-9,
) -> SolverResult:
    """Solve Eq. (9) exactly as an LP.

    Parameters
    ----------
    operator:
        The sensing operator ``A = Phi_M @ Psi``.
    b:
        Measurement vector of length ``m``.
    tolerance:
        Primal feasibility tolerance passed to HiGHS.

    Returns
    -------
    SolverResult
        ``converged`` mirrors the LP success flag; ``iterations`` is
        the simplex/IPM iteration count HiGHS reports;
        ``info['status']`` carries the HiGHS status message.  The LP is
        a black box, so the ``solver.basis_pursuit`` span carries no
        residual trajectory -- only the final diagnostics.
    """
    with instrument.span(
        "solver.basis_pursuit", m=operator.m, n=operator.n
    ) as sp:
        b = np.asarray(b, dtype=float)
        if b.shape != (operator.m,):
            raise ValueError(
                f"measurement vector shape {b.shape} does not match m={operator.m}"
            )
        # The LP genuinely needs entries; this is the one sanctioned
        # dense-materialisation site in the solver layer (seam-checked).
        a = operator.to_dense()
        m, n = a.shape
        cost = np.ones(2 * n)
        a_eq = np.hstack([a, -a])
        result = linprog(
            cost,
            A_eq=a_eq,
            b_eq=b,
            bounds=[(0, None)] * (2 * n),
            method="highs",
            options={"primal_feasibility_tolerance": tolerance},
        )
        if result.x is None:
            x = np.zeros(n)
        else:
            x = result.x[:n] - result.x[n:]
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=int(getattr(result, "nit", 0) or 0),
            converged=bool(result.success),
            residual=residual_norm(operator, x, b),
            solver="basis_pursuit",
            info={"status": result.message},
        ))
