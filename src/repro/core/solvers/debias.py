"""Debiasing: least-squares re-fit on the recovered support.

L1 regularisation shrinks every kept coefficient toward zero by up to
``lam`` (the soft-threshold bias).  The standard fix is a *debiasing*
pass: freeze the support that BPDN/FISTA identified and re-solve the
unregularised least-squares problem on it.  Implemented matrix-free via
``scipy.sparse.linalg.lsqr`` so it scales to the 32x32+ sweeps.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import LinearOperator, lsqr

from ..operators import SensingOperator
from .base import SolverResult, residual_norm

__all__ = ["debias_on_support"]


def debias_on_support(
    operator: SensingOperator,
    b: np.ndarray,
    result: SolverResult,
    max_support: int | None = None,
    iteration_limit: int = 200,
) -> SolverResult:
    """Least-squares re-fit of a solve's coefficients on their support.

    Parameters
    ----------
    operator, b:
        The original sensing operator and measurements.
    result:
        A prior :class:`SolverResult` whose nonzero pattern defines the
        support.
    max_support:
        Optional cap: keep only the largest-magnitude entries (the LS
        problem must be overdetermined, so supports larger than ``m``
        are always truncated to ``m``).
    iteration_limit:
        LSQR iteration cap.

    Returns
    -------
    SolverResult
        A new result with solver name ``"<orig>+debias"``; if the
        support is empty the input is returned unchanged.
    """
    b = np.asarray(b, dtype=float)
    coefficients = result.coefficients
    support = np.flatnonzero(coefficients)
    if len(support) == 0:
        return result
    limit = operator.m if max_support is None else min(max_support, operator.m)
    if len(support) > limit:
        order = np.argsort(np.abs(coefficients[support]))[::-1]
        support = np.sort(support[order[:limit]])

    def matvec(z: np.ndarray) -> np.ndarray:
        full = np.zeros(operator.n)
        full[support] = z
        return operator.matvec(full)

    def rmatvec(r: np.ndarray) -> np.ndarray:
        return operator.rmatvec(r)[support]

    restricted = LinearOperator(
        shape=(operator.m, len(support)), matvec=matvec, rmatvec=rmatvec
    )
    solution = lsqr(restricted, b, iter_lim=iteration_limit, atol=1e-12,
                    btol=1e-12)[0]
    debiased = np.zeros(operator.n)
    debiased[support] = solution
    return SolverResult(
        coefficients=debiased,
        iterations=result.iterations,
        converged=result.converged,
        residual=residual_norm(operator, debiased, b),
        solver=f"{result.solver}+debias",
        info={**result.info, "support_size": len(support)},
    )
