"""ISTA and FISTA solvers for basis-pursuit denoising (BPDN / LASSO).

These are the workhorse decoders for the big Fig. 6 sweeps: they only
touch ``A`` through matrix-vector products, so with the row-sampling +
fast-DCT operator every iteration costs ``O(N log N)``.

They solve the unconstrained relaxation of Eq. (9)

    minimize  0.5 * ||A x - b||_2^2 + lam * ||x||_1

which coincides with the equality-constrained problem as ``lam -> 0``
(for noiseless data) and is the right formulation when the measurements
carry noise ``eps`` (Eq. 2's measurement-error term).
"""

from __future__ import annotations

import numpy as np

from ... import instrument
from ..operators import SensingOperator
from .base import (
    DivergenceGuard,
    SolveDeadline,
    SolverResult,
    finish_solve_span,
    residual_norm,
    soft_threshold,
)

__all__ = ["solve_ista", "solve_fista", "default_lambda"]


def default_lambda(operator: SensingOperator, b: np.ndarray) -> float:
    """Heuristic regularisation weight: a small fraction of ``||A^T b||_inf``.

    ``||A^T b||_inf`` is the smallest ``lam`` for which the BPDN solution
    is identically zero; scaling it down by 1000x keeps the data term
    dominant (the Fig. 6 sweeps are nearly noiseless) while still
    promoting sparsity.
    """
    scale = float(np.max(np.abs(operator.rmatvec(b))))
    if scale == 0.0:
        return 1e-12
    return 1e-3 * scale


def _prepare(
    operator: SensingOperator,
    b: np.ndarray,
    lam: float | None,
    step: float | None,
) -> tuple[np.ndarray, float, float]:
    b = np.asarray(b, dtype=float)
    if b.shape != (operator.m,):
        raise ValueError(
            f"measurement vector shape {b.shape} does not match m={operator.m}"
        )
    if lam is None:
        lam = default_lambda(operator, b)
    if step is None:
        sigma = operator.spectral_norm()
        step = 1.0 if sigma == 0.0 else 1.0 / (sigma * sigma)
    return b, float(lam), float(step)


def solve_ista(
    operator: SensingOperator,
    b: np.ndarray,
    lam: float | None = None,
    step: float | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-7,
    time_limit_s: float | None = None,
) -> SolverResult:
    """Proximal gradient descent (ISTA) for BPDN.

    Parameters
    ----------
    operator, b:
        Sensing operator and measurements.
    lam:
        L1 weight; defaults to :func:`default_lambda`.
    step:
        Gradient step; defaults to ``1 / ||A||_2^2`` (guaranteed descent).
    max_iterations, tolerance:
        Stop when the relative iterate change drops below ``tolerance``,
        i.e. ``||x_{k+1} - x_k|| <= tolerance * max(1, ||x_{k+1}||)``;
        ``converged`` is ``False`` when the iteration cap is hit first.
    time_limit_s:
        Optional wall-clock budget; on expiry the solve stops at the
        current iterate with ``converged=False`` and
        ``info['deadline']=True``.

    Returns
    -------
    SolverResult
        ``info`` carries ``lambda`` and ``step`` (see
        :class:`~repro.core.solvers.base.SolverResult`), plus
        ``diverged``/``deadline`` flags when the divergence guard or
        time budget stopped the solve early.  When instrumentation is
        enabled the ``solver.ista`` span records the per-iteration
        residual-norm trajectory.
    """
    with instrument.span("solver.ista", m=operator.m, n=operator.n) as sp:
        b, lam, step = _prepare(operator, b, lam, step)
        guard = DivergenceGuard()
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros(operator.n)
        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            residual_vec = operator.matvec(x) - b
            residual_now = np.linalg.norm(residual_vec)
            if sp.active:
                sp.record(residual_now)
            if guard.diverged(residual_now) or deadline.expired():
                break
            gradient = operator.rmatvec(residual_vec)
            x_next = soft_threshold(x - step * gradient, step * lam)
            change = np.linalg.norm(x_next - x)
            x = x_next
            if change <= tolerance * max(1.0, np.linalg.norm(x)):
                converged = True
                break
        info = {"lambda": lam, "step": step}
        if guard.tripped:
            info["diverged"] = True
        if deadline.expired_flag:
            info["deadline"] = True
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=iteration,
            converged=converged,
            residual=residual_norm(operator, x, b),
            solver="ista",
            info=info,
        ))


def solve_fista(
    operator: SensingOperator,
    b: np.ndarray,
    lam: float | None = None,
    step: float | None = None,
    max_iterations: int = 400,
    tolerance: float = 1e-7,
    continuation_stages: int = 6,
    time_limit_s: float | None = None,
) -> SolverResult:
    """Accelerated proximal gradient (FISTA, Beck & Teboulle 2009).

    Same problem as :func:`solve_ista` but with Nesterov momentum
    (``O(1/k^2)`` objective error) and warm-started *continuation*: the
    solve starts from a large L1 weight and geometrically anneals it
    down to the target ``lam``, reusing each stage's solution as the
    next stage's starting point.  Continuation dramatically speeds up
    the small-``lam`` solves the noiseless Fig. 6 sweeps need.  This is
    the default decoder for the paper's experiments.

    Parameters
    ----------
    continuation_stages:
        Number of annealing stages (1 disables continuation);
        ``max_iterations`` is the per-stage cap.
    time_limit_s:
        Optional wall-clock budget across all stages; on expiry the
        solve stops at the current iterate with ``converged=False``
        and ``info['deadline']=True``.

    Returns
    -------
    SolverResult
        ``iterations`` counts all stages; ``converged`` reflects the
        final (target-``lam``) stage's relative-change criterion.
        ``info`` carries ``lambda``, ``step`` and ``stages``, plus
        ``diverged``/``deadline`` flags when the divergence guard or
        time budget stopped the solve early.  When instrumentation is
        enabled the ``solver.fista`` span records the per-iteration
        residual-norm trajectory across all stages.
    """
    with instrument.span("solver.fista", m=operator.m, n=operator.n) as sp:
        b, lam, step = _prepare(operator, b, lam, step)
        if continuation_stages < 1:
            raise ValueError(
                f"continuation_stages must be >= 1, got {continuation_stages}"
            )
        lam_max = float(np.max(np.abs(operator.rmatvec(b))))
        if continuation_stages > 1 and lam_max > lam > 0:
            ratios = np.geomspace(min(0.5 * lam_max, max(lam, 1e-15)), lam,
                                  continuation_stages)
            stages = [float(v) for v in ratios]
            stages[-1] = lam
        else:
            stages = [lam]
        guard = DivergenceGuard()
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros(operator.n)
        total_iterations = 0
        converged = False
        stopped = False
        for stage_lam in stages:
            if stopped:
                break
            z = x.copy()
            t = 1.0
            converged = False
            for _ in range(max_iterations):
                total_iterations += 1
                residual_vec = operator.matvec(z) - b
                residual_now = np.linalg.norm(residual_vec)
                if sp.active:
                    sp.record(residual_now)
                if guard.diverged(residual_now) or deadline.expired():
                    stopped = True
                    break
                gradient = operator.rmatvec(residual_vec)
                x_next = soft_threshold(z - step * gradient, step * stage_lam)
                t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
                z = x_next + ((t - 1.0) / t_next) * (x_next - x)
                change = np.linalg.norm(x_next - x)
                x, t = x_next, t_next
                if change <= tolerance * max(1.0, np.linalg.norm(x)):
                    converged = True
                    break
        info = {"lambda": lam, "step": step, "stages": len(stages)}
        if guard.tripped:
            info["diverged"] = True
        if deadline.expired_flag:
            info["deadline"] = True
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=total_iterations,
            converged=converged,
            residual=residual_norm(operator, x, b),
            solver="fista",
            info=info,
        ))
