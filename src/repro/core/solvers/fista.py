"""ISTA and FISTA solvers for basis-pursuit denoising (BPDN / LASSO).

These are the workhorse decoders for the big Fig. 6 sweeps: they only
touch ``A`` through matrix-vector products, so with the row-sampling +
fast-DCT operator every iteration costs ``O(N log N)``.

They solve the unconstrained relaxation of Eq. (9)

    minimize  0.5 * ||A x - b||_2^2 + lam * ||x||_1

which coincides with the equality-constrained problem as ``lam -> 0``
(for noiseless data) and is the right formulation when the measurements
carry noise ``eps`` (Eq. 2's measurement-error term).
"""

from __future__ import annotations

import numpy as np

from ... import instrument
from ..operators import SensingOperator
from .base import (
    DivergenceGuard,
    SolveDeadline,
    SolverResult,
    finish_solve_span,
    residual_norm,
    soft_threshold,
)

__all__ = [
    "solve_ista",
    "solve_fista",
    "solve_ista_batch",
    "solve_fista_batch",
    "default_lambda",
]


def default_lambda(operator: SensingOperator, b: np.ndarray) -> float:
    """Heuristic regularisation weight: a small fraction of ``||A^T b||_inf``.

    ``||A^T b||_inf`` is the smallest ``lam`` for which the BPDN solution
    is identically zero; scaling it down by 1000x keeps the data term
    dominant (the Fig. 6 sweeps are nearly noiseless) while still
    promoting sparsity.
    """
    scale = float(np.max(np.abs(operator.rmatvec(b))))
    if scale == 0.0:
        return 1e-12
    return 1e-3 * scale


def _prepare(
    operator: SensingOperator,
    b: np.ndarray,
    lam: float | None,
    step: float | None,
) -> tuple[np.ndarray, float, float]:
    b = np.asarray(b, dtype=float)
    if b.shape != (operator.m,):
        raise ValueError(
            f"measurement vector shape {b.shape} does not match m={operator.m}"
        )
    if lam is None:
        lam = default_lambda(operator, b)
    if step is None:
        sigma = operator.spectral_norm()
        step = 1.0 if sigma == 0.0 else 1.0 / (sigma * sigma)
    return b, float(lam), float(step)


def solve_ista(
    operator: SensingOperator,
    b: np.ndarray,
    lam: float | None = None,
    step: float | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-7,
    time_limit_s: float | None = None,
) -> SolverResult:
    """Proximal gradient descent (ISTA) for BPDN.

    Parameters
    ----------
    operator, b:
        Sensing operator and measurements.
    lam:
        L1 weight; defaults to :func:`default_lambda`.
    step:
        Gradient step; defaults to ``1 / ||A||_2^2`` (guaranteed descent).
    max_iterations, tolerance:
        Stop when the relative iterate change drops below ``tolerance``,
        i.e. ``||x_{k+1} - x_k|| <= tolerance * max(1, ||x_{k+1}||)``;
        ``converged`` is ``False`` when the iteration cap is hit first.
    time_limit_s:
        Optional wall-clock budget; on expiry the solve stops at the
        current iterate with ``converged=False`` and
        ``info['deadline']=True``.

    Returns
    -------
    SolverResult
        ``info`` carries ``lambda`` and ``step`` (see
        :class:`~repro.core.solvers.base.SolverResult`), plus
        ``diverged``/``deadline`` flags when the divergence guard or
        time budget stopped the solve early.  When instrumentation is
        enabled the ``solver.ista`` span records the per-iteration
        residual-norm trajectory.
    """
    with instrument.span("solver.ista", m=operator.m, n=operator.n) as sp:
        b, lam, step = _prepare(operator, b, lam, step)
        guard = DivergenceGuard()
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros(operator.n)
        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            residual_vec = operator.matvec(x) - b
            residual_now = np.linalg.norm(residual_vec)
            if sp.active:
                sp.record(residual_now)
            if guard.diverged(residual_now) or deadline.expired():
                break
            gradient = operator.rmatvec(residual_vec)
            x_next = soft_threshold(x - step * gradient, step * lam)
            change = np.linalg.norm(x_next - x)
            x = x_next
            if change <= tolerance * max(1.0, np.linalg.norm(x)):
                converged = True
                break
        info = {"lambda": lam, "step": step}
        if guard.tripped:
            info["diverged"] = True
        if deadline.expired_flag:
            info["deadline"] = True
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=iteration,
            converged=converged,
            residual=residual_norm(operator, x, b),
            solver="ista",
            info=info,
        ))


def solve_ista_batch(
    operator: SensingOperator,
    b_stack: np.ndarray,
    lam: float | None = None,
    step: float | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-7,
    time_limit_s: float | None = None,
) -> list[SolverResult]:
    """Lockstep multi-RHS ISTA: N solves against one operator.

    Decodes every row of ``b_stack`` (shape ``(k, m)``) with the exact
    per-problem arithmetic of :func:`solve_ista` -- per-problem lambda,
    divergence guard and convergence state -- while batching the
    operator applies through ``matvec_batch`` / ``rmatvec_batch``.
    Those apply the same per-slice arithmetic to each row as the serial
    path, so **every row of the output is bitwise the serial**
    ``solve_ista(operator, b)`` result; regression tests assert it.

    Parameters are those of :func:`solve_ista` (``lam`` may only be a
    shared scalar or ``None`` for the per-problem default).  Returns
    one :class:`SolverResult` per row, in row order.
    """
    b_stack = np.asarray(b_stack, dtype=float)
    if b_stack.ndim != 2 or b_stack.shape[1] != operator.m:
        raise ValueError(
            f"expected a (k, {operator.m}) measurement stack, got "
            f"{b_stack.shape}"
        )
    k = b_stack.shape[0]
    n = operator.n
    with instrument.span(
        "solver.ista_batch", m=operator.m, n=n, batch=k
    ) as sp:
        if step is None:
            sigma = operator.spectral_norm()
            step = 1.0 if sigma == 0.0 else 1.0 / (sigma * sigma)
        step = float(step)
        # Per-problem lambda exactly as serial: default_lambda derives
        # from ``max |A^T b|``, computed here with one batched adjoint.
        if lam is None:
            at_b = operator.rmatvec_batch(b_stack)
            scales = np.max(np.abs(at_b), axis=1)
            lams = [
                1e-12 if float(s) == 0.0 else 1e-3 * float(s)
                for s in scales
            ]
        else:
            lams = [float(lam)] * k
        guards = [DivergenceGuard() for _ in range(k)]
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros((k, n))
        iterations = np.zeros(k, dtype=int)
        converged = np.zeros(k, dtype=bool)
        done = np.zeros(k, dtype=bool)
        if max_iterations < 1:
            done[:] = True  # zero-iteration cap: serial returns x = 0
        lam_arr = np.array(lams)
        while not done.all():
            active = np.flatnonzero(~done)
            iterations[active] += 1
            residual = operator.matvec_batch(x[active]) - b_stack[active]
            survivors = []
            for j, i in enumerate(active):
                residual_now = np.linalg.norm(residual[j])
                if sp.active:
                    sp.record(residual_now)
                if guards[i].diverged(residual_now) or deadline.expired():
                    done[i] = True
                else:
                    survivors.append(j)
            if not survivors:
                continue
            rows = active[survivors]
            gradient = operator.rmatvec_batch(residual[survivors])
            x_next = soft_threshold(
                x[rows] - step * gradient,
                (step * lam_arr[rows])[:, None],
            )
            delta = x_next - x[rows]
            x[rows] = x_next
            for j, i in enumerate(rows):
                change = np.linalg.norm(delta[j])
                if change <= tolerance * max(
                    1.0, np.linalg.norm(x_next[j])
                ):
                    converged[i] = True
                    done[i] = True
                elif iterations[i] >= max_iterations:
                    done[i] = True
        results = []
        for i in range(k):
            info = {"lambda": lams[i], "step": step}
            if guards[i].tripped:
                info["diverged"] = True
            if deadline.expired_flag:
                info["deadline"] = True
            result = SolverResult(
                coefficients=x[i].copy(),
                iterations=int(iterations[i]),
                converged=bool(converged[i]),
                residual=residual_norm(operator, x[i], b_stack[i]),
                solver="ista",
                info=info,
            )
            results.append(result)
            if sp.active:
                instrument.incr("solver.ista.calls")
                instrument.observe(
                    "solver.ista.iterations", result.iterations
                )
                instrument.observe("solver.ista.residual", result.residual)
                if not result.converged:
                    instrument.incr("solver.ista.nonconverged")
                if result.info.get("diverged"):
                    instrument.incr("solver.ista.diverged")
                if result.info.get("deadline"):
                    instrument.incr("solver.ista.deadline_expired")
        if sp.active:
            sp.set(
                solver="ista_batch",
                batch=k,
                iterations=int(iterations.max(initial=0)),
                converged=bool(converged.all()),
            )
        return results


def solve_fista(
    operator: SensingOperator,
    b: np.ndarray,
    lam: float | None = None,
    step: float | None = None,
    max_iterations: int = 400,
    tolerance: float = 1e-7,
    continuation_stages: int = 6,
    time_limit_s: float | None = None,
) -> SolverResult:
    """Accelerated proximal gradient (FISTA, Beck & Teboulle 2009).

    Same problem as :func:`solve_ista` but with Nesterov momentum
    (``O(1/k^2)`` objective error) and warm-started *continuation*: the
    solve starts from a large L1 weight and geometrically anneals it
    down to the target ``lam``, reusing each stage's solution as the
    next stage's starting point.  Continuation dramatically speeds up
    the small-``lam`` solves the noiseless Fig. 6 sweeps need.  This is
    the default decoder for the paper's experiments.

    Parameters
    ----------
    continuation_stages:
        Number of annealing stages (1 disables continuation);
        ``max_iterations`` is the per-stage cap.
    time_limit_s:
        Optional wall-clock budget across all stages; on expiry the
        solve stops at the current iterate with ``converged=False``
        and ``info['deadline']=True``.

    Returns
    -------
    SolverResult
        ``iterations`` counts all stages; ``converged`` reflects the
        final (target-``lam``) stage's relative-change criterion.
        ``info`` carries ``lambda``, ``step`` and ``stages``, plus
        ``diverged``/``deadline`` flags when the divergence guard or
        time budget stopped the solve early.  When instrumentation is
        enabled the ``solver.fista`` span records the per-iteration
        residual-norm trajectory across all stages.
    """
    with instrument.span("solver.fista", m=operator.m, n=operator.n) as sp:
        b, lam, step = _prepare(operator, b, lam, step)
        if continuation_stages < 1:
            raise ValueError(
                f"continuation_stages must be >= 1, got {continuation_stages}"
            )
        lam_max = float(np.max(np.abs(operator.rmatvec(b))))
        if continuation_stages > 1 and lam_max > lam > 0:
            ratios = np.geomspace(min(0.5 * lam_max, max(lam, 1e-15)), lam,
                                  continuation_stages)
            stages = [float(v) for v in ratios]
            stages[-1] = lam
        else:
            stages = [lam]
        guard = DivergenceGuard()
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros(operator.n)
        total_iterations = 0
        converged = False
        stopped = False
        for stage_lam in stages:
            if stopped:
                break
            z = x.copy()
            t = 1.0
            converged = False
            for _ in range(max_iterations):
                total_iterations += 1
                residual_vec = operator.matvec(z) - b
                residual_now = np.linalg.norm(residual_vec)
                if sp.active:
                    sp.record(residual_now)
                if guard.diverged(residual_now) or deadline.expired():
                    stopped = True
                    break
                gradient = operator.rmatvec(residual_vec)
                x_next = soft_threshold(z - step * gradient, step * stage_lam)
                t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
                z = x_next + ((t - 1.0) / t_next) * (x_next - x)
                change = np.linalg.norm(x_next - x)
                x, t = x_next, t_next
                if change <= tolerance * max(1.0, np.linalg.norm(x)):
                    converged = True
                    break
        info = {"lambda": lam, "step": step, "stages": len(stages)}
        if guard.tripped:
            info["diverged"] = True
        if deadline.expired_flag:
            info["deadline"] = True
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=total_iterations,
            converged=converged,
            residual=residual_norm(operator, x, b),
            solver="fista",
            info=info,
        ))


def solve_fista_batch(
    operator: SensingOperator,
    b_stack: np.ndarray,
    lam: float | None = None,
    step: float | None = None,
    max_iterations: int = 400,
    tolerance: float = 1e-7,
    continuation_stages: int = 6,
    time_limit_s: float | None = None,
) -> list[SolverResult]:
    """Lockstep multi-RHS FISTA: N solves against one operator.

    Decodes every row of ``b_stack`` (shape ``(k, m)``) with the exact
    per-problem arithmetic of :func:`solve_fista` -- per-problem lambda,
    continuation schedule, divergence guard, momentum and convergence
    state -- while batching the only expensive step, the operator
    applies, through ``matvec_batch`` / ``rmatvec_batch``.  Those apply
    the same per-slice GEMMs to each row as the serial path, and all
    per-problem scalar reductions run on contiguous rows, so **every row
    of the output is bitwise the serial** ``solve_fista(operator, b)``
    result.  That invariant is what lets
    :meth:`~repro.core.engine.DecodeEngine.decode_batch` use this path
    interchangeably with per-frame solves; regression tests assert it.

    The batch speedup comes from amortising python/dispatch overhead
    over the batch: one iteration advances every unconverged problem
    with two batched applies instead of ``2k`` small ones.

    Parameters are those of :func:`solve_fista` (``lam`` may only be a
    shared scalar or ``None`` for the per-problem default).  Returns one
    :class:`SolverResult` per row, in row order.
    """
    b_stack = np.asarray(b_stack, dtype=float)
    if b_stack.ndim != 2 or b_stack.shape[1] != operator.m:
        raise ValueError(
            f"expected a (k, {operator.m}) measurement stack, got "
            f"{b_stack.shape}"
        )
    if continuation_stages < 1:
        raise ValueError(
            f"continuation_stages must be >= 1, got {continuation_stages}"
        )
    k = b_stack.shape[0]
    n = operator.n
    with instrument.span(
        "solver.fista_batch", m=operator.m, n=n, batch=k
    ) as sp:
        if step is None:
            sigma = operator.spectral_norm()
            step = 1.0 if sigma == 0.0 else 1.0 / (sigma * sigma)
        step = float(step)
        # Per-problem lambda + continuation schedule, exactly as serial:
        # default_lambda and the stage ladder both derive from
        # ``max |A^T b|``, computed here with one batched adjoint.
        at_b = operator.rmatvec_batch(b_stack)
        lams: list[float] = []
        schedules: list[list[float]] = []
        for i in range(k):
            scale = float(np.max(np.abs(at_b[i])))
            lam_i = (
                float(lam)
                if lam is not None
                else (1e-12 if scale == 0.0 else 1e-3 * scale)
            )
            lam_max = scale
            if continuation_stages > 1 and lam_max > lam_i > 0:
                ratios = np.geomspace(
                    min(0.5 * lam_max, max(lam_i, 1e-15)),
                    lam_i,
                    continuation_stages,
                )
                stages = [float(v) for v in ratios]
                stages[-1] = lam_i
            else:
                stages = [lam_i]
            lams.append(lam_i)
            schedules.append(stages)
        guards = [DivergenceGuard() for _ in range(k)]
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros((k, n))
        z = np.zeros((k, n))
        t = np.ones(k)
        stage_index = np.zeros(k, dtype=int)
        stage_lam = np.array([s[0] for s in schedules])
        inner = np.zeros(k, dtype=int)
        total_iterations = np.zeros(k, dtype=int)
        converged = np.zeros(k, dtype=bool)
        done = np.zeros(k, dtype=bool)
        if max_iterations < 1:
            done[:] = True  # zero-iteration cap: serial returns x = 0

        def _advance_stage(i: int) -> None:
            stage_index[i] += 1
            if stage_index[i] >= len(schedules[i]):
                done[i] = True
                return
            stage_lam[i] = schedules[i][stage_index[i]]
            inner[i] = 0
            z[i] = x[i]
            t[i] = 1.0
            converged[i] = False

        while not done.all():
            active = np.flatnonzero(~done)
            total_iterations[active] += 1
            inner[active] += 1
            residual = operator.matvec_batch(z[active]) - b_stack[active]
            survivors = []
            for j, i in enumerate(active):
                residual_now = np.linalg.norm(residual[j])
                if sp.active:
                    sp.record(residual_now)
                if guards[i].diverged(residual_now) or deadline.expired():
                    converged[i] = False
                    done[i] = True
                else:
                    survivors.append(j)
            if not survivors:
                continue
            rows = active[survivors]
            gradient = operator.rmatvec_batch(residual[survivors])
            x_old = x[rows]
            x_next = soft_threshold(
                z[rows] - step * gradient,
                (step * stage_lam[rows])[:, None],
            )
            t_old = t[rows]
            t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_old * t_old))
            z[rows] = x_next + ((t_old - 1.0) / t_next)[:, None] * (
                x_next - x_old
            )
            delta = x_next - x_old
            x[rows] = x_next
            t[rows] = t_next
            for j, i in enumerate(rows):
                change = np.linalg.norm(delta[j])
                if change <= tolerance * max(
                    1.0, np.linalg.norm(x_next[j])
                ):
                    converged[i] = True
                    _advance_stage(i)
                elif inner[i] >= max_iterations:
                    _advance_stage(i)
        results = []
        for i in range(k):
            info = {
                "lambda": lams[i],
                "step": step,
                "stages": len(schedules[i]),
            }
            if guards[i].tripped:
                info["diverged"] = True
            if deadline.expired_flag:
                info["deadline"] = True
            result = SolverResult(
                coefficients=x[i].copy(),
                iterations=int(total_iterations[i]),
                converged=bool(converged[i]),
                residual=residual_norm(operator, x[i], b_stack[i]),
                solver="fista",
                info=info,
            )
            results.append(result)
            if sp.active:
                instrument.incr("solver.fista.calls")
                instrument.observe(
                    "solver.fista.iterations", result.iterations
                )
                instrument.observe("solver.fista.residual", result.residual)
                if not result.converged:
                    instrument.incr("solver.fista.nonconverged")
                if result.info.get("diverged"):
                    instrument.incr("solver.fista.diverged")
                if result.info.get("deadline"):
                    instrument.incr("solver.fista.deadline_expired")
        if sp.active:
            sp.set(
                solver="fista_batch",
                batch=k,
                iterations=int(total_iterations.max(initial=0)),
                converged=bool(converged.all()),
            )
        return results
