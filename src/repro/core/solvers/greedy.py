"""Greedy sparse-recovery solvers: OMP, CoSaMP and IHT.

Baselines for the solver-ablation bench.  OMP and CoSaMP need least-
squares solves on the active support, so they materialise the columns
they touch; IHT is fully matrix-free and scales like FISTA.
"""

from __future__ import annotations

import numpy as np

from ..operators import SensingOperator
from .base import SolverResult, hard_threshold, residual_norm

__all__ = ["solve_omp", "solve_cosamp", "solve_iht"]


def _columns(operator: SensingOperator, support: np.ndarray) -> np.ndarray:
    """Extract the columns of ``A`` indexed by ``support`` (m x |S|)."""
    cols = np.zeros((operator.m, len(support)))
    unit = np.zeros(operator.n)
    for j, index in enumerate(support):
        unit[index] = 1.0
        cols[:, j] = operator.matvec(unit)
        unit[index] = 0.0
    return cols


def _ls_on_support(
    operator: SensingOperator, b: np.ndarray, support: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares fit of ``b`` on the given support; returns (x, residual)."""
    x = np.zeros(operator.n)
    if len(support) == 0:
        return x, b.copy()
    cols = _columns(operator, support)
    coefficients, *_ = np.linalg.lstsq(cols, b, rcond=None)
    x[support] = coefficients
    return x, b - cols @ coefficients


def solve_omp(
    operator: SensingOperator,
    b: np.ndarray,
    sparsity: int,
    tolerance: float = 1e-9,
) -> SolverResult:
    """Orthogonal Matching Pursuit: grow the support one atom at a time.

    Parameters
    ----------
    operator, b:
        Sensing operator and measurement vector.
    sparsity:
        Maximum number of atoms (the target sparsity ``K``).
    tolerance:
        Stop early once ``||residual||_2`` falls below this.
    """
    b = np.asarray(b, dtype=float)
    if sparsity < 1:
        raise ValueError(f"sparsity must be >= 1, got {sparsity}")
    sparsity = min(sparsity, operator.m, operator.n)
    support: list[int] = []
    x = np.zeros(operator.n)
    residual = b.copy()
    iteration = 0
    for iteration in range(1, sparsity + 1):
        correlations = operator.rmatvec(residual)
        correlations[support] = 0.0
        best = int(np.argmax(np.abs(correlations)))
        support.append(best)
        x, residual = _ls_on_support(operator, b, np.array(support))
        if np.linalg.norm(residual) <= tolerance:
            break
    return SolverResult(
        coefficients=x,
        iterations=iteration,
        converged=np.linalg.norm(residual) <= max(tolerance, 1e-6 * np.linalg.norm(b)),
        residual=residual_norm(operator, x, b),
        solver="omp",
        info={"support_size": len(support)},
    )


def solve_cosamp(
    operator: SensingOperator,
    b: np.ndarray,
    sparsity: int,
    max_iterations: int = 50,
    tolerance: float = 1e-7,
) -> SolverResult:
    """Compressive Sampling Matching Pursuit (Needell & Tropp 2009)."""
    b = np.asarray(b, dtype=float)
    if sparsity < 1:
        raise ValueError(f"sparsity must be >= 1, got {sparsity}")
    sparsity = min(sparsity, operator.m // 2 if operator.m >= 2 else 1, operator.n)
    sparsity = max(sparsity, 1)
    x = np.zeros(operator.n)
    residual = b.copy()
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        proxy = operator.rmatvec(residual)
        candidates = np.argpartition(np.abs(proxy), -2 * sparsity)[-2 * sparsity:]
        merged = np.union1d(candidates, np.nonzero(x)[0])
        ls_fit, _ = _ls_on_support(operator, b, merged.astype(int))
        x_next = hard_threshold(ls_fit, sparsity)
        residual = b - operator.matvec(x_next)
        change = np.linalg.norm(x_next - x)
        x = x_next
        if np.linalg.norm(residual) <= tolerance or change <= tolerance:
            converged = True
            break
    return SolverResult(
        coefficients=x,
        iterations=iteration,
        converged=converged,
        residual=residual_norm(operator, x, b),
        solver="cosamp",
        info={"sparsity": sparsity},
    )


def solve_iht(
    operator: SensingOperator,
    b: np.ndarray,
    sparsity: int,
    step: float | None = None,
    max_iterations: int = 300,
    tolerance: float = 1e-7,
) -> SolverResult:
    """Iterative Hard Thresholding (Blumensath & Davies 2009).

    Fully matrix-free: each iteration is one forward and one adjoint
    apply plus a hard threshold onto the best ``sparsity`` atoms.
    """
    b = np.asarray(b, dtype=float)
    if sparsity < 1:
        raise ValueError(f"sparsity must be >= 1, got {sparsity}")
    if step is None:
        sigma = operator.spectral_norm()
        step = 1.0 if sigma == 0.0 else 1.0 / (sigma * sigma)
    x = np.zeros(operator.n)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        gradient = operator.rmatvec(operator.matvec(x) - b)
        x_next = hard_threshold(x - step * gradient, sparsity)
        change = np.linalg.norm(x_next - x)
        x = x_next
        if change <= tolerance * max(1.0, np.linalg.norm(x)):
            converged = True
            break
    return SolverResult(
        coefficients=x,
        iterations=iteration,
        converged=converged,
        residual=residual_norm(operator, x, b),
        solver="iht",
        info={"sparsity": sparsity, "step": step},
    )
