"""Greedy sparse-recovery solvers: OMP, CoSaMP and IHT.

Baselines for the solver-ablation bench.  OMP and CoSaMP need least-
squares solves on the active support, so they materialise the columns
they touch; IHT is fully matrix-free and scales like FISTA.
"""

from __future__ import annotations

import numpy as np

from ... import instrument
from ..operators import SensingOperator
from .base import (
    DivergenceGuard,
    SolveDeadline,
    SolverResult,
    finish_solve_span,
    hard_threshold,
    residual_norm,
)

__all__ = ["solve_omp", "solve_cosamp", "solve_iht", "solve_iht_batch"]


def _columns(operator: SensingOperator, support: np.ndarray) -> np.ndarray:
    """Extract the columns of ``A`` indexed by ``support`` (m x |S|).

    Operators with vectorised batched applies gather all columns with
    one ``matvec_batch`` over a stack of unit vectors (each slice runs
    the same per-vector arithmetic as the serial apply); the rest fall
    back to one ``matvec`` per column.
    """
    supports = getattr(operator, "supports_batch", None)
    if supports is not None and supports() and len(support) > 1:
        units = np.zeros((len(support), operator.n))
        units[np.arange(len(support)), support] = 1.0
        return operator.matvec_batch(units).T
    cols = np.zeros((operator.m, len(support)))
    unit = np.zeros(operator.n)
    for j, index in enumerate(support):
        unit[index] = 1.0
        cols[:, j] = operator.matvec(unit)
        unit[index] = 0.0
    return cols


def _ls_on_support(
    operator: SensingOperator, b: np.ndarray, support: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares fit of ``b`` on the given support; returns (x, residual)."""
    x = np.zeros(operator.n)
    if len(support) == 0:
        return x, b.copy()
    cols = _columns(operator, support)
    coefficients, *_ = np.linalg.lstsq(cols, b, rcond=None)
    x[support] = coefficients
    return x, b - cols @ coefficients


def solve_omp(
    operator: SensingOperator,
    b: np.ndarray,
    sparsity: int,
    tolerance: float = 1e-9,
    time_limit_s: float | None = None,
) -> SolverResult:
    """Orthogonal Matching Pursuit: grow the support one atom at a time.

    Parameters
    ----------
    operator, b:
        Sensing operator and measurement vector.
    sparsity:
        Maximum number of atoms (the target sparsity ``K``); clipped to
        ``min(K, m, n)``.  One atom joins the support per iteration.
    tolerance:
        Stop early once ``||residual||_2`` falls below this;
        ``converged`` additionally tolerates ``1e-6 * ||b||_2``
        (relative floor for well-scaled problems).
    time_limit_s:
        Optional wall-clock budget; on expiry the solve stops with the
        atoms selected so far and ``info['deadline']=True``.

    Returns
    -------
    SolverResult
        ``info['support_size']`` is the number of atoms in the final
        support; ``info['diverged']`` flags a non-finite residual
        (poisoned measurements).  When instrumentation is enabled the
        ``solver.omp`` span records the residual norm after each atom
        selection.
    """
    with instrument.span("solver.omp", m=operator.m, n=operator.n) as sp:
        b = np.asarray(b, dtype=float)
        if sparsity < 1:
            raise ValueError(f"sparsity must be >= 1, got {sparsity}")
        sparsity = min(sparsity, operator.m, operator.n)
        deadline = SolveDeadline(time_limit_s)
        support: list[int] = []
        x = np.zeros(operator.n)
        residual = b.copy()
        iteration = 0
        diverged = False
        for iteration in range(1, sparsity + 1):
            if not np.all(np.isfinite(residual)):
                diverged = True
                break
            if deadline.expired():
                break
            correlations = operator.rmatvec(residual)
            correlations[support] = 0.0
            best = int(np.argmax(np.abs(correlations)))
            support.append(best)
            x, residual = _ls_on_support(operator, b, np.array(support))
            if sp.active:
                sp.record(np.linalg.norm(residual))
            if np.linalg.norm(residual) <= tolerance:
                break
        info = {"support_size": len(support)}
        if diverged:
            info["diverged"] = True
        if deadline.expired_flag:
            info["deadline"] = True
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=iteration,
            converged=not diverged
            and bool(
                np.linalg.norm(residual)
                <= max(tolerance, 1e-6 * np.linalg.norm(b))
            ),
            residual=residual_norm(operator, x, b),
            solver="omp",
            info=info,
        ))


def solve_cosamp(
    operator: SensingOperator,
    b: np.ndarray,
    sparsity: int,
    max_iterations: int = 50,
    tolerance: float = 1e-7,
    time_limit_s: float | None = None,
) -> SolverResult:
    """Compressive Sampling Matching Pursuit (Needell & Tropp 2009).

    Parameters
    ----------
    operator, b:
        Sensing operator and measurement vector.
    sparsity:
        Target sparsity ``K``; clipped to ``min(K, m // 2, n)`` so the
        ``2K`` candidate set stays identifiable from ``m`` measurements.
    max_iterations, tolerance:
        Stop when the residual norm or the iterate change drops below
        ``tolerance``; ``converged`` is ``False`` at the iteration cap.
    time_limit_s:
        Optional wall-clock budget; on expiry the solve stops at the
        current iterate with ``info['deadline']=True``.

    Returns
    -------
    SolverResult
        ``info['sparsity']`` is the post-clipping target sparsity;
        ``info['diverged']`` flags a non-finite residual.
        When instrumentation is enabled the ``solver.cosamp`` span
        records the per-iteration residual-norm trajectory.
    """
    with instrument.span("solver.cosamp", m=operator.m, n=operator.n) as sp:
        b = np.asarray(b, dtype=float)
        if sparsity < 1:
            raise ValueError(f"sparsity must be >= 1, got {sparsity}")
        sparsity = min(sparsity, operator.m // 2 if operator.m >= 2 else 1, operator.n)
        sparsity = max(sparsity, 1)
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros(operator.n)
        residual = b.copy()
        converged = False
        iteration = 0
        diverged = False
        for iteration in range(1, max_iterations + 1):
            if not np.all(np.isfinite(residual)):
                diverged = True
                break
            if deadline.expired():
                break
            proxy = operator.rmatvec(residual)
            candidates = np.argpartition(np.abs(proxy), -2 * sparsity)[-2 * sparsity:]
            merged = np.union1d(candidates, np.nonzero(x)[0])
            ls_fit, _ = _ls_on_support(operator, b, merged.astype(int))
            x_next = hard_threshold(ls_fit, sparsity)
            residual = b - operator.matvec(x_next)
            change = np.linalg.norm(x_next - x)
            x = x_next
            if sp.active:
                sp.record(np.linalg.norm(residual))
            if np.linalg.norm(residual) <= tolerance or change <= tolerance:
                converged = True
                break
        info = {"sparsity": sparsity}
        if diverged:
            info["diverged"] = True
        if deadline.expired_flag:
            info["deadline"] = True
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=iteration,
            converged=converged,
            residual=residual_norm(operator, x, b),
            solver="cosamp",
            info=info,
        ))


def solve_iht(
    operator: SensingOperator,
    b: np.ndarray,
    sparsity: int,
    step: float | None = None,
    max_iterations: int = 300,
    tolerance: float = 1e-7,
    time_limit_s: float | None = None,
) -> SolverResult:
    """Iterative Hard Thresholding (Blumensath & Davies 2009).

    Fully matrix-free: each iteration is one forward and one adjoint
    apply plus a hard threshold onto the best ``sparsity`` atoms.

    Parameters
    ----------
    operator, b:
        Sensing operator and measurement vector.
    sparsity:
        Target sparsity ``K`` (atoms kept by the hard threshold).
    step:
        Gradient step; defaults to ``1 / ||A||_2^2``.
    max_iterations, tolerance:
        Stop when the relative iterate change drops below ``tolerance``;
        ``converged`` is ``False`` when the iteration cap is hit first.
    time_limit_s:
        Optional wall-clock budget; on expiry the solve stops at the
        current iterate with ``converged=False`` and
        ``info['deadline']=True``.

    Returns
    -------
    SolverResult
        ``info`` carries ``sparsity`` and ``step``, plus
        ``diverged``/``deadline`` flags when the divergence guard or
        time budget stopped the solve early.  When instrumentation is
        enabled the ``solver.iht`` span records the per-iteration
        residual-norm trajectory.
    """
    with instrument.span("solver.iht", m=operator.m, n=operator.n) as sp:
        b = np.asarray(b, dtype=float)
        if sparsity < 1:
            raise ValueError(f"sparsity must be >= 1, got {sparsity}")
        if step is None:
            sigma = operator.spectral_norm()
            step = 1.0 if sigma == 0.0 else 1.0 / (sigma * sigma)
        guard = DivergenceGuard()
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros(operator.n)
        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            residual_vec = operator.matvec(x) - b
            residual_now = np.linalg.norm(residual_vec)
            if sp.active:
                sp.record(residual_now)
            if guard.diverged(residual_now) or deadline.expired():
                break
            gradient = operator.rmatvec(residual_vec)
            x_next = hard_threshold(x - step * gradient, sparsity)
            change = np.linalg.norm(x_next - x)
            x = x_next
            if change <= tolerance * max(1.0, np.linalg.norm(x)):
                converged = True
                break
        info = {"sparsity": sparsity, "step": step}
        if guard.tripped:
            info["diverged"] = True
        if deadline.expired_flag:
            info["deadline"] = True
        return finish_solve_span(sp, SolverResult(
            coefficients=x,
            iterations=iteration,
            converged=converged,
            residual=residual_norm(operator, x, b),
            solver="iht",
            info=info,
        ))


def solve_iht_batch(
    operator: SensingOperator,
    b_stack: np.ndarray,
    sparsity: int,
    step: float | None = None,
    max_iterations: int = 300,
    tolerance: float = 1e-7,
    time_limit_s: float | None = None,
) -> list[SolverResult]:
    """Lockstep multi-RHS IHT: N solves against one operator.

    Decodes every row of ``b_stack`` (shape ``(k, m)``) with the exact
    per-problem arithmetic of :func:`solve_iht` -- per-problem
    divergence guard, convergence state and hard threshold (applied per
    row, so the ``argpartition`` tie-breaking matches the serial call
    exactly) -- while batching the operator applies through
    ``matvec_batch`` / ``rmatvec_batch``.  **Every row of the output is
    bitwise the serial** ``solve_iht(operator, b)`` result; regression
    tests assert it.

    Parameters are those of :func:`solve_iht` (``sparsity`` and
    ``step`` are shared across the batch).  Returns one
    :class:`SolverResult` per row, in row order.
    """
    b_stack = np.asarray(b_stack, dtype=float)
    if b_stack.ndim != 2 or b_stack.shape[1] != operator.m:
        raise ValueError(
            f"expected a (k, {operator.m}) measurement stack, got "
            f"{b_stack.shape}"
        )
    if sparsity < 1:
        raise ValueError(f"sparsity must be >= 1, got {sparsity}")
    k = b_stack.shape[0]
    n = operator.n
    with instrument.span(
        "solver.iht_batch", m=operator.m, n=n, batch=k
    ) as sp:
        if step is None:
            sigma = operator.spectral_norm()
            step = 1.0 if sigma == 0.0 else 1.0 / (sigma * sigma)
        step = float(step)
        guards = [DivergenceGuard() for _ in range(k)]
        deadline = SolveDeadline(time_limit_s)
        x = np.zeros((k, n))
        iterations = np.zeros(k, dtype=int)
        converged = np.zeros(k, dtype=bool)
        done = np.zeros(k, dtype=bool)
        if max_iterations < 1:
            done[:] = True  # zero-iteration cap: serial returns x = 0
        while not done.all():
            active = np.flatnonzero(~done)
            iterations[active] += 1
            residual = operator.matvec_batch(x[active]) - b_stack[active]
            survivors = []
            for j, i in enumerate(active):
                residual_now = np.linalg.norm(residual[j])
                if sp.active:
                    sp.record(residual_now)
                if guards[i].diverged(residual_now) or deadline.expired():
                    done[i] = True
                else:
                    survivors.append(j)
            if not survivors:
                continue
            rows = active[survivors]
            gradient = operator.rmatvec_batch(residual[survivors])
            stepped = x[rows] - step * gradient
            for j, i in enumerate(rows):
                x_next = hard_threshold(stepped[j], sparsity)
                change = np.linalg.norm(x_next - x[i])
                x[i] = x_next
                if change <= tolerance * max(1.0, np.linalg.norm(x_next)):
                    converged[i] = True
                    done[i] = True
                elif iterations[i] >= max_iterations:
                    done[i] = True
        results = []
        for i in range(k):
            info = {"sparsity": sparsity, "step": step}
            if guards[i].tripped:
                info["diverged"] = True
            if deadline.expired_flag:
                info["deadline"] = True
            result = SolverResult(
                coefficients=x[i].copy(),
                iterations=int(iterations[i]),
                converged=bool(converged[i]),
                residual=residual_norm(operator, x[i], b_stack[i]),
                solver="iht",
                info=info,
            )
            results.append(result)
            if sp.active:
                instrument.incr("solver.iht.calls")
                instrument.observe(
                    "solver.iht.iterations", result.iterations
                )
                instrument.observe("solver.iht.residual", result.residual)
                if not result.converged:
                    instrument.incr("solver.iht.nonconverged")
                if result.info.get("diverged"):
                    instrument.incr("solver.iht.diverged")
                if result.info.get("deadline"):
                    instrument.incr("solver.iht.deadline_expired")
        if sp.active:
            sp.set(
                solver="iht_batch",
                batch=k,
                iterations=int(iterations.max(initial=0)),
                converged=bool(converged.all()),
            )
        return results
