"""Robust sampling strategies built on top of the CS decoder.

Sec. 4.2 and 4.3 of the paper discuss three regimes:

* **Oracle exclusion** -- permanent defects are identified by production
  testing, so the encoder simply never samples them ("we exclude all
  0/1s and perform random sampling").
* **Resampling** -- without a defect map, the silicon side performs
  several independent sample/reconstruct rounds and takes the per-pixel
  median (or mean) of the reconstructions; the median is robust to the
  rounds that happened to sample corrupted pixels.
* **RPCA exclusion** -- outliers are first detected by robust PCA over a
  stack of frames, excluded, and then a single sample/reconstruct round
  runs on the surviving pixels.

Each strategy consumes a *corrupted* frame (or frame stack) and returns
reconstructed frames; the pipeline handles normalisation, injection and
metric evaluation.  All sampling + solving goes through the shared
:mod:`repro.core.engine` (one :class:`~repro.core.engine.DecodeContext`
plan per configuration, cached operators per shape), so repeated
decodes of the same shape -- the resampling rounds here, streams
elsewhere -- pay operator construction exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import instrument
from .engine import (
    DecodeContext,
    DecodeResult,
    get_engine,
    validate_decode_inputs,
)
from .rpca import detect_outliers

__all__ = [
    "DecodeResult",
    "sample_and_reconstruct",
    "validate_decode_inputs",
    "NaiveStrategy",
    "OracleExclusionStrategy",
    "ResamplingStrategy",
    "RpcaExclusionStrategy",
    "WeightedSamplingStrategy",
]


def sample_and_reconstruct(
    frame: np.ndarray,
    sampling_fraction: float,
    rng: np.random.Generator,
    solver: str = "fista",
    exclude_mask: np.ndarray | None = None,
    noise_sigma: float = 0.0,
    solver_options: dict | None = None,
    full_output: bool = False,
    operator_mode: str | None = None,
    measurement: str = "row_sampling",
) -> np.ndarray | DecodeResult:
    """One random-sampling + L1-reconstruction round (the core decode).

    Thin convenience wrapper: builds a one-shot
    :class:`~repro.core.engine.DecodeContext` and runs it through the
    shared :class:`~repro.core.engine.DecodeEngine`.  Streaming callers
    should build the plan once and call the engine directly.

    Parameters
    ----------
    frame:
        2-D sensor frame (possibly corrupted), normalised units.
    sampling_fraction:
        ``M / N``: fraction of the array to measure (before exclusions).
    rng:
        Randomness for ``Phi_M`` and measurement noise.
    solver:
        Decoder name from :func:`repro.core.solvers.solver_names`.
    exclude_mask:
        Boolean mask of pixels that must not be sampled (known defects).
    noise_sigma:
        Std-dev of additive measurement noise ``eps``.
    solver_options:
        Extra keyword arguments for the solver.
    full_output:
        Return a :class:`DecodeResult` (reconstruction + solver
        diagnostics + measurement vector) instead of just the frame;
        used by :mod:`repro.resilience` for health validation.
    operator_mode:
        ``"implicit"`` (matrix-free FFT applies, the default) or
        ``"dense"`` (materialised ``A = Phi_M @ Psi``); ``None`` defers
        to the engine's configured default.  See
        :data:`repro.core.engine.OPERATOR_MODES`.
    measurement:
        Registered measurement family drawing the per-frame code
        (``"row_sampling"`` default; see
        :func:`repro.core.measurement.register_measurement`).

    Returns
    -------
    numpy.ndarray or DecodeResult
        Reconstructed frame with the same shape as ``frame`` (the
        default), or the full :class:`DecodeResult`.
    """
    frame = validate_decode_inputs(frame, sampling_fraction, noise_sigma)
    plan = DecodeContext(
        shape=frame.shape,
        sampling_fraction=sampling_fraction,
        solver=solver,
        solver_options=solver_options or {},
        noise_sigma=noise_sigma,
        exclude_mask=exclude_mask,
        operator_mode=operator_mode,
        measurement=measurement,
    )
    return get_engine().decode(frame, plan, rng, full_output=full_output)


@dataclass
class NaiveStrategy:
    """Sample blindly, corrupted pixels included (the "w/o robustness"
    lower bound for strategies; still uses CS reconstruction)."""

    sampling_fraction: float = 0.5
    solver: str = "fista"
    noise_sigma: float = 0.0
    solver_options: dict = field(default_factory=dict)
    measurement: str = "row_sampling"

    def reconstruct(
        self, corrupted: np.ndarray, rng: np.random.Generator, **_
    ) -> np.ndarray:
        """Reconstruct one frame with no defect knowledge."""
        return sample_and_reconstruct(
            corrupted,
            self.sampling_fraction,
            rng,
            solver=self.solver,
            noise_sigma=self.noise_sigma,
            solver_options=self.solver_options,
            measurement=self.measurement,
        )


@dataclass
class OracleExclusionStrategy:
    """Exclude a known defect mask before sampling (Sec. 4.2).

    The mask normally comes from production testing of permanent
    defects; in the Fig. 6a/6b experiments the injected error mask is
    passed straight through ("after testing to identify those defects...
    only sampling good pixels").
    """

    sampling_fraction: float = 0.5
    solver: str = "fista"
    noise_sigma: float = 0.0
    solver_options: dict = field(default_factory=dict)
    measurement: str = "row_sampling"

    def reconstruct(
        self,
        corrupted: np.ndarray,
        rng: np.random.Generator,
        error_mask: np.ndarray | None = None,
        **_,
    ) -> np.ndarray:
        """Reconstruct one frame, never sampling masked pixels."""
        if error_mask is None:
            raise ValueError("OracleExclusionStrategy requires an error_mask")
        return sample_and_reconstruct(
            corrupted,
            self.sampling_fraction,
            rng,
            solver=self.solver,
            exclude_mask=error_mask,
            noise_sigma=self.noise_sigma,
            solver_options=self.solver_options,
            measurement=self.measurement,
        )


@dataclass
class ResamplingStrategy:
    """Multiple sample/reconstruct rounds aggregated per pixel (Sec. 4.3).

    The decode plan is built once and every round runs through the
    shared engine, so the rounds reuse one cached operator template
    instead of rebuilding basis + operator per round (the pre-engine
    hot-loop waste).

    Parameters
    ----------
    rounds:
        Number of independent resampling rounds (the paper uses 10).
    aggregate:
        ``"median"`` (robust, the paper's recommendation) or ``"mean"``.
    executor:
        Optional parallel execution of the rounds: anything
        :func:`~repro.core.executor.resolve_executor` accepts.  The
        rounds' ``Phi_M``/noise draws stay sequential (so the result is
        bit-identical to the serial loop for a given ``rng``); only the
        pure solves fan out.
    """

    sampling_fraction: float = 0.5
    rounds: int = 10
    aggregate: str = "median"
    solver: str = "fista"
    noise_sigma: float = 0.0
    solver_options: dict = field(default_factory=dict)
    executor: object | None = None
    measurement: str = "row_sampling"

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.aggregate not in ("median", "mean"):
            raise ValueError(
                f"aggregate must be 'median' or 'mean', got {self.aggregate!r}"
            )

    def reconstruct(
        self,
        corrupted: np.ndarray,
        rng: np.random.Generator,
        error_mask: np.ndarray | None = None,
        **_,
    ) -> np.ndarray:
        """Aggregate ``rounds`` independent reconstructions per pixel.

        ``error_mask`` pixels (known defects, detected stuck lines) are
        excluded from sampling in every round -- resampling and
        exclusion compose, which is how the adaptive runtime feeds
        health-derived masks into this strategy.
        """
        corrupted = validate_decode_inputs(
            corrupted, self.sampling_fraction, self.noise_sigma
        )
        engine = get_engine()
        plan = DecodeContext(
            shape=corrupted.shape,
            sampling_fraction=self.sampling_fraction,
            solver=self.solver,
            solver_options=self.solver_options,
            noise_sigma=self.noise_sigma,
            measurement=self.measurement,
        ).with_exclusions(error_mask)
        stack = np.stack(
            engine.decode_batch(
                [corrupted] * self.rounds, plan, rng, executor=self.executor
            )
        )
        if self.aggregate == "median":
            return np.median(stack, axis=0)
        return np.mean(stack, axis=0)


@dataclass
class RpcaExclusionStrategy:
    """Detect outliers with RPCA over a frame stack, then exclude (Sec. 4.3).

    Parameters
    ----------
    outlier_threshold:
        Magnitude in the sparse component above which a pixel is flagged.
    """

    sampling_fraction: float = 0.5
    outlier_threshold: float = 0.1
    solver: str = "fista"
    noise_sigma: float = 0.0
    solver_options: dict = field(default_factory=dict)
    measurement: str = "row_sampling"

    def detect(self, frame_stack: np.ndarray) -> np.ndarray:
        """Outlier mask for each frame in a ``(frames, rows, cols)`` stack."""
        with instrument.span(
            "decode.rpca_detect", frames=int(np.asarray(frame_stack).shape[0])
        ):
            return detect_outliers(frame_stack, threshold=self.outlier_threshold)

    def reconstruct(
        self,
        corrupted: np.ndarray,
        rng: np.random.Generator,
        frame_stack: np.ndarray | None = None,
        frame_index: int = 0,
        **_,
    ) -> np.ndarray:
        """Reconstruct one frame of the stack after RPCA outlier exclusion.

        ``frame_stack`` provides the temporal context RPCA needs; when it
        is omitted the corrupted frame itself is used as a single-frame
        stack (detection quality degrades gracefully).
        """
        if frame_stack is None:
            frame_stack = np.asarray(corrupted, dtype=float)[None, ...]
            frame_index = 0
        masks = self.detect(frame_stack)
        mask = masks[frame_index]
        # Guard: if RPCA flags nearly everything, fall back to no exclusion
        # rather than starving the sampler.
        if mask.mean() > 0.5:
            mask = np.zeros_like(mask)
        return sample_and_reconstruct(
            corrupted,
            self.sampling_fraction,
            rng,
            solver=self.solver,
            exclude_mask=mask,
            noise_sigma=self.noise_sigma,
            solver_options=self.solver_options,
            measurement=self.measurement,
        )


@dataclass
class WeightedSamplingStrategy:
    """Energy-weighted sampling (extension beyond the paper).

    Uniform random sampling treats every pixel alike; when a *prior*
    frame (e.g. the previous video frame, or a calibration capture) is
    available, sampling can be biased toward informative pixels.  The
    weight of a pixel is a smoothed local-contrast estimate of the
    prior plus a uniform floor so flat regions keep coverage.

    Parameters
    ----------
    sampling_fraction, solver, noise_sigma, solver_options:
        As in the other strategies.
    uniform_floor:
        Fraction of the weight mass spread uniformly (1.0 recovers
        plain uniform sampling).
    """

    sampling_fraction: float = 0.5
    uniform_floor: float = 0.3
    solver: str = "fista"
    noise_sigma: float = 0.0
    solver_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.uniform_floor <= 1.0:
            raise ValueError("uniform_floor must be in [0, 1]")

    @staticmethod
    def weights_from_prior(prior: np.ndarray, floor: float) -> np.ndarray:
        """Local-contrast weight map from a prior frame."""
        from scipy import ndimage

        prior = np.asarray(prior, dtype=float)
        local_mean = ndimage.uniform_filter(prior, size=3)
        contrast = ndimage.uniform_filter(
            (prior - local_mean) ** 2, size=3
        )
        contrast = np.sqrt(np.maximum(contrast, 0.0))
        peak = contrast.max()
        if peak > 0:
            contrast = contrast / peak
        return floor + (1.0 - floor) * contrast

    def reconstruct(
        self,
        corrupted: np.ndarray,
        rng: np.random.Generator,
        prior: np.ndarray | None = None,
        error_mask: np.ndarray | None = None,
        **_,
    ) -> np.ndarray:
        """Reconstruct one frame with prior-weighted sampling.

        ``prior`` defaults to the corrupted frame itself (self-prior);
        ``error_mask`` pixels are excluded as in the oracle strategy.
        Runs through the engine with a weighted plan -- the
        ``weights`` field of the plan switches the sampler to
        :func:`~repro.core.sensing.weighted_sample_indices`.
        """
        corrupted = validate_decode_inputs(
            corrupted, self.sampling_fraction, self.noise_sigma
        )
        if prior is None:
            prior = corrupted
        weights = self.weights_from_prior(prior, self.uniform_floor)
        if error_mask is not None:
            error_mask = np.asarray(error_mask, dtype=bool)
            if error_mask.shape != corrupted.shape:
                raise ValueError("error_mask shape must match frame shape")
        plan = DecodeContext(
            shape=corrupted.shape,
            sampling_fraction=self.sampling_fraction,
            solver=self.solver,
            solver_options=self.solver_options,
            noise_sigma=self.noise_sigma,
            exclude_mask=error_mask,
            weights=weights,
        )
        return get_engine().decode(corrupted, plan, rng)
