"""Compressed-sensing theory helpers: Eqs. (1) and (2) of the paper.

Eq. (1) estimates the number of measurements needed to recover a
``K``-sparse signal out of ``N`` sensors::

    M ~ K * log(N / K)

Eq. (2) bounds the reconstruction error by a measurement term and an
approximation term::

    ||x_cs - x*||_2  <~  sqrt(N / M) * eps  +  ||x* - x_K||_1 / sqrt(K)

These are the quantities the EQ1/EQ2 benches sweep; the module also
provides sparsity measures and mutual coherence used in EXPERIMENTS.md's
sanity analyses.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "required_measurements",
    "recoverable_sparsity",
    "error_bound",
    "best_k_term",
    "significant_coefficients",
    "sparsity_fraction",
    "mutual_coherence",
]


def required_measurements(sparsity: int, n: int) -> int:
    """Eq. (1): ``M ~ K log(N/K)`` measurements for a K-sparse signal.

    Uses the natural logarithm and rounds up; clamped to ``[K, N]`` so the
    estimate is always physically meaningful.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 1 <= sparsity <= n:
        raise ValueError(f"sparsity must be in [1, {n}], got {sparsity}")
    estimate = int(np.ceil(sparsity * np.log(n / sparsity)))
    return int(min(max(estimate, sparsity), n))


def recoverable_sparsity(m: int, n: int) -> int:
    """Invert Eq. (1): the largest ``K`` with ``K log(N/K) <= M``.

    Used to size the greedy solvers' support when only the measurement
    budget is known.
    """
    if n < 1 or m < 1:
        raise ValueError(f"m and n must be >= 1, got m={m}, n={n}")
    best = 1
    for k in range(1, n + 1):
        if required_measurements(k, n) <= m:
            best = k
        else:
            break
    return best


def best_k_term(coefficients: np.ndarray, k: int) -> np.ndarray:
    """``x_K``: the best K-term approximation (keep K largest magnitudes)."""
    coefficients = np.asarray(coefficients, dtype=float)
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    out = np.zeros_like(coefficients)
    if k == 0:
        return out
    k = min(k, coefficients.size)
    flat = coefficients.ravel()
    keep = np.argpartition(np.abs(flat), -k)[-k:]
    out.ravel()[keep] = flat[keep]
    return out


def error_bound(
    coefficients: np.ndarray,
    m: int,
    noise: float,
    sparsity: int,
) -> dict[str, float]:
    """Evaluate the two terms of the Eq. (2) error bound.

    Parameters
    ----------
    coefficients:
        True coefficient vector ``x*`` (any shape; flattened).
    m:
        Number of measurements ``M``.
    noise:
        Measurement noise level ``eps`` -- the noise *norm* bound
        ``||e||_2 <= eps`` of the Candes/Wakin theorem (for i.i.d.
        per-sample noise of std ``sigma``, pass ``sigma * sqrt(M)``).
    sparsity:
        Approximation sparsity ``K``.

    Returns
    -------
    dict
        ``measurement_term`` = sqrt(N/M) * eps,
        ``approximation_term`` = ||x* - x_K||_1 / sqrt(K),
        ``total`` = their sum.
    """
    coefficients = np.asarray(coefficients, dtype=float).ravel()
    n = coefficients.size
    if m < 1 or m > n:
        raise ValueError(f"m must be in [1, {n}], got {m}")
    if sparsity < 1:
        raise ValueError(f"sparsity must be >= 1, got {sparsity}")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    tail = coefficients - best_k_term(coefficients, sparsity)
    measurement_term = float(np.sqrt(n / m) * noise)
    approximation_term = float(np.sum(np.abs(tail)) / np.sqrt(sparsity))
    return {
        "measurement_term": measurement_term,
        "approximation_term": approximation_term,
        "total": measurement_term + approximation_term,
    }


def significant_coefficients(
    coefficients: np.ndarray, relative_threshold: float = 1e-4
) -> int:
    """Count coefficients with ``|c| >= relative_threshold * max|c|``.

    This is the significance criterion of Fig. 2b (threshold
    ``1e-4 * max(coefficients)``).
    """
    if relative_threshold < 0:
        raise ValueError("relative_threshold must be >= 0")
    magnitudes = np.abs(np.asarray(coefficients, dtype=float)).ravel()
    peak = magnitudes.max(initial=0.0)
    if peak == 0.0:
        return 0
    return int(np.count_nonzero(magnitudes >= relative_threshold * peak))


def sparsity_fraction(
    coefficients: np.ndarray, relative_threshold: float = 1e-4
) -> float:
    """Fraction of significant coefficients (Fig. 2b, ~0.5 for body signals)."""
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.size == 0:
        raise ValueError("empty coefficient array")
    return significant_coefficients(coefficients, relative_threshold) / coefficients.size


def mutual_coherence(matrix: np.ndarray) -> float:
    """Largest absolute inner product between distinct normalised columns.

    A standard proxy for the recovery capability of a sensing matrix;
    lower is better.  Used by the sensing-matrix ablation.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] < 2:
        raise ValueError("need a 2-D matrix with at least two columns")
    norms = np.linalg.norm(matrix, axis=0)
    valid = norms > 0
    normalized = matrix[:, valid] / norms[valid]
    gram = np.abs(normalized.T @ normalized)
    np.fill_diagonal(gram, 0.0)
    return float(gram.max())
