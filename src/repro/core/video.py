"""Spatio-temporal compressed sensing over frame bursts.

The paper closes by noting that "the developed robust sensing method
has broader applications for large area sensor array" -- the most
immediate one being *video*: consecutive frames of a body-sensing array
are heavily correlated, so a burst is far sparser in a 3-D (temporal +
spatial) DCT than each frame is alone.  Jointly decoding a burst
therefore needs fewer samples per frame than frame-by-frame decoding,
or equivalently tolerates more errors at the same budget.

:class:`Dct3Basis` extends the Eq. (4)-(7) construction with a third
separable axis; :func:`reconstruct_burst` runs the joint decode with a
per-frame random ``Phi_M`` (fresh mask each frame, exactly what the
streaming encoder produces).
"""

from __future__ import annotations

import numpy as np
from scipy import fft as _fft

from .engine import get_engine
from .measurement import get_measurement
from .solvers import solve

__all__ = ["dct3", "idct3", "Dct3Basis", "reconstruct_burst"]


def dct3(volume: np.ndarray) -> np.ndarray:
    """Forward orthonormal 3-D DCT-II of a ``(frames, rows, cols)`` burst."""
    volume = np.asarray(volume, dtype=float)
    if volume.ndim != 3:
        raise ValueError(f"dct3 expects a 3-D array, got {volume.shape}")
    return _fft.dctn(volume, type=2, norm="ortho")


def idct3(coefficients: np.ndarray) -> np.ndarray:
    """Inverse orthonormal 3-D DCT-II."""
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.ndim != 3:
        raise ValueError(f"idct3 expects a 3-D array, got {coefficients.shape}")
    return _fft.idctn(coefficients, type=2, norm="ortho")


class Dct3Basis:
    """Matrix-free orthonormal 3-D DCT basis for a fixed burst shape.

    API-compatible with the 2-D bases (``synthesize`` / ``analyze`` /
    ``n``), so it plugs straight into
    :class:`~repro.core.operators.SensingOperator`.
    """

    def __init__(self, shape: tuple[int, int, int]):
        frames, rows, cols = shape
        if min(frames, rows, cols) < 1:
            raise ValueError(f"invalid burst shape {shape}")
        self.shape = (int(frames), int(rows), int(cols))
        self.n = int(frames) * int(rows) * int(cols)

    def synthesize(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x``: coefficients to the flattened burst."""
        coeffs = np.asarray(coeffs, dtype=float)
        return idct3(coeffs.reshape(self.shape)).ravel()

    def analyze(self, voxels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y``: flattened burst to coefficients."""
        voxels = np.asarray(voxels, dtype=float)
        return dct3(voxels.reshape(self.shape)).ravel()

    def to_matrix(self) -> np.ndarray:
        """Explicit ``N x N`` basis (tiny shapes only)."""
        basis = np.empty((self.n, self.n))
        unit = np.zeros(self.n)
        for j in range(self.n):
            unit[j] = 1.0
            basis[:, j] = self.synthesize(unit)
            unit[j] = 0.0
        return basis

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dct3Basis(shape={self.shape})"


def reconstruct_burst(
    burst: np.ndarray,
    sampling_fraction: float,
    rng: np.random.Generator,
    solver: str = "fista",
    exclude_masks: np.ndarray | None = None,
    noise_sigma: float = 0.0,
    solver_options: dict | None = None,
) -> np.ndarray:
    """Jointly decode a ``(frames, rows, cols)`` burst from per-frame
    random pixel samples.

    Parameters
    ----------
    burst:
        The (corrupted) measured burst; only the sampled voxels are
        used.
    sampling_fraction:
        Per-frame M/N -- the same budget a frame-by-frame decode gets.
    exclude_masks:
        Optional per-frame boolean masks of unsampleable pixels (same
        shape as ``burst``).
    noise_sigma, solver, solver_options:
        As in :func:`~repro.core.strategies.sample_and_reconstruct`.
    """
    burst = np.asarray(burst, dtype=float)
    if burst.ndim != 3:
        raise ValueError(f"expected (frames, rows, cols), got {burst.shape}")
    if not 0.0 < sampling_fraction <= 1.0:
        raise ValueError("sampling_fraction must be in (0, 1]")
    frames, rows, cols = burst.shape
    pixels = rows * cols
    model = get_measurement("row_sampling")
    voxel_indices = []
    for k in range(frames):
        exclude = None
        if exclude_masks is not None:
            mask = np.asarray(exclude_masks, dtype=bool)
            if mask.shape != burst.shape:
                raise ValueError("exclude_masks shape must match burst")
            exclude = np.flatnonzero(mask[k].ravel())
        m = max(1, int(round(sampling_fraction * pixels)))
        if exclude is not None:
            m = min(m, pixels - len(exclude))
        frame_phi = model.draw(pixels, m, rng, exclude=exclude)
        voxel_indices.append(frame_phi.indices + k * pixels)
    phi = model.from_indices(
        n=frames * pixels, indices=np.concatenate(voxel_indices)
    )
    operator = get_engine().operator(phi, burst.shape, basis="dct3")
    measurements = phi.apply(burst.ravel())
    if noise_sigma > 0:
        measurements = measurements + rng.normal(
            0.0, noise_sigma, size=measurements.shape
        )
    result = solve(solver, operator, measurements, **(solver_options or {}))
    return operator.synthesize(result.coefficients).reshape(burst.shape)
