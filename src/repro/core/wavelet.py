"""Haar wavelet sparsifying basis (the paper's DWT alternative).

Sec. 2: "we simply applied the discrete cosine transform (DCT) to these
datasets, while other suitable transformations, such as discrete
Fourier transform and discrete wavelet transform, can be applied as
well."  This module provides the simplest orthonormal DWT -- the 2-D
Haar transform -- as a drop-in alternative to
:class:`~repro.core.dct.Dct2Basis` for the decoder's synthesis basis.

The transform is the separable multi-level Haar analysis: each level
splits the current low-pass band into (LL, LH, HL, HH); levels recurse
on LL while the band size stays even.  Both directions are orthonormal,
so ``synthesize`` is the exact adjoint/inverse of ``analyze``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["haar2", "ihaar2", "Haar2Basis"]

_SQRT2 = np.sqrt(2.0)


def _haar_rows_forward(matrix: np.ndarray, size: int) -> None:
    """One analysis level along axis 0, in place on the leading block."""
    half = size // 2
    block = matrix[:size].copy()
    matrix[:half] = (block[0::2] + block[1::2]) / _SQRT2
    matrix[half:size] = (block[0::2] - block[1::2]) / _SQRT2


def _haar_rows_inverse(matrix: np.ndarray, size: int) -> None:
    """One synthesis level along axis 0, in place on the leading block."""
    half = size // 2
    low = matrix[:half].copy()
    high = matrix[half:size].copy()
    matrix[0:size:2] = (low + high) / _SQRT2
    matrix[1:size:2] = (low - high) / _SQRT2


def _levels(rows: int, cols: int, max_levels: int | None) -> int:
    levels = 0
    r, c = rows, cols
    while r % 2 == 0 and c % 2 == 0 and r >= 2 and c >= 2:
        levels += 1
        r //= 2
        c //= 2
        if max_levels is not None and levels >= max_levels:
            break
    return levels


def haar2(
    image: np.ndarray, max_levels: int | None = None
) -> np.ndarray:
    """Forward orthonormal multi-level 2-D Haar transform."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"haar2 expects a 2-D array, got {image.shape}")
    rows, cols = image.shape
    levels = _levels(rows, cols, max_levels)
    if levels == 0:
        raise ValueError(
            f"shape {image.shape} admits no Haar level (needs even dims)"
        )
    out = image.copy()
    r, c = rows, cols
    for _ in range(levels):
        _haar_rows_forward(out, r)
        out_t = np.ascontiguousarray(out.T)
        _haar_rows_forward(out_t, c)
        out = np.ascontiguousarray(out_t.T)
        r //= 2
        c //= 2
    return out


def ihaar2(
    coefficients: np.ndarray, max_levels: int | None = None
) -> np.ndarray:
    """Inverse of :func:`haar2`."""
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.ndim != 2:
        raise ValueError(
            f"ihaar2 expects a 2-D array, got {coefficients.shape}"
        )
    rows, cols = coefficients.shape
    levels = _levels(rows, cols, max_levels)
    if levels == 0:
        raise ValueError(
            f"shape {coefficients.shape} admits no Haar level (needs even dims)"
        )
    out = coefficients.copy()
    sizes = [(rows >> k, cols >> k) for k in range(levels)]
    for r, c in reversed(sizes):
        out_t = np.ascontiguousarray(out.T)
        _haar_rows_inverse(out_t, c)
        out = np.ascontiguousarray(out_t.T)
        _haar_rows_inverse(out, r)
    return out


class Haar2Basis:
    """Matrix-free orthonormal 2-D Haar basis, API-compatible with
    :class:`~repro.core.dct.Dct2Basis` (usable anywhere a ``basis`` is
    accepted by :class:`~repro.core.operators.SensingOperator`)."""

    def __init__(self, shape: tuple[int, int], max_levels: int | None = None):
        rows, cols = shape
        if rows < 2 or cols < 2:
            raise ValueError(f"invalid array shape {shape}")
        if _levels(rows, cols, max_levels) == 0:
            raise ValueError(f"shape {shape} admits no Haar level")
        self.shape = (int(rows), int(cols))
        self.n = int(rows) * int(cols)
        self.max_levels = max_levels

    def synthesize(self, coeffs: np.ndarray) -> np.ndarray:
        """``Psi @ x``: wavelet coefficients to pixel vector."""
        coeffs = np.asarray(coeffs, dtype=float)
        return ihaar2(coeffs.reshape(self.shape), self.max_levels).ravel()

    def analyze(self, pixels: np.ndarray) -> np.ndarray:
        """``Psi.T @ y``: pixel vector to wavelet coefficients."""
        pixels = np.asarray(pixels, dtype=float)
        return haar2(pixels.reshape(self.shape), self.max_levels).ravel()

    def to_matrix(self) -> np.ndarray:
        """Materialise the explicit ``N x N`` synthesis matrix."""
        basis = np.empty((self.n, self.n))
        unit = np.zeros(self.n)
        for j in range(self.n):
            unit[j] = 1.0
            basis[:, j] = self.synthesize(unit)
            unit[j] = 0.0
        return basis

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Haar2Basis(shape={self.shape})"
