"""Synthetic sensing datasets matched to the paper's Fig. 2 statistics.

Modalities: thermal hand imaging (32 x 32), body pressure maps
(41 x 41), tactile object grasps with 26 classes (32 x 32) and breast
ultrasound (100 x 33).  See DESIGN.md's substitution table for the
mapping to the paper's real datasets.
"""

from .base import (
    FrameGenerator,
    add_bandlimited_texture,
    ellipse_mask,
    gaussian_blob,
    quantize,
    smooth,
)
from .io import load_frames, load_tactile, save_frames, save_tactile
from .sparsity import SparsityStats, sorted_dct_magnitudes, sparsity_stats
from .tactile import (
    NUM_CLASSES,
    TactileDataset,
    TactileObjectGenerator,
    make_tactile_dataset,
)
from .thermal import PressureMapGenerator, ThermalHandGenerator
from .ultrasound import UltrasoundGenerator

__all__ = [
    "FrameGenerator",
    "gaussian_blob",
    "ellipse_mask",
    "smooth",
    "add_bandlimited_texture",
    "quantize",
    "ThermalHandGenerator",
    "PressureMapGenerator",
    "UltrasoundGenerator",
    "TactileObjectGenerator",
    "TactileDataset",
    "make_tactile_dataset",
    "NUM_CLASSES",
    "sorted_dct_magnitudes",
    "SparsityStats",
    "sparsity_stats",
    "save_frames",
    "load_frames",
    "save_tactile",
    "load_tactile",
]
