"""Shared machinery for the synthetic sensor-frame generators.

The paper's three public datasets are unavailable offline, so each
modality has a synthetic generator (see DESIGN.md's substitution
table).  All generators share the same recipe:

1. smooth physical *structure* (a hand's thermal footprint, an object's
   contact patches, a lesion in speckle) drawn with per-frame random
   pose/intensity variation;
2. *band-limited texture* -- small-amplitude spectral content covering
   roughly the lower half of the DCT plane, standing in for the
   sensor-noise floor of the real recordings.  Its spectral support is
   the tuning knob that matches the generators to the paper's Fig. 2b
   statistic (~50 % of DCT coefficients above 1e-4 of the maximum);
3. quantisation to the effective bit depth of the real acquisition.

Every generator is deterministic given a seed.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "gaussian_blob",
    "ellipse_mask",
    "smooth",
    "add_bandlimited_texture",
    "quantize",
    "FrameGenerator",
]


def gaussian_blob(
    shape: tuple[int, int],
    center: tuple[float, float],
    sigma: tuple[float, float],
    angle_rad: float = 0.0,
) -> np.ndarray:
    """Unit-peak anisotropic Gaussian blob.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` of the frame.
    center:
        Blob centre ``(row, col)`` in pixels (fractional allowed).
    sigma:
        ``(major, minor)`` standard deviations in pixels.
    angle_rad:
        Rotation of the major axis.
    """
    rows, cols = shape
    r, c = np.mgrid[0:rows, 0:cols].astype(float)
    dr, dc = r - center[0], c - center[1]
    cos_a, sin_a = np.cos(angle_rad), np.sin(angle_rad)
    u = cos_a * dr + sin_a * dc
    v = -sin_a * dr + cos_a * dc
    s_major = max(sigma[0], 1e-6)
    s_minor = max(sigma[1], 1e-6)
    return np.exp(-0.5 * ((u / s_major) ** 2 + (v / s_minor) ** 2))


def ellipse_mask(
    shape: tuple[int, int],
    center: tuple[float, float],
    radii: tuple[float, float],
    angle_rad: float = 0.0,
) -> np.ndarray:
    """Boolean mask of a (rotated) filled ellipse."""
    rows, cols = shape
    r, c = np.mgrid[0:rows, 0:cols].astype(float)
    dr, dc = r - center[0], c - center[1]
    cos_a, sin_a = np.cos(angle_rad), np.sin(angle_rad)
    u = cos_a * dr + sin_a * dc
    v = -sin_a * dr + cos_a * dc
    ra = max(radii[0], 1e-6)
    rb = max(radii[1], 1e-6)
    return (u / ra) ** 2 + (v / rb) ** 2 <= 1.0


def smooth(frame: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian smoothing (the physical point-spread of the sensing)."""
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0:
        return np.asarray(frame, dtype=float).copy()
    return ndimage.gaussian_filter(np.asarray(frame, dtype=float), sigma)


def add_bandlimited_texture(
    frame: np.ndarray,
    rng: np.random.Generator,
    support_fraction: float = 0.5,
    relative_amplitude: float = 2.0e-3,
) -> np.ndarray:
    """Add spectral texture over the lowest ``support_fraction`` of the
    DCT plane (radial ordering), scaled to ``relative_amplitude`` of the
    frame's peak DCT magnitude.

    This is the sensor-noise stand-in that calibrates the generators'
    Fig. 2b sparsity to the paper's ~50 %: coefficients inside the
    support sit above the 1e-4 significance threshold, those outside
    stay below it.
    """
    if not 0.0 <= support_fraction <= 1.0:
        raise ValueError("support_fraction must be in [0, 1]")
    if relative_amplitude < 0:
        raise ValueError("relative_amplitude must be >= 0")
    from scipy import fft as _fft

    frame = np.asarray(frame, dtype=float)
    coeffs = _fft.dctn(frame, type=2, norm="ortho")
    peak = np.abs(coeffs).max()
    if peak == 0.0 or relative_amplitude == 0.0:
        return frame.copy()
    rows, cols = frame.shape
    u, v = np.mgrid[0:rows, 0:cols].astype(float)
    radius = np.hypot(u / rows, v / cols)
    cutoff = np.quantile(radius.ravel(), support_fraction)
    mask = radius <= cutoff
    texture = rng.normal(0.0, 1.0, size=frame.shape) * mask
    # Mild decay inside the support so the sorted-magnitude curve falls
    # smoothly instead of plateauing.
    decay = np.exp(-2.0 * radius / max(cutoff, 1e-9))
    coeffs = coeffs + relative_amplitude * peak * texture * decay
    return _fft.idctn(coeffs, type=2, norm="ortho")


def quantize(frame: np.ndarray, bits: int = 10) -> np.ndarray:
    """Quantise a [0, 1] frame to ``bits`` of resolution (clipping first)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    levels = 2**bits - 1
    frame = np.clip(np.asarray(frame, dtype=float), 0.0, 1.0)
    return np.round(frame * levels) / levels


class FrameGenerator:
    """Base class for the per-modality generators.

    Subclasses implement :meth:`_draw_frame`; the base class handles
    seeding, batching and the shared texture/quantisation post-pass.
    """

    #: frame shape, set by subclasses
    shape: tuple[int, int] = (32, 32)
    #: spectral support of the texture pass (Fig. 2b tuning)
    texture_support: float = 0.5
    #: texture amplitude relative to the peak DCT magnitude
    texture_amplitude: float = 2.0e-3
    #: output quantisation depth
    bit_depth: int = 10

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def _draw_frame(self, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def frame(self) -> np.ndarray:
        """Generate one frame in [0, 1]."""
        raw = self._draw_frame(self._rng)
        textured = add_bandlimited_texture(
            raw,
            self._rng,
            support_fraction=self.texture_support,
            relative_amplitude=self.texture_amplitude,
        )
        return quantize(textured, self.bit_depth)

    def frames(self, count: int) -> np.ndarray:
        """Generate a ``(count, rows, cols)`` stack."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return np.stack([self.frame() for _ in range(count)])
