"""Dataset persistence: save/load frame stacks and labelled splits.

Generating a large tactile split takes seconds; persisting it as a
compressed ``.npz`` lets benches and notebooks reuse identical data
(and pins the exact frames a result was computed on).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .tactile import TactileDataset

__all__ = ["save_frames", "load_frames", "save_tactile", "load_tactile"]


def save_frames(path: str | Path, frames: np.ndarray) -> None:
    """Save a ``(count, rows, cols)`` stack as compressed npz."""
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 3:
        raise ValueError(f"expected (count, rows, cols), got {frames.shape}")
    np.savez_compressed(Path(path), frames=frames)


def load_frames(path: str | Path) -> np.ndarray:
    """Load a stack saved by :func:`save_frames`."""
    with np.load(Path(path)) as data:
        if "frames" not in data:
            raise ValueError(f"{path}: not a frame archive")
        return np.array(data["frames"], dtype=float)


def save_tactile(path: str | Path, dataset: TactileDataset) -> None:
    """Save a labelled tactile split."""
    np.savez_compressed(
        Path(path), frames=dataset.frames, labels=dataset.labels
    )


def load_tactile(path: str | Path) -> TactileDataset:
    """Load a split saved by :func:`save_tactile`."""
    with np.load(Path(path)) as data:
        if "frames" not in data or "labels" not in data:
            raise ValueError(f"{path}: not a tactile archive")
        return TactileDataset(
            frames=np.array(data["frames"], dtype=float),
            labels=np.array(data["labels"], dtype=int),
        )
