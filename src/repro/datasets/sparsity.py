"""DCT-sparsity statistics of sensing signals (Fig. 2).

Fig. 2a sorts the DCT coefficient magnitudes of one frame per modality
and shows rapid decay; Fig. 2b counts, over 100 samples per modality,
the coefficients whose magnitude is at least ``1e-4`` of the maximum,
finding ~50 % for all three body-signal types.  These functions compute
exactly those statistics for any frame source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dct import dct2
from ..core.theory import significant_coefficients, sparsity_fraction

__all__ = ["sorted_dct_magnitudes", "SparsityStats", "sparsity_stats"]


def sorted_dct_magnitudes(frame: np.ndarray, normalize: bool = True) -> np.ndarray:
    """Fig. 2a curve: descending |DCT| magnitudes of one frame.

    ``normalize`` scales by the largest magnitude so curves of
    different modalities overlay on a common axis.
    """
    coefficients = np.abs(dct2(np.asarray(frame, dtype=float))).ravel()
    coefficients = np.sort(coefficients)[::-1]
    if normalize and coefficients[0] > 0:
        coefficients = coefficients / coefficients[0]
    return coefficients


@dataclass
class SparsityStats:
    """Fig. 2b statistics over a frame stack."""

    num_frames: int
    frame_size: int
    significant_counts: np.ndarray
    fractions: np.ndarray

    @property
    def mean_fraction(self) -> float:
        """Mean significant-coefficient fraction (paper: ~0.5)."""
        return float(np.mean(self.fractions))

    @property
    def mean_count(self) -> float:
        """Mean significant-coefficient count."""
        return float(np.mean(self.significant_counts))


def sparsity_stats(
    frames: np.ndarray,
    relative_threshold: float = 1e-4,
    transform: str = "dct",
) -> SparsityStats:
    """Compute the Fig. 2b statistic for a ``(count, rows, cols)`` stack.

    A coefficient is significant when its magnitude is at least
    ``relative_threshold`` times the frame's maximum magnitude (the
    paper's criterion).

    ``transform`` selects the sparsifying transform: ``"dct"`` (the
    paper's choice) or ``"haar"`` (the DWT alternative it mentions;
    requires even frame dimensions).
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 3:
        raise ValueError(f"expected (count, rows, cols), got {frames.shape}")
    if transform == "dct":
        analyze = dct2
    elif transform == "haar":
        from ..core.wavelet import haar2

        analyze = haar2
    else:
        raise ValueError(f"unknown transform {transform!r}")
    counts = []
    fractions = []
    for frame in frames:
        coefficients = analyze(frame)
        counts.append(significant_coefficients(coefficients, relative_threshold))
        fractions.append(sparsity_fraction(coefficients, relative_threshold))
    return SparsityStats(
        num_frames=len(frames),
        frame_size=frames.shape[1] * frames.shape[2],
        significant_counts=np.array(counts),
        fractions=np.array(fractions),
    )
