"""Synthetic tactile-glove frames with 26 object classes (Fig. 6b).

Stand-in for the STAG tactile dataset of Sundaram et al. (ref [5]):
32 x 32 pressure frames recorded while grasping one of 26 objects.
Each synthetic class has a deterministic *signature* -- a set of
contact patches with class-specific positions, sizes, orientations and
relative pressures (drawn once from a class-seeded RNG) -- and each
sample adds realistic intra-class variation: global translation and
rotation jitter, per-patch pressure scaling, grip-strength scaling and
occasional missing contacts.

The classification case study needs classes that are separable on
clean frames but confusable under stuck-pixel corruption, which this
construction provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import FrameGenerator, gaussian_blob, smooth

__all__ = ["TactileObjectGenerator", "TactileDataset", "make_tactile_dataset"]

NUM_CLASSES = 26


@dataclass(frozen=True)
class _Patch:
    """One contact patch of a class signature (relative units)."""

    row: float
    col: float
    sigma_major: float
    sigma_minor: float
    angle: float
    pressure: float


class TactileObjectGenerator(FrameGenerator):
    """Frames of one object class.

    Parameters
    ----------
    class_index:
        Object id in ``[0, 26)``.
    shape:
        Frame shape (32 x 32 in the paper).
    seed:
        Sample-stream seed (the class *signature* depends only on
        ``class_index`` and ``signature_seed``, so different sample
        streams still describe the same object).
    signature_seed:
        Seed of the signature family; fixed across train/test splits.
    """

    def __init__(
        self,
        class_index: int,
        shape: tuple[int, int] = (32, 32),
        seed: int = 0,
        signature_seed: int = 1234,
    ):
        if not 0 <= class_index < NUM_CLASSES:
            raise ValueError(
                f"class_index must be in [0, {NUM_CLASSES}), got {class_index}"
            )
        super().__init__(seed=seed * NUM_CLASSES + class_index + 7919)
        rows, cols = shape
        if rows < 8 or cols < 8:
            raise ValueError("tactile frames need at least 8x8 pixels")
        self.shape = (int(rows), int(cols))
        self.class_index = int(class_index)
        self._signature = self._draw_signature(
            np.random.default_rng([signature_seed, class_index])
        )

    @staticmethod
    def _draw_signature(rng: np.random.Generator) -> list[_Patch]:
        num_patches = int(rng.integers(2, 6))
        patches = []
        for _ in range(num_patches):
            patches.append(
                _Patch(
                    row=float(rng.uniform(0.2, 0.8)),
                    col=float(rng.uniform(0.2, 0.8)),
                    sigma_major=float(rng.uniform(0.06, 0.22)),
                    sigma_minor=float(rng.uniform(0.04, 0.12)),
                    angle=float(rng.uniform(0.0, np.pi)),
                    pressure=float(rng.uniform(0.5, 1.0)),
                )
            )
        return patches

    def _draw_frame(self, rng: np.random.Generator) -> np.ndarray:
        rows, cols = self.shape
        frame = np.zeros(self.shape)
        # Intra-class variation: global pose jitter + grip strength.
        shift = rng.normal(0.0, 0.03, size=2)
        rotation = rng.normal(0.0, 0.08)
        grip = rng.uniform(0.7, 1.0)
        center = np.array([0.5, 0.5])
        cos_a, sin_a = np.cos(rotation), np.sin(rotation)
        for patch in self._signature:
            if rng.random() < 0.08:
                continue  # occasional missing contact
            rel = np.array([patch.row, patch.col]) - center
            rotated = np.array(
                [cos_a * rel[0] - sin_a * rel[1], sin_a * rel[0] + cos_a * rel[1]]
            )
            position = center + rotated + shift
            pressure = patch.pressure * grip * rng.uniform(0.85, 1.15)
            frame += pressure * gaussian_blob(
                self.shape,
                (position[0] * rows, position[1] * cols),
                (patch.sigma_major * rows, patch.sigma_minor * cols),
                patch.angle + rotation,
            )
        frame = smooth(frame, sigma=0.6)
        peak = frame.max()
        if peak > 0:
            frame = frame / max(peak, 1.0)
        return np.clip(frame, 0.0, 1.0)


@dataclass
class TactileDataset:
    """A labelled tactile dataset split."""

    frames: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.frames) != len(self.labels):
            raise ValueError("frames/labels length mismatch")

    def __len__(self) -> int:
        return len(self.frames)


def make_tactile_dataset(
    samples_per_class: int,
    shape: tuple[int, int] = (32, 32),
    seed: int = 0,
    num_classes: int = NUM_CLASSES,
    signature_seed: int = 1234,
) -> TactileDataset:
    """Generate a balanced labelled dataset across ``num_classes`` objects.

    Frames are shuffled; use different ``seed`` values for train and
    test splits (signatures stay fixed via ``signature_seed``).
    """
    if samples_per_class < 1:
        raise ValueError("samples_per_class must be >= 1")
    if not 1 <= num_classes <= NUM_CLASSES:
        raise ValueError(f"num_classes must be in [1, {NUM_CLASSES}]")
    frames = []
    labels = []
    for class_index in range(num_classes):
        generator = TactileObjectGenerator(
            class_index, shape=shape, seed=seed, signature_seed=signature_seed
        )
        frames.append(generator.frames(samples_per_class))
        labels.append(np.full(samples_per_class, class_index, dtype=int))
    all_frames = np.concatenate(frames)
    all_labels = np.concatenate(labels)
    order = np.random.default_rng([seed, 42]).permutation(len(all_frames))
    return TactileDataset(frames=all_frames[order], labels=all_labels[order])
