"""Synthetic thermal-hand frames (the Fig. 2/6a temperature modality).

Stand-in for the thermal hand-image dataset of Font-Aragones et al.
(ref [14]): 32 x 32 frames of a warm hand (palm + five fingers) over a
cooler background, with per-frame pose, spread and temperature
variation.  The default output is normalised to [0, 1]; a Celsius view
is available for the hardware-in-the-loop experiments.
"""

from __future__ import annotations

import numpy as np

from .base import FrameGenerator, gaussian_blob, smooth

__all__ = ["ThermalHandGenerator", "PressureMapGenerator"]


class ThermalHandGenerator(FrameGenerator):
    """Thermal hand imaging frames.

    Parameters
    ----------
    shape:
        Frame shape; the source dataset is 32 x 32.
    seed:
        RNG seed.
    t_background_c, t_hand_c:
        Nominal background and skin temperatures (used by
        :meth:`celsius`).
    """

    # Slightly stronger texture than the base default: thermal cameras
    # show emissivity mottle, and this level keeps the Fig. 2b fraction
    # near the paper's ~0.5 while giving frames a realistic
    # incompressible tail.  The support fraction is trimmed because the
    # hand structure itself contributes significant coefficients beyond
    # the texture band.
    texture_amplitude = 1.5e-2
    texture_support = 0.4

    def __init__(
        self,
        shape: tuple[int, int] = (32, 32),
        seed: int = 0,
        t_background_c: float = 24.0,
        t_hand_c: float = 33.0,
    ):
        super().__init__(seed=seed)
        rows, cols = shape
        if rows < 8 or cols < 8:
            raise ValueError("thermal frames need at least 8x8 pixels")
        self.shape = (int(rows), int(cols))
        self.t_background_c = float(t_background_c)
        self.t_hand_c = float(t_hand_c)

    def _draw_frame(self, rng: np.random.Generator) -> np.ndarray:
        rows, cols = self.shape
        frame = np.zeros(self.shape)
        # Palm: large blob in the lower-middle, jittered per frame.
        palm_center = (
            rows * rng.uniform(0.55, 0.7),
            cols * rng.uniform(0.42, 0.58),
        )
        palm_sigma = (rows * rng.uniform(0.14, 0.2), cols * rng.uniform(0.12, 0.17))
        frame += rng.uniform(0.85, 1.0) * gaussian_blob(
            self.shape, palm_center, palm_sigma, rng.uniform(-0.3, 0.3)
        )
        # Five fingers: elongated blobs fanning from the palm.
        spread = rng.uniform(0.5, 0.8)
        for k in range(5):
            angle = (k - 2) * 0.35 * spread + rng.normal(0.0, 0.05)
            distance = rows * rng.uniform(0.3, 0.4)
            center = (
                palm_center[0] - distance * np.cos(angle),
                palm_center[1] + distance * np.sin(angle) * 1.4,
            )
            finger_sigma = (rows * rng.uniform(0.1, 0.14), cols * rng.uniform(0.028, 0.04))
            frame += rng.uniform(0.6, 0.9) * gaussian_blob(
                self.shape, center, finger_sigma, angle
            )
        # Skin-to-ambient diffusion and a gentle ambient gradient.
        frame = smooth(frame, sigma=0.8)
        gradient = np.linspace(0.0, rng.uniform(0.0, 0.08), cols)[None, :]
        frame = frame + gradient
        background = rng.uniform(0.05, 0.12)
        frame = background + (1.0 - background) * np.clip(frame, 0.0, 1.2) / 1.2
        return np.clip(frame, 0.0, 1.0)

    def celsius(self, frame: np.ndarray) -> np.ndarray:
        """Map a normalised frame onto the Celsius scale."""
        frame = np.asarray(frame, dtype=float)
        return self.t_background_c + frame * (self.t_hand_c - self.t_background_c)


class PressureMapGenerator(FrameGenerator):
    """Synthetic 41 x 41 pressure maps (Fig. 2's middle modality).

    Broad contact regions (a palm or foot print) with localised
    pressure concentrations, the structure typical of body-contact
    pressure imaging.
    """

    def __init__(self, shape: tuple[int, int] = (41, 41), seed: int = 0):
        super().__init__(seed=seed)
        rows, cols = shape
        if rows < 8 or cols < 8:
            raise ValueError("pressure frames need at least 8x8 pixels")
        self.shape = (int(rows), int(cols))

    def _draw_frame(self, rng: np.random.Generator) -> np.ndarray:
        rows, cols = self.shape
        frame = np.zeros(self.shape)
        # Broad contact region.
        frame += rng.uniform(0.4, 0.6) * gaussian_blob(
            self.shape,
            (rows * rng.uniform(0.4, 0.6), cols * rng.uniform(0.4, 0.6)),
            (rows * rng.uniform(0.2, 0.28), cols * rng.uniform(0.16, 0.24)),
            rng.uniform(0, np.pi),
        )
        # A few pressure concentrations.
        for _ in range(rng.integers(2, 5)):
            frame += rng.uniform(0.3, 0.7) * gaussian_blob(
                self.shape,
                (rows * rng.uniform(0.2, 0.8), cols * rng.uniform(0.2, 0.8)),
                (rows * rng.uniform(0.05, 0.1), cols * rng.uniform(0.05, 0.1)),
                rng.uniform(0, np.pi),
            )
        frame = smooth(frame, sigma=0.7)
        peak = frame.max()
        if peak > 0:
            frame = frame / peak
        return np.clip(frame, 0.0, 1.0)
