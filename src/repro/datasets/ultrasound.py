"""Synthetic breast-ultrasound frames, 100 x 33 (Fig. 2's third modality).

Stand-in for the open raw-ultrasonic-signal database of
Piotrzkowska-Wroblewska et al. (ref [15]): envelope-detected RF frames
of 100 axial samples x 33 scan lines containing

* depth-dependent attenuation of the mean echo level,
* fully-developed speckle (Rayleigh-distributed magnitude with axial
  correlation from the pulse length),
* an elliptical lesion inclusion, hypo- or hyper-echoic per frame.
"""

from __future__ import annotations

import numpy as np

from .base import FrameGenerator, ellipse_mask, smooth

__all__ = ["UltrasoundGenerator"]


class UltrasoundGenerator(FrameGenerator):
    """Envelope ultrasound frames with a lesion inclusion.

    Parameters
    ----------
    shape:
        ``(axial_samples, scan_lines)``; the source database frames map
        to 100 x 33.
    seed:
        RNG seed.
    lesion_probability:
        Chance a frame contains a lesion (the database mixes benign /
        malignant / clear views).
    """

    # Speckle keeps genuine high-frequency content, so the texture
    # post-pass can stay subtle here.
    texture_amplitude = 1.0e-3

    def __init__(
        self,
        shape: tuple[int, int] = (100, 33),
        seed: int = 0,
        lesion_probability: float = 0.8,
    ):
        super().__init__(seed=seed)
        rows, cols = shape
        if rows < 16 or cols < 8:
            raise ValueError("ultrasound frames need at least 16x8 pixels")
        if not 0.0 <= lesion_probability <= 1.0:
            raise ValueError("lesion_probability must be in [0, 1]")
        self.shape = (int(rows), int(cols))
        self.lesion_probability = float(lesion_probability)

    def _draw_frame(self, rng: np.random.Generator) -> np.ndarray:
        rows, cols = self.shape
        depth = np.linspace(0.0, 1.0, rows)[:, None]
        # Attenuation: echo level decays with depth (TGC-compensated
        # only partially, as in raw RF data).
        attenuation = np.exp(-rng.uniform(0.8, 1.6) * depth)
        # Fully developed speckle: Rayleigh magnitude.
        in_phase = rng.normal(0.0, 1.0, size=self.shape)
        quadrature = rng.normal(0.0, 1.0, size=self.shape)
        speckle = np.hypot(in_phase, quadrature) / np.sqrt(2.0)
        # Axial correlation from the pulse envelope, lateral from beam width.
        speckle = smooth(speckle, sigma=1.2)
        frame = attenuation * speckle
        if rng.random() < self.lesion_probability:
            lesion = ellipse_mask(
                self.shape,
                (rows * rng.uniform(0.25, 0.7), cols * rng.uniform(0.3, 0.7)),
                (rows * rng.uniform(0.08, 0.2), cols * rng.uniform(0.12, 0.3)),
                rng.uniform(0.0, np.pi),
            )
            contrast = rng.choice([rng.uniform(0.2, 0.5), rng.uniform(1.5, 2.2)])
            soft_edge = smooth(lesion.astype(float), sigma=1.0)
            frame = frame * (1.0 + (contrast - 1.0) * soft_edge)
        peak = frame.max()
        if peak > 0:
            frame = frame / peak
        return np.clip(frame, 0.0, 1.0)
