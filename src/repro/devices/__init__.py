"""Device substrate: CNT-TFT compact model, sensors, variation, defects.

These models replace the paper's fabricated wafers (see DESIGN.md's
substitution table): the system-level experiments only need devices with
the right statistical behaviour -- linear sensing currents, log-normal
mobility spread, stuck-high/stuck-low defect modes at the reported
rates -- all of which are captured here.
"""

from .cnt_tft import NTYPE, PTYPE, CntTft, TftParameters
from .defects import DefectMap, DefectType, LineDefectMap, PixelDefect
from .stability import BiasStressModel
from .purification import PurificationChain, PurificationStep, default_chain, tft_yield
from .temperature_sensor import PtTemperatureSensor, TemperaturePixel
from .variation import VariationModel

__all__ = [
    "CntTft",
    "TftParameters",
    "PTYPE",
    "NTYPE",
    "DefectMap",
    "DefectType",
    "PixelDefect",
    "LineDefectMap",
    "PurificationChain",
    "PurificationStep",
    "default_chain",
    "tft_yield",
    "PtTemperatureSensor",
    "TemperaturePixel",
    "VariationModel",
    "BiasStressModel",
]
