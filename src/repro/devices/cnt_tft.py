"""Behavioural compact model of a carbon-nanotube thin-film transistor.

Sec. 3.3 of the paper relies on a Verilog-A behavioural CNT-TFT model
(ref [11], Shao et al., IEEE Design & Test 2019) extracted from wafer
measurements.  We implement the same class of model in Python: a
unified charge-control TFT equation with

* exponential-to-linear smoothing of the overdrive (captures the
  subthreshold region with slope ``ss``),
* smooth triode/saturation interpolation of the effective ``V_ds``,
* channel-length modulation ``lambda_``, and
* polarity handling for the p-type-only CNT process (the fabricated
  arrays are "low-enabled", Sec. 3.1).

Default parameters are calibrated to the ranges reported for the
ultrahigh-purity CNT process of ref [9] (low-voltage operation at
|V| <= 3 V, mobility of tens of cm^2/Vs, ~kHz-to-tens-of-kHz circuit
speeds on flexible substrates).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["TftParameters", "CntTft", "PTYPE", "NTYPE"]

PTYPE = "p"
NTYPE = "n"


@dataclass(frozen=True)
class TftParameters:
    """Extracted compact-model parameter set.

    Attributes
    ----------
    mobility_cm2:
        Effective carrier mobility in cm^2/(V s).
    cox_f_per_m2:
        Gate-dielectric capacitance per area (F/m^2).
    vth:
        Threshold voltage (V); negative for p-type enhancement devices.
    subthreshold_swing:
        Exponential smoothing scale of the overdrive (V); about
        ``SS_dec / ln(10)`` for a subthreshold swing of ``SS_dec``
        V/decade.
    lambda_:
        Channel-length modulation (1/V).
    saturation_knee:
        Exponent of the triode/saturation interpolation (higher =
        sharper knee).
    contact_resistance:
        Lumped source+drain contact resistance (ohm) for one device of
        width 1 um; scales inversely with width.
    leakage_a_per_um:
        Width-proportional off-state leakage floor (A/um), setting a
        realistic ~1e5-1e6 on/off ratio for CNT TFTs.
    mobility_temp_exponent:
        Power-law exponent of the mobility's temperature dependence,
        ``mu(T) = mu0 * (T/T0)^(-a)`` with T in kelvin (CNT networks
        show weakly band-like transport around room temperature).
    vth_temp_mv_per_k:
        Linear threshold drift with temperature (mV/K, signed toward
        weaker |Vth| as T rises for the p-type devices).
    reference_temp_c:
        Temperature at which the nominal parameters were extracted.
    """

    mobility_cm2: float = 25.0
    cox_f_per_m2: float = 3.0e-4
    vth: float = -0.8
    subthreshold_swing: float = 0.12
    lambda_: float = 0.05
    saturation_knee: float = 4.0
    contact_resistance: float = 5.0e3
    leakage_a_per_um: float = 1.0e-13
    mobility_temp_exponent: float = 1.0
    vth_temp_mv_per_k: float = 1.0
    reference_temp_c: float = 25.0

    def __post_init__(self) -> None:
        if self.mobility_cm2 <= 0:
            raise ValueError("mobility must be positive")
        if self.cox_f_per_m2 <= 0:
            raise ValueError("cox must be positive")
        if self.subthreshold_swing <= 0:
            raise ValueError("subthreshold swing must be positive")
        if self.saturation_knee <= 0:
            raise ValueError("saturation knee must be positive")
        if self.contact_resistance < 0:
            raise ValueError("contact resistance must be >= 0")
        if self.leakage_a_per_um < 0:
            raise ValueError("leakage must be >= 0")

    def with_variation(self, mobility_scale: float, vth_shift: float) -> "TftParameters":
        """Return a device-specific copy (used by the variation model)."""
        return replace(
            self,
            mobility_cm2=self.mobility_cm2 * mobility_scale,
            vth=self.vth + vth_shift,
        )

    def at_temperature(self, temperature_c: float) -> "TftParameters":
        """Parameter set re-evaluated at an operating temperature.

        Applies the power-law mobility scaling and the linear threshold
        drift relative to ``reference_temp_c``.  Used by self-heating /
        environment studies; the channel sits at the substrate
        temperature for the thin, low-power flexible stack.
        """
        t_kelvin = temperature_c + 273.15
        t0_kelvin = self.reference_temp_c + 273.15
        if t_kelvin <= 0:
            raise ValueError("temperature below absolute zero")
        scale = (t_kelvin / t0_kelvin) ** (-self.mobility_temp_exponent)
        # p-type Vth drifts toward zero (weaker) as T rises; n-type the
        # mirror direction.
        direction = 1.0 if self.vth <= 0 else -1.0
        delta_vth = (
            direction * self.vth_temp_mv_per_k * 1e-3
            * (temperature_c - self.reference_temp_c)
        )
        return replace(
            self,
            mobility_cm2=self.mobility_cm2 * scale,
            vth=self.vth + delta_vth,
        )


class CntTft:
    """One CNT TFT instance with fixed geometry and parameters.

    Parameters
    ----------
    width_um, length_um:
        Drawn channel width and length in micrometres (the paper's pixel
        device is W/L = 500/25 um; logic devices use L = 10 um).
    parameters:
        Compact-model parameters (defaults: the calibrated p-type set).
    polarity:
        ``"p"`` (the CNT process) or ``"n"`` (for model completeness).
    """

    def __init__(
        self,
        width_um: float = 50.0,
        length_um: float = 10.0,
        parameters: TftParameters | None = None,
        polarity: str = PTYPE,
    ):
        if width_um <= 0 or length_um <= 0:
            raise ValueError("width and length must be positive")
        if polarity not in (PTYPE, NTYPE):
            raise ValueError(f"polarity must be 'p' or 'n', got {polarity!r}")
        self.width_um = float(width_um)
        self.length_um = float(length_um)
        self.parameters = parameters if parameters is not None else TftParameters()
        self.polarity = polarity

    @property
    def _gain_factor(self) -> float:
        """``mu * Cox * W / L`` in A/V^2."""
        p = self.parameters
        mobility = p.mobility_cm2 * 1e-4  # cm^2/Vs -> m^2/Vs
        return mobility * p.cox_f_per_m2 * (self.width_um / self.length_um)

    def _effective_overdrive(self, vgs: np.ndarray) -> np.ndarray:
        """Smoothly clipped overdrive |Vgs - Vth| (0 when off)."""
        p = self.parameters
        if self.polarity == PTYPE:
            ov = -(vgs - p.vth)  # p-type conducts for Vgs below Vth
        else:
            ov = vgs - p.vth
        s = p.subthreshold_swing
        # softplus: s * ln(1 + exp(ov / s)), numerically stable
        scaled = ov / s
        return s * np.where(
            scaled > 30.0, scaled, np.log1p(np.exp(np.minimum(scaled, 30.0)))
        )

    def drain_current(self, vgs, vds):
        """Drain current in amperes for terminal voltages in volts.

        Sign convention: for p-type devices the current returned is the
        source-to-drain current (positive when ``vds < 0`` and the
        device is on), matching the usual |Id| plots; for n-type it is
        the conventional drain current (positive for ``vds > 0``).
        Accepts scalars or broadcastable arrays.
        """
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        p = self.parameters
        if self.polarity == PTYPE:
            vds_mag = np.maximum(-vds, 0.0)
        else:
            vds_mag = np.maximum(vds, 0.0)
        overdrive = self._effective_overdrive(vgs)
        vdsat = np.maximum(overdrive, 1e-12)
        knee = p.saturation_knee
        vds_eff = vds_mag / (1.0 + (vds_mag / vdsat) ** knee) ** (1.0 / knee)
        current = (
            self._gain_factor
            * (overdrive - 0.5 * vds_eff)
            * vds_eff
            * (1.0 + p.lambda_ * vds_mag)
        )
        current = self._apply_contact_resistance(current, vds_mag)
        # Off-state leakage floor: proportional to width and |Vds|
        # (normalised to 1 V), dominating once the channel is off.
        leakage = p.leakage_a_per_um * self.width_um * vds_mag
        current = current + leakage
        if current.ndim == 0:
            return float(current)
        return current

    def _apply_contact_resistance(
        self, current: np.ndarray, vds_mag: np.ndarray
    ) -> np.ndarray:
        """First-order contact-resistance degradation of the current."""
        p = self.parameters
        if p.contact_resistance == 0.0:
            return current
        r_contact = p.contact_resistance / self.width_um
        # Id' = Id / (1 + Id * Rc / Vds): series resistor absorbed to
        # first order; guard the Vds -> 0 limit.
        safe_vds = np.maximum(vds_mag, 1e-9)
        return current / (1.0 + current * r_contact / safe_vds)

    def on_resistance(self, vgs: float, vds_probe: float = 0.05) -> float:
        """Linear-region resistance (ohm) at a small |Vds| probe."""
        if vds_probe <= 0:
            raise ValueError("vds_probe must be positive")
        probe = -vds_probe if self.polarity == PTYPE else vds_probe
        current = self.drain_current(vgs, probe)
        if current <= 0:
            return float("inf")
        return vds_probe / current

    def transconductance(self, vgs: float, vds: float, delta: float = 1e-4) -> float:
        """Numerical ``gm = dId/dVgs`` (A/V)."""
        hi = self.drain_current(vgs + delta, vds)
        lo = self.drain_current(vgs - delta, vds)
        return float((hi - lo) / (2.0 * delta))

    def output_conductance(self, vgs: float, vds: float, delta: float = 1e-4) -> float:
        """Numerical ``gds = d|Id|/d|Vds|`` (A/V)."""
        sign = -1.0 if self.polarity == PTYPE else 1.0
        hi = self.drain_current(vgs, vds + sign * delta)
        lo = self.drain_current(vgs, vds - sign * delta)
        return float(abs(hi - lo) / (2.0 * delta))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CntTft(W/L={self.width_um:g}/{self.length_um:g} um, "
            f"{self.polarity}-type, Vth={self.parameters.vth:+.2f} V)"
        )
