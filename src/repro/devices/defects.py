"""Device defect taxonomy and array-level defect maps.

The paper distinguishes (Sec. 4.2) *permanent* device defects --
detectable by production testing, manifesting as pixels stuck at "very
high or almost zero currents" -- from *transient* errors that strike at
run time.  This module provides:

* :class:`DefectType` -- the failure modes of a CNT-TFT pixel;
* :class:`PixelDefect` -- a located defect instance;
* :class:`DefectMap` -- a per-array defect census with sampling from a
  yield model and conversion to the stuck-pixel masks consumed by
  :mod:`repro.core.errors`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DefectType", "PixelDefect", "DefectMap", "LineDefectMap"]


class DefectType(enum.Enum):
    """Failure modes of an active-matrix pixel.

    ``METALLIC_SHORT``
        A metallic CNT bridges source/drain: the access TFT never turns
        off, the pixel reads a very high current (sticks near 1 after
        normalisation).
    ``OPEN_CHANNEL``
        Missing tubes / broken electrode: no conduction, the pixel reads
        almost zero current (sticks near 0).
    ``GATE_LEAK``
        Dielectric pinhole: unreliable, modelled as stuck high.
    """

    METALLIC_SHORT = "metallic_short"
    OPEN_CHANNEL = "open_channel"
    GATE_LEAK = "gate_leak"

    @property
    def stuck_value(self) -> float:
        """Normalised reading the defect forces on its pixel."""
        if self is DefectType.OPEN_CHANNEL:
            return 0.0
        return 1.0


@dataclass(frozen=True)
class PixelDefect:
    """One defect at array position ``(row, col)``."""

    row: int
    col: int
    kind: DefectType

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ValueError("defect position must be non-negative")


@dataclass
class DefectMap:
    """The defect census of one fabricated array.

    Attributes
    ----------
    shape:
        ``(rows, cols)`` of the array.
    defects:
        The located defects.
    """

    shape: tuple[int, int]
    defects: list[PixelDefect] = field(default_factory=list)

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid array shape {self.shape}")
        for defect in self.defects:
            if defect.row >= rows or defect.col >= cols:
                raise ValueError(f"defect {defect} outside array {self.shape}")

    @classmethod
    def sample(
        cls,
        shape: tuple[int, int],
        defect_rate: float,
        rng: np.random.Generator,
        type_weights: dict[DefectType, float] | None = None,
    ) -> "DefectMap":
        """Draw a random defect map with the given per-pixel defect rate.

        ``type_weights`` sets the relative frequency of each failure
        mode; the default splits defects evenly between shorts and opens
        with a small gate-leak tail (shorts and opens dominate in the
        paper's measurements).
        """
        if not 0.0 <= defect_rate <= 1.0:
            raise ValueError("defect_rate must be in [0, 1]")
        if type_weights is None:
            type_weights = {
                DefectType.METALLIC_SHORT: 0.45,
                DefectType.OPEN_CHANNEL: 0.45,
                DefectType.GATE_LEAK: 0.10,
            }
        kinds = list(type_weights)
        weights = np.array([type_weights[k] for k in kinds], dtype=float)
        if np.any(weights < 0) or weights.sum() == 0:
            raise ValueError("type_weights must be non-negative and non-zero")
        weights = weights / weights.sum()
        rows, cols = shape
        n = rows * cols
        count = int(round(defect_rate * n))
        defects: list[PixelDefect] = []
        if count > 0:
            positions = rng.choice(n, size=count, replace=False)
            drawn = rng.choice(len(kinds), size=count, p=weights)
            defects = [
                PixelDefect(int(pos // cols), int(pos % cols), kinds[k])
                for pos, k in zip(positions, drawn)
            ]
        return cls(shape=shape, defects=defects)

    @property
    def defect_rate(self) -> float:
        """Fraction of defective pixels."""
        rows, cols = self.shape
        return len(self.defects) / (rows * cols)

    @property
    def array_yield(self) -> float:
        """Fraction of working pixels."""
        return 1.0 - self.defect_rate

    def mask(self) -> np.ndarray:
        """Boolean defect mask, True at defective pixels."""
        out = np.zeros(self.shape, dtype=bool)
        for defect in self.defects:
            out[defect.row, defect.col] = True
        return out

    def stuck_values(self) -> np.ndarray:
        """Per-pixel stuck reading (NaN for healthy pixels)."""
        out = np.full(self.shape, np.nan)
        for defect in self.defects:
            out[defect.row, defect.col] = defect.kind.stuck_value
        return out

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Overwrite defective pixels of ``frame`` with their stuck values."""
        frame = np.asarray(frame, dtype=float)
        if frame.shape != self.shape:
            raise ValueError(
                f"frame shape {frame.shape} does not match map {self.shape}"
            )
        out = frame.copy()
        for defect in self.defects:
            out[defect.row, defect.col] = defect.kind.stuck_value
        return out

    def counts_by_type(self) -> dict[DefectType, int]:
        """Histogram of defect kinds."""
        counts = {kind: 0 for kind in DefectType}
        for defect in self.defects:
            counts[defect.kind] += 1
        return counts


@dataclass
class LineDefectMap(DefectMap):
    """Structured defects: whole stuck rows/columns.

    A broken row-select line or column readout trace kills an entire
    line of pixels at once -- the *structured* failure mode of the
    active matrix (as opposed to the random per-pixel defects of
    :meth:`DefectMap.sample`).  Structured errors concentrate in a few
    DCT rows/columns, so they stress the CS reconstruction differently
    from the same number of random errors.
    """

    @classmethod
    def sample_lines(
        cls,
        shape: tuple[int, int],
        num_rows: int,
        num_cols: int,
        rng: np.random.Generator,
        kind: DefectType = DefectType.OPEN_CHANNEL,
    ) -> "LineDefectMap":
        """Draw ``num_rows`` stuck rows and ``num_cols`` stuck columns."""
        rows, cols = shape
        if not 0 <= num_rows <= rows or not 0 <= num_cols <= cols:
            raise ValueError("line counts exceed the array dimensions")
        defects: list[PixelDefect] = []
        seen: set[tuple[int, int]] = set()
        dead_rows = rng.choice(rows, size=num_rows, replace=False) if num_rows else []
        dead_cols = rng.choice(cols, size=num_cols, replace=False) if num_cols else []
        for r in dead_rows:
            for c in range(cols):
                if (int(r), c) not in seen:
                    seen.add((int(r), c))
                    defects.append(PixelDefect(int(r), c, kind))
        for c in dead_cols:
            for r in range(rows):
                if (r, int(c)) not in seen:
                    seen.add((r, int(c)))
                    defects.append(PixelDefect(r, int(c), kind))
        return cls(shape=shape, defects=defects)

    @property
    def dead_rows(self) -> list[int]:
        """Rows that are completely defective."""
        rows, cols = self.shape
        mask = self.mask()
        return [r for r in range(rows) if mask[r].all()]

    @property
    def dead_cols(self) -> list[int]:
        """Columns that are completely defective."""
        rows, cols = self.shape
        mask = self.mask()
        return [c for c in range(cols) if mask[:, c].all()]
