"""Semiconducting-CNT purification and TFT-yield model.

Sec. 3.2: as-grown CNT mixtures contain metallic (m-) tubes that short
the channel, so the process applies

1. **polymer sorting** -- conjugated-polymer wrapping selectively
   disperses s-CNTs (ref [24]), reaching >99.99 % s-purity, then
2. **a second centrifugation** after 24 h cold storage (4 C), removing
   aggregated m-CNT/polymer complexes and reaching >99.997 % purity,

which translates into >99.9 % working TFTs over >5000 measured devices.

The model here captures the arithmetic of that chain: each step removes
a fraction of the *remaining* metallic tubes, and a device fails when at
least one metallic tube bridges its channel (a percolation-free,
independent-tube approximation that matches the quoted numbers well for
the low impurity levels involved).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PurificationStep", "PurificationChain", "tft_yield"]


@dataclass(frozen=True)
class PurificationStep:
    """One purification pass.

    Attributes
    ----------
    name:
        Human-readable step name.
    metallic_removal:
        Fraction of remaining metallic tubes removed, in ``[0, 1)``.
    semiconducting_loss:
        Fraction of semiconducting tubes lost as collateral, in
        ``[0, 1)`` (affects material efficiency, not purity much).
    """

    name: str
    metallic_removal: float
    semiconducting_loss: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.metallic_removal < 1.0:
            raise ValueError("metallic_removal must be in [0, 1)")
        if not 0.0 <= self.semiconducting_loss < 1.0:
            raise ValueError("semiconducting_loss must be in [0, 1)")


def default_chain() -> "PurificationChain":
    """The paper's two-step chain, calibrated to its quoted purities.

    Starting from a typical as-grown 2:1 s:m mixture (66.7 % purity),
    polymer sorting reaching 99.99 % requires removing ~99.98 % of the
    metallic tubes; the second centrifugation (24 h at 4 C) removing a
    further ~70 % of what remains lands at ~99.997 %.
    """
    return PurificationChain(
        initial_purity=2.0 / 3.0,
        steps=(
            PurificationStep("polymer sorting", metallic_removal=0.99986,
                             semiconducting_loss=0.30),
            PurificationStep("second centrifugation (24 h, 4 C)",
                             metallic_removal=0.715,
                             semiconducting_loss=0.05),
        ),
    )


@dataclass(frozen=True)
class PurificationChain:
    """A sequence of purification steps applied to a CNT dispersion.

    Attributes
    ----------
    initial_purity:
        s-CNT fraction of the as-grown material, in ``(0, 1]``.
    steps:
        Ordered purification passes.
    """

    initial_purity: float
    steps: tuple[PurificationStep, ...]

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_purity <= 1.0:
            raise ValueError("initial_purity must be in (0, 1]")

    def purity_after(self, num_steps: int | None = None) -> float:
        """s-CNT purity after the first ``num_steps`` passes (all by default)."""
        steps = self.steps if num_steps is None else self.steps[:num_steps]
        semiconducting = self.initial_purity
        metallic = 1.0 - self.initial_purity
        for step in steps:
            metallic *= 1.0 - step.metallic_removal
            semiconducting *= 1.0 - step.semiconducting_loss
        total = semiconducting + metallic
        if total == 0.0:
            return 1.0
        return semiconducting / total

    def final_purity(self) -> float:
        """Purity after the whole chain."""
        return self.purity_after()

    def material_efficiency(self) -> float:
        """Fraction of the starting s-CNT material that survives."""
        remaining = 1.0
        for step in self.steps:
            remaining *= 1.0 - step.semiconducting_loss
        return remaining


def tft_yield(purity: float, tubes_per_channel: float) -> float:
    """Probability that a TFT channel contains no metallic tube.

    With impurity ``q = 1 - purity`` and ``n`` tubes bridging the
    channel, the independent-tube model gives ``yield = (1 - q)^n``.
    At the paper's 99.997 % purity and a typical ~30 bridging tubes this
    evaluates to ~99.9 %, matching the quoted device yield.
    """
    if not 0.0 <= purity <= 1.0:
        raise ValueError("purity must be in [0, 1]")
    if tubes_per_channel < 0:
        raise ValueError("tubes_per_channel must be >= 0")
    return float(purity**tubes_per_channel)
