"""Bias-stress instability model for CNT TFTs.

The paper's motivation (Sec. 1) lists *stability* alongside yield and
defects among the failure mechanisms of flexible devices: prolonged
gate bias shifts the threshold voltage as carriers trap in the
dielectric and at the CNT/dielectric interface, and the shift partially
recovers when the bias is removed.

The standard empirical description is the **stretched exponential**
(Libsch & Kanicki):

    dVth(t) = dVth_max * (1 - exp(-(t / tau)^beta))        (stress)
    dVth(t) = dVth_0  * exp(-(t / tau_r)^beta)             (recovery)

with ``dVth_max`` proportional to the gate overdrive.  The model
tracks the accumulated shift across arbitrary stress/recovery episodes
and produces updated :class:`~repro.devices.cnt_tft.TftParameters`, so
system experiments can inject *drift* (slow, correlated errors) as
opposed to the stuck-pixel defects of :mod:`repro.devices.defects`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .cnt_tft import TftParameters

__all__ = ["BiasStressModel"]


@dataclass
class BiasStressModel:
    """Stretched-exponential bias-stress drift.

    Attributes
    ----------
    tau_s:
        Characteristic trapping time (seconds).
    tau_recovery_s:
        Characteristic de-trapping time (usually much longer).
    beta:
        Stretch exponent, typically 0.3-0.6 for disordered dielectrics.
    shift_per_volt:
        Saturated |Vth| shift per volt of gate overdrive beyond
        threshold (the p-type shift is negative: the device gets harder
        to turn on).
    """

    tau_s: float = 1.0e4
    tau_recovery_s: float = 1.0e5
    beta: float = 0.4
    shift_per_volt: float = 0.05

    def __post_init__(self) -> None:
        if self.tau_s <= 0 or self.tau_recovery_s <= 0:
            raise ValueError("time constants must be positive")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if self.shift_per_volt < 0:
            raise ValueError("shift_per_volt must be >= 0")
        self._shift_v = 0.0

    @property
    def accumulated_shift_v(self) -> float:
        """Current |Vth| shift magnitude (volts)."""
        return self._shift_v

    def _saturation_shift(self, overdrive_v: float) -> float:
        return self.shift_per_volt * max(overdrive_v, 0.0)

    def stress(self, overdrive_v: float, duration_s: float) -> float:
        """Apply a gate-stress episode; returns the new shift (V).

        ``overdrive_v`` is |Vgs - Vth| during the stress.  Uses the
        time-shift composition: the current state maps to an effective
        elapsed time on the new episode's curve, so episodes compose
        consistently.
        """
        if duration_s < 0:
            raise ValueError("duration must be >= 0")
        saturation = self._saturation_shift(overdrive_v)
        if saturation <= 0 or duration_s == 0:
            return self._shift_v
        start_fraction = min(self._shift_v / saturation, 1.0 - 1e-12)
        # invert the stretched exponential for the effective start time
        t_equivalent = self.tau_s * (-np.log(1.0 - start_fraction)) ** (
            1.0 / self.beta
        )
        t_total = t_equivalent + duration_s
        fraction = 1.0 - np.exp(-((t_total / self.tau_s) ** self.beta))
        self._shift_v = saturation * fraction
        return self._shift_v

    def recover(self, duration_s: float) -> float:
        """Apply an unbiased recovery episode; returns the new shift."""
        if duration_s < 0:
            raise ValueError("duration must be >= 0")
        self._shift_v *= float(
            np.exp(-((duration_s / self.tau_recovery_s) ** self.beta))
        )
        return self._shift_v

    def duty_cycled(
        self,
        overdrive_v: float,
        period_s: float,
        duty: float,
        cycles: int,
    ) -> float:
        """Alternate stress/recovery for ``cycles`` periods.

        Models the scan duty cycle of an active-matrix driver (a row is
        stressed only while selected), returning the final shift.
        """
        if not 0.0 <= duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")
        if period_s <= 0 or cycles < 1:
            raise ValueError("need positive period and >= 1 cycle")
        for _ in range(cycles):
            self.stress(overdrive_v, duty * period_s)
            self.recover((1.0 - duty) * period_s)
        return self._shift_v

    def apply(self, parameters: TftParameters) -> TftParameters:
        """Updated parameter set with the accumulated shift applied.

        For the p-type devices the threshold moves further negative
        (harder to turn on); an n-type parameter set (positive Vth)
        moves further positive.
        """
        direction = -1.0 if parameters.vth <= 0 else 1.0
        return replace(parameters, vth=parameters.vth + direction * self._shift_v)

    def reset(self) -> None:
        """Forget all accumulated stress."""
        self._shift_v = 0.0
