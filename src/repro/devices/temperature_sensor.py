"""Platinum temperature sensor and active-matrix pixel model (Fig. 5b).

Each pixel of the fabricated temperature array is a platinum (Pt)
resistive sensor in series with a large CNT access TFT (W/L = 500/25 um)
biased in its linear region; Sec. 3.4 emphasises that this keeps the
sensed current linear in temperature so "the current maps to temperature
accurately".  The word line (V_WL = 1 V keeps the p-type access device
off; lowering it turns the low-enabled pixel on) selects the pixel, and
the bit line (V_BL = 0 V) carries the read current.

The Pt resistor follows the standard RTD law ``R(T) = R0 (1 + alpha
(T - T0))`` with alpha = 3.9e-3 / K.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cnt_tft import CntTft, TftParameters

__all__ = ["PtTemperatureSensor", "TemperaturePixel"]


@dataclass(frozen=True)
class PtTemperatureSensor:
    """Platinum RTD: linear resistance-temperature characteristic.

    Attributes
    ----------
    r0_ohm:
        Resistance at the reference temperature.
    t0_celsius:
        Reference temperature.
    alpha_per_k:
        Temperature coefficient of resistance (3.9e-3 /K for Pt).
    """

    r0_ohm: float = 1.0e4
    t0_celsius: float = 25.0
    alpha_per_k: float = 3.9e-3

    def __post_init__(self) -> None:
        if self.r0_ohm <= 0:
            raise ValueError("r0_ohm must be positive")
        if self.alpha_per_k <= 0:
            raise ValueError("alpha_per_k must be positive")

    def resistance(self, temperature_c):
        """Resistance (ohm) at the given temperature(s) in Celsius."""
        temperature_c = np.asarray(temperature_c, dtype=float)
        r = self.r0_ohm * (1.0 + self.alpha_per_k * (temperature_c - self.t0_celsius))
        r = np.maximum(r, 1e-3)
        if r.ndim == 0:
            return float(r)
        return r

    def temperature(self, resistance_ohm):
        """Invert :meth:`resistance` (Celsius)."""
        resistance_ohm = np.asarray(resistance_ohm, dtype=float)
        t = self.t0_celsius + (resistance_ohm / self.r0_ohm - 1.0) / self.alpha_per_k
        if t.ndim == 0:
            return float(t)
        return t


class TemperaturePixel:
    """One active-matrix pixel: Pt sensor + p-type CNT access TFT.

    Parameters
    ----------
    sensor:
        The Pt RTD model.
    access_tft:
        The access device; defaults to the paper's W/L = 500/25 um TFT.
    read_voltage:
        Bias across the sensor/TFT series stack during a read (V).
    """

    def __init__(
        self,
        sensor: PtTemperatureSensor | None = None,
        access_tft: CntTft | None = None,
        read_voltage: float = 1.0,
    ):
        if read_voltage <= 0:
            raise ValueError("read_voltage must be positive")
        self.sensor = sensor if sensor is not None else PtTemperatureSensor()
        self.access_tft = (
            access_tft
            if access_tft is not None
            else CntTft(width_um=500.0, length_um=25.0)
        )
        self.read_voltage = float(read_voltage)

    def on_resistance(self, word_line_v: float = -3.0) -> float:
        """Access-TFT linear-region resistance at the given WL voltage.

        The pixel is low-enabled: driving the word line low turns the
        p-type access device on (Vgs = word_line_v with source at 0 V).
        """
        return self.access_tft.on_resistance(word_line_v)

    def read_current(self, temperature_c, word_line_v: float = -3.0):
        """Pixel read current (A) for the given temperature(s).

        The series stack carries ``I = V_read / (R_pt(T) + R_on)``.
        Because both resistances are (locally) constant in current, the
        characteristic is a smooth, nearly linear map of temperature --
        the Fig. 5b linearity.
        """
        r_on = self.on_resistance(word_line_v)
        r_pt = self.sensor.resistance(temperature_c)
        current = self.read_voltage / (r_pt + r_on)
        return current

    def off_current(self, temperature_c, word_line_v: float = 1.0) -> float:
        """Leakage through a deselected pixel (V_WL = +1 V keeps it off)."""
        r_off = self.access_tft.on_resistance(word_line_v)
        r_pt = float(np.max(self.sensor.resistance(temperature_c)))
        if np.isinf(r_off):
            return 0.0
        return self.read_voltage / (r_pt + r_off)

    def temperature_from_current(self, current_a, word_line_v: float = -3.0):
        """Invert :meth:`read_current`: map measured current to Celsius."""
        current_a = np.asarray(current_a, dtype=float)
        if np.any(current_a <= 0):
            raise ValueError("read current must be positive to invert")
        r_on = self.on_resistance(word_line_v)
        r_pt = self.read_voltage / current_a - r_on
        return self.sensor.temperature(r_pt)

    def linearity_error(
        self, t_low: float = 20.0, t_high: float = 100.0, points: int = 50
    ) -> float:
        """Max relative deviation of I(T) from its best straight line.

        Fig. 5b's "great linearity" claim, quantified: values well below
        1 % for the default stack.
        """
        temps = np.linspace(t_low, t_high, points)
        currents = self.read_current(temps)
        fit = np.polynomial.polynomial.polyfit(temps, currents, 1)
        predicted = np.polynomial.polynomial.polyval(temps, fit)
        return float(np.max(np.abs(currents - predicted)) / np.ptp(currents))
