"""Device-to-device variation model for the flexible CNT process.

Sec. 1 attributes the robustness problem to "large device variation,
device defects and transient errors".  This module provides the
variation part: per-device mobility and threshold-voltage draws plus an
optional slow spatial gradient across the substrate (solution-processed
films dry non-uniformly, producing wafer-scale trends).

The model is deliberately simple and fully seeded so experiments are
reproducible: log-normal mobility scaling (multiplicative process
variation) and Gaussian ``Vth`` shifts, both optionally modulated by a
linear + sinusoidal spatial gradient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cnt_tft import TftParameters

__all__ = ["VariationModel"]


@dataclass
class VariationModel:
    """Samples per-device parameter sets around a nominal corner.

    Parameters
    ----------
    mobility_sigma:
        Std-dev of ``ln(mobility scale)``; 0 disables mobility spread.
    vth_sigma:
        Std-dev of the threshold shift in volts.
    gradient_strength:
        Peak-to-peak relative mobility change across the substrate due
        to the slow spatial gradient (0 disables).
    seed:
        RNG seed.
    """

    mobility_sigma: float = 0.10
    vth_sigma: float = 0.05
    gradient_strength: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mobility_sigma < 0 or self.vth_sigma < 0:
            raise ValueError("variation sigmas must be >= 0")
        if self.gradient_strength < 0:
            raise ValueError("gradient_strength must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def sample(self, nominal: TftParameters) -> TftParameters:
        """Draw one device's parameters (no spatial information)."""
        scale = float(np.exp(self._rng.normal(0.0, self.mobility_sigma)))
        shift = float(self._rng.normal(0.0, self.vth_sigma))
        return nominal.with_variation(scale, shift)

    def sample_array(
        self, nominal: TftParameters, shape: tuple[int, int]
    ) -> list[list[TftParameters]]:
        """Draw a full array of per-pixel parameter sets.

        The spatial gradient (if enabled) multiplies the mobility by
        ``1 + g * (u - 0.5)`` along the slow axis plus a weak sinusoid
        along the fast axis, mimicking coating-direction non-uniformity.
        """
        rows, cols = shape
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid array shape {shape}")
        scales = np.exp(self._rng.normal(0.0, self.mobility_sigma, size=shape))
        shifts = self._rng.normal(0.0, self.vth_sigma, size=shape)
        if self.gradient_strength > 0:
            u = np.linspace(0.0, 1.0, rows)[:, None]
            v = np.linspace(0.0, 1.0, cols)[None, :]
            gradient = 1.0 + self.gradient_strength * (
                (u - 0.5) + 0.25 * np.sin(2.0 * np.pi * v)
            )
            scales = scales * gradient
        return [
            [
                nominal.with_variation(float(scales[r, c]), float(shifts[r, c]))
                for c in range(cols)
            ]
            for r in range(rows)
        ]
