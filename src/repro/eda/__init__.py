"""EDA flow for the CNT-TFT technology (Sec. 3.3).

Layout geometry + rule deck + DRC + extraction + LVS + compact-model
parameter extraction + cell characterisation: the "customized physical
verification scripts" and Verilog-A-model calibration the paper's
design methodology rests on.
"""

from .cells import inverter_chain_layout, inverter_layout, tft_layout
from .characterize import (
    DelayPoint,
    FitResult,
    calibrate_cell_library,
    characterize_inverter,
    characterize_nand2,
    extract_parameters,
)
from .drc import DrcReport, DrcViolation, run_drc
from .extract import ExtractedDevice, ExtractedNetlist, ExtractionError, extract
from .layout import Layout, MaskLayer, Rect, Shape
from .gds import LayoutFormatError, dump_layout, load_layout
from .lvs import LvsResult, compare, extracted_graph, schematic_graph
from .techfile import DesignRules, default_cnt_rules

__all__ = [
    "Layout",
    "MaskLayer",
    "Rect",
    "Shape",
    "DesignRules",
    "default_cnt_rules",
    "DrcReport",
    "DrcViolation",
    "run_drc",
    "ExtractedDevice",
    "ExtractedNetlist",
    "ExtractionError",
    "extract",
    "LvsResult",
    "compare",
    "schematic_graph",
    "extracted_graph",
    "tft_layout",
    "inverter_layout",
    "inverter_chain_layout",
    "dump_layout",
    "load_layout",
    "LayoutFormatError",
    "DelayPoint",
    "FitResult",
    "extract_parameters",
    "characterize_inverter",
    "characterize_nand2",
    "calibrate_cell_library",
]
