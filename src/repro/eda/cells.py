"""Parameterised layout generators (PCells) for the CNT process.

Generates DRC-clean layouts that the extraction/LVS flow verifies:

* :func:`tft_layout` -- one bottom-gate TFT: gate bar, CNT island
  extending past the gate, source/drain electrodes;
* :func:`inverter_layout` -- the 4-TFT pseudo-D inverter with labelled
  supply/input/output nets, matching
  :func:`repro.circuits.pseudo_cmos.build_inverter`.

All generators snap to the rule deck's manufacturing grid.
"""

from __future__ import annotations

from .layout import Layout, MaskLayer
from .techfile import DesignRules, default_cnt_rules

__all__ = ["tft_layout", "inverter_layout", "inverter_chain_layout"]


def _snap(value: float, grid: float) -> float:
    return round(value / grid) * grid


def tft_layout(
    width_um: float = 50.0,
    length_um: float = 10.0,
    rules: DesignRules | None = None,
    name: str = "tft",
    gate_net: str = "G",
    source_net: str = "S",
    drain_net: str = "D",
    origin: tuple[float, float] = (0.0, 0.0),
    layout: Layout | None = None,
) -> Layout:
    """Draw one bottom-gate CNT TFT (channel along x).

    The gate bar runs vertically (its width is the channel length);
    the CNT island crosses it horizontally, overhanging by the deck's
    channel-overlap rule; source/drain electrodes land on the CNT
    overhangs.
    """
    rules = rules or default_cnt_rules()
    grid = rules.grid
    if width_um <= 0 or length_um <= 0:
        raise ValueError("device dimensions must be positive")
    length = max(_snap(length_um, grid), rules.width_rule(MaskLayer.GATE_METAL))
    width = max(_snap(width_um, grid), rules.width_rule(MaskLayer.CNT))
    overlap = _snap(max(rules.channel_overlap, rules.width_rule(MaskLayer.SD_METAL)), grid)
    sd_length = max(
        _snap(2 * rules.width_rule(MaskLayer.SD_METAL), grid), 2 * overlap
    )
    x0, y0 = origin
    out = layout if layout is not None else Layout(name=name)
    # Gate bar (vertical), extends beyond the channel for the contact.
    gate_extension = _snap(2 * rules.width_rule(MaskLayer.GATE_METAL), grid)
    out.add_rect(
        MaskLayer.GATE_METAL,
        x0 + sd_length,
        y0 - gate_extension,
        x0 + sd_length + length,
        y0 + width + gate_extension,
        net=gate_net,
    )
    # CNT island crossing the gate with the rule-deck overhang.
    out.add_rect(
        MaskLayer.CNT,
        x0 + sd_length - overlap,
        y0,
        x0 + sd_length + length + overlap,
        y0 + width,
    )
    # Source (left) and drain (right) electrodes on the overhangs.
    out.add_rect(
        MaskLayer.SD_METAL,
        x0,
        y0,
        x0 + sd_length - overlap + grid,
        y0 + width,
        net=source_net,
    )
    out.add_rect(
        MaskLayer.SD_METAL,
        x0 + sd_length + length + overlap - grid,
        y0,
        x0 + 2 * sd_length + length,
        y0 + width,
        net=drain_net,
    )
    return out


def inverter_layout(
    rules: DesignRules | None = None,
    drive_width_um: float = 150.0,
    load_width_um: float = 50.0,
    length_um: float = 10.0,
    name: str = "pseudo_inverter",
) -> Layout:
    """Draw the 4-TFT pseudo-D inverter as separate DRC-clean devices.

    Device placement uses generous spacing (flexible processes are not
    area-constrained) with nets carried by shared labels:
    M1 (IN -> A), M2 (always-on load on A), M3 (IN -> OUT),
    M4 (A gated pull-down on OUT).  Routing between same-net terminals
    is represented by the shared net labels; LVS checks connectivity at
    the netlist level.
    """
    rules = rules or default_cnt_rules()
    out = Layout(name=name)
    pitch_y = max(drive_width_um, load_width_um) + 6 * rules.spacing_rule(
        MaskLayer.CNT
    )
    devices = [
        ("IN", "A", "VDD", drive_width_um),    # M1
        ("VSS", "VSS2", "A", load_width_um),   # M2 (drain net label VSS2
        #   avoided -- see below)
        ("IN", "OUT", "VDD", drive_width_um),  # M3
        ("A", "GND", "OUT", drive_width_um),   # M4
    ]
    # M2 connects A -> VSS with gate VSS: to keep the extractor's
    # source/drain distinction clean we label its terminals directly.
    devices[1] = ("VSS", "VSS", "A", load_width_um)
    for index, (gate, drain, source, width) in enumerate(devices):
        tft_layout(
            width_um=width,
            length_um=length_um,
            rules=rules,
            gate_net=gate,
            source_net=source,
            drain_net=drain,
            origin=(0.0, index * pitch_y),
            layout=out,
        )
    return out


def inverter_chain_layout(
    stages: int,
    rules: DesignRules | None = None,
    drive_width_um: float = 150.0,
    load_width_um: float = 50.0,
    length_um: float = 10.0,
    name: str | None = None,
) -> Layout:
    """Row assembly: ``stages`` pseudo-D inverters abutted in a row.

    Each stage's output net feeds the next stage's input net (shared
    label), modelling the buffer chains / ring-oscillator cores of the
    driver periphery.  Stage cells are placed on a fixed horizontal
    pitch with enough spacing to clear every same-layer rule.

    Net naming: input ``IN``, output ``OUT``, internals ``w1..w_{k-1}``.
    """
    rules = rules or default_cnt_rules()
    if stages < 1:
        raise ValueError("need at least one stage")
    out = Layout(name=name or f"inverter_chain_{stages}")
    # Horizontal pitch: one stage's bounding width plus CNT spacing.
    probe = inverter_layout(rules, drive_width_um, load_width_um, length_um)
    stage_width = probe.bounding_box().width
    pitch = stage_width + 4 * rules.spacing_rule(MaskLayer.CNT)
    for stage in range(stages):
        input_net = "IN" if stage == 0 else f"w{stage}"
        output_net = "OUT" if stage == stages - 1 else f"w{stage + 1}"
        cell = _relabeled_inverter(
            rules, drive_width_um, load_width_um, length_um,
            input_net=input_net, output_net=output_net,
            internal_prefix=f"s{stage}",
        )
        out.merge(cell, dx=stage * pitch, dy=0.0)
    return out


def _relabeled_inverter(
    rules: DesignRules,
    drive_width_um: float,
    load_width_um: float,
    length_um: float,
    input_net: str,
    output_net: str,
    internal_prefix: str,
) -> Layout:
    """One pseudo-D inverter cell with renamed IN/OUT/internal nets."""
    cell = inverter_layout(rules, drive_width_um, load_width_um, length_um)
    renamed = Layout(name=cell.name)
    mapping = {"IN": input_net, "OUT": output_net, "A": f"{internal_prefix}_a"}
    for shape in cell.shapes:
        net = mapping.get(shape.net, shape.net) if shape.net else None
        renamed.add(shape.layer, shape.rect, net)
    return renamed
