"""Compact-model extraction and cell characterisation (Sec. 3.3).

The paper's flow "first extracted all model parameters based on our
CNT-TFT's measurement data, then simulation and optimization were
performed for designing pseudo-CMOS digital cells".  Two pieces:

* :func:`extract_parameters` -- least-squares fit of the compact
  model's (mobility, Vth, subthreshold swing) to measured transfer
  curves, i.e. the Verilog-A-model calibration step;
* :func:`characterize_inverter` -- delay-vs-load characterisation of a
  pseudo-CMOS inverter by transistor-level transient simulation, the
  data a standard-cell library (and the gate-level simulator's delay
  numbers) is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy.optimize import least_squares

from ..circuits.mna import MnaSimulator
from ..circuits.netlist import GROUND, Circuit, pulse
from ..circuits.pseudo_cmos import build_inverter
from ..circuits.waveform import propagation_delay
from ..devices.cnt_tft import CntTft, TftParameters

__all__ = [
    "FitResult",
    "extract_parameters",
    "DelayPoint",
    "characterize_inverter",
    "characterize_nand2",
    "calibrate_cell_library",
]


@dataclass
class FitResult:
    """Outcome of a compact-model fit."""

    parameters: TftParameters
    relative_rms_error: float
    iterations: int

    def summary(self) -> str:
        """One-line fit report."""
        p = self.parameters
        return (
            f"mobility={p.mobility_cm2:.1f} cm2/Vs, Vth={p.vth:+.2f} V, "
            f"SS={p.subthreshold_swing * np.log(10):.2f} V/dec, "
            f"rel. RMS error {self.relative_rms_error:.2%}"
        )


def extract_parameters(
    vgs: np.ndarray,
    vds: float,
    measured_current: np.ndarray,
    width_um: float,
    length_um: float,
    initial: TftParameters | None = None,
) -> FitResult:
    """Fit (mobility, Vth, subthreshold swing) to a transfer curve.

    Parameters
    ----------
    vgs, vds:
        Measured bias points: a gate sweep at fixed ``vds``.
    measured_current:
        Measured |Id| at each ``vgs`` (amps).
    width_um, length_um:
        Known device geometry.
    initial:
        Starting parameter set (defaults to the library nominal).

    The fit runs in log-current space so the subthreshold decade(s)
    carry weight comparable to the on-region.
    """
    vgs = np.asarray(vgs, dtype=float)
    measured_current = np.asarray(measured_current, dtype=float)
    if vgs.shape != measured_current.shape:
        raise ValueError("vgs and current arrays must align")
    if np.any(measured_current <= 0):
        raise ValueError("measured currents must be positive for a log fit")
    base = initial or TftParameters()

    def model_current(theta: np.ndarray) -> np.ndarray:
        mobility, vth, swing = theta
        params = replace(
            base,
            mobility_cm2=float(mobility),
            vth=float(vth),
            subthreshold_swing=float(swing),
        )
        device = CntTft(width_um, length_um, params)
        return np.maximum(device.drain_current(vgs, vds), 1e-15)

    def residuals(theta: np.ndarray) -> np.ndarray:
        return np.log(model_current(theta)) - np.log(measured_current)

    start = np.array([base.mobility_cm2, base.vth, base.subthreshold_swing])
    fit = least_squares(
        residuals,
        start,
        bounds=([0.1, -5.0, 0.01], [500.0, 5.0, 1.0]),
        xtol=1e-12,
        ftol=1e-12,
    )
    fitted = replace(
        base,
        mobility_cm2=float(fit.x[0]),
        vth=float(fit.x[1]),
        subthreshold_swing=float(fit.x[2]),
    )
    relative = float(
        np.sqrt(np.mean((model_current(fit.x) / measured_current - 1.0) ** 2))
    )
    return FitResult(
        parameters=fitted,
        relative_rms_error=relative,
        iterations=int(fit.nfev),
    )


@dataclass(frozen=True)
class DelayPoint:
    """Inverter delay at one load capacitance."""

    load_farads: float
    delay_s: float


def characterize_inverter(
    loads_farads: tuple[float, ...] = (1.0e-11, 3.0e-11, 1.0e-10),
    vdd: float = 3.0,
    input_period_s: float = 2.0e-3,
    step_s: float = 1.0e-6,
) -> list[DelayPoint]:
    """Measure pseudo-CMOS inverter propagation delay vs output load.

    Drives a slow square wave into a transistor-level inverter with a
    capacitive load and measures the median 50 %-crossing delay.
    """
    points = []
    for load in loads_farads:
        if load <= 0:
            raise ValueError("loads must be positive")
        circuit = Circuit("inv_char")
        circuit.add_voltage_source(
            "vin", "IN", GROUND, pulse(0.0, vdd, input_period_s, delay_s=step_s)
        )
        build_inverter(circuit, "inv0", "IN", "OUT")
        circuit.add_capacitor("cload", "OUT", GROUND, load)
        simulator = MnaSimulator(circuit)
        result = simulator.transient(
            stop_s=2.0 * input_period_s, step_s=step_s, record=["IN", "OUT"]
        )
        delay = propagation_delay(
            result.times,
            result["IN"],
            result["OUT"],
            level=vdd / 2.0,
            input_rising=True,
            output_rising=False,
        )
        points.append(DelayPoint(load_farads=load, delay_s=delay))
    return points


def characterize_nand2(
    load_farads: float = 3.0e-11,
    vdd: float = 3.0,
    input_period_s: float = 2.0e-3,
    step_s: float = 1.0e-6,
) -> float:
    """Worst-arc NAND2 propagation delay at one load (seconds).

    Toggles input A with input B held high (the sensitising condition)
    and measures the median 50 %-crossing delay.
    """
    if load_farads <= 0:
        raise ValueError("load must be positive")
    from ..circuits.pseudo_cmos import build_nand2

    circuit = Circuit("nand_char")
    circuit.add_voltage_source(
        "va", "A", GROUND, pulse(0.0, vdd, input_period_s, delay_s=step_s)
    )
    circuit.add_voltage_source("vb", "B", GROUND, vdd)
    build_nand2(circuit, "u0", "A", "B", "OUT")
    circuit.add_capacitor("cload", "OUT", GROUND, load_farads)
    result = MnaSimulator(circuit).transient(
        stop_s=2.0 * input_period_s, step_s=step_s, record=["A", "OUT"]
    )
    return propagation_delay(
        result.times, result["A"], result["OUT"], level=vdd / 2.0,
        input_rising=True, output_rising=False,
    )


def calibrate_cell_library(
    load_farads: float = 3.0e-11, vdd: float = 3.0
) -> dict[str, float]:
    """Re-derive the gate-level library delays from transistor-level
    characterisation (the standard-cell timing-library step).

    Measures INV and NAND2 at the representative on-chip load and
    scales the remaining cells by their topological depth relative to
    the inverter (BUF = 2 INV, XOR/AND/MUX = composed stages), exactly
    how the shipped :data:`~repro.circuits.pseudo_cmos.CELL_LIBRARY`
    numbers were derived.

    Returns
    -------
    dict
        ``cell name -> delay (s)`` for every library cell.
    """
    inverter_delay = characterize_inverter(
        loads_farads=(load_farads,), vdd=vdd
    )[0].delay_s
    nand_delay = characterize_nand2(load_farads=load_farads, vdd=vdd)
    return {
        "INV": inverter_delay,
        "BUF": 2.0 * inverter_delay,
        "NAND2": nand_delay,
        "NOR2": nand_delay,
        "AND2": nand_delay + inverter_delay,
        "XOR2": 2.0 * nand_delay,
        "MUX2": 2.0 * nand_delay,
    }
