"""Design-rule checking for CNT-TFT layouts (Sec. 3.3).

The checker implements the rule classes a printed-flexible process
cares about:

* **min width** -- every drawn rectangle's smaller dimension;
* **min spacing** -- between disjoint same-layer rectangles (touching
  or overlapping rectangles count as connected, not as a violation);
* **via enclosure** -- every VIA must be enclosed by both GATE_METAL
  and SD_METAL with the deck's margin;
* **channel overlap** -- every CNT island over a gate must extend past
  the gate edge along the channel, and lie on the dielectric;
* **grid** -- all coordinates on the manufacturing grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from .layout import Layout, MaskLayer, Rect, Shape
from .techfile import DesignRules

__all__ = ["DrcViolation", "DrcReport", "run_drc"]


@dataclass(frozen=True)
class DrcViolation:
    """One rule violation."""

    rule: str
    layer: MaskLayer
    message: str
    rect: Rect


@dataclass
class DrcReport:
    """Result of a DRC run."""

    layout_name: str
    violations: list[DrcViolation]

    @property
    def clean(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def by_rule(self) -> dict[str, int]:
        """Violation counts per rule name."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.clean:
            return f"{self.layout_name}: DRC clean"
        details = ", ".join(f"{k}={v}" for k, v in sorted(self.by_rule().items()))
        return f"{self.layout_name}: {len(self.violations)} violations ({details})"


def _check_widths(layout: Layout, rules: DesignRules, out: list) -> None:
    for shape in layout.shapes:
        minimum = rules.width_rule(shape.layer)
        if minimum > 0 and shape.rect.min_dimension < minimum - 1e-9:
            out.append(
                DrcViolation(
                    "min_width",
                    shape.layer,
                    f"{shape.layer.value} width {shape.rect.min_dimension:g} "
                    f"< {minimum:g}",
                    shape.rect,
                )
            )


def _check_spacing(layout: Layout, rules: DesignRules, out: list) -> None:
    for layer in MaskLayer:
        minimum = rules.spacing_rule(layer)
        if minimum <= 0:
            continue
        shapes = layout.on_layer(layer)
        for i, a in enumerate(shapes):
            for b in shapes[i + 1:]:
                if a.rect.touches_or_intersects(b.rect):
                    continue  # connected geometry
                gap = a.rect.distance(b.rect)
                if gap < minimum - 1e-9:
                    out.append(
                        DrcViolation(
                            "min_spacing",
                            layer,
                            f"{layer.value} spacing {gap:g} < {minimum:g}",
                            a.rect,
                        )
                    )


def _check_via_enclosure(layout: Layout, rules: DesignRules, out: list) -> None:
    metals = layout.on_layer(MaskLayer.GATE_METAL) + layout.on_layer(
        MaskLayer.SD_METAL
    )
    for via in layout.on_layer(MaskLayer.VIA):
        enclosing = [
            m
            for m in metals
            if m.rect.contains(via.rect, margin=rules.via_enclosure - 1e-9)
        ]
        layers = {m.layer for m in enclosing}
        if MaskLayer.GATE_METAL not in layers or MaskLayer.SD_METAL not in layers:
            out.append(
                DrcViolation(
                    "via_enclosure",
                    MaskLayer.VIA,
                    "via not enclosed by both metals with margin "
                    f"{rules.via_enclosure:g}",
                    via.rect,
                )
            )


def _check_channel_overlap(layout: Layout, rules: DesignRules, out: list) -> None:
    gates = layout.on_layer(MaskLayer.GATE_METAL)
    for cnt in layout.on_layer(MaskLayer.CNT):
        overlapping = [g for g in gates if g.rect.intersects(cnt.rect)]
        for gate in overlapping:
            # The CNT island must extend past the gate on at least one
            # axis (source/drain access) by the overlap margin.
            extends_x = (
                gate.rect.x0 - cnt.rect.x0 >= rules.channel_overlap - 1e-9
                and cnt.rect.x1 - gate.rect.x1 >= rules.channel_overlap - 1e-9
            )
            extends_y = (
                gate.rect.y0 - cnt.rect.y0 >= rules.channel_overlap - 1e-9
                and cnt.rect.y1 - gate.rect.y1 >= rules.channel_overlap - 1e-9
            )
            if not (extends_x or extends_y):
                out.append(
                    DrcViolation(
                        "channel_overlap",
                        MaskLayer.CNT,
                        "CNT island does not extend past the gate by "
                        f"{rules.channel_overlap:g} on either axis",
                        cnt.rect,
                    )
                )


def _check_grid(layout: Layout, rules: DesignRules, out: list) -> None:
    grid = rules.grid
    if grid <= 0:
        return
    for shape in layout.shapes:
        r = shape.rect
        for coordinate in (r.x0, r.y0, r.x1, r.y1):
            snapped = round(coordinate / grid) * grid
            if abs(coordinate - snapped) > 1e-9:
                out.append(
                    DrcViolation(
                        "off_grid",
                        shape.layer,
                        f"coordinate {coordinate:g} off the {grid:g} um grid",
                        r,
                    )
                )
                break


def run_drc(layout: Layout, rules: DesignRules) -> DrcReport:
    """Run all rule checks; returns the violation report."""
    violations: list[DrcViolation] = []
    _check_widths(layout, rules, violations)
    _check_spacing(layout, rules, violations)
    _check_via_enclosure(layout, rules, violations)
    _check_channel_overlap(layout, rules, violations)
    _check_grid(layout, rules, violations)
    return DrcReport(layout_name=layout.name, violations=violations)
