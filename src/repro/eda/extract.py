"""Netlist extraction from CNT-TFT layouts.

Turns drawn geometry into a transistor netlist:

1. **Connectivity**: same-layer metal shapes that touch or overlap are
   electrically connected; a VIA shape connects the GATE_METAL and
   SD_METAL geometry it overlaps.  Union-find produces the nets, which
   inherit any drawn net labels (conflicting labels on one net are an
   extraction error).
2. **Device recognition**: each (CNT island x gate shape) overlap forms
   a channel; the SD_METAL shapes overlapping that CNT island on
   opposite sides of the gate are the source/drain terminals.  Channel
   W/L is measured from the geometry.

The result is an :class:`ExtractedNetlist` that LVS compares against
the schematic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .layout import Layout, MaskLayer, Rect, Shape

__all__ = ["ExtractedDevice", "ExtractedNetlist", "ExtractionError", "extract"]


class ExtractionError(RuntimeError):
    """Layout cannot be turned into a consistent netlist."""


@dataclass(frozen=True)
class ExtractedDevice:
    """One recognised TFT."""

    name: str
    gate_net: str
    sd_nets: tuple[str, str]
    width_um: float
    length_um: float


@dataclass
class ExtractedNetlist:
    """Nets + devices recognised from a layout."""

    name: str
    nets: list[str]
    devices: list[ExtractedDevice]
    net_labels: dict[str, str] = field(default_factory=dict)

    def device_count(self) -> int:
        """Number of recognised TFTs."""
        return len(self.devices)


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _conductor_shapes(layout: Layout) -> list[Shape]:
    conductors = (MaskLayer.GATE_METAL, MaskLayer.SD_METAL, MaskLayer.VIA)
    return [s for s in layout.shapes if s.layer in conductors]


def _build_nets(layout: Layout) -> tuple[dict[int, str], dict[Shape, int], list[str]]:
    """Union shapes into nets; returns (root -> net name, shape -> root)."""
    shapes = _conductor_shapes(layout)
    uf = _UnionFind(len(shapes))
    for i, a in enumerate(shapes):
        for j in range(i + 1, len(shapes)):
            b = shapes[j]
            same_layer = a.layer == b.layer
            via_pair = MaskLayer.VIA in (a.layer, b.layer)
            if not (same_layer or via_pair):
                continue
            touching = (
                a.rect.touches_or_intersects(b.rect)
                if same_layer
                else a.rect.intersects(b.rect)
            )
            if touching:
                uf.union(i, j)
    shape_root = {shape: uf.find(i) for i, shape in enumerate(shapes)}
    # Name nets: drawn labels win; conflicts are errors; unlabelled nets
    # get sequential names.
    root_name: dict[int, str] = {}
    for shape, root in shape_root.items():
        if shape.net is None:
            continue
        existing = root_name.get(root)
        if existing is not None and existing != shape.net:
            raise ExtractionError(
                f"net label conflict: {existing!r} vs {shape.net!r} on one net"
            )
        root_name[root] = shape.net
    counter = 0
    for root in sorted(set(shape_root.values())):
        if root not in root_name:
            root_name[root] = f"net{counter}"
            counter += 1
    names = sorted(set(root_name.values()))
    return root_name, shape_root, names


def _channel_axis(cnt: Rect, gate: Rect) -> str:
    """Axis along which the CNT extends past the gate ('x' or 'y')."""
    extends_x = cnt.x0 < gate.x0 and cnt.x1 > gate.x1
    extends_y = cnt.y0 < gate.y0 and cnt.y1 > gate.y1
    if extends_x and not extends_y:
        return "x"
    if extends_y and not extends_x:
        return "y"
    if extends_x and extends_y:
        # Ambiguous; pick the axis with more extension.
        over_x = (gate.x0 - cnt.x0) + (cnt.x1 - gate.x1)
        over_y = (gate.y0 - cnt.y0) + (cnt.y1 - gate.y1)
        return "x" if over_x >= over_y else "y"
    raise ExtractionError(
        "CNT island does not extend past its gate on either axis "
        "(no source/drain access)"
    )


def extract(layout: Layout) -> ExtractedNetlist:
    """Extract the transistor netlist from a layout."""
    root_name, shape_root, names = _build_nets(layout)

    def net_of(shape: Shape) -> str:
        return root_name[shape_root[shape]]

    gates = layout.on_layer(MaskLayer.GATE_METAL)
    sd_shapes = layout.on_layer(MaskLayer.SD_METAL)
    devices: list[ExtractedDevice] = []
    for cnt_shape in layout.on_layer(MaskLayer.CNT):
        cnt = cnt_shape.rect
        for gate_shape in gates:
            gate = gate_shape.rect
            channel = cnt.intersection(gate)
            if channel is None:
                continue
            axis = _channel_axis(cnt, gate)
            touching_sd = [
                s for s in sd_shapes if s.rect.intersects(cnt)
            ]
            if axis == "x":
                low_side = [s for s in touching_sd if s.rect.x0 <= gate.x0]
                high_side = [s for s in touching_sd if s.rect.x1 >= gate.x1]
                length = gate.width
                width = channel.height
            else:
                low_side = [s for s in touching_sd if s.rect.y0 <= gate.y0]
                high_side = [s for s in touching_sd if s.rect.y1 >= gate.y1]
                length = gate.height
                width = channel.width
            if not low_side or not high_side:
                raise ExtractionError(
                    "channel without source/drain electrodes on both sides"
                )
            source_net = net_of(low_side[0])
            drain_net = net_of(high_side[0])
            if source_net == drain_net:
                raise ExtractionError(
                    "source and drain short-circuited on one net"
                )
            devices.append(
                ExtractedDevice(
                    name=f"x{len(devices)}",
                    gate_net=net_of(gate_shape),
                    sd_nets=(source_net, drain_net),
                    width_um=width,
                    length_um=length,
                )
            )
    return ExtractedNetlist(name=layout.name, nets=names, devices=devices)
