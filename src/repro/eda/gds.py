"""Layout serialisation (a text stand-in for GDS/OASIS streams).

Simple line-oriented format, one shape per line::

    LAYOUT <name>
    RECT <layer> <x0> <y0> <x1> <y1> [NET=<name>]
    END

Coordinates are micrometres.  Round-trips every
:class:`~repro.eda.layout.Layout` exactly (within float repr), so cell
libraries can live on disk next to the rule decks.
"""

from __future__ import annotations

from .layout import Layout, MaskLayer, Rect

__all__ = ["dump_layout", "load_layout", "LayoutFormatError"]


class LayoutFormatError(ValueError):
    """The text is not a valid layout stream."""


def dump_layout(layout: Layout) -> str:
    """Serialise a layout to the text stream format."""
    lines = [f"LAYOUT {layout.name}"]
    for shape in layout.shapes:
        r = shape.rect
        card = (
            f"RECT {shape.layer.value} {r.x0:.6g} {r.y0:.6g} "
            f"{r.x1:.6g} {r.y1:.6g}"
        )
        if shape.net is not None:
            card += f" NET={shape.net}"
        lines.append(card)
    lines.append("END")
    return "\n".join(lines) + "\n"


def load_layout(text: str) -> Layout:
    """Parse the text stream back into a :class:`Layout`."""
    layers = {layer.value: layer for layer in MaskLayer}
    layout = Layout()
    saw_header = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("LAYOUT"):
            layout.name = line[len("LAYOUT"):].strip() or "layout"
            saw_header = True
            continue
        if line == "END":
            break
        if not line.startswith("RECT"):
            raise LayoutFormatError(f"line {line_number}: unknown card")
        fields = line.split()
        if len(fields) not in (6, 7):
            raise LayoutFormatError(f"line {line_number}: malformed RECT")
        _, layer_name, x0, y0, x1, y1, *rest = fields
        if layer_name not in layers:
            raise LayoutFormatError(
                f"line {line_number}: unknown layer {layer_name!r}"
            )
        net = None
        if rest:
            if not rest[0].startswith("NET="):
                raise LayoutFormatError(
                    f"line {line_number}: expected NET=<name>"
                )
            net = rest[0][len("NET="):]
        try:
            rect = Rect(float(x0), float(y0), float(x1), float(y1))
        except ValueError as exc:
            raise LayoutFormatError(f"line {line_number}: {exc}") from exc
        layout.add(layers[layer_name], rect, net)
    if not saw_header:
        raise LayoutFormatError("missing LAYOUT header")
    return layout
