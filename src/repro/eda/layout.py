"""Layout geometry for the CNT-TFT process.

Sec. 3.3: the paper's team "customized physical verification scripts to
automatically perform the design rule checking (DRC) and layout versus
schematic (LVS) based on fabrication processes of the CNT technology".
This module provides the geometry substrate those scripts operate on: a
rectangle-based mask layout over the process layer stack of Fig. 5a
(electrodes, interconnect, barrier, CNT film, encapsulation).

Units are micrometres throughout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["MaskLayer", "Rect", "Shape", "Layout"]


class MaskLayer(enum.Enum):
    """Mask layers of the flexible CNT process (deposition order of
    Fig. 5a)."""

    GATE_METAL = "gate_metal"        # bottom-gate electrodes + row lines
    DIELECTRIC = "dielectric"        # gate dielectric / barrier
    CNT = "cnt"                      # patterned semiconducting CNT film
    SD_METAL = "sd_metal"            # source/drain electrodes + column lines
    VIA = "via"                      # dielectric cut connecting the metals
    ENCAPSULATION = "encapsulation"  # top passivation


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1] x [y0, y1]`` in um."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate rectangle {self}")

    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.y1 - self.y0

    @property
    def min_dimension(self) -> float:
        """Smaller of width/height (what min-width rules check)."""
        return min(self.width, self.height)

    @property
    def area(self) -> float:
        """Rectangle area (um^2)."""
        return self.width * self.height

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles overlap with positive area."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def touches_or_intersects(self, other: "Rect") -> bool:
        """True when the rectangles overlap or share an edge/corner."""
        return (
            self.x0 <= other.x1
            and other.x0 <= self.x1
            and self.y0 <= other.y1
            and other.y0 <= self.y1
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap region, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def contains(self, other: "Rect", margin: float = 0.0) -> bool:
        """True when ``other`` sits inside with at least ``margin`` slack."""
        return (
            other.x0 - self.x0 >= margin
            and self.x1 - other.x1 >= margin
            and other.y0 - self.y0 >= margin
            and self.y1 - other.y1 >= margin
        )

    def distance(self, other: "Rect") -> float:
        """Euclidean gap between rectangles (0 when touching/overlapping)."""
        dx = max(other.x0 - self.x1, self.x0 - other.x1, 0.0)
        dy = max(other.y0 - self.y1, self.y0 - other.y1, 0.0)
        return (dx * dx + dy * dy) ** 0.5

    def expanded(self, margin: float) -> "Rect":
        """Grow the rectangle by ``margin`` on every side."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )


@dataclass(frozen=True)
class Shape:
    """One drawn rectangle: layer + geometry + optional net label."""

    layer: MaskLayer
    rect: Rect
    net: str | None = None


@dataclass
class Layout:
    """A named collection of shapes (one cell or a full die)."""

    name: str = "layout"
    shapes: list[Shape] = field(default_factory=list)

    def add(
        self, layer: MaskLayer, rect: Rect, net: str | None = None
    ) -> Shape:
        """Draw a rectangle; returns the created shape."""
        shape = Shape(layer, rect, net)
        self.shapes.append(shape)
        return shape

    def add_rect(
        self,
        layer: MaskLayer,
        x0: float,
        y0: float,
        x1: float,
        y1: float,
        net: str | None = None,
    ) -> Shape:
        """Convenience coordinate form of :meth:`add`."""
        return self.add(layer, Rect(x0, y0, x1, y1), net)

    def on_layer(self, layer: MaskLayer) -> list[Shape]:
        """All shapes of one layer."""
        return [s for s in self.shapes if s.layer == layer]

    def bounding_box(self) -> Rect:
        """Smallest rectangle covering all shapes."""
        if not self.shapes:
            raise ValueError("empty layout has no bounding box")
        return Rect(
            min(s.rect.x0 for s in self.shapes),
            min(s.rect.y0 for s in self.shapes),
            max(s.rect.x1 for s in self.shapes),
            max(s.rect.y1 for s in self.shapes),
        )

    def merge(self, other: "Layout", dx: float = 0.0, dy: float = 0.0) -> None:
        """Paste another layout at an offset (flat, no hierarchy)."""
        for shape in other.shapes:
            r = shape.rect
            self.add(
                shape.layer,
                Rect(r.x0 + dx, r.y0 + dy, r.x1 + dx, r.y1 + dy),
                shape.net,
            )
