"""Layout-versus-schematic comparison (Sec. 3.3).

Both views are reduced to a bipartite device/net graph:

* one node per net and one node per TFT;
* an edge from a device to its gate net (role ``"gate"``) and to each
  channel terminal (role ``"sd"`` -- source and drain are symmetric
  for a TFT, so LVS must not distinguish them).

The views match when the graphs are isomorphic under those node/edge
attributes (``networkx`` VF2), with named supply/IO nets pinned so the
isomorphism cannot permute, say, VDD and GND.  Device geometry (W/L)
is compared on top of the topology match.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..circuits.netlist import Circuit, Tft
from .extract import ExtractedNetlist

__all__ = ["LvsResult", "compare", "schematic_graph", "extracted_graph"]


@dataclass
class LvsResult:
    """Outcome of an LVS run."""

    match: bool
    device_count_layout: int
    device_count_schematic: int
    mismatches: list[str]

    def summary(self) -> str:
        """One-line verdict."""
        if self.match:
            return (
                f"LVS clean: {self.device_count_layout} devices, "
                "topology and sizing match"
            )
        return "LVS FAILED: " + "; ".join(self.mismatches)


def schematic_graph(circuit: Circuit, size_tolerance: float = 0.0) -> nx.Graph:
    """Device/net graph of a schematic (TFTs only; sources define pins)."""
    graph = nx.Graph()
    for net in circuit.nets():
        graph.add_node(("net", net), kind="net", pinned=_pin_label(net))
    graph.add_node(("net", "0"), kind="net", pinned="0")
    for component in circuit.components:
        if not isinstance(component, Tft):
            continue
        node = ("dev", component.name)
        graph.add_node(
            node,
            kind="tft",
            width=round(component.device.width_um, 6),
            length=round(component.device.length_um, 6),
        )
        graph.add_edge(node, ("net", component.gate), role="gate")
        _add_sd_edge(graph, node, component.drain)
        _add_sd_edge(graph, node, component.source)
    return graph


def extracted_graph(netlist: ExtractedNetlist) -> nx.Graph:
    """Device/net graph of an extracted layout netlist."""
    graph = nx.Graph()
    for net in netlist.nets:
        graph.add_node(("net", net), kind="net", pinned=_pin_label(net))
    for device in netlist.devices:
        node = ("dev", device.name)
        graph.add_node(
            node,
            kind="tft",
            width=round(device.width_um, 6),
            length=round(device.length_um, 6),
        )
        graph.add_edge(node, ("net", device.gate_net), role="gate")
        for terminal in device.sd_nets:
            _add_sd_edge(graph, node, terminal)
    return graph


_PIN_NAMES = {"VDD", "VSS", "GND", "0", "IN", "OUT", "CLK", "DATA"}


def _pin_label(net: str) -> str:
    """Canonical pin label ('' for internal nets; GND aliases to 0)."""
    upper = net.upper()
    if upper not in _PIN_NAMES:
        return ""
    if upper == "GND":
        return "0"
    return upper


def _add_sd_edge(graph: nx.Graph, device_node, net: str) -> None:
    net_node = ("net", net)
    if not graph.has_node(net_node):
        graph.add_node(net_node, kind="net", pinned=_pin_label(net))
    if graph.has_edge(device_node, net_node):
        # Both channel terminals on one net (capacitor-connected TFT):
        # record it as a parallel-terminal flag instead of losing it.
        graph.edges[device_node, net_node]["role"] = "sd2"
    else:
        graph.add_edge(device_node, net_node, role="sd")


def _node_match(a: dict, b: dict) -> bool:
    if a["kind"] != b["kind"]:
        return False
    if a["kind"] == "net":
        return a["pinned"] == b["pinned"]
    return a["width"] == b["width"] and a["length"] == b["length"]


def _edge_match(a: dict, b: dict) -> bool:
    return a["role"] == b["role"]


def compare(layout_netlist: ExtractedNetlist, schematic: Circuit) -> LvsResult:
    """Compare an extracted netlist against its schematic."""
    left = extracted_graph(layout_netlist)
    right = schematic_graph(schematic)
    mismatches: list[str] = []
    layout_devices = layout_netlist.device_count()
    schematic_devices = sum(
        1 for c in schematic.components if isinstance(c, Tft)
    )
    if layout_devices != schematic_devices:
        mismatches.append(
            f"device count {layout_devices} vs {schematic_devices}"
        )
    # Drop isolated schematic nets (pure-source nets like an unloaded
    # pin) so a trivially dangling node cannot break the match.
    for graph in (left, right):
        isolated = [n for n in graph.nodes if graph.degree(n) == 0]
        graph.remove_nodes_from(isolated)
    if not mismatches:
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            left, right, node_match=_node_match, edge_match=_edge_match
        )
        if not matcher.is_isomorphic():
            mismatches.append("no topology/sizing isomorphism found")
    return LvsResult(
        match=not mismatches,
        device_count_layout=layout_devices,
        device_count_schematic=schematic_devices,
        mismatches=mismatches,
    )
