"""Technology rule deck for the flexible CNT-TFT process.

Printed/laminated flexible processes have coarse geometry: the paper's
logic devices use L = 10 um channels.  The default deck below encodes a
self-consistent rule set at that scale -- minimum widths and spacings
per layer, via enclosure, and the CNT/gate overlap the channel needs.
Numbers are micrometres.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .layout import MaskLayer

__all__ = ["DesignRules", "default_cnt_rules"]


@dataclass(frozen=True)
class DesignRules:
    """One process rule deck.

    Attributes
    ----------
    min_width:
        Per-layer minimum drawn width (um).
    min_spacing:
        Per-layer minimum same-layer spacing (um).
    via_enclosure:
        Metal must enclose a via by this margin on every side.
    channel_overlap:
        CNT must extend past the gate edge (along the channel width
        direction) by at least this much, and the gate must overlap the
        CNT under the channel.
    grid:
        Manufacturing grid; all coordinates must be multiples.
    """

    min_width: dict[MaskLayer, float] = field(
        default_factory=lambda: {
            MaskLayer.GATE_METAL: 5.0,
            MaskLayer.SD_METAL: 5.0,
            MaskLayer.CNT: 5.0,
            MaskLayer.VIA: 4.0,
            MaskLayer.DIELECTRIC: 5.0,
            MaskLayer.ENCAPSULATION: 5.0,
        }
    )
    min_spacing: dict[MaskLayer, float] = field(
        default_factory=lambda: {
            MaskLayer.GATE_METAL: 5.0,
            MaskLayer.SD_METAL: 5.0,
            MaskLayer.CNT: 10.0,
            MaskLayer.VIA: 5.0,
            MaskLayer.DIELECTRIC: 5.0,
            MaskLayer.ENCAPSULATION: 5.0,
        }
    )
    via_enclosure: float = 1.0
    channel_overlap: float = 2.0
    grid: float = 0.5

    def width_rule(self, layer: MaskLayer) -> float:
        """Minimum width of a layer (0 when unconstrained)."""
        return self.min_width.get(layer, 0.0)

    def spacing_rule(self, layer: MaskLayer) -> float:
        """Minimum same-layer spacing (0 when unconstrained)."""
        return self.min_spacing.get(layer, 0.0)


def default_cnt_rules() -> DesignRules:
    """The repository's reference CNT-TFT rule deck."""
    return DesignRules()
