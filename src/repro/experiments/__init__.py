"""One module per paper artifact (see DESIGN.md's experiment index).

=========  =======================================================
id         entry point
=========  =======================================================
FIG2       :func:`repro.experiments.fig2_sparsity.run_fig2`
FIG5b      :func:`repro.experiments.fig5_circuits.run_fig5b`
FIG5cd     :func:`repro.experiments.fig5_circuits.run_fig5cd`
FIG5e      :func:`repro.experiments.fig5_circuits.run_fig5e`
FIG6a      :func:`repro.experiments.fig6a_rmse.run_fig6a`
FIG6b      :func:`repro.experiments.fig6b_accuracy.run_fig6b`
FIG6c      :func:`repro.experiments.fig6c_strategies.run_fig6c`
COMM       :func:`repro.experiments.comm_cost.run_comm_cost`
ENC        :func:`repro.experiments.comm_cost.run_encoder_check`
EQ1        :func:`repro.experiments.theory_checks.run_eq1_phase_transition`
EQ2        :func:`repro.experiments.theory_checks.run_eq2_bound`
RES        :func:`repro.experiments.resilience_sweep.run_resilience_sweep`
=========  =======================================================
"""

from .comm_cost import CommCostResult, run_comm_cost, run_encoder_check
from .fig2_sparsity import Fig2Result, run_fig2
from .fig5_circuits import SensorCurve, run_fig5b, run_fig5cd, run_fig5e
from .fig6a_rmse import run_fig6a
from .fig6b_accuracy import AccuracyPoint, TactileExperiment, run_fig6b
from .fig6c_strategies import StrategyPoint, run_fig6c
from .resilience_sweep import ResiliencePoint, run_resilience_sweep
from .scaling import ScalePoint, run_scaling
from .tolerance import TolerancePoint, run_tolerance, tolerance_limit
from .theory_checks import (
    BoundPoint,
    PhasePoint,
    run_eq1_phase_transition,
    run_eq2_bound,
)

__all__ = [
    "run_fig2",
    "Fig2Result",
    "run_fig5b",
    "run_fig5cd",
    "run_fig5e",
    "SensorCurve",
    "run_fig6a",
    "run_fig6b",
    "TactileExperiment",
    "AccuracyPoint",
    "run_fig6c",
    "StrategyPoint",
    "run_comm_cost",
    "run_encoder_check",
    "CommCostResult",
    "run_eq1_phase_transition",
    "run_eq2_bound",
    "PhasePoint",
    "BoundPoint",
    "run_tolerance",
    "tolerance_limit",
    "TolerancePoint",
    "run_scaling",
    "ScalePoint",
    "run_resilience_sweep",
    "ResiliencePoint",
]
