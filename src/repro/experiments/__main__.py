"""Command-line experiment runner.

Regenerates any paper artifact from the shell::

    python -m repro.experiments FIG2
    python -m repro.experiments FIG6a --frames 8
    python -m repro.experiments all

See DESIGN.md for the experiment index.  Benches under ``benchmarks/``
run the same code with timing and assertions; this runner is the
interactive front end.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    comm_cost,
    fig2_sparsity,
    fig5_circuits,
    fig6a_rmse,
    fig6c_strategies,
    resilience_sweep,
)
from .fig6b_accuracy import TactileExperiment
from .fig6b_accuracy import format_table as _fig6b_table
from .theory_checks import run_eq1_phase_transition, run_eq2_bound
from .scaling import run_scaling
from .tolerance import format_table as _tol_table
from .tolerance import run_tolerance, tolerance_limit


def _run_fig2(args) -> None:
    results = fig2_sparsity.run_fig2(num_samples=args.samples, seed=args.seed)
    print(fig2_sparsity.format_table(results))


def _run_fig5(args) -> None:
    print(fig5_circuits.run_fig5b().row())
    register = fig5_circuits.run_fig5cd()
    print(
        f"Fig. 5c-d: {register.tft_count} TFTs @ CLK "
        f"{register.clock_hz / 1e3:g} kHz -> functional={register.functional}"
    )
    amplifier = fig5_circuits.run_fig5e()
    print(
        f"Fig. 5e: 50 mV @ 30 kHz -> {amplifier.output_amplitude_v:.2f} V "
        f"({amplifier.gain_db:.1f} dB)"
    )


def _run_fig6a(args) -> None:
    points = fig6a_rmse.run_fig6a(
        num_frames=args.frames, seed=args.seed, workers=args.workers
    )
    print(fig6a_rmse.format_table(points))


def _run_fig6b(args) -> None:
    experiment = TactileExperiment(
        samples_per_class=args.samples,
        epochs=args.epochs,
        num_classes=args.classes,
        seed=args.seed,
    )
    experiment.fit(verbose=True)
    points = experiment.grid(sampling_fractions=(0.5,))
    print(_fig6b_table(experiment.clean_accuracy(), points))


def _run_fig6c(args) -> None:
    points = fig6c_strategies.run_fig6c(num_frames=args.frames, seed=args.seed)
    print(fig6c_strategies.format_table(points))


def _run_comm(args) -> None:
    for result in comm_cost.run_comm_cost(seed=args.seed):
        print(result.row())
    check = comm_cost.run_encoder_check(seed=args.seed)
    print(
        f"ENC: {check['measurements']} reads in {check['scan_cycles']} "
        f"cycles, max deviation {check['max_deviation']:.2e}"
    )


def _run_eq1(args) -> None:
    print(f"{'K':>4} {'M':>5} {'success':>8} {'Eq.(1) M':>9}")
    for point in run_eq1_phase_transition(seed=args.seed):
        print(
            f"{point.sparsity:>4} {point.m:>5} {point.success_rate:>8.2f} "
            f"{point.eq1_estimate:>9}"
        )


def _run_eq2(args) -> None:
    print(f"{'noise':>7} {'observed':>9} {'bound':>8}")
    for point in run_eq2_bound(seed=args.seed):
        print(
            f"{point.noise:>7.3f} {point.observed_rmse_l2:>9.4f} "
            f"{point.bound_total:>8.4f}"
        )


def _run_scaling(args) -> None:
    for point in run_scaling():
        print(point.row())


def _run_resilience(args) -> None:
    points = resilience_sweep.run_resilience_sweep(
        num_frames=args.frames, seed=args.seed, workers=args.workers
    )
    print(resilience_sweep.format_table(points))


def _run_tolerance(args) -> None:
    points = run_tolerance(
        num_frames=args.frames, seed=args.seed, workers=args.workers
    )
    print(_tol_table(points))
    print(f"tolerance limit: {tolerance_limit(points):.0%} sparse errors")


_EXPERIMENTS = {
    "FIG2": _run_fig2,
    "FIG5": _run_fig5,
    "FIG6a": _run_fig6a,
    "FIG6b": _run_fig6b,
    "FIG6c": _run_fig6c,
    "COMM": _run_comm,
    "EQ1": _run_eq1,
    "EQ2": _run_eq2,
    "TOL": _run_tolerance,
    "SCALE": _run_scaling,
    "RES": _run_resilience,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures/tables.",
    )
    parser.add_argument(
        "experiment",
        choices=[*_EXPERIMENTS, "all"],
        help="experiment id from DESIGN.md (or 'all')",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--frames", type=int, default=6, help="frames per grid point (FIG6a/6c)"
    )
    parser.add_argument(
        "--samples", type=int, default=20,
        help="samples per class (FIG6b) / per modality (FIG2)",
    )
    parser.add_argument(
        "--classes", type=int, default=12, help="tactile classes (FIG6b)"
    )
    parser.add_argument(
        "--epochs", type=int, default=12, help="training epochs (FIG6b)"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for sweep points (FIG6a/TOL/RES); "
        "results are identical to --workers 1",
    )
    args = parser.parse_args(argv)
    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        start = time.perf_counter()
        _EXPERIMENTS[name](args)
        print(f"[{name} done in {time.perf_counter() - start:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
