"""Experiments COMM and ENC: communication cost and encoder correctness.

Sec. 4.1: with ~50 % sparsity, only ``M ~ N/2`` measurements are
needed, so the A/D-conversion (communication) cost drops to ``M/N ~
0.5``; the scan itself completes in ``sqrt(N)`` cycles because each
``Phi_M`` column holds at most one '1'.

The ENC check drives the full hardware-modelled encoder and verifies
the acquired vector equals ``Phi_M @ y`` for the ideal readings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..array import ActiveMatrix, FlexibleEncoder, ReadoutChain, ScanSchedule
from ..core.measurement import get_measurement
from ..core.theory import required_measurements

__all__ = ["CommCostResult", "run_comm_cost", "run_encoder_check"]


@dataclass
class CommCostResult:
    """Cost accounting for one array size / sampling fraction."""

    array_shape: tuple[int, int]
    m: int
    n: int
    scan_cycles: int
    cost_ratio: float
    eq1_estimate: int

    def row(self) -> str:
        """One table row."""
        rows, cols = self.array_shape
        return (
            f"{rows:>4}x{cols:<4} M={self.m:>5} N={self.n:>5} "
            f"cycles={self.scan_cycles:>4} cost={self.cost_ratio:5.2f} "
            f"Eq.(1) M~{self.eq1_estimate}"
        )


def run_comm_cost(
    array_shapes: tuple[tuple[int, int], ...] = ((16, 16), (32, 32), (64, 64)),
    sampling_fraction: float = 0.5,
    seed: int = 0,
) -> list[CommCostResult]:
    """Cost table across array sizes at the paper's M/N ~ 0.5."""
    if not 0.0 < sampling_fraction <= 1.0:
        raise ValueError("sampling_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    model = get_measurement("row_sampling")
    results = []
    for shape in array_shapes:
        rows, cols = shape
        n = rows * cols
        m = int(round(sampling_fraction * n))
        phi = model.draw(shape, m, rng)
        schedule = ScanSchedule.from_phi(phi, shape)
        cost = schedule.communication_cost()
        results.append(
            CommCostResult(
                array_shape=shape,
                m=m,
                n=n,
                scan_cycles=cost["scan_cycles"],
                cost_ratio=cost["cost_ratio"],
                eq1_estimate=required_measurements(max(1, n // 2), n),
            )
        )
    return results


def run_encoder_check(
    shape: tuple[int, int] = (16, 16),
    sampling_fraction: float = 0.5,
    seed: int = 0,
) -> dict:
    """ENC: hardware-modelled scan equals ``Phi_M @ y`` (ideal chain).

    Uses a noise-free, un-varied array so the only transformations are
    the scan ordering and the (fine) ADC quantisation; reports the max
    deviation and the scan-cycle count.
    """
    rng = np.random.default_rng(seed)
    rows, cols = shape
    n = rows * cols
    frame = rng.random(shape)
    array = ActiveMatrix(shape)
    readout = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=16)
    encoder = FlexibleEncoder(array, readout=readout)
    m = int(round(sampling_fraction * n))
    phi = get_measurement("row_sampling").draw(shape, m, rng)
    output = encoder.scan_normalized(frame, phi)
    expected = phi.apply(frame.ravel())
    deviation = float(np.max(np.abs(output.measurements - expected)))
    return {
        "max_deviation": deviation,
        "scan_cycles": output.schedule.num_cycles,
        "expected_cycles": cols,
        "measurements": output.schedule.total_reads,
        "m": m,
    }
