"""Experiment FIG2: DCT sparsity statistics of body signals (Fig. 2).

Fig. 2a -- sorted DCT coefficient magnitudes of one frame per modality
(temperature 32x32, pressure 41x41, ultrasound 100x33) decay rapidly.
Fig. 2b -- over 100 samples per modality, ~50 % of coefficients exceed
1e-4 of the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import instrument
from ..datasets import (
    PressureMapGenerator,
    SparsityStats,
    ThermalHandGenerator,
    UltrasoundGenerator,
    sorted_dct_magnitudes,
    sparsity_stats,
)

__all__ = ["Fig2Result", "run_fig2", "MODALITIES"]

MODALITIES = ("temperature", "pressure", "ultrasound")


def _generator(modality: str, seed: int):
    if modality == "temperature":
        return ThermalHandGenerator(seed=seed)
    if modality == "pressure":
        return PressureMapGenerator(seed=seed)
    if modality == "ultrasound":
        return UltrasoundGenerator(seed=seed)
    raise ValueError(f"unknown modality {modality!r}")


@dataclass
class Fig2Result:
    """Both panels of Fig. 2 for one modality."""

    modality: str
    array_shape: tuple[int, int]
    sorted_magnitudes: np.ndarray
    stats: SparsityStats

    def row(self) -> str:
        """One table row: modality, shape, mean significant fraction."""
        rows, cols = self.array_shape
        return (
            f"{self.modality:>12}  {rows:>4}x{cols:<4} "
            f"significant = {self.stats.mean_count:8.1f} / {self.stats.frame_size} "
            f"({self.stats.mean_fraction:5.1%})"
        )


def run_fig2(num_samples: int = 100, seed: int = 0) -> list[Fig2Result]:
    """Regenerate both Fig. 2 panels for all three modalities."""
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    results = []
    with instrument.span(
        "experiment.fig2_sparsity", num_samples=num_samples, seed=seed
    ):
        for modality in MODALITIES:
            with instrument.span("experiment.fig2_modality", modality=modality):
                generator = _generator(modality, seed)
                frames = generator.frames(num_samples)
                results.append(
                    Fig2Result(
                        modality=modality,
                        array_shape=generator.shape,
                        sorted_magnitudes=sorted_dct_magnitudes(frames[0]),
                        stats=sparsity_stats(frames),
                    )
                )
    return results


def format_table(results: list[Fig2Result]) -> str:
    """Fig. 2b as a printable table."""
    lines = ["Fig. 2b -- significant DCT coefficients (threshold 1e-4 max)"]
    lines.extend(result.row() for result in results)
    return "\n".join(lines)
