"""Experiment FIG5: the fabricated encoder building blocks (Fig. 5).

* FIG5b -- Pt temperature sensor: current-vs-temperature linearity at
  the paper's bias (low-enabled word line, 500/25 um access TFT);
* FIG5cd -- 8-stage shift register: 304 TFTs functioning at a 10 kHz
  clock and 1 kHz data at VDD = 3 V;
* FIG5e -- self-biased amplifier: 50 mV input at 30 kHz amplified to
  the volt level (paper: 1.3 V, ~28 dB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.amplifier import AmplifierMeasurement, SelfBiasedAmplifier
from ..circuits.shift_register import ShiftRegister, ShiftRegisterResult
from ..devices.temperature_sensor import TemperaturePixel

__all__ = [
    "SensorCurve",
    "run_fig5b",
    "run_fig5cd",
    "run_fig5e",
]


@dataclass
class SensorCurve:
    """Fig. 5b: sensor current vs temperature + linearity figure."""

    temperatures_c: np.ndarray
    currents_a: np.ndarray
    linearity_error: float
    inversion_rmse_c: float

    def row(self) -> str:
        """One-line summary."""
        return (
            f"Fig. 5b: I(T) from {self.currents_a.max() * 1e6:.2f} uA to "
            f"{self.currents_a.min() * 1e6:.2f} uA over "
            f"[{self.temperatures_c.min():g}, {self.temperatures_c.max():g}] C, "
            f"linearity error {self.linearity_error:.2%}, "
            f"inversion RMSE {self.inversion_rmse_c:.3f} C"
        )


def run_fig5b(
    t_low: float = 20.0, t_high: float = 100.0, points: int = 41
) -> SensorCurve:
    """Regenerate the Fig. 5b sensor characteristic."""
    pixel = TemperaturePixel()
    temperatures = np.linspace(t_low, t_high, points)
    currents = pixel.read_current(temperatures)
    recovered = pixel.temperature_from_current(currents)
    inversion_rmse = float(np.sqrt(np.mean((recovered - temperatures) ** 2)))
    return SensorCurve(
        temperatures_c=temperatures,
        currents_a=np.asarray(currents),
        linearity_error=pixel.linearity_error(t_low, t_high, points),
        inversion_rmse_c=inversion_rmse,
    )


def run_fig5cd(
    clock_hz: float = 10_000.0, data_hz: float = 1_000.0, vdd: float = 3.0
) -> ShiftRegisterResult:
    """Regenerate the Fig. 5c-d shift-register measurement."""
    return ShiftRegister(stages=8).simulate(
        clock_hz=clock_hz, data_hz=data_hz, vdd=vdd
    )


def run_fig5e(
    input_amplitude_v: float = 0.05, frequency_hz: float = 30_000.0
) -> AmplifierMeasurement:
    """Regenerate the Fig. 5e amplifier measurement."""
    return SelfBiasedAmplifier().measure(
        input_amplitude_v=input_amplitude_v, frequency_hz=frequency_hz
    )
