"""Experiment FIG6a: temperature-imaging RMSE with and without CS.

The paper's Fig. 6a sweeps the sampling percentage (45-60 %) against
sparse-error rates (0-20 %) on the thermal dataset, with defective
pixels excluded from sampling (Sec. 4.2's tested-defects assumption).
Headline: at ~10 % sparse errors, RMSE drops from 0.20 (raw corrupted
frames) to 0.05 (CS reconstruction).

Measurement noise ``eps`` (Eq. 2) defaults to a realistic front-end
level so the RMSE floor behaves like the paper's: decreasing in the
sampling percentage with diminishing returns.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import instrument
from ..core.pipeline import RobustnessSweep, SweepPoint
from ..core.strategies import OracleExclusionStrategy
from ..datasets import ThermalHandGenerator

__all__ = ["run_fig6a", "default_sweep", "OracleSweepFactory"]


@dataclass(frozen=True)
class OracleSweepFactory:
    """Picklable ``fraction -> OracleExclusionStrategy`` factory.

    A plain closure would bind the solver/noise parameters just as
    well, but closures cannot cross a process-pool boundary; a frozen
    dataclass with ``__call__`` pickles cleanly, so the Fig. 6a sweep
    can distribute its grid points over workers.
    """

    solver: str = "fista"
    noise_sigma: float = 0.02
    measurement: str = "row_sampling"

    def __call__(self, fraction: float) -> OracleExclusionStrategy:
        """Build the strategy for one sampling fraction."""
        return OracleExclusionStrategy(
            sampling_fraction=fraction,
            solver=self.solver,
            noise_sigma=self.noise_sigma,
            measurement=self.measurement,
        )


def default_sweep(
    sampling_fractions: tuple[float, ...] = (0.45, 0.50, 0.55, 0.60),
    error_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20),
    solver: str = "fista",
    noise_sigma: float = 0.02,
    seed: int = 0,
    measurement: str = "row_sampling",
) -> RobustnessSweep:
    """The Fig. 6a sweep object (oracle-exclusion strategy).

    ``measurement`` selects the sampling family (any name registered in
    :mod:`repro.core.measurement`); families without exclusion support
    can still run the error-free column of the sweep.
    """
    return RobustnessSweep(
        sampling_fractions=sampling_fractions,
        error_rates=error_rates,
        strategy_factory=OracleSweepFactory(
            solver=solver, noise_sigma=noise_sigma, measurement=measurement
        ),
        seed=seed,
    )


def run_fig6a(
    num_frames: int = 8,
    sampling_fractions: tuple[float, ...] = (0.45, 0.50, 0.55, 0.60),
    error_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20),
    solver: str = "fista",
    noise_sigma: float = 0.02,
    seed: int = 0,
    workers: int = 1,
    measurement: str = "row_sampling",
) -> list[SweepPoint]:
    """Regenerate the Fig. 6a grid on synthetic thermal frames.

    ``workers > 1`` distributes grid points over a process pool with
    results identical to the sequential sweep (every point derives its
    own RNG stream from the seed).  ``measurement`` reruns the same grid
    under a different sampling family (dense codes, block sampling).
    """
    with instrument.span(
        "experiment.fig6a_rmse",
        num_frames=num_frames,
        solver=solver,
        seed=seed,
        measurement=measurement,
    ):
        frames = ThermalHandGenerator(seed=seed).frames(num_frames)
        sweep = default_sweep(
            sampling_fractions=sampling_fractions,
            error_rates=error_rates,
            solver=solver,
            noise_sigma=noise_sigma,
            seed=seed,
            measurement=measurement,
        )
        return sweep.run(frames, executor=workers if workers > 1 else None)


def format_table(points: list[SweepPoint]) -> str:
    """Fig. 6a as a printable table."""
    lines = [
        "Fig. 6a -- temperature RMSE",
        f"{'sampling':>9} {'err rate':>9} {'RMSE w/ CS':>11} {'RMSE w/o CS':>12}",
    ]
    for point in points:
        lines.append(
            f"{point.sampling_fraction:>9.2f} {point.error_rate:>9.2f} "
            f"{point.rmse_with_cs:>11.4f} {point.rmse_without_cs:>12.4f}"
        )
    return "\n".join(lines)
