"""Experiment FIG6b: tactile object-recognition accuracy with/without CS.

The paper trains a ResNet on the 26-object tactile dataset and
evaluates classification accuracy when test frames suffer sparse
errors: without CS the accuracy collapses as the error rate grows;
routing the corrupted frames through the CS sample/reconstruct chain
recovers most of it (65 % -> 84 % at ~10 % errors).

The experiment is organised so the (expensive) ResNet training happens
once; the corruption/reconstruction grid reuses the trained model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import classification_accuracy
from ..core.pipeline import process_frames
from ..core.strategies import OracleExclusionStrategy
from ..datasets import make_tactile_dataset
from ..ml import Sequential, Trainer, build_resnet

__all__ = ["AccuracyPoint", "TactileExperiment", "run_fig6b"]


@dataclass
class AccuracyPoint:
    """Accuracy at one (sampling fraction, error rate) grid point."""

    sampling_fraction: float
    error_rate: float
    accuracy_with_cs: float
    accuracy_without_cs: float


class TactileExperiment:
    """Train once, evaluate the robustness grid many times.

    Parameters
    ----------
    samples_per_class:
        Training-set size per object (plus val/test splits of roughly
        a quarter of that each).
    epochs:
        Training epoch cap.
    num_classes:
        Objects to include (26 in the paper; reduce for quick runs).
    seed:
        Master seed.
    """

    def __init__(
        self,
        samples_per_class: int = 20,
        epochs: int = 15,
        num_classes: int = 26,
        seed: int = 0,
        augment_copies: int = 0,
    ):
        self.seed = seed
        self.num_classes = num_classes
        val_count = max(4, samples_per_class // 2)
        self.train = make_tactile_dataset(
            samples_per_class, seed=seed, num_classes=num_classes
        )
        if augment_copies > 0:
            from ..ml.augment import Augmenter

            augmenter = Augmenter(seed=seed, rotate=False, max_shift=1,
                                  gain_jitter=0.05, noise_sigma=0.005)
            frames, labels = augmenter.expand(
                self.train.frames, self.train.labels, copies=augment_copies
            )
            self.train = type(self.train)(frames=frames, labels=labels)
        self.val = make_tactile_dataset(
            val_count, seed=seed + 100, num_classes=num_classes
        )
        self.test = make_tactile_dataset(
            max(4, samples_per_class // 3), seed=seed + 200, num_classes=num_classes
        )
        self.model: Sequential = build_resnet(
            num_classes=num_classes, seed=seed + 1
        )
        self.trainer = Trainer(max_epochs=epochs, seed=seed)
        self.history = None

    def fit(self, verbose: bool = False):
        """Train the classifier on clean frames (the paper's setup)."""
        self.history = self.trainer.fit(
            self.model,
            self.train.frames,
            self.train.labels,
            self.val.frames,
            self.val.labels,
            verbose=verbose,
        )
        return self.history

    def clean_accuracy(self) -> float:
        """Accuracy on uncorrupted test frames."""
        predictions = self.model.predict(self.test.frames[:, None, :, :])
        return classification_accuracy(self.test.labels, predictions)

    def per_class_report(self) -> dict[int, float]:
        """Per-class accuracy on clean test frames.

        Exposes which objects the classifier confuses -- the paper's
        accuracy numbers average over 26 objects with very different
        individual difficulty.
        """
        from ..core.metrics import confusion_matrix

        predictions = self.model.predict(self.test.frames[:, None, :, :])
        matrix = confusion_matrix(
            self.test.labels, predictions, self.num_classes
        )
        report = {}
        for class_index in range(self.num_classes):
            total = matrix[class_index].sum()
            if total == 0:
                continue
            report[class_index] = float(
                matrix[class_index, class_index] / total
            )
        return report

    def evaluate_point(
        self,
        sampling_fraction: float,
        error_rate: float,
        solver: str = "fista",
        noise_sigma: float = 0.02,
    ) -> AccuracyPoint:
        """One grid point: corrupt the test set, classify both views."""
        if self.history is None:
            raise RuntimeError("call fit() before evaluating")
        strategy = OracleExclusionStrategy(
            sampling_fraction=sampling_fraction,
            solver=solver,
            noise_sigma=noise_sigma,
        )
        corrupted, reconstructed = process_frames(
            self.test.frames,
            error_rate,
            strategy,
            seed=self.seed + int(sampling_fraction * 1000) + int(error_rate * 100),
        )
        predictions_raw = self.model.predict(corrupted[:, None, :, :])
        predictions_cs = self.model.predict(reconstructed[:, None, :, :])
        return AccuracyPoint(
            sampling_fraction=sampling_fraction,
            error_rate=error_rate,
            accuracy_with_cs=classification_accuracy(
                self.test.labels, predictions_cs
            ),
            accuracy_without_cs=classification_accuracy(
                self.test.labels, predictions_raw
            ),
        )

    def grid(
        self,
        sampling_fractions: tuple[float, ...] = (0.45, 0.50, 0.55, 0.60),
        error_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20),
    ) -> list[AccuracyPoint]:
        """The full Fig. 6b grid."""
        return [
            self.evaluate_point(fraction, rate)
            for fraction in sampling_fractions
            for rate in error_rates
        ]


def run_fig6b(
    samples_per_class: int = 20,
    epochs: int = 15,
    num_classes: int = 26,
    sampling_fractions: tuple[float, ...] = (0.50,),
    error_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20),
    seed: int = 0,
    verbose: bool = False,
) -> tuple[float, list[AccuracyPoint]]:
    """Train + sweep; returns (clean accuracy, grid points)."""
    experiment = TactileExperiment(
        samples_per_class=samples_per_class,
        epochs=epochs,
        num_classes=num_classes,
        seed=seed,
    )
    experiment.fit(verbose=verbose)
    return experiment.clean_accuracy(), experiment.grid(
        sampling_fractions=sampling_fractions, error_rates=error_rates
    )


def format_table(clean_accuracy: float, points: list[AccuracyPoint]) -> str:
    """Fig. 6b as a printable table."""
    lines = [
        f"Fig. 6b -- tactile classification (clean accuracy {clean_accuracy:.1%})",
        f"{'sampling':>9} {'err rate':>9} {'acc w/ CS':>10} {'acc w/o CS':>11}",
    ]
    for point in points:
        lines.append(
            f"{point.sampling_fraction:>9.2f} {point.error_rate:>9.2f} "
            f"{point.accuracy_with_cs:>10.1%} {point.accuracy_without_cs:>11.1%}"
        )
    return "\n".join(lines)
