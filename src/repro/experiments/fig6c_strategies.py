"""Experiment FIG6c: advanced sampling strategies without defect maps.

Sec. 4.3 drops the tested-defects assumption: the decoder does not
know which pixels are corrupted.  Two remedies are compared on the
thermal data:

* **Resampling**: 10 independent sample/reconstruct rounds, aggregated
  per pixel by the mean or (more robustly) the median;
* **RPCA outlier detection**: robust PCA over a stack of frames flags
  outlier pixels, which are then excluded before a single
  sample/reconstruct round.

The paper finds RPCA overtakes resampling above ~8 % sparse errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import instrument
from ..core.errors import inject_sparse_errors
from ..core.metrics import rmse
from ..core.pipeline import normalize_frame
from ..core.strategies import ResamplingStrategy, RpcaExclusionStrategy
from ..datasets import ThermalHandGenerator

__all__ = ["StrategyPoint", "run_fig6c"]


@dataclass
class StrategyPoint:
    """RMSE of each strategy at one sparse-error rate."""

    error_rate: float
    rmse_rpca: float
    rmse_resample_median: float
    rmse_resample_mean: float
    rmse_no_cs: float


def run_fig6c(
    error_rates: tuple[float, ...] = (0.0, 0.03, 0.05, 0.08, 0.10, 0.15, 0.20),
    sampling_fraction: float = 0.5,
    rounds: int = 10,
    num_frames: int = 6,
    solver: str = "fista",
    seed: int = 0,
) -> list[StrategyPoint]:
    """Regenerate Fig. 6c: strategy RMSE vs sparse-error rate.

    ``num_frames`` thermal frames form the RPCA stack (a short temporal
    burst of the same scene with per-frame corruption); RMSE is
    averaged across the stack.
    """
    if rounds < 1 or num_frames < 2:
        raise ValueError("need rounds >= 1 and num_frames >= 2")
    generator = ThermalHandGenerator(seed=seed)
    base = normalize_frame(generator.frame())
    points = []
    with instrument.span(
        "experiment.fig6c_strategies",
        num_frames=num_frames,
        rounds=rounds,
        solver=solver,
        seed=seed,
    ):
        for rate in error_rates:
            rng = np.random.default_rng([seed, int(rate * 1000)])
            # Temporal burst: small smooth drift of the same scene.
            clean_stack = np.stack(
                [
                    np.clip(base + 0.02 * np.sin(0.5 * k) , 0.0, 1.0)
                    for k in range(num_frames)
                ]
            )
            corrupted_stack = np.empty_like(clean_stack)
            for k in range(num_frames):
                corrupted_stack[k], _ = inject_sparse_errors(clean_stack[k], rate, rng)

            median = ResamplingStrategy(
                sampling_fraction=sampling_fraction,
                rounds=rounds,
                aggregate="median",
                solver=solver,
            )
            mean = ResamplingStrategy(
                sampling_fraction=sampling_fraction,
                rounds=rounds,
                aggregate="mean",
                solver=solver,
            )
            rpca_strategy = RpcaExclusionStrategy(
                sampling_fraction=sampling_fraction, solver=solver
            )
            rmse_median, rmse_mean, rmse_rpca, rmse_raw = [], [], [], []
            for k in range(num_frames):
                clean = clean_stack[k]
                corrupted = corrupted_stack[k]
                rmse_median.append(rmse(clean, median.reconstruct(corrupted, rng)))
                rmse_mean.append(rmse(clean, mean.reconstruct(corrupted, rng)))
                rmse_rpca.append(
                    rmse(
                        clean,
                        rpca_strategy.reconstruct(
                            corrupted, rng,
                            frame_stack=corrupted_stack, frame_index=k,
                        ),
                    )
                )
                rmse_raw.append(rmse(clean, corrupted))
            points.append(
                StrategyPoint(
                    error_rate=rate,
                    rmse_rpca=float(np.mean(rmse_rpca)),
                    rmse_resample_median=float(np.mean(rmse_median)),
                    rmse_resample_mean=float(np.mean(rmse_mean)),
                    rmse_no_cs=float(np.mean(rmse_raw)),
                )
            )
    return points


def format_table(points: list[StrategyPoint]) -> str:
    """Fig. 6c as a printable table."""
    lines = [
        "Fig. 6c -- sampling strategies (no defect map)",
        f"{'err rate':>9} {'RPCA':>8} {'median':>8} {'mean':>8} {'no CS':>8}",
    ]
    for point in points:
        lines.append(
            f"{point.error_rate:>9.2f} {point.rmse_rpca:>8.4f} "
            f"{point.rmse_resample_median:>8.4f} "
            f"{point.rmse_resample_mean:>8.4f} {point.rmse_no_cs:>8.4f}"
        )
    return "\n".join(lines)
