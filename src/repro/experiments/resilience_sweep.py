"""Experiment RES: decode availability under injected decoder faults.

The paper's robustness results (Fig. 6) assume the *decoder* is
perfect and only the *pixels* fail.  This experiment inverts that:
pixels are clean, and the decode stack itself is chaos-tested with the
full fault taxonomy (crashing solvers, divergence, measurement dropout,
NaN poisoning, budget exhaustion) at increasing fault rates, with the
:class:`~repro.resilience.ResilientDecoder` supervising recovery.

For each fault rate the sweep reports frame delivery (must stay 100 %
by construction), the ok/degraded/fallback split, median RMSE against
the fault-free decode, and how often the retry/fallback machinery was
exercised -- i.e. a degradation curve for the decode *runtime* rather
than the sensor array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import instrument
from ..core.executor import collect_values, resolve_executor
from ..core.metrics import rmse
from ..datasets import ThermalHandGenerator
from ..resilience import (
    ResiliencePolicy,
    ResilientDecoder,
    chaos,
    default_taxonomy,
)

__all__ = ["ResiliencePoint", "run_resilience_sweep", "format_table"]


@dataclass(frozen=True)
class ResiliencePoint:
    """Aggregate decode behaviour at one injected fault rate."""

    fault_rate: float
    frames: int
    delivered: int
    ok: int
    degraded: int
    fallback: int
    median_rmse: float
    total_attempts: int
    faults_injected: int

    def row(self) -> str:
        """One formatted table row."""
        return (
            f"{self.fault_rate:>10.2f} {self.delivered:>9d}/{self.frames:<4d}"
            f"{self.ok:>5d} {self.degraded:>9d} {self.fallback:>9d} "
            f"{self.median_rmse:>12.4f} {self.total_attempts:>9d} "
            f"{self.faults_injected:>8d}"
        )


def _resilience_point_task(args):
    """Chaos-test one fault-rate point (picklable task body).

    Installs its own injector set for the duration of the point, so it
    must not run concurrently in one process (the solve-hook registry
    is process-global): distribute points with a *process* pool, never
    a thread pool.  RNGs derive from ``(seed, fault_rate, frame)``, so
    a point's result is independent of where it runs.
    """
    fault_rate, frames, sampling_fraction, seed = args
    decoder = ResilientDecoder(policy=ResiliencePolicy())
    injectors = default_taxonomy(fault_rate, seed=seed)
    counts = {"ok": 0, "degraded": 0, "fallback": 0}
    errors: list[float] = []
    attempts = 0
    delivered = 0
    with instrument.span(
        "experiment.resilience_point", fault_rate=fault_rate
    ):
        with chaos(*injectors):
            for index, frame in enumerate(frames):
                rng = np.random.default_rng(
                    [seed, int(fault_rate * 1000), index]
                )
                outcome = decoder.decode(frame, sampling_fraction, rng)
                counts[outcome.status] += 1
                attempts += len(outcome.attempts)
                if outcome.frame is not None:
                    delivered += 1
                    errors.append(rmse(frame, outcome.frame))
    return ResiliencePoint(
        fault_rate=fault_rate,
        frames=len(frames),
        delivered=delivered,
        ok=counts["ok"],
        degraded=counts["degraded"],
        fallback=counts["fallback"],
        median_rmse=float(np.median(errors)) if errors else float("nan"),
        total_attempts=attempts,
        faults_injected=sum(inj.trips for inj in injectors),
    )


def run_resilience_sweep(
    num_frames: int = 6,
    fault_rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
    sampling_fraction: float = 0.5,
    seed: int = 0,
    workers: int = 1,
) -> list[ResiliencePoint]:
    """Chaos-test the resilient decode runtime over a fault-rate sweep.

    Every grid point decodes the same ``num_frames`` thermal frames
    under ``default_taxonomy(fault_rate)``; RNGs are derived from
    ``seed`` throughout, so the whole sweep is reproducible.

    ``workers > 1`` distributes the points over a *process* pool (each
    worker installs its own chaos injectors; thread pools would race on
    the process-global solve-hook registry) with identical results.
    """
    frames = ThermalHandGenerator(seed=seed).frames(num_frames)
    with instrument.span(
        "experiment.resilience_sweep",
        num_frames=num_frames,
        sampling_fraction=sampling_fraction,
        seed=seed,
    ):
        executor = resolve_executor(workers)
        tasks = [
            (fault_rate, frames, sampling_fraction, seed)
            for fault_rate in fault_rates
        ]
        return collect_values(
            executor.map_tasks(
                _resilience_point_task, tasks, label="resilience_sweep"
            )
        )


def format_table(points: list[ResiliencePoint]) -> str:
    """The sweep as a printable availability table."""
    lines = [
        "RES -- decode availability under injected faults",
        f"{'fault rate':>10} {'delivered':>14}{'ok':>5} {'degraded':>9} "
        f"{'fallback':>9} {'median RMSE':>12} {'attempts':>9} {'faults':>8}",
    ]
    lines.extend(point.row() for point in points)
    return "\n".join(lines)
