"""Experiment SCALE: decode cost vs array size (the "large area" axis).

The paper's title promises *large area*; the decoder's cost determines
how large.  This experiment measures wall-clock decode time and
reconstruction quality across array sizes for

* the whole-frame FISTA solve (one program over all N unknowns), and
* the block-wise decode (independent 32x32 tiles -- the
  parallelisable path).

Per-iteration cost of the matrix-free solve is O(N log N); the
iteration count also grows slowly with N, so the whole-frame curve is
mildly super-linear while the block curve is exactly linear in the
tile count (and embarrassingly parallel in silicon).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.blocks import BlockProcessor
from ..core.metrics import rmse
from ..core.strategies import sample_and_reconstruct
from ..datasets import ThermalHandGenerator

__all__ = ["ScalePoint", "run_scaling"]


@dataclass
class ScalePoint:
    """Decode cost at one array size."""

    side: int
    n: int
    time_full_s: float
    time_block_s: float
    rmse_full: float
    rmse_block: float

    def row(self) -> str:
        """One table row."""
        return (
            f"{self.side:>4}x{self.side:<4} N={self.n:>6} "
            f"full: {self.time_full_s:6.2f} s / {self.rmse_full:.4f}  "
            f"blocks: {self.time_block_s:6.2f} s / {self.rmse_block:.4f}"
        )


def run_scaling(
    sides: tuple[int, ...] = (32, 64, 128),
    sampling_fraction: float = 0.5,
    block_side: int = 32,
    seed: int = 0,
) -> list[ScalePoint]:
    """Measure whole-frame vs block decode across array sizes."""
    points = []
    for side in sides:
        if side % block_side:
            raise ValueError(f"side {side} not divisible by block {block_side}")
        generator = ThermalHandGenerator(shape=(side, side), seed=seed)
        frame = generator.frame()
        rng_full = np.random.default_rng([seed, side, 1])
        start = time.perf_counter()
        full = sample_and_reconstruct(frame, sampling_fraction, rng_full)
        time_full = time.perf_counter() - start
        processor = BlockProcessor(
            block_shape=(block_side, block_side),
            sampling_fraction=sampling_fraction,
        )
        rng_block = np.random.default_rng([seed, side, 2])
        start = time.perf_counter()
        blocked = processor.reconstruct(frame, rng_block)
        time_block = time.perf_counter() - start
        points.append(
            ScalePoint(
                side=side,
                n=side * side,
                time_full_s=time_full,
                time_block_s=time_block,
                rmse_full=rmse(frame, full),
                rmse_block=rmse(frame, blocked),
            )
        )
    return points
