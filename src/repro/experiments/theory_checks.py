"""Experiments EQ1 and EQ2: the paper's compressed-sensing estimates.

EQ1 -- Eq. (1), ``M ~ K log(N/K)``: a phase-transition sweep measures
the empirical measurement count needed to recover K-sparse signals and
compares it with the estimate (and with the paper's reading that
``K log(N/K) ~ N/2`` at body-signal sparsity).

EQ2 -- Eq. (2): the reconstruction error splits into a measurement
term ``sqrt(N/M) eps`` and an approximation term ``||x - x_K||_1 /
sqrt(K)``; sweeps over noise and sparsity verify each term's scaling
dominates in its regime and the bound stays above the observed error
(up to the theorem's constant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dct import idct2
from ..core.engine import get_engine
from ..core.measurement import get_measurement
from ..core.metrics import rmse
from ..core.solvers import solve
from ..core.theory import error_bound, required_measurements

__all__ = ["PhasePoint", "run_eq1_phase_transition", "BoundPoint", "run_eq2_bound"]


def _sparse_image(shape, sparsity, rng) -> np.ndarray:
    """A frame that is exactly K-sparse in the DCT domain, with the
    energy biased to low frequencies like real body signals."""
    rows, cols = shape
    coefficients = np.zeros(rows * cols)
    u, v = np.mgrid[0:rows, 0:cols]
    weights = 1.0 / (1.0 + u + v).ravel()
    support = rng.choice(
        rows * cols, size=sparsity, replace=False,
        p=weights / weights.sum(),
    )
    coefficients[support] = rng.normal(1.0, 0.3, size=sparsity) * rng.choice(
        [-1.0, 1.0], size=sparsity
    )
    return idct2(coefficients.reshape(shape))


@dataclass
class PhasePoint:
    """Empirical recovery at one (K, M) pair."""

    sparsity: int
    m: int
    success_rate: float
    eq1_estimate: int


def run_eq1_phase_transition(
    shape: tuple[int, int] = (16, 16),
    sparsities: tuple[int, ...] = (8, 16, 32),
    m_grid: tuple[float, ...] = (0.15, 0.25, 0.35, 0.5, 0.65, 0.8),
    trials: int = 4,
    solver: str = "fista",
    success_rmse: float = 1e-2,
    seed: int = 0,
) -> list[PhasePoint]:
    """Measure recovery success vs measurement count for K-sparse frames."""
    rng = np.random.default_rng(seed)
    rows, cols = shape
    n = rows * cols
    engine = get_engine()
    model = get_measurement("row_sampling")
    points = []
    for sparsity in sparsities:
        for fraction in m_grid:
            m = max(1, int(round(fraction * n)))
            successes = 0
            for _ in range(trials):
                image = _sparse_image(shape, sparsity, rng)
                phi = model.draw(shape, m, rng)
                operator = engine.operator(phi, shape)
                result = solve(
                    solver, operator, phi.apply(image.ravel()), sparsity=sparsity
                )
                recovered = operator.synthesize(result.coefficients).reshape(shape)
                scale = max(np.abs(image).max(), 1e-12)
                if rmse(image, recovered) / scale < success_rmse:
                    successes += 1
            points.append(
                PhasePoint(
                    sparsity=sparsity,
                    m=m,
                    success_rate=successes / trials,
                    eq1_estimate=required_measurements(sparsity, n),
                )
            )
    return points


@dataclass
class BoundPoint:
    """Observed error vs the Eq. (2) bound at one setting."""

    m: int
    noise: float
    sparsity: int
    observed_rmse_l2: float
    bound_measurement: float
    bound_approximation: float
    bound_total: float


def run_eq2_bound(
    shape: tuple[int, int] = (16, 16),
    m_fraction: float = 0.5,
    noise_levels: tuple[float, ...] = (0.0, 0.01, 0.05),
    sparsity: int = 40,
    solver: str = "fista",
    seed: int = 0,
) -> list[BoundPoint]:
    """Check the Eq. (2) error decomposition over a noise sweep."""
    rng = np.random.default_rng(seed)
    rows, cols = shape
    n = rows * cols
    m = max(1, int(round(m_fraction * n)))
    engine = get_engine()
    image = _sparse_image(shape, sparsity, rng)
    coefficients = engine.basis_for(shape).analyze(image.ravel())
    model = get_measurement("row_sampling")
    points = []
    for noise in noise_levels:
        phi = model.draw(shape, m, rng)
        operator = engine.operator(phi, shape)
        measurements = phi.apply(image.ravel())
        if noise > 0:
            measurements = measurements + rng.normal(0.0, noise, size=m)
        result = solve(solver, operator, measurements, sparsity=sparsity)
        recovered = operator.synthesize(result.coefficients)
        observed = float(np.linalg.norm(recovered - image.ravel()))
        # Eq. (2)'s eps is the measurement-noise *norm* (Candes/Wakin
        # convention ||e||_2 <= eps), i.e. sigma * sqrt(M) for i.i.d.
        # per-sample noise of std sigma.
        terms = error_bound(coefficients, m, noise * np.sqrt(m), sparsity)
        points.append(
            BoundPoint(
                m=m,
                noise=noise,
                sparsity=sparsity,
                observed_rmse_l2=observed,
                bound_measurement=terms["measurement_term"],
                bound_approximation=terms["approximation_term"],
                bound_total=terms["total"],
            )
        )
    return points
