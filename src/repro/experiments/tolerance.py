"""Experiment TOL: how many sparse errors can the system tolerate?

Sec. 1: "the system can tolerate >20 % sparse errors (device defects or
transient errors) while still being able to achieve very high level
system robustness for practical applications", and Sec. 2 argues from
Eq. (1) that "up to 50 % sparse errors can potentially be compensated".

This experiment sweeps the error rate well past the paper's 0-20 %
window and finds the tolerance limit: the largest rate at which the CS
reconstruction RMSE stays under a practicality threshold.  With oracle
exclusion, the mechanism is transparent -- every corrupted pixel is one
fewer healthy pixel to sample, so the limit is where the healthy pool
drops below the M the sparsity demands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import instrument
from ..core.executor import collect_values, resolve_executor
from ..core.metrics import rmse
from ..core.pipeline import evaluate_frame
from ..core.strategies import OracleExclusionStrategy
from ..datasets import ThermalHandGenerator

__all__ = ["TolerancePoint", "run_tolerance", "tolerance_limit"]


@dataclass
class TolerancePoint:
    """Mean RMSE at one sparse-error rate."""

    error_rate: float
    rmse_with_cs: float
    rmse_without_cs: float


def _tolerance_point_task(args):
    """Evaluate one error-rate point (picklable task body).

    The point's RNG derives from ``(seed, rate)`` exactly as the
    sequential loop's does, so distributed points reproduce it bitwise.
    """
    rate, frames, sampling_fraction, solver, seed = args
    strategy = OracleExclusionStrategy(
        sampling_fraction=sampling_fraction, solver=solver
    )
    rng = np.random.default_rng([seed, int(rate * 1000)])
    with_cs, without_cs = [], []
    for frame in frames:
        outcome = evaluate_frame(frame, rate, strategy, rng)
        with_cs.append(outcome.rmse_with_cs)
        without_cs.append(outcome.rmse_without_cs)
    return TolerancePoint(
        error_rate=rate,
        rmse_with_cs=float(np.mean(with_cs)),
        rmse_without_cs=float(np.mean(without_cs)),
    )


def run_tolerance(
    error_rates: tuple[float, ...] = (
        0.0, 0.10, 0.20, 0.30, 0.40, 0.45, 0.48,
    ),
    sampling_fraction: float = 0.5,
    num_frames: int = 4,
    solver: str = "fista",
    seed: int = 0,
    workers: int = 1,
) -> list[TolerancePoint]:
    """Sweep sparse-error rates beyond the paper's 0-20 % window.

    With ``sampling_fraction`` 0.5 the sweep can run up to just below
    50 % errors, where the healthy-pixel pool equals the measurement
    budget (the Sec. 2 potential limit).  ``workers > 1`` distributes
    the (independent, per-rate-seeded) points over a process pool with
    identical results.
    """
    if max(error_rates) + sampling_fraction > 1.0:
        raise ValueError(
            "error_rates + sampling_fraction must stay <= 1 (the oracle "
            "strategy cannot sample more pixels than remain healthy)"
        )
    frames = ThermalHandGenerator(seed=seed).frames(num_frames)
    with instrument.span(
        "experiment.tolerance",
        num_frames=num_frames,
        solver=solver,
        seed=seed,
    ):
        tasks = [
            (rate, frames, sampling_fraction, solver, seed)
            for rate in error_rates
        ]
        executor = resolve_executor(workers)
        return collect_values(
            executor.map_tasks(
                _tolerance_point_task, tasks, label="tolerance"
            )
        )


def tolerance_limit(
    points: list[TolerancePoint], rmse_threshold: float = 0.08
) -> float:
    """Largest swept error rate whose RMSE stays under the threshold."""
    passing = [p.error_rate for p in points if p.rmse_with_cs <= rmse_threshold]
    if not passing:
        return 0.0
    return max(passing)


def format_table(points: list[TolerancePoint]) -> str:
    """The tolerance sweep as a printable table."""
    lines = [
        "Sparse-error tolerance sweep (oracle exclusion, 50% sampling)",
        f"{'err rate':>9} {'RMSE w/ CS':>11} {'RMSE w/o CS':>12}",
    ]
    for point in points:
        lines.append(
            f"{point.error_rate:>9.2f} {point.rmse_with_cs:>11.4f} "
            f"{point.rmse_without_cs:>12.4f}"
        )
    return "\n".join(lines)
