"""repro.instrument -- dependency-free tracing and metrics.

The observability subsystem for the recovery pipeline: nestable timing
spans (:mod:`.tracer`), thread-safe counters/gauges/histograms
(:mod:`.metrics`) and JSON/table reporters (:mod:`.report`), plus a
profiling CLI (``python -m repro.instrument``).  Hooks are wired through
the hot paths (solvers, encoder, pipeline); see
``docs/INSTRUMENTATION.md`` for naming conventions and the JSON schema.

Design rule: **zero overhead when disabled**.  Instrumentation is off by
default; every hook funnels through :func:`span`, :func:`incr`,
:func:`observe` or :func:`set_gauge`, each of which is a single flag
check when disabled (``span`` returns the inert :data:`NULL_SPAN`
singleton, whose ``active`` attribute lets per-iteration recording be
skipped with one attribute lookup).

Typical use::

    from repro import instrument

    instrument.enable()
    points = run_fig6a(num_frames=2)
    report = instrument.report(meta={"experiment": "fig6a_rmse"})
    print(instrument.render_table(report))

or, scoped::

    with instrument.profiled() as session:
        run_fig6a(num_frames=2)
    report = session.report()

Set ``REPRO_INSTRUMENT=1`` in the environment to enable collection at
import time (used by the instrumented benchmark mode).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import (
    SCHEMA,
    build_report,
    counter_value,
    gauge_value,
    iter_span_dicts,
    json_safe,
    render_table,
    select_counters,
    validate_report,
    write_report,
)
from .tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SCHEMA",
    "Span",
    "Tracer",
    "build_report",
    "counter_value",
    "disable",
    "enable",
    "enabled",
    "gauge_value",
    "get_registry",
    "get_tracer",
    "incr",
    "iter_span_dicts",
    "json_safe",
    "observe",
    "profiled",
    "render_table",
    "report",
    "reset",
    "select_counters",
    "set_gauge",
    "span",
    "validate_report",
    "write_report",
]

_tracer = Tracer()
_registry = MetricsRegistry()
_enabled = os.environ.get("REPRO_INSTRUMENT", "") not in ("", "0")


def enabled() -> bool:
    """Whether collection is currently on."""
    return _enabled


def enable() -> None:
    """Turn collection on (spans and metrics start recording)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn collection off (hooks revert to no-ops)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Clear all collected spans and metrics (keeps the on/off state)."""
    _tracer.reset()
    _registry.reset()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def span(name: str, **attributes):
    """Open a span context manager, or :data:`NULL_SPAN` when disabled.

    The returned object always supports ``with``, ``.set(**attrs)``,
    ``.record(value)`` and ``.active`` -- call sites need no branches
    beyond an optional ``if sp.active`` around expensive-to-compute
    recordings.
    """
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, **attributes)


def incr(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    if _enabled:
        _registry.counter(name).add(amount)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    if _enabled:
        _registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    if _enabled:
        _registry.gauge(name).set(value)


def report(meta: dict | None = None) -> dict:
    """Build the JSON-safe report from the process-wide collectors."""
    return build_report(_tracer, _registry, meta=meta)


class ProfileSession:
    """Handle yielded by :func:`profiled`; builds reports after the fact."""

    def __init__(self, meta: dict | None = None):
        self.meta = dict(meta or {})

    def report(self, extra_meta: dict | None = None) -> dict:
        """The session's report (process-wide collectors + session meta)."""
        meta = dict(self.meta)
        meta.update(extra_meta or {})
        return build_report(_tracer, _registry, meta=meta)


@contextmanager
def profiled(meta: dict | None = None, reset_first: bool = True):
    """Enable collection for a ``with`` block, restoring state after.

    Parameters
    ----------
    meta:
        Context stamped into reports built from the yielded session.
    reset_first:
        Clear previously collected data on entry (default) so the
        session's report covers exactly the block.
    """
    global _enabled
    previous = _enabled
    if reset_first:
        reset()
    _enabled = True
    try:
        yield ProfileSession(meta)
    finally:
        _enabled = previous
