"""Profiling CLI: run a named experiment under full instrumentation.

Examples::

    # Profile the Fig. 6a RMSE grid end-to-end, write the JSON report.
    PYTHONPATH=src python -m repro.instrument --experiment fig6a_rmse \\
        --frames 2 --output fig6a.profile.json

    # Quick smoke profile of the Fig. 2 sparsity statistics.
    PYTHONPATH=src python -m repro.instrument --experiment fig2_sparsity \\
        --samples 6 --output fig2.profile.json

    # Validate a previously emitted report against the schema.
    PYTHONPATH=src python -m repro.instrument --validate fig2.profile.json

    # List profilable experiments.
    PYTHONPATH=src python -m repro.instrument --list

With ``--output`` the JSON report goes to the file and the human table
to stdout; without it the JSON goes to stdout and the table to stderr,
so ``python -m repro.instrument --experiment X > report.json`` works.
The report follows the schema in ``docs/INSTRUMENTATION.md`` and is
self-validated before being written.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import profiled, render_table, span, validate_report, write_report

__all__ = ["main", "profile_experiment", "PROFILES"]


def _profile_fig2(args) -> str:
    from ..experiments.fig2_sparsity import format_table, run_fig2

    results = run_fig2(num_samples=args.samples, seed=args.seed)
    return format_table(results)


def _profile_fig6a(args) -> str:
    from ..experiments.fig6a_rmse import format_table, run_fig6a

    points = run_fig6a(
        num_frames=args.frames, solver=args.solver, seed=args.seed
    )
    return format_table(points)


def _profile_fig6c(args) -> str:
    from ..experiments.fig6c_strategies import format_table, run_fig6c

    points = run_fig6c(
        num_frames=max(2, args.frames), solver=args.solver, seed=args.seed
    )
    return format_table(points)


def _profile_tolerance(args) -> str:
    from ..experiments.tolerance import format_table, run_tolerance

    points = run_tolerance(
        num_frames=args.frames, solver=args.solver, seed=args.seed
    )
    return format_table(points)


def _profile_comm_cost(args) -> str:
    from ..experiments.comm_cost import run_comm_cost

    return "\n".join(r.row() for r in run_comm_cost(seed=args.seed))


def _profile_scaling(args) -> str:
    from ..experiments.scaling import run_scaling

    return "\n".join(p.row() for p in run_scaling())


def _profile_resilience(args) -> str:
    from ..experiments.resilience_sweep import format_table, run_resilience_sweep

    points = run_resilience_sweep(num_frames=args.frames, seed=args.seed)
    return format_table(points)


def _profile_engine_stream(args) -> str:
    """Before/after bench of the engine cache on a same-shape stream.

    Decodes a 20-frame 16x16 stream twice: once with the pre-refactor
    per-call recipe (no cache, FFT basis, per-solve power iteration)
    and once with the default cached engine.  The wall-clock of each
    arm and their ratio land in the ``engine.stream.*`` gauges; the CI
    bench-smoke job fails when the cached path stops being measurably
    faster (a silent cache bypass).
    """
    import numpy as np

    from . import set_gauge
    from ..core.engine import DecodeContext, DecodeEngine

    shape = (16, 16)
    frames = max(2, args.frames if args.frames > 2 else 20)
    rng = np.random.default_rng(args.seed)
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    scene = [
        np.clip(
            np.exp(
                -((r - 8 - 3 * np.sin(0.3 * k)) ** 2 + (c - 8) ** 2) / 10.0
            )
            + 0.02 * rng.normal(size=shape),
            0.0,
            1.0,
        )
        for k in range(frames)
    ]
    plan = DecodeContext(
        shape=shape, sampling_fraction=0.5, solver=args.solver
    )

    def run_stream(engine: DecodeEngine, label: str) -> float:
        # Warm up imports/FFT plans outside the timed region.
        engine.decode(scene[0], plan, np.random.default_rng(args.seed))
        if engine.cache is not None:
            engine.cache.clear()
        start = time.perf_counter()
        with span(f"engine.stream.{label}", frames=frames):
            for k, frame in enumerate(scene):
                engine.decode(frame, plan, np.random.default_rng(1000 + k))
        return time.perf_counter() - start

    baseline_s = run_stream(
        DecodeEngine(cache=None, fast_basis=False), "baseline"
    )
    cached_s = run_stream(DecodeEngine(), "cached")
    speedup = baseline_s / cached_s if cached_s > 0 else float("inf")
    set_gauge("engine.stream.frames", frames)
    set_gauge("engine.stream.baseline_s", baseline_s)
    set_gauge("engine.stream.cached_s", cached_s)
    set_gauge("engine.stream.speedup", speedup)
    return (
        f"engine stream bench: {frames} frames at {shape[0]}x{shape[1]}, "
        f"solver={args.solver}\n"
        f"  per-call rebuild (pre-engine recipe): {baseline_s:.3f} s "
        f"({baseline_s / frames * 1e3:.1f} ms/frame)\n"
        f"  cached engine:                        {cached_s:.3f} s "
        f"({cached_s / frames * 1e3:.1f} ms/frame)\n"
        f"  speedup:                              {speedup:.2f}x"
    )


def _profile_implicit_operators(args) -> str:
    """Dense vs implicit operator mode on a same-shape decode stream.

    Decodes the same 64x64 stream twice through fresh engines: once in
    ``"dense"`` operator mode (materialised ``A = Phi_M @ Psi``, the
    pre-refactor representation) and once in the default ``"implicit"``
    mode (matrix-free FFT applies).  Wall-clock of each arm, their
    ratio, the operator-cache bytes each mode holds and the max
    reconstruction difference land in the ``implicit_operators.*``
    gauges; the CI bench-smoke job fails when the implicit route stops
    being faster or drifts past the documented 1e-10 agreement.  The
    ``operator_cache.bytes`` gauge in the report shows the live cache
    footprint (the implicit mode's near-zero memory model).
    """
    import numpy as np

    from . import set_gauge
    from ..core.engine import DecodeContext, DecodeEngine

    shape = (64, 64)
    frames = max(2, args.frames if args.frames > 2 else 8)
    rng = np.random.default_rng(args.seed)
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    scene = [
        np.clip(
            np.exp(
                -((r - 32 - 8 * np.sin(0.3 * k)) ** 2 + (c - 32) ** 2) / 80.0
            )
            + 0.02 * rng.normal(size=shape),
            0.0,
            1.0,
        )
        for k in range(frames)
    ]
    plan = DecodeContext(
        shape=shape, sampling_fraction=0.35, solver=args.solver
    )

    def run_arm(mode: str) -> tuple[float, list, int]:
        engine = DecodeEngine(operator_mode=mode)
        # Warm-up decode: builds (and caches) the operator template.
        engine.decode(scene[0], plan, np.random.default_rng(args.seed))
        start = time.perf_counter()
        with span(f"implicit_operators.{mode}", frames=frames):
            recons = [
                engine.decode(frame, plan, np.random.default_rng(1000 + k))
                for k, frame in enumerate(scene)
            ]
        return time.perf_counter() - start, recons, engine.cache.bytes

    dense_s, dense_recons, dense_bytes = run_arm("dense")
    implicit_s, implicit_recons, implicit_bytes = run_arm("implicit")
    speedup = dense_s / implicit_s if implicit_s > 0 else float("inf")
    max_diff = float(
        max(
            np.max(np.abs(d - i))
            for d, i in zip(dense_recons, implicit_recons)
        )
    )
    set_gauge("implicit_operators.frames", frames)
    set_gauge("implicit_operators.dense_s", dense_s)
    set_gauge("implicit_operators.implicit_s", implicit_s)
    set_gauge("implicit_operators.speedup", speedup)
    set_gauge("implicit_operators.dense_cache_bytes", dense_bytes)
    set_gauge("implicit_operators.implicit_cache_bytes", implicit_bytes)
    set_gauge("implicit_operators.max_diff", max_diff)
    return (
        f"implicit operators bench: {frames} frames at {shape[0]}x{shape[1]}, "
        f"solver={args.solver}\n"
        f"  dense mode (materialised A):    {dense_s:.3f} s, "
        f"cache {dense_bytes / 1e6:.2f} MB\n"
        f"  implicit mode (FFT matvecs):    {implicit_s:.3f} s, "
        f"cache {implicit_bytes / 1e3:.2f} kB\n"
        f"  speedup:                        {speedup:.2f}x\n"
        f"  max reconstruction difference:  {max_diff:.2e}"
    )


def _profile_array_chaos(args) -> str:
    """Static vs adaptive resilience under array-layer fault injection.

    Streams the same scene twice through a hardware-modelled imager
    while stuck-pixel-row and ADC bit-flip injectors attack the array:
    once under the static default :class:`ResiliencePolicy` and once
    with an :class:`AdaptivePolicy` controller (which learns the stuck
    lines and steers sampling away from them).  Mean RMSE of each arm
    and their improvement land in the ``array_chaos.*`` gauges; the CI
    chaos-smoke job uploads the report so regressions in the adaptive
    win are visible per run.
    """
    import numpy as np

    from . import set_gauge
    from ..array import ActiveMatrix, FlexibleEncoder, ReadoutChain, StreamingImager
    from ..resilience import (
        AdaptivePolicy,
        AdcBitFlipInjector,
        ResiliencePolicy,
        StuckPixelRowInjector,
        chaos,
    )

    shape = (16, 16)
    frames = max(10, args.frames if args.frames > 2 else 20)
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    # The 0.15 pedestal keeps healthy dark pixels off the ADC zero rail,
    # so only injected stuck rows trip the stuck-line detector.
    scene = np.stack(
        [
            np.clip(
                0.15
                + 0.8
                * np.exp(
                    -((r - 8 - 3 * np.sin(0.3 * k)) ** 2 + (c - 8) ** 2)
                    / 10.0
                ),
                0.0,
                1.0,
            )
            for k in range(frames)
        ]
    )

    def run_arm(adaptive: AdaptivePolicy | None) -> float:
        array = ActiveMatrix(shape)
        encoder = FlexibleEncoder(
            array, readout=ReadoutChain(noise_sigma_v=0.0)
        )
        imager = StreamingImager(
            encoder,
            sampling_fraction=0.5,
            policy=None if adaptive is not None else ResiliencePolicy(),
            adaptive=adaptive,
            seed=args.seed,
        )
        injectors = (
            StuckPixelRowInjector(rate=0.2, seed=args.seed + 100),
            AdcBitFlipInjector(rate=0.2, seed=args.seed + 101),
        )
        with chaos(*injectors):
            records = imager.stream(scene)
        assert all(rec.reconstructed is not None for rec in records)
        return float(
            np.mean(
                [
                    np.sqrt(np.mean((rec.reconstructed - rec.clean) ** 2))
                    for rec in records
                ]
            )
        )

    static_rmse = run_arm(None)
    adaptive_rmse = run_arm(AdaptivePolicy())
    improvement = (
        (static_rmse - adaptive_rmse) / static_rmse if static_rmse > 0 else 0.0
    )
    set_gauge("array_chaos.frames", frames)
    set_gauge("array_chaos.static_rmse", static_rmse)
    set_gauge("array_chaos.adaptive_rmse", adaptive_rmse)
    set_gauge("array_chaos.improvement", improvement)
    return (
        f"array chaos bench: {frames} frames at {shape[0]}x{shape[1]}, "
        f"20% stuck-row + 20% ADC bit-flip injection\n"
        f"  static policy mean RMSE:   {static_rmse:.4f}\n"
        f"  adaptive policy mean RMSE: {adaptive_rmse:.4f}\n"
        f"  improvement:               {improvement:.1%}"
    )


def _profile_parallel_blocks(args) -> str:
    """Serial vs multi-worker tile decode on a large e-skin frame.

    Reconstructs the same 64x64 synthetic touch frame through a 16x16
    :class:`BlockProcessor` twice: once on a
    :class:`~repro.core.executor.SerialExecutor` and once on a process
    pool with ``--workers`` workers.  Both arms decode from the same
    seed, so the outputs must match bit-for-bit (per-tile spawned RNG
    children make the tile streams scheduling-independent); wall-clock
    of each arm, their ratio and the identity check land in the
    ``parallel_blocks.*`` gauges.  The CI exec-smoke job fails when the
    pool stops being measurably faster or the outputs diverge.
    """
    import numpy as np

    from . import set_gauge
    from ..core.blocks import BlockProcessor
    from ..core.executor import ProcessExecutor, SerialExecutor

    shape = (64, 64)
    workers = max(2, args.workers)
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    # Two gaussian "touches" on an e-skin sheet, plus a faint texture.
    frame = np.clip(
        np.exp(-((r - 20.0) ** 2 + (c - 24.0) ** 2) / 60.0)
        + 0.8 * np.exp(-((r - 44.0) ** 2 + (c - 40.0) ** 2) / 90.0)
        + 0.02 * np.random.default_rng(args.seed).normal(size=shape),
        0.0,
        1.0,
    )

    def run_arm(executor, label: str) -> tuple[float, np.ndarray]:
        processor = BlockProcessor(
            block_shape=(16, 16),
            overlap=2,
            solver=args.solver,
            sampling_fraction=0.5,
            executor=executor,
        )
        # Warm-up decode: fills the engine operator cache and, for the
        # pool arm, pays the worker fork + import cost outside timing.
        processor.reconstruct(frame, np.random.default_rng(args.seed))
        start = time.perf_counter()
        with span(f"parallel_blocks.{label}", workers=workers):
            recon = processor.reconstruct(
                frame, np.random.default_rng(args.seed + 1)
            )
        return time.perf_counter() - start, recon

    with SerialExecutor() as serial_executor:
        serial_s, serial_recon = run_arm(serial_executor, "serial")
    with ProcessExecutor(workers) as pool:
        parallel_s, parallel_recon = run_arm(pool, "parallel")
    identical = bool(np.array_equal(serial_recon, parallel_recon))
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    set_gauge("parallel_blocks.workers", workers)
    set_gauge("parallel_blocks.serial_s", serial_s)
    set_gauge("parallel_blocks.parallel_s", parallel_s)
    set_gauge("parallel_blocks.speedup", speedup)
    set_gauge("parallel_blocks.identical", int(identical))
    return (
        f"parallel blocks bench: {shape[0]}x{shape[1]} frame, 16x16 tiles, "
        f"solver={args.solver}\n"
        f"  serial executor:        {serial_s:.3f} s\n"
        f"  process pool (x{workers}):    {parallel_s:.3f} s\n"
        f"  speedup:                {speedup:.2f}x\n"
        f"  bit-identical outputs:  {identical}"
    )


PROFILES = {
    "fig2_sparsity": _profile_fig2,
    "array_chaos": _profile_array_chaos,
    "fig6a_rmse": _profile_fig6a,
    "fig6c_strategies": _profile_fig6c,
    "tolerance": _profile_tolerance,
    "comm_cost": _profile_comm_cost,
    "scaling": _profile_scaling,
    "resilience_sweep": _profile_resilience,
    "engine_stream": _profile_engine_stream,
    "implicit_operators": _profile_implicit_operators,
    "parallel_blocks": _profile_parallel_blocks,
}
"""Profilable experiments: name -> runner(args) -> result table text."""


def profile_experiment(name: str, args) -> tuple[dict, str]:
    """Run experiment ``name`` under instrumentation.

    Returns ``(report, table_text)`` where ``report`` follows the
    documented JSON schema and ``table_text`` is the experiment's own
    result table.
    """
    if name not in PROFILES:
        raise KeyError(
            f"unknown experiment {name!r}; expected one of {sorted(PROFILES)}"
        )
    started = time.time()
    wall_start = time.perf_counter()
    with profiled() as session:
        with span(f"profile.{name}", experiment=name):
            table = PROFILES[name](args)
    report = session.report(
        {
            "experiment": name,
            "seed": args.seed,
            "started_unix": started,
            "wall_s": time.perf_counter() - wall_start,
            "argv": {
                "frames": args.frames,
                "samples": args.samples,
                "solver": args.solver,
            },
        }
    )
    return report, table


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.instrument",
        description="Profile a named experiment end-to-end and emit the "
        "instrumentation report (see docs/INSTRUMENTATION.md).",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--experiment", choices=sorted(PROFILES), help="experiment to profile"
    )
    group.add_argument(
        "--validate", metavar="PATH",
        help="validate an emitted JSON report against the schema and exit",
    )
    group.add_argument(
        "--list", action="store_true", help="list profilable experiments"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--frames", type=int, default=2,
        help="frames per grid point (fig6a/fig6c/tolerance)",
    )
    parser.add_argument(
        "--samples", type=int, default=10,
        help="samples per modality (fig2_sparsity)",
    )
    parser.add_argument(
        "--solver", default="fista", help="decoder name for the sweeps"
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="process-pool size for the parallel arm (parallel_blocks)",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="write the JSON report here (default: stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the human tables"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(PROFILES):
            print(name)
        return 0

    if args.validate:
        with open(args.validate, encoding="utf-8") as handle:
            try:
                candidate = json.load(handle)
            except json.JSONDecodeError as exc:
                print(f"{args.validate}: not JSON: {exc}", file=sys.stderr)
                return 1
        problems = validate_report(candidate)
        if problems:
            for problem in problems:
                print(f"{args.validate}: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid ({len(candidate['spans'])} root spans)")
        return 0

    report, table = profile_experiment(args.experiment, args)
    problems = validate_report(report)
    if problems:  # pragma: no cover - guards reporter regressions
        for problem in problems:
            print(f"internal error, invalid report: {problem}", file=sys.stderr)
        return 2
    if args.output:
        write_report(report, args.output)
        if not args.quiet:
            print(table)
            print()
            print(render_table(report))
            print(f"\nreport written to {args.output}")
    else:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
        if not args.quiet:
            print(table, file=sys.stderr)
            print(file=sys.stderr)
            print(render_table(report), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
