"""Thread-safe counters, gauges and histograms.

The :class:`MetricsRegistry` is a flat, name-keyed store of three
instrument kinds:

* :class:`Counter` -- monotonically increasing totals (ADC conversions,
  decode calls, measurements taken);
* :class:`Gauge` -- last-written values (current sweep point, array
  size);
* :class:`Histogram` -- distributions (solver iteration counts, final
  residuals).

Every mutation takes the instrument's own lock, so hooks may fire from
worker threads without corrupting totals.  Histograms keep raw samples
up to a cap (percentiles come from the raw window) but always maintain
exact ``count``/``total``/``min``/``max`` beyond it.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "RAW_SAMPLE_CAP"]

RAW_SAMPLE_CAP = 4096
"""Raw samples retained per histogram for percentile estimates."""


class Counter:
    """A monotonically increasing, thread-safe total."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be >= 0)."""
        amount = float(amount)
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value


class Gauge:
    """A thread-safe last-written value."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """The most recently written value (0.0 if never set)."""
        return self._value


class Histogram:
    """A thread-safe value distribution with bounded memory.

    Exact ``count``, ``total``, ``min`` and ``max`` are maintained for
    every observation; the first :data:`RAW_SAMPLE_CAP` raw samples are
    retained so :meth:`percentile` stays useful without unbounded
    growth (the summary records how many raw samples were dropped).
    """

    __slots__ = ("_lock", "count", "total", "_min", "_max", "_raw", "raw_dropped")

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._raw: list[float] = []
        self.raw_dropped = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._raw) < RAW_SAMPLE_CAP:
                self._raw.append(value)
            else:
                self.raw_dropped += 1

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100] of the raw window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            raw = sorted(self._raw)
        if not raw:
            return 0.0
        rank = min(len(raw) - 1, max(0, round(q / 100.0 * (len(raw) - 1))))
        return raw[rank]

    def summary(self) -> dict:
        """JSON-safe summary: count/total/mean/min/max/p50/p95."""
        with self._lock:
            count = self.count
            total = self.total
            lo = self._min if self._min is not None else 0.0
            hi = self._max if self._max is not None else 0.0
            dropped = self.raw_dropped
        return {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "raw_dropped": dropped,
        }


class MetricsRegistry:
    """Name-keyed, get-or-create store for the three instrument kinds.

    A name is bound to one kind for the registry's lifetime; asking for
    the same name as a different kind raises ``TypeError`` (it is
    almost always a naming-convention bug).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get_or_create(self, store: dict, name: str, factory):
        name = str(name)
        with self._lock:
            for kind, other in (
                ("counter", self._counters),
                ("gauge", self._gauges),
                ("histogram", self._histograms),
            ):
                if other is not store and name in other:
                    raise TypeError(
                        f"metric {name!r} already registered as a {kind}"
                    )
            instrument = store.get(name)
            if instrument is None:
                instrument = store[name] = factory()
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(self._histograms, name, Histogram)

    def reset(self) -> None:
        """Forget every registered instrument."""
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument, sorted by name."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: counters[n].value for n in sorted(counters)},
            "gauges": {n: gauges[n].value for n in sorted(gauges)},
            "histograms": {
                n: histograms[n].summary() for n in sorted(histograms)
            },
        }
