"""Reporters: machine-readable JSON and human-readable tables.

The JSON schema (documented in ``docs/INSTRUMENTATION.md`` and checked
by :func:`validate_report`) is::

    {
      "schema": "repro.instrument/v1",
      "meta": {...},                      # caller-supplied context
      "spans": [<span>, ...],            # root spans, nested
      "span_summary": {name: {count, total_s, mean_s, min_s, max_s}},
      "metrics": {
        "counters":   {name: value},
        "gauges":     {name: value},
        "histograms": {name: {count, total, mean, min, max,
                              p50, p95, raw_dropped}}
      },
      "dropped_spans": 0
    }

    <span> = {
      "name": str, "start_s": float, "duration_s": float,
      "attributes": {...}, "children": [<span>, ...],
      "trajectory": [float, ...]?, "trajectory_dropped": int?
    }

The same dict round-trips through ``json.dumps``/``json.loads``
unchanged, so benchmark tooling can archive reports next to the
``BENCH_*`` trajectories.
"""

from __future__ import annotations

import json

# Guarded import: repro.instrument stays importable without numpy (the
# layering rule in docs/ARCHITECTURE.md keeps this package stdlib-only).
# When numpy is absent there is nothing to coerce, so json_safe's numpy
# branches simply never fire.
try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is present in CI
    np = None

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "SCHEMA",
    "build_report",
    "counter_value",
    "gauge_value",
    "json_safe",
    "select_counters",
    "validate_report",
    "render_table",
    "iter_span_dicts",
    "write_report",
]

SCHEMA = "repro.instrument/v1"
"""Schema identifier stamped into (and required of) every report."""


def json_safe(value):
    """Recursively coerce a value into plain JSON-serialisable types.

    NumPy scalars become Python scalars (``np.float64(0.2)`` -> ``0.2``)
    and arrays become nested lists; dicts, lists, tuples and sets are
    rebuilt with coerced contents (tuples and sets as lists, since JSON
    has no such types).  Everything the structured-outcome paths emit
    (``DecodeOutcome.to_dict``, policy snapshots, adaptation events)
    funnels through this so ``json.dumps`` never trips over a stray
    numpy type that leaked out of a solver or a tuned budget.
    """
    if np is not None:
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return value.tolist()
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [json_safe(item) for item in value]
    return value


def build_report(
    tracer: Tracer, registry: MetricsRegistry, meta: dict | None = None
) -> dict:
    """Assemble the JSON-safe report dict from live collectors."""
    return {
        "schema": SCHEMA,
        "meta": dict(meta or {}),
        "spans": [span.to_dict() for span in tracer.roots],
        "span_summary": tracer.summary(),
        "metrics": registry.snapshot(),
        "dropped_spans": tracer.dropped,
    }


def write_report(report: dict, path: str, indent: int | None = 2) -> None:
    """Validate then write a report to ``path`` as JSON."""
    problems = validate_report(report)
    if problems:
        raise ValueError(f"refusing to write invalid report: {problems}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=indent)
        handle.write("\n")


def counter_value(report: dict, name: str, default: float = 0.0) -> float:
    """Read one counter out of an emitted report (``default`` if absent).

    Report consumers (the benchmark runner in :mod:`repro.bench`, the
    CI smoke gates) should use this instead of chained ``dict.get``
    calls so a schema reshuffle breaks one accessor, not every caller.
    """
    return report.get("metrics", {}).get("counters", {}).get(name, default)


def gauge_value(report: dict, name: str, default: float | None = None):
    """Read one gauge out of an emitted report (``default`` if absent)."""
    return report.get("metrics", {}).get("gauges", {}).get(name, default)


def select_counters(report: dict, prefixes: tuple) -> dict:
    """Counters whose names start with any of ``prefixes``, as a dict.

    The benchmark runner attaches these filtered slices (``decode.*``,
    ``engine.cache.*``, ``chaos.*``, ...) to each ``BENCH_*.json`` cell
    when instrumented mode is on.
    """
    counters = report.get("metrics", {}).get("counters", {})
    return {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(tuple(prefixes))
    }


def iter_span_dicts(report: dict):
    """Depth-first iterator over every span dict in a report."""
    stack = list(report.get("spans", []))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(span.get("children", []))


def _validate_span(span, path: str, problems: list[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"{path}: span is not an object")
        return
    name = span.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: missing/empty 'name'")
    for key in ("start_s", "duration_s"):
        value = span.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{path}: '{key}' must be a number")
        elif key == "duration_s" and value < 0:
            problems.append(f"{path}: negative duration")
    if not isinstance(span.get("attributes"), dict):
        problems.append(f"{path}: 'attributes' must be an object")
    children = span.get("children")
    if not isinstance(children, list):
        problems.append(f"{path}: 'children' must be a list")
        children = []
    if "trajectory" in span:
        trajectory = span["trajectory"]
        if not isinstance(trajectory, list) or any(
            not isinstance(v, (int, float)) or isinstance(v, bool)
            for v in trajectory
        ):
            problems.append(f"{path}: 'trajectory' must be a list of numbers")
    for i, child in enumerate(children):
        _validate_span(child, f"{path}.children[{i}]", problems)


def validate_report(report) -> list[str]:
    """Check a report against the documented schema.

    Returns a list of human-readable problems; an empty list means the
    report is valid.  Used by the CLI's ``--validate`` mode, the CI
    smoke job and the instrumented benchmark fixture.
    """
    problems: list[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != SCHEMA:
        problems.append(
            f"'schema' must be {SCHEMA!r}, got {report.get('schema')!r}"
        )
    if not isinstance(report.get("meta"), dict):
        problems.append("'meta' must be an object")
    spans = report.get("spans")
    if not isinstance(spans, list):
        problems.append("'spans' must be a list")
    else:
        for i, span in enumerate(spans):
            _validate_span(span, f"spans[{i}]", problems)
    summary = report.get("span_summary")
    if not isinstance(summary, dict):
        problems.append("'span_summary' must be an object")
    else:
        for name, entry in summary.items():
            if not isinstance(entry, dict):
                problems.append(f"span_summary[{name!r}] is not an object")
                continue
            for key in ("count", "total_s", "mean_s", "min_s", "max_s"):
                if not isinstance(entry.get(key), (int, float)) or isinstance(
                    entry.get(key), bool
                ):
                    problems.append(
                        f"span_summary[{name!r}].{key} must be a number"
                    )
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("'metrics' must be an object")
    else:
        for section in ("counters", "gauges", "histograms"):
            block = metrics.get(section)
            if not isinstance(block, dict):
                problems.append(f"metrics.{section} must be an object")
                continue
            for name, value in block.items():
                if section == "histograms":
                    if not isinstance(value, dict) or not isinstance(
                        value.get("count"), (int, float)
                    ):
                        problems.append(
                            f"metrics.histograms[{name!r}] must be a "
                            "summary object with a 'count'"
                        )
                elif not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    problems.append(
                        f"metrics.{section}[{name!r}] must be a number"
                    )
    if not isinstance(report.get("dropped_spans"), int):
        problems.append("'dropped_spans' must be an integer")
    return problems


def render_table(report: dict) -> str:
    """Human-readable summary of a report (span totals + metrics)."""
    lines: list[str] = []
    meta = report.get("meta", {})
    if meta:
        lines.append(
            "profile: "
            + ", ".join(f"{k}={meta[k]}" for k in sorted(meta) if k != "argv")
        )
    summary = report.get("span_summary", {})
    if summary:
        lines.append("")
        lines.append(
            f"{'span':<34} {'count':>7} {'total s':>10} "
            f"{'mean ms':>10} {'max ms':>10}"
        )
        total_order = sorted(
            summary.items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
        for name, entry in total_order:
            lines.append(
                f"{name:<34} {entry['count']:>7d} {entry['total_s']:>10.3f} "
                f"{1e3 * entry['mean_s']:>10.3f} {1e3 * entry['max_s']:>10.3f}"
            )
    counters = report.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<44} {'value':>12}")
        for name in sorted(counters):
            lines.append(f"{name:<44} {counters[name]:>12g}")
    histograms = report.get("metrics", {}).get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':<34} {'count':>7} {'mean':>10} "
            f"{'p50':>10} {'p95':>10} {'max':>10}"
        )
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"{name:<34} {h['count']:>7d} {h['mean']:>10.4g} "
                f"{h['p50']:>10.4g} {h['p95']:>10.4g} {h['max']:>10.4g}"
            )
    if report.get("dropped_spans"):
        lines.append("")
        lines.append(f"!! dropped spans: {report['dropped_spans']}")
    return "\n".join(lines)
