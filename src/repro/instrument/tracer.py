"""Nestable tracing spans with wall-clock timing.

A :class:`Span` measures one operation (a solver run, an encoder scan,
one sweep grid point); spans opened while another span is active on the
same thread become its children, so a profile of ``run_fig6a`` yields a
tree ``experiment -> sweep point -> frame -> decode -> solver``.

The :class:`Tracer` owns the span tree.  Each thread keeps its own
active-span stack (``threading.local``), so worker threads produce their
own root spans without synchronising on the hot path; finished root
spans are appended to the shared tree under a lock.

Zero-overhead guard: callers never construct spans directly -- they go
through :func:`repro.instrument.span`, which returns the module-level
:data:`NULL_SPAN` singleton when instrumentation is disabled.  The null
span's methods are all no-ops and its ``active`` attribute is ``False``,
so per-iteration recording inside solver loops can be guarded with a
single attribute check.
"""

from __future__ import annotations

import threading
import time

__all__ = ["NULL_SPAN", "Span", "Tracer", "TRAJECTORY_CAP"]

TRAJECTORY_CAP = 2048
"""Per-span cap on recorded trajectory points (excess points are counted,
not stored, so a runaway solver cannot exhaust memory)."""


def _json_safe(value):
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return repr(value)


class _NullSpan:
    """Inert stand-in returned when instrumentation is disabled.

    Supports the full :class:`Span` surface (context manager, ``set``,
    ``record``) as no-ops; ``active`` is ``False`` so loop bodies can
    skip the cost of computing values that would only be recorded.
    """

    __slots__ = ()

    active = False
    name = ""

    def __enter__(self) -> "_NullSpan":
        """Enter as a context manager (no-op)."""
        return self

    def __exit__(self, *exc) -> bool:
        """Exit as a context manager (no-op, never swallows exceptions)."""
        return False

    def set(self, **attributes) -> None:
        """Discard attributes."""

    def record(self, value) -> None:
        """Discard a trajectory point."""


NULL_SPAN = _NullSpan()
"""The singleton no-op span used while instrumentation is disabled."""


class Span:
    """One timed, attributed operation in the trace tree.

    Use as a context manager (via :func:`repro.instrument.span`); timing
    starts at ``__enter__`` and stops at ``__exit__``.

    Attributes
    ----------
    name:
        Dotted span name, e.g. ``"solver.fista"`` (see
        ``docs/INSTRUMENTATION.md`` for the naming convention).
    attributes:
        Key/value annotations (``set``), JSON-safe.
    trajectory:
        Optional per-iteration series (``record``), e.g. residual norms;
        capped at :data:`TRAJECTORY_CAP` points.
    children:
        Spans opened while this span was active on the same thread.
    start_s / end_s:
        Start/end times in seconds relative to the tracer's epoch.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "trajectory",
        "trajectory_dropped",
        "start_s",
        "end_s",
        "_tracer",
    )

    active = True

    def __init__(self, name: str, tracer: "Tracer", attributes: dict):
        self.name = str(name)
        self.attributes = {k: _json_safe(v) for k, v in attributes.items()}
        self.children: list[Span] = []
        self.trajectory: list[float] = []
        self.trajectory_dropped = 0
        self.start_s: float | None = None
        self.end_s: float | None = None
        self._tracer = tracer

    # -- recording ------------------------------------------------------
    def set(self, **attributes) -> None:
        """Attach (or overwrite) JSON-safe attribute values."""
        for key, value in attributes.items():
            self.attributes[key] = _json_safe(value)

    def record(self, value) -> None:
        """Append one trajectory point (e.g. an iteration's residual)."""
        if len(self.trajectory) < TRAJECTORY_CAP:
            self.trajectory.append(float(value))
        else:
            self.trajectory_dropped += 1

    @property
    def duration_s(self) -> float:
        """Wall-clock duration; 0.0 until the span has finished."""
        if self.start_s is None or self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        """Start timing and become the innermost span of this thread."""
        self._tracer._push(self)
        self.start_s = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Stop timing, attach to the parent (or the root list)."""
        self.end_s = self._tracer._now()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Nested plain-dict form (the reporter's ``spans`` entries)."""
        out: dict = {
            "name": self.name,
            "start_s": self.start_s if self.start_s is not None else 0.0,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }
        if self.trajectory:
            out["trajectory"] = list(self.trajectory)
        if self.trajectory_dropped:
            out["trajectory_dropped"] = self.trajectory_dropped
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, duration_s={self.duration_s:.6f}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects spans into a per-thread-rooted tree.

    Parameters
    ----------
    max_spans:
        Hard cap on the number of spans kept alive; once reached, new
        ``span()`` calls return :data:`NULL_SPAN` and the drop is
        counted in :attr:`dropped`, bounding memory for huge sweeps.
    """

    def __init__(self, max_spans: int = 200_000):
        self.max_spans = int(max_spans)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: list[Span] = []
        self.dropped = 0
        self._count = 0
        self._epoch = time.perf_counter()

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attributes):
        """Create a new (not yet started) span, or drop past the cap."""
        with self._lock:
            if self._count >= self.max_spans:
                self.dropped += 1
                return NULL_SPAN
            self._count += 1
        return Span(name, self, attributes)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        while stack and stack[-1] is not span:  # tolerate misuse
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def current(self) -> Span | None:
        """The innermost active span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- management -----------------------------------------------------
    def reset(self) -> None:
        """Drop all collected spans and restart the clock epoch."""
        with self._lock:
            self.roots = []
            self.dropped = 0
            self._count = 0
            self._epoch = time.perf_counter()
        self._local = threading.local()

    # -- aggregation ----------------------------------------------------
    def iter_spans(self):
        """Depth-first iterator over every finished span in the tree."""
        stack = list(self.roots)
        while stack:
            span = stack.pop()
            yield span
            stack.extend(span.children)

    def summary(self) -> dict:
        """Aggregate ``{name: {count, total_s, mean_s, min_s, max_s}}``."""
        agg: dict[str, dict] = {}
        for span in self.iter_spans():
            entry = agg.setdefault(
                span.name,
                {"count": 0, "total_s": 0.0, "min_s": None, "max_s": None},
            )
            d = span.duration_s
            entry["count"] += 1
            entry["total_s"] += d
            entry["min_s"] = d if entry["min_s"] is None else min(entry["min_s"], d)
            entry["max_s"] = d if entry["max_s"] is None else max(entry["max_s"], d)
        for entry in agg.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
            if entry["min_s"] is None:
                entry["min_s"] = 0.0
                entry["max_s"] = 0.0
        return agg
