"""NumPy-only deep-learning substrate for the tactile case study.

A compact CNN framework (layers, Adam, cross-entropy) plus the ResNet
builder and the paper's exact training recipe (Sec. 4.2).
"""

from .augment import Augmenter
from .layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Layer,
    MaxPool2d,
    ReLU,
    ResidualBlock,
)
from .network import Adam, Sequential, Sgd, cross_entropy_loss, softmax
from .resnet import build_resnet
from .training import Trainer, TrainingHistory

__all__ = [
    "Layer",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "Dense",
    "ResidualBlock",
    "Sequential",
    "softmax",
    "cross_entropy_loss",
    "Adam",
    "Sgd",
    "build_resnet",
    "Trainer",
    "TrainingHistory",
    "Augmenter",
]
