"""Training-data augmentation for sensor frames.

The synthetic tactile dataset is small by deep-learning standards, so
the trainer benefits from the classic invariance-injecting transforms
-- all physically meaningful for a sensor array:

* integer translations (the object lands elsewhere on the glove),
* 90-degree rotations / flips (grip orientation),
* multiplicative gain jitter (grip strength),
* additive sensor noise.

Augmentation happens frame-wise on ``(count, rows, cols)`` stacks and
returns an enlarged dataset with repeated labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Augmenter"]


@dataclass
class Augmenter:
    """Random frame augmentation policy.

    Parameters
    ----------
    max_shift:
        Maximum |translation| in pixels per axis.
    rotate:
        Allow random 90-degree rotations and flips.
    gain_jitter:
        Half-width of the multiplicative gain range ``[1-g, 1+g]``.
    noise_sigma:
        Additive Gaussian noise level.
    seed:
        RNG seed.
    """

    max_shift: int = 2
    rotate: bool = True
    gain_jitter: float = 0.1
    noise_sigma: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_shift < 0:
            raise ValueError("max_shift must be >= 0")
        if not 0.0 <= self.gain_jitter < 1.0:
            raise ValueError("gain_jitter must be in [0, 1)")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def augment_frame(self, frame: np.ndarray) -> np.ndarray:
        """One randomised variant of a single frame (values stay [0,1])."""
        frame = np.asarray(frame, dtype=float)
        if frame.ndim != 2:
            raise ValueError(f"expected a 2-D frame, got {frame.shape}")
        out = frame
        if self.max_shift > 0:
            dr = int(self._rng.integers(-self.max_shift, self.max_shift + 1))
            dc = int(self._rng.integers(-self.max_shift, self.max_shift + 1))
            shifted = np.zeros_like(out)
            rows, cols = out.shape
            src_r = slice(max(0, -dr), min(rows, rows - dr))
            src_c = slice(max(0, -dc), min(cols, cols - dc))
            dst_r = slice(max(0, dr), min(rows, rows + dr))
            dst_c = slice(max(0, dc), min(cols, cols + dc))
            shifted[dst_r, dst_c] = out[src_r, src_c]
            out = shifted
        if self.rotate:
            out = np.rot90(out, k=int(self._rng.integers(0, 4)))
            if self._rng.random() < 0.5:
                out = out[:, ::-1]
        if self.gain_jitter > 0:
            out = out * self._rng.uniform(
                1.0 - self.gain_jitter, 1.0 + self.gain_jitter
            )
        if self.noise_sigma > 0:
            out = out + self._rng.normal(0.0, self.noise_sigma, out.shape)
        return np.clip(np.ascontiguousarray(out), 0.0, 1.0)

    def expand(
        self, frames: np.ndarray, labels: np.ndarray, copies: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Original stack plus ``copies`` augmented variants per frame."""
        frames = np.asarray(frames, dtype=float)
        labels = np.asarray(labels)
        if frames.ndim != 3:
            raise ValueError(f"expected (count, rows, cols), got {frames.shape}")
        if len(frames) != len(labels):
            raise ValueError("frames/labels length mismatch")
        if copies < 0:
            raise ValueError("copies must be >= 0")
        stacks = [frames]
        label_stacks = [labels]
        for _ in range(copies):
            stacks.append(
                np.stack([self.augment_frame(frame) for frame in frames])
            )
            label_stacks.append(labels.copy())
        return np.concatenate(stacks), np.concatenate(label_stacks)
