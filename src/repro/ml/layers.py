"""NumPy neural-network layers (NCHW convention).

The tactile case study (Sec. 4.2) classifies 32 x 32 frames with a
ResNet trained under Adam + categorical cross-entropy, using max
pooling and dropout.  No deep-learning framework is available offline,
so this module implements the required layers from scratch on NumPy:

* ``Conv2d`` -- im2col-based 2-D convolution (stride/padding);
* ``BatchNorm2d`` -- per-channel batch normalisation with running
  statistics for inference;
* ``ReLU``, ``MaxPool2d``, ``Dropout``, ``Flatten``, ``GlobalAvgPool``,
  ``Dense``;
* ``ResidualBlock`` -- two conv/BN/ReLU stages with an identity (or
  1x1-projected) skip connection, the ResNet building block.

Every layer implements ``forward(x, training)`` and ``backward(grad)``
and exposes ``parameters()`` as ``(name, value, gradient)`` triples for
the optimisers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Layer",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "Dense",
    "ResidualBlock",
]


class Layer:
    """Base layer: stateless by default."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output (caching what backward needs)."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate the loss gradient; accumulate parameter grads."""
        raise NotImplementedError

    def parameters(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        """``(name, value, gradient)`` triples; empty if stateless."""
        return []

    def state(self) -> dict[str, np.ndarray]:
        """Copyable layer state (weights + running statistics)."""
        return {name: value.copy() for name, value, _ in self.parameters()}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state`."""
        for name, value, _ in self.parameters():
            value[...] = state[name]


# ---------------------------------------------------------------------------
# im2col helpers
# ---------------------------------------------------------------------------

def _im2col(x, kernel, stride, padding):
    """(N, C, H, W) -> (N * out_h * out_w, C * kh * kw) patch matrix."""
    n, c, h, w = x.shape
    kh, kw = kernel
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 4, 5, 1, 2, 3).reshape(
        n * out_h * out_w, c * kh * kw
    )
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols, x_shape, kernel, stride, padding, out_h, out_w):
    """Adjoint of :func:`_im2col` (scatter-add patches back)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding))
    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Layer):
    """2-D convolution with He-initialised weights.

    Parameters
    ----------
    in_channels, out_channels, kernel:
        Filter geometry (square ``kernel``).
    stride, padding:
        Spatial stride and zero padding.
    rng:
        Weight-initialisation randomness.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if min(in_channels, out_channels, kernel, stride) < 1:
            raise ValueError("conv dimensions must be >= 1")
        rng = rng or np.random.default_rng(0)
        if padding is None:
            padding = kernel // 2
        self.stride = stride
        self.padding = padding
        self.kernel = (kernel, kernel)
        fan_in = in_channels * kernel * kernel
        self.weight = rng.normal(
            0.0, np.sqrt(2.0 / fan_in), size=(out_channels, in_channels, kernel, kernel)
        )
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, out_h, out_w = _im2col(x, self.kernel, self.stride, self.padding)
        w_flat = self.weight.reshape(self.weight.shape[0], -1)
        out = cols @ w_flat.T + self.bias
        n = x.shape[0]
        out = out.reshape(n, out_h, out_w, -1).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols, out_h, out_w)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, cols, out_h, out_w = self._cache
        n = x_shape[0]
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, -1)
        w_flat = self.weight.reshape(self.weight.shape[0], -1)
        self.grad_weight[...] = (grad_flat.T @ cols).reshape(self.weight.shape)
        self.grad_bias[...] = grad_flat.sum(axis=0)
        grad_cols = grad_flat @ w_flat
        return _col2im(
            grad_cols, x_shape, self.kernel, self.stride, self.padding, out_h, out_w
        )

    def parameters(self):
        return [
            ("weight", self.weight, self.grad_weight),
            ("bias", self.bias, self.grad_bias),
        ]


class BatchNorm2d(Layer):
    """Per-channel batch normalisation with running inference stats."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.grad_gamma = np.zeros(channels)
        self.grad_beta = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) / std[None, :, None, None]
        self._cache = (x_hat, std)
        return self.gamma[None, :, None, None] * x_hat + self.beta[None, :, None, None]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, std = self._cache
        n = grad.shape[0] * grad.shape[2] * grad.shape[3]
        self.grad_gamma[...] = (grad * x_hat).sum(axis=(0, 2, 3))
        self.grad_beta[...] = grad.sum(axis=(0, 2, 3))
        gamma = self.gamma[None, :, None, None]
        grad_xhat = grad * gamma
        grad_x = (
            grad_xhat
            - grad_xhat.mean(axis=(0, 2, 3), keepdims=True)
            - x_hat * (grad_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        ) / std[None, :, None, None]
        return grad_x

    def parameters(self):
        return [
            ("gamma", self.gamma, self.grad_gamma),
            ("beta", self.beta, self.grad_beta),
        ]

    def state(self):
        out = super().state()
        out["running_mean"] = self.running_mean.copy()
        out["running_var"] = self.running_var.copy()
        return out

    def load_state(self, state):
        super().load_state(state)
        self.running_mean = state["running_mean"].copy()
        self.running_var = state["running_var"].copy()


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self):
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel: int = 2):
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ValueError(f"spatial dims {h}x{w} not divisible by {k}")
        reshaped = x.reshape(n, c, h // k, k, w // k, k)
        out = reshaped.max(axis=(3, 5))
        mask = reshaped == out[:, :, :, None, :, None]
        # Break ties: keep only the first max per window.
        flat = mask.reshape(n, c, h // k, w // k, k * k)
        first = np.cumsum(flat, axis=-1) == 1
        mask = (flat & first).reshape(mask.shape)
        self._cache = (x.shape, mask)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, mask = self._cache
        n, c, h, w = x_shape
        k = self.kernel
        expanded = grad[:, :, :, None, :, None] * mask
        return expanded.reshape(n, c, h, w)


class Dropout(Layer):
    """Inverted dropout (identity at inference)."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Flatten(Layer):
    """(N, ...) -> (N, features)."""

    def __init__(self):
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class GlobalAvgPool(Layer):
    """(N, C, H, W) -> (N, C) spatial mean."""

    def __init__(self):
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._shape
        return np.broadcast_to(grad[:, :, None, None], self._shape) / (h * w)


class Dense(Layer):
    """Fully connected layer with He initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ):
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.weight = rng.normal(
            0.0, np.sqrt(2.0 / in_features), size=(in_features, out_features)
        )
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.grad_weight[...] = self._input.T @ grad
        self.grad_bias[...] = grad.sum(axis=0)
        return grad @ self.weight.T

    def parameters(self):
        return [
            ("weight", self.weight, self.grad_weight),
            ("bias", self.bias, self.grad_bias),
        ]


class ResidualBlock(Layer):
    """Two conv/BN/ReLU stages with a skip connection (He et al. 2016).

    When ``in_channels != out_channels`` or ``stride > 1`` the skip uses
    a 1x1 projection convolution, as in the original paper.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu_out = ReLU()
        if in_channels != out_channels or stride > 1:
            self.projection = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0, rng=rng
            )
        else:
            self.projection = None

    def _sublayers(self) -> list[tuple[str, Layer]]:
        layers = [
            ("conv1", self.conv1),
            ("bn1", self.bn1),
            ("conv2", self.conv2),
            ("bn2", self.bn2),
        ]
        if self.projection is not None:
            layers.append(("projection", self.projection))
        return layers

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self.conv1.forward(x, training)
        out = self.bn1.forward(out, training)
        out = self.relu1.forward(out, training)
        out = self.conv2.forward(out, training)
        out = self.bn2.forward(out, training)
        if self.projection is not None:
            skip = self.projection.forward(x, training)
        else:
            skip = x
        return self.relu_out.forward(out + skip, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu_out.backward(grad)
        grad_main = self.bn2.backward(grad)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        if self.projection is not None:
            grad_skip = self.projection.backward(grad)
        else:
            grad_skip = grad
        return grad_main + grad_skip

    def parameters(self):
        out = []
        for prefix, layer in self._sublayers():
            for name, value, gradient in layer.parameters():
                out.append((f"{prefix}.{name}", value, gradient))
        return out

    def state(self):
        out = {}
        for prefix, layer in self._sublayers():
            for name, value in layer.state().items():
                out[f"{prefix}.{name}"] = value
        return out

    def load_state(self, state):
        for prefix, layer in self._sublayers():
            sub = {
                name[len(prefix) + 1:]: value
                for name, value in state.items()
                if name.startswith(prefix + ".")
            }
            layer.load_state(sub)
