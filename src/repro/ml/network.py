"""Sequential network container, losses and optimisers."""

from __future__ import annotations

import numpy as np

from .layers import Layer

__all__ = ["Sequential", "softmax", "cross_entropy_loss", "Adam", "Sgd"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift stabilisation."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy_loss(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Categorical cross-entropy (mean) and its gradient w.r.t. logits.

    ``labels`` are integer class ids.
    """
    labels = np.asarray(labels, dtype=int)
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError("labels must be one id per row of logits")
    probabilities = softmax(logits)
    picked = probabilities[np.arange(n), labels]
    loss = float(-np.mean(np.log(np.maximum(picked, 1e-12))))
    gradient = probabilities.copy()
    gradient[np.arange(n), labels] -= 1.0
    return loss, gradient / n


class Sequential:
    """A straight pipeline of layers."""

    def __init__(self, layers: list[Layer]):
        if not layers:
            raise ValueError("need at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network; set ``training`` during optimisation."""
        for layer in self.layers:
            x = layer.forward(x, training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate from the loss gradient on the output."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self):
        """All ``(name, value, gradient)`` triples, layer-prefixed."""
        out = []
        for index, layer in enumerate(self.layers):
            for name, value, gradient in layer.parameters():
                out.append((f"layer{index}.{name}", value, gradient))
        return out

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class ids for a batch of inputs (inference mode)."""
        predictions = []
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start:start + batch_size], training=False)
            predictions.append(np.argmax(logits, axis=-1))
        return np.concatenate(predictions)

    def state(self) -> dict[str, np.ndarray]:
        """Snapshot of every layer's weights and running statistics."""
        out = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.state().items():
                out[f"layer{index}.{name}"] = value
        return out

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state` snapshot."""
        for index, layer in enumerate(self.layers):
            prefix = f"layer{index}."
            sub = {
                name[len(prefix):]: value
                for name, value in state.items()
                if name.startswith(prefix)
            }
            if sub:
                layer.load_state(sub)


class Adam:
    """Adam optimiser (Kingma & Ba 2015), the paper's choice."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, parameters) -> None:
        """Apply one update to ``(name, value, gradient)`` triples."""
        self._t += 1
        for name, value, gradient in parameters:
            m = self._m.setdefault(name, np.zeros_like(value))
            v = self._v.setdefault(name, np.zeros_like(value))
            m[...] = self.beta1 * m + (1 - self.beta1) * gradient
            v[...] = self.beta2 * v + (1 - self.beta2) * gradient * gradient
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


class Sgd:
    """Plain SGD with optional momentum (baseline optimiser)."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, parameters) -> None:
        """Apply one update to ``(name, value, gradient)`` triples."""
        for name, value, gradient in parameters:
            if self.momentum > 0:
                velocity = self._velocity.setdefault(name, np.zeros_like(value))
                velocity[...] = self.momentum * velocity - self.learning_rate * gradient
                value += velocity
            else:
                value -= self.learning_rate * gradient
