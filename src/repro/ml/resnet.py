"""ResNet classifier for 2-D sensor frames (ref [28], He et al. 2016).

Sec. 4.2: "We used ResNet for identifying objects from the tactile
data (32x32 arrays), where 'Max pooling' and 'Dropout' are used for
reducing dimensionality of the data and avoiding overfitting".  The
builder below assembles exactly that network on the NumPy framework:
stem conv -> residual stages with max-pool downsampling -> global
average pool -> dropout -> dense softmax head.

The default configuration is deliberately compact (NumPy training), but
deep enough to separate the 26 synthetic grasp classes; the same
builder scales up by widening ``channels`` / adding stages.
"""

from __future__ import annotations

import numpy as np

from .layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    GlobalAvgPool,
    MaxPool2d,
    ReLU,
    ResidualBlock,
)
from .network import Sequential

__all__ = ["build_resnet"]


def build_resnet(
    input_shape: tuple[int, int] = (32, 32),
    num_classes: int = 26,
    channels: tuple[int, ...] = (16, 32),
    blocks_per_stage: int = 1,
    dropout_rate: float = 0.2,
    seed: int = 0,
) -> Sequential:
    """Build the tactile-recognition ResNet.

    Parameters
    ----------
    input_shape:
        ``(rows, cols)`` of the single-channel input frames; each
        stage halves the spatial size via max pooling, so both dims
        must be divisible by ``2 ** len(channels)``.
    num_classes:
        Output classes (26 objects in the paper's dataset).
    channels:
        Channel width per stage.
    blocks_per_stage:
        Residual blocks per stage.
    dropout_rate:
        Dropout before the dense head (the paper's overfitting guard).
    seed:
        Weight-initialisation seed.
    """
    rows, cols = input_shape
    factor = 2 ** len(channels)
    if rows % factor or cols % factor:
        raise ValueError(
            f"input {rows}x{cols} not divisible by the total pooling "
            f"factor {factor}"
        )
    if blocks_per_stage < 1:
        raise ValueError("blocks_per_stage must be >= 1")
    rng = np.random.default_rng(seed)
    layers = [
        Conv2d(1, channels[0], 3, rng=rng),
        BatchNorm2d(channels[0]),
        ReLU(),
    ]
    in_channels = channels[0]
    for stage_channels in channels:
        for _ in range(blocks_per_stage):
            layers.append(ResidualBlock(in_channels, stage_channels, rng=rng))
            in_channels = stage_channels
        layers.append(MaxPool2d(2))
    layers.extend(
        [
            GlobalAvgPool(),
            Dropout(dropout_rate, rng=rng),
            Dense(in_channels, num_classes, rng=rng),
        ]
    )
    return Sequential(layers)
