"""Training loop replicating the paper's recipe (Sec. 4.2).

"The ResNet model is trained with error backpropagation using Adam
optimizer and categorical cross-entropy as the loss function.  During
training, we reduce the learning rate by a factor of 10 until
validation loss converges.  The weights that achieve the best
validation accuracy are selected for the final evaluation."

:class:`Trainer` implements exactly that: Adam + cross-entropy,
reduce-LR-on-plateau (factor 10), best-validation-weights snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .network import Adam, Sequential, cross_entropy_loss

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)

    @property
    def best_epoch(self) -> int:
        """Epoch index with the highest validation accuracy."""
        if not self.val_accuracy:
            raise RuntimeError("no epochs recorded")
        return int(np.argmax(self.val_accuracy))


@dataclass
class Trainer:
    """The paper's training procedure.

    Parameters
    ----------
    learning_rate:
        Initial Adam learning rate.
    batch_size:
        Mini-batch size.
    lr_patience:
        Epochs without validation-loss improvement before the LR drops
        by ``lr_factor``.
    lr_factor:
        Learning-rate reduction factor (the paper's 10).
    min_lr:
        Stop reducing (and training) below this rate.
    max_epochs:
        Hard epoch cap.
    seed:
        Shuffling seed.
    """

    learning_rate: float = 1e-2
    batch_size: int = 32
    lr_patience: int = 3
    lr_factor: float = 10.0
    min_lr: float = 1e-5
    max_epochs: int = 30
    seed: int = 0

    def fit(
        self,
        model: Sequential,
        train_frames: np.ndarray,
        train_labels: np.ndarray,
        val_frames: np.ndarray,
        val_labels: np.ndarray,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train ``model`` in place; restores the best-val weights.

        Frames are ``(count, rows, cols)`` in [0, 1]; a channel axis is
        added internally.
        """
        x_train = self._prepare(train_frames)
        x_val = self._prepare(val_frames)
        y_train = np.asarray(train_labels, dtype=int)
        y_val = np.asarray(val_labels, dtype=int)
        rng = np.random.default_rng(self.seed)
        optimizer = Adam(self.learning_rate)
        history = TrainingHistory()
        best_state = model.state()
        best_accuracy = -1.0
        best_val_loss = np.inf
        stale = 0
        for _epoch in range(self.max_epochs):
            order = rng.permutation(len(x_train))
            epoch_losses = []
            for start in range(0, len(order), self.batch_size):
                batch = order[start:start + self.batch_size]
                logits = model.forward(x_train[batch], training=True)
                loss, grad = cross_entropy_loss(logits, y_train[batch])
                model.backward(grad)
                optimizer.step(model.parameters())
                epoch_losses.append(loss)
            val_logits = model.forward(x_val, training=False)
            val_loss, _ = cross_entropy_loss(val_logits, y_val)
            val_accuracy = float(
                np.mean(np.argmax(val_logits, axis=-1) == y_val)
            )
            history.train_loss.append(float(np.mean(epoch_losses)))
            history.val_loss.append(val_loss)
            history.val_accuracy.append(val_accuracy)
            history.learning_rates.append(optimizer.learning_rate)
            if verbose:  # pragma: no cover - logging only
                print(
                    f"epoch {_epoch}: train={history.train_loss[-1]:.3f} "
                    f"val={val_loss:.3f} acc={val_accuracy:.3f} "
                    f"lr={optimizer.learning_rate:.2g}"
                )
            if val_accuracy > best_accuracy:
                best_accuracy = val_accuracy
                best_state = model.state()
            if val_loss < best_val_loss - 1e-4:
                best_val_loss = val_loss
                stale = 0
            else:
                stale += 1
                if stale >= self.lr_patience:
                    optimizer.learning_rate /= self.lr_factor
                    stale = 0
                    if optimizer.learning_rate < self.min_lr:
                        break
        model.load_state(best_state)
        return history

    @staticmethod
    def _prepare(frames: np.ndarray) -> np.ndarray:
        frames = np.asarray(frames, dtype=float)
        if frames.ndim != 3:
            raise ValueError(f"expected (count, rows, cols), got {frames.shape}")
        return frames[:, None, :, :]
