"""Fault injection, fallback chains and graceful degradation.

The decode stack in :mod:`repro.core` answers "how well can a sparse
frame be reconstructed?"; this package answers "what happens when the
decode itself misbehaves?" -- a crashing or diverging solver, poisoned
or dropped measurements, a blown latency budget.  Three pieces:

* :mod:`~repro.resilience.chaos` -- composable fault injectors that
  attach to the solver dispatch seam, so any experiment or test can run
  under a reproducible fault mix;
* :mod:`~repro.resilience.policies` -- declarative knobs: solver
  fallback chain, retry bounds, per-solver budgets, circuit breaker;
* :mod:`~repro.resilience.runtime` + :mod:`~repro.resilience.health` --
  the supervised decode loop that health-validates every frame and
  degrades gracefully (last-good-frame hold) instead of failing.

Quickstart::

    import numpy as np
    from repro.resilience import (
        ResilientDecoder, chaos, default_taxonomy,
    )

    decoder = ResilientDecoder()
    rng = np.random.default_rng(0)
    with chaos(*default_taxonomy(fault_rate=0.2, seed=0)):
        outcome = decoder.decode(frame, sampling_fraction=0.5, rng=rng)
    assert outcome.frame is not None           # always delivered
    print(outcome.status, outcome.faults_seen)

See ``docs/RESILIENCE.md`` for the full tour.
"""

from .chaos import (
    BudgetExhaustionInjector,
    FaultInjector,
    InjectedFault,
    MeasurementDropoutInjector,
    NanPoisonInjector,
    SolverDivergenceInjector,
    SolverExceptionInjector,
    chaos,
    default_taxonomy,
)
from .health import (
    DEFAULT_RESIDUAL_FACTOR,
    DEFAULT_VALUE_RANGE,
    FrameGuard,
    HealthReport,
    residual_sane,
    validate_reconstruction,
)
from .policies import (
    DEFAULT_FALLBACK_CHAIN,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    SolverBudget,
)
from .runtime import (
    AttemptRecord,
    DecodeOutcome,
    ResilientDecoder,
    ResilientStrategy,
    resilient_sample_and_reconstruct,
)

__all__ = [
    # chaos
    "InjectedFault",
    "FaultInjector",
    "SolverExceptionInjector",
    "SolverDivergenceInjector",
    "MeasurementDropoutInjector",
    "NanPoisonInjector",
    "BudgetExhaustionInjector",
    "chaos",
    "default_taxonomy",
    # health
    "HealthReport",
    "validate_reconstruction",
    "residual_sane",
    "FrameGuard",
    "DEFAULT_VALUE_RANGE",
    "DEFAULT_RESIDUAL_FACTOR",
    # policies
    "SolverBudget",
    "RetryPolicy",
    "CircuitBreaker",
    "ResiliencePolicy",
    "DEFAULT_FALLBACK_CHAIN",
    # runtime
    "AttemptRecord",
    "DecodeOutcome",
    "ResilientDecoder",
    "ResilientStrategy",
    "resilient_sample_and_reconstruct",
]
