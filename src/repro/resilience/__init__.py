"""Fault injection, fallback chains and graceful degradation.

The decode stack in :mod:`repro.core` answers "how well can a sparse
frame be reconstructed?"; this package answers "what happens when the
decode itself misbehaves?" -- a crashing or diverging solver, poisoned
or dropped measurements, a blown latency budget.  Three pieces:

* :mod:`~repro.resilience.chaos` + :mod:`~repro.resilience.array_chaos`
  + :mod:`~repro.resilience.worker_chaos` -- composable fault injectors
  that attach to the solver dispatch seam, the array-layer hook seam
  (stuck gate lines, dropped scan cycles, ADC bit flips, saturation
  bursts, gain drift, stuck pixel rows) and the executor task seam
  (worker crash/hang/slow-start), so any experiment or test can run
  under a reproducible fault mix;
* :mod:`~repro.resilience.policies` -- declarative knobs: solver
  fallback chain, retry bounds, per-solver budgets, circuit breaker;
* :mod:`~repro.resilience.adaptive` -- a feedback controller that
  re-tunes the live policy between frames from health telemetry
  (escalation levels, breaker-aware probe budgets, sticky stuck-line
  sampling exclusions);
* :mod:`~repro.resilience.runtime` + :mod:`~repro.resilience.health` --
  the supervised decode loop that health-validates every frame and
  degrades gracefully (last-good-frame hold) instead of failing.

Quickstart::

    import numpy as np
    from repro.resilience import (
        ResilientDecoder, chaos, default_taxonomy,
    )

    decoder = ResilientDecoder()
    rng = np.random.default_rng(0)
    with chaos(*default_taxonomy(fault_rate=0.2, seed=0)):
        outcome = decoder.decode(frame, sampling_fraction=0.5, rng=rng)
    assert outcome.frame is not None           # always delivered
    print(outcome.status, outcome.faults_seen)

See ``docs/RESILIENCE.md`` for the full tour.
"""

from .adaptive import AdaptationEvent, AdaptivePolicy
from .array_chaos import (
    AdcBitFlipInjector,
    DroppedCycleInjector,
    GainDriftInjector,
    SaturationBurstInjector,
    StuckLineInjector,
    StuckPixelRowInjector,
    default_array_taxonomy,
)
from .chaos import (
    BudgetExhaustionInjector,
    FaultInjector,
    InjectedFault,
    MeasurementDropoutInjector,
    NanPoisonInjector,
    SolverDivergenceInjector,
    SolverExceptionInjector,
    chaos,
    default_taxonomy,
)
from .health import (
    DEFAULT_RESIDUAL_FACTOR,
    DEFAULT_VALUE_RANGE,
    FrameGuard,
    HealthReport,
    residual_sane,
    validate_reconstruction,
)
from .policies import (
    DEFAULT_FALLBACK_CHAIN,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    SolverBudget,
)
from .worker_chaos import (
    WorkerCrashInjector,
    WorkerHangInjector,
    WorkerSlowStartInjector,
    default_worker_taxonomy,
)
from .runtime import (
    AttemptRecord,
    DecodeOutcome,
    ResilientDecoder,
    ResilientStrategy,
    resilient_sample_and_reconstruct,
)

__all__ = [
    # chaos
    "InjectedFault",
    "FaultInjector",
    "SolverExceptionInjector",
    "SolverDivergenceInjector",
    "MeasurementDropoutInjector",
    "NanPoisonInjector",
    "BudgetExhaustionInjector",
    "chaos",
    "default_taxonomy",
    # array-layer chaos
    "StuckLineInjector",
    "DroppedCycleInjector",
    "AdcBitFlipInjector",
    "SaturationBurstInjector",
    "GainDriftInjector",
    "StuckPixelRowInjector",
    "default_array_taxonomy",
    # executor-layer chaos
    "WorkerCrashInjector",
    "WorkerHangInjector",
    "WorkerSlowStartInjector",
    "default_worker_taxonomy",
    # adaptive
    "AdaptationEvent",
    "AdaptivePolicy",
    # health
    "HealthReport",
    "validate_reconstruction",
    "residual_sane",
    "FrameGuard",
    "DEFAULT_VALUE_RANGE",
    "DEFAULT_RESIDUAL_FACTOR",
    # policies
    "SolverBudget",
    "RetryPolicy",
    "CircuitBreaker",
    "ResiliencePolicy",
    "DEFAULT_FALLBACK_CHAIN",
    # runtime
    "AttemptRecord",
    "DecodeOutcome",
    "ResilientDecoder",
    "ResilientStrategy",
    "resilient_sample_and_reconstruct",
]
