"""Adaptive self-tuning resilience policies.

The static :class:`~repro.resilience.policies.ResiliencePolicy` is a
fixed contract: the same chain, budgets and retry bound whether the
array is healthy or falling apart.  This module closes the loop -- an
:class:`AdaptivePolicy` watches the health telemetry each decode
produces (frame status, breaker state, detected stuck lines) and
re-tunes the live policy *between* frames:

* under rising fault rates it escalates: widens the fallback chain with
  extra solver families and spends additional retry rounds (each a
  fresh resampling draw, the paper's Sec. 4.3 response to a bad draw);
* when the circuit breaker sidelines a solver, the sidelined solver's
  budget shrinks to a short iteration probe so half-open probes stay
  cheap;
* stuck row/column masks from
  :func:`~repro.array.readout.detect_stuck_lines` accumulate into a
  sticky sampling-exclusion mask (capped so a cascade of detections
  can never starve the sampler), steering measurements away from dead
  lines exactly like the paper's oracle-exclusion strategy -- except
  the "oracle" is the runtime's own health monitoring;
* after a calm streak it de-escalates one level at a time, so a single
  bad frame does not permanently inflate decode cost.

Every adjustment is recorded as an :class:`AdaptationEvent` and counted
under ``resilience.adaptive.*``; the runtime attaches the events and a
policy snapshot to each :class:`~repro.resilience.runtime.DecodeOutcome`
so adaptation is fully auditable.  The controller is deliberately
deterministic: level changes depend only on the observed status
sequence, adaptive budgets are iteration-based (never wall-clock), and
no randomness is consumed -- two identically-seeded runs adapt
identically, bit for bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from .. import instrument
from .policies import ResiliencePolicy, RetryPolicy, SolverBudget

__all__ = ["AdaptationEvent", "AdaptivePolicy"]


@dataclass(frozen=True)
class AdaptationEvent:
    """One recorded policy adjustment.

    Attributes
    ----------
    frame_index:
        Index of the observed frame that triggered the adjustment
        (0-based, counted by the controller).
    action:
        ``"escalate"`` | ``"de_escalate"`` | ``"exclude_lines"`` |
        ``"mask_capped"`` | ``"probe_budget"`` | ``"unsupported"``.
    detail:
        Human-readable specifics (new level, rows excluded, solver
        probed, ...).
    level:
        Escalation level *after* the adjustment.
    """

    frame_index: int
    action: str
    detail: str
    level: int

    def to_dict(self) -> dict:
        """JSON-safe form for ``DecodeOutcome.to_dict``."""
        return instrument.json_safe(
            {
                "frame_index": self.frame_index,
                "action": self.action,
                "detail": self.detail,
                "level": self.level,
            }
        )


@dataclass
class AdaptivePolicy:
    """Feedback controller that tunes a live :class:`ResiliencePolicy`.

    Plug an instance into :class:`~repro.resilience.runtime.ResilientDecoder`
    (``adaptive=``) or :class:`~repro.array.imager.StreamingImager`; the
    runtime reads :attr:`policy` before each frame and feeds outcomes
    back through :meth:`observe_outcome` / :meth:`observe_readout`.

    Parameters
    ----------
    base:
        The level-0 policy (untouched; adaptation derives from it with
        :func:`dataclasses.replace`, sharing the breaker instance so
        failure history survives re-tuning).
    extra_solvers:
        Solvers appended to the chain at escalation level >= 1 (distinct
        algorithm families from the default chain).
    window:
        Sliding window of recent frame statuses the fault ratio is
        computed over.
    high_fault_ratio:
        Non-``"ok"`` fraction of the window at which the controller
        escalates straight to level 2.
    calm_frames:
        Consecutive ``"ok"`` frames required to de-escalate one level
        (hysteresis, so the policy does not oscillate).
    probe_iterations:
        Iteration cap applied to breaker-open solvers, keeping
        half-open probes cheap.
    max_excluded_fraction:
        Hard cap on the sticky exclusion mask; detections that would
        push past it are rejected (and recorded) so the sampler is
        never starved.
    """

    base: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    extra_solvers: tuple[str, ...] = ("iht", "cosamp")
    window: int = 8
    high_fault_ratio: float = 0.5
    calm_frames: int = 4
    probe_iterations: int = 40
    max_excluded_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.high_fault_ratio <= 1.0:
            raise ValueError(
                f"high_fault_ratio must be in (0, 1], got "
                f"{self.high_fault_ratio}"
            )
        if self.calm_frames < 1:
            raise ValueError(
                f"calm_frames must be >= 1, got {self.calm_frames}"
            )
        if self.probe_iterations < 1:
            raise ValueError(
                f"probe_iterations must be >= 1, got {self.probe_iterations}"
            )
        if not 0.0 < self.max_excluded_fraction < 1.0:
            raise ValueError(
                f"max_excluded_fraction must be in (0, 1), got "
                f"{self.max_excluded_fraction}"
            )
        self._level = 0
        self._statuses: deque[str] = deque(maxlen=self.window)
        self._calm = 0
        self._frame_index = 0
        self._mask: np.ndarray | None = None
        self._events: list[AdaptationEvent] = []
        self._probed: tuple[str, ...] = ()
        self._current = self.base

    # -- what the runtime reads --------------------------------------------
    @property
    def policy(self) -> ResiliencePolicy:
        """The live policy for the next decode (level-adjusted)."""
        return self._current

    @property
    def level(self) -> int:
        """Current escalation level: 0 (calm), 1 or 2."""
        return self._level

    def exclusion_mask(self, shape: tuple) -> np.ndarray | None:
        """The sticky stuck-line exclusion mask for ``shape``.

        ``None`` when nothing has been excluded yet or the accumulated
        mask was detected on a different frame shape.
        """
        if self._mask is None or tuple(self._mask.shape) != tuple(shape):
            return None
        return self._mask.copy()

    def pop_events(self) -> tuple[AdaptationEvent, ...]:
        """Drain the adjustments recorded since the last call."""
        events = tuple(self._events)
        self._events.clear()
        return events

    # -- what the runtime feeds back ----------------------------------------
    def observe_outcome(self, outcome) -> None:
        """Feed one :class:`DecodeOutcome` back (delegates to status)."""
        self.observe_status(outcome.status)

    def observe_status(self, status: str) -> None:
        """Feed one frame's delivery status back and re-tune the policy.

        ``"ok"`` frames extend the calm streak (eventually
        de-escalating); ``"degraded"`` escalates to level 1,
        ``"fallback"`` -- or a window fault ratio at or above
        ``high_fault_ratio`` -- to level 2.
        """
        self._statuses.append(status)
        self._frame_index += 1
        if status == "ok":
            self._calm += 1
            if self._level > 0 and self._calm >= self.calm_frames:
                self._level -= 1
                self._calm = 0
                self._record(
                    "de_escalate",
                    f"{self.calm_frames} calm frames; level -> {self._level}",
                )
                instrument.incr("resilience.adaptive.de_escalations")
        else:
            self._calm = 0
            # Ratio over the full window, so a lone fault right after
            # start-up is not mistaken for a 100% fault rate.
            faulty = sum(1 for s in self._statuses if s != "ok")
            ratio = faulty / self.window
            target = (
                2
                if status == "fallback" or ratio >= self.high_fault_ratio
                else 1
            )
            if target > self._level:
                self._level = target
                self._record(
                    "escalate",
                    f"status={status}, fault_ratio={ratio:.2f}; "
                    f"level -> {self._level}",
                )
                instrument.incr("resilience.adaptive.escalations")
        instrument.set_gauge("resilience.adaptive.level", self._level)
        self._rebuild()

    def observe_readout(self, stuck_mask: np.ndarray) -> None:
        """Accumulate a stuck-line detection into the exclusion mask.

        ``stuck_mask`` is the boolean output of
        :func:`~repro.array.readout.detect_stuck_lines`.  Exclusions
        are sticky (a broken gate line does not heal) but capped at
        ``max_excluded_fraction`` of the frame; a detection that would
        exceed the cap is dropped and recorded as ``"mask_capped"``.
        """
        stuck_mask = np.asarray(stuck_mask, dtype=bool)
        if not stuck_mask.any():
            return
        if self._mask is not None and tuple(self._mask.shape) != tuple(
            stuck_mask.shape
        ):
            self._mask = None  # frame geometry changed; start over
        merged = (
            stuck_mask
            if self._mask is None
            else (self._mask | stuck_mask)
        )
        if merged.mean() > self.max_excluded_fraction:
            self._record(
                "mask_capped",
                f"detection would exclude {merged.mean():.0%} "
                f"(cap {self.max_excluded_fraction:.0%}); dropped",
            )
            instrument.incr("resilience.adaptive.mask_capped")
            return
        new_pixels = int(merged.sum()) - (
            0 if self._mask is None else int(self._mask.sum())
        )
        if new_pixels > 0:
            self._record(
                "exclude_lines",
                f"+{new_pixels} px excluded "
                f"({merged.mean():.0%} of frame)",
            )
            instrument.incr("resilience.adaptive.excluded_pixels", new_pixels)
        self._mask = merged
        instrument.set_gauge(
            "resilience.adaptive.mask_pixels", int(merged.sum())
        )

    def note_unsupported(self, detail: str) -> None:
        """Record that a capability degradation occurred (audit trail).

        Called by runtimes when the active measurement family cannot
        honour an adaptation -- e.g. stuck-line exclusions against a
        family without exclusion support.  The degradation is explicit:
        an ``"unsupported"`` :class:`AdaptationEvent` plus the
        ``resilience.adaptive.unsupported`` counter, never a silent
        skip.
        """
        self._record("unsupported", detail)
        instrument.incr("resilience.adaptive.unsupported")

    def reset(self) -> None:
        """Restore the initial controller state (level 0, no mask)."""
        self._level = 0
        self._statuses.clear()
        self._calm = 0
        self._frame_index = 0
        self._mask = None
        self._events.clear()
        self._probed = ()
        self._current = self.base

    # -- internals -----------------------------------------------------------
    def _record(self, action: str, detail: str) -> None:
        self._events.append(
            AdaptationEvent(
                frame_index=self._frame_index - 1,
                action=action,
                detail=detail,
                level=self._level,
            )
        )

    def _rebuild(self) -> None:
        """Derive the live policy from ``base`` at the current level."""
        policy = self.base
        if self._level >= 1:
            chain = tuple(policy.fallback_chain) + tuple(
                s
                for s in self.extra_solvers
                if s not in policy.fallback_chain
            )
            policy = replace(
                policy,
                fallback_chain=chain,
                retry=RetryPolicy(
                    max_rounds=policy.retry.max_rounds + self._level
                ),
            )
        open_solvers = (
            policy.breaker.open_solvers() if policy.breaker is not None else ()
        )
        if open_solvers:
            budgets = dict(policy.budgets)
            for solver in open_solvers:
                current = policy.budget_for(solver).max_iterations
                cap = (
                    self.probe_iterations
                    if current is None
                    else min(current, self.probe_iterations)
                )
                budgets[solver] = SolverBudget(max_iterations=cap)
            policy = replace(policy, budgets=budgets)
        if open_solvers != self._probed:
            for solver in open_solvers:
                if solver not in self._probed:
                    self._record(
                        "probe_budget",
                        f"{solver} breaker open; budget capped at "
                        f"{self.probe_iterations} iterations",
                    )
                    instrument.incr("resilience.adaptive.probe_budgets")
            self._probed = open_solvers
        self._current = policy
