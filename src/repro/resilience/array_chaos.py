"""Array-layer fault injectors: chaos for the physical acquisition path.

The solver-layer taxonomy in :mod:`repro.resilience.chaos` attacks the
decode stack; this module attacks the hardware model *upstream* of it --
the scan drivers, the active matrix, the analog front end and the ADC.
These are the faults a deployed large-area array actually develops in
service (Sec. 2 of the paper motivates exactly this failure physics):

==============================  ======================================
injector                        simulates
==============================  ======================================
:class:`StuckLineInjector`        stuck/dead row-select gate lines
:class:`DroppedCycleInjector`     missed scan cycles (timing glitches)
:class:`AdcBitFlipInjector`       single-event upsets in ADC codes
:class:`SaturationBurstInjector`  analog front-end saturation bursts
:class:`GainDriftInjector`        slow multiplicative gain drift
:class:`StuckPixelRowInjector`    whole pixel rows stuck at a rail
==============================  ======================================

Every class carries ``layer = "array"`` so the shared
:func:`repro.resilience.chaos.chaos` context manager attaches it to the
:mod:`repro.array.hooks` seam instead of the solver seam; the two
families compose freely in one ``with chaos(...)`` block.  The module
deliberately imports nothing from :mod:`repro.array` -- injectors
duck-type against the objects the hook sites pass them (``drivers``,
``array``, ``chain``), which keeps the resilience package importable
during partial package initialisation.

The determinism guarantee of :mod:`repro.resilience.chaos` applies
unchanged: private seeded RNGs only, and stateful injectors (sticky
stuck lines/rows, drifted gain) override :meth:`FaultInjector.reset`
to restore their exact initial state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .chaos import FaultInjector

__all__ = [
    "StuckLineInjector",
    "DroppedCycleInjector",
    "AdcBitFlipInjector",
    "SaturationBurstInjector",
    "GainDriftInjector",
    "StuckPixelRowInjector",
    "default_array_taxonomy",
]


@dataclass
class StuckLineInjector(FaultInjector):
    """Break row-select gate lines, permanently, mid-campaign.

    Each trip breaks one additional (randomly chosen) row-select line,
    up to ``max_lines``; broken lines stay broken for the life of the
    injector (a cracked gate trace does not heal), which is what makes
    this a *structured* fault the sampling layer must learn to exclude.

    Parameters
    ----------
    mode:
        ``"dead"`` -- the line never asserts, so its pixels are never
        read (the encoder records missing reads).  ``"stuck_on"`` -- the
        line asserts on *every* cycle, corrupting other rows' reads
        with its charge.
    max_lines:
        Cap on how many distinct lines can break (so a long campaign
        cannot silently kill the whole array).
    """

    mode: str = "dead"
    max_lines: int = 2
    name = "stuck_line"
    layer = "array"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in ("dead", "stuck_on"):
            raise ValueError(
                f"mode must be 'dead' or 'stuck_on', got {self.mode!r}"
            )
        if self.max_lines < 1:
            raise ValueError(f"max_lines must be >= 1, got {self.max_lines}")
        self._stuck_rows: set[int] = set()

    def reset(self) -> None:
        """Restore the initial state: RNG, trips and broken lines."""
        super().reset()
        self._stuck_rows = set()

    @property
    def stuck_rows(self) -> tuple[int, ...]:
        """The row indices broken so far, sorted."""
        return tuple(sorted(self._stuck_rows))

    def on_scan_cycle(self, drivers, column_select, row_mask):
        """Break new lines at the configured rate; apply all broken ones."""
        rows = int(drivers.array_shape[0])
        if len(self._stuck_rows) < min(self.max_lines, rows) and self._fire():
            self._stuck_rows.add(int(self._rng.integers(rows)))
        if not self._stuck_rows:
            return column_select, row_mask
        row_mask = np.array(row_mask, dtype=bool, copy=True)
        stuck = np.fromiter(self._stuck_rows, dtype=int)
        row_mask[stuck] = self.mode == "stuck_on"
        return column_select, row_mask


@dataclass
class DroppedCycleInjector(FaultInjector):
    """Drop whole scan cycles (a glitched scan clock or driver brownout).

    A dropped cycle means every pixel it would have read is simply never
    acquired; the encoder tolerates this by reading the dark code and
    counting ``encoder.missing_reads``.
    """

    name = "dropped_cycle"
    layer = "array"

    def on_scan_cycle(self, drivers, column_select, row_mask):
        """Return ``None`` (drop the cycle) at the configured rate."""
        if self._fire():
            return None
        return column_select, row_mask


@dataclass
class AdcBitFlipInjector(FaultInjector):
    """Flip random bits in raw ADC codes (single-event upsets).

    When the injector fires on a conversion batch, ``flip_fraction`` of
    the codes each get one uniformly chosen bit XOR-ed -- the classic
    radiation/EMI upset model.  Flips happen on the *integer* codes
    before normalisation, so a high-bit flip produces the large code
    jump real upsets do.

    Parameters
    ----------
    flip_fraction:
        Fraction of codes corrupted per firing batch.
    """

    flip_fraction: float = 0.05
    name = "adc_bit_flip"
    layer = "array"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.flip_fraction <= 1.0:
            raise ValueError(
                f"flip_fraction must be in (0, 1], got {self.flip_fraction}"
            )

    def on_codes(self, chain, codes):
        """XOR one random bit into a fraction of the codes when firing."""
        if not self._fire():
            return codes
        flat = np.array(codes, dtype=float, copy=True).ravel()
        count = max(1, int(round(self.flip_fraction * flat.size)))
        hits = self._rng.choice(flat.size, size=min(count, flat.size),
                                replace=False)
        bits = self._rng.integers(0, chain.adc_bits, size=hits.size)
        flat[hits] = np.bitwise_xor(
            flat[hits].astype(np.int64), np.left_shift(1, bits)
        ).astype(float)
        return flat.reshape(np.shape(codes))


@dataclass
class SaturationBurstInjector(FaultInjector):
    """Pin a burst of analog samples to a rail before quantisation.

    Models a transient overload of the near-sensor amplifier (e.g. a
    supply spike): when it fires, ``burst_fraction`` of the voltage
    samples are driven to the high rail (or ground with ``low_rail``),
    which downstream shows up as saturated codes and feeds the
    ``readout.saturated_*`` health counters.

    Parameters
    ----------
    burst_fraction:
        Fraction of samples railed per firing batch.
    low_rail:
        Rail to ground (0 V) instead of full scale.
    """

    burst_fraction: float = 0.1
    low_rail: bool = False
    name = "saturation_burst"
    layer = "array"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.burst_fraction <= 1.0:
            raise ValueError(
                f"burst_fraction must be in (0, 1], got {self.burst_fraction}"
            )

    def on_analog(self, chain, volts):
        """Rail a fraction of the samples when firing."""
        if not self._fire():
            return volts
        flat = np.array(volts, dtype=float, copy=True).ravel()
        count = max(1, int(round(self.burst_fraction * flat.size)))
        hits = self._rng.choice(flat.size, size=min(count, flat.size),
                                replace=False)
        flat[hits] = 0.0 if self.low_rail else float(chain.full_scale_v)
        return flat.reshape(np.shape(volts))


@dataclass
class GainDriftInjector(FaultInjector):
    """Slow multiplicative gain drift of the analog front end.

    Each trip takes one random-walk step on a persistent gain factor
    (``gain *= 1 + N(0, drift_sigma)``); the current factor multiplies
    *every* subsequent conversion, fired or not -- drift accumulates,
    exactly like a temperature-sensitive amplifier bias.

    Parameters
    ----------
    drift_sigma:
        Standard deviation of each relative random-walk step.
    """

    drift_sigma: float = 0.02
    name = "gain_drift"
    layer = "array"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.drift_sigma <= 0:
            raise ValueError(
                f"drift_sigma must be positive, got {self.drift_sigma}"
            )
        self._gain = 1.0

    def reset(self) -> None:
        """Restore the initial state: RNG, trips and unit gain."""
        super().reset()
        self._gain = 1.0

    @property
    def gain(self) -> float:
        """The currently accumulated gain factor (1.0 = no drift yet)."""
        return self._gain

    def on_analog(self, chain, volts):
        """Step the drift at the configured rate; always apply the gain."""
        if self._fire():
            self._gain *= 1.0 + float(self._rng.normal(0.0, self.drift_sigma))
        if self._gain == 1.0:
            return volts
        return np.asarray(volts, dtype=float) * self._gain


@dataclass
class StuckPixelRowInjector(FaultInjector):
    """Stick whole pixel rows at a rail value, permanently.

    Each trip sticks one additional (randomly chosen) row of the
    transduced frame at ``stuck_value``, up to ``max_rows``; stuck rows
    persist (an in-service delamination does not heal).  Because the
    whole row reads one rail code, :func:`repro.array.readout.detect_stuck_lines`
    flags it, which is the signal the adaptive policy uses to steer
    sampling away from the dead region.

    Parameters
    ----------
    stuck_value:
        The rail the rows stick at (0.0 = dark, 1.0 = full scale).
    max_rows:
        Cap on how many distinct rows can stick.
    """

    stuck_value: float = 0.0
    max_rows: int = 2
    name = "stuck_pixel_row"
    layer = "array"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.stuck_value <= 1.0:
            raise ValueError(
                f"stuck_value must be in [0, 1], got {self.stuck_value}"
            )
        if self.max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {self.max_rows}")
        self._stuck_rows: set[int] = set()

    def reset(self) -> None:
        """Restore the initial state: RNG, trips and stuck rows."""
        super().reset()
        self._stuck_rows = set()

    @property
    def stuck_rows(self) -> tuple[int, ...]:
        """The row indices stuck so far, sorted."""
        return tuple(sorted(self._stuck_rows))

    def on_transduce(self, array, frame):
        """Stick new rows at the configured rate; apply all stuck ones."""
        rows = int(array.shape[0])
        if len(self._stuck_rows) < min(self.max_rows, rows) and self._fire():
            self._stuck_rows.add(int(self._rng.integers(rows)))
        if not self._stuck_rows:
            return frame
        frame = np.array(frame, dtype=float, copy=True)
        stuck = np.fromiter(self._stuck_rows, dtype=int)
        frame[stuck, :] = self.stuck_value
        return frame


def default_array_taxonomy(
    fault_rate: float, seed: int = 0
) -> tuple[FaultInjector, ...]:
    """The full array-layer taxonomy at a combined ``fault_rate``.

    Splits the rate evenly across the six physical-layer families with
    distinct derived seeds, mirroring
    :func:`repro.resilience.chaos.default_taxonomy` (which dispatches
    here for ``layer="array"``).
    """
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
    per_family = fault_rate / 6.0
    return (
        StuckLineInjector(rate=per_family, seed=seed),
        DroppedCycleInjector(rate=per_family, seed=seed + 1),
        AdcBitFlipInjector(rate=per_family, seed=seed + 2),
        SaturationBurstInjector(rate=per_family, seed=seed + 3),
        GainDriftInjector(rate=per_family, seed=seed + 4),
        StuckPixelRowInjector(rate=per_family, seed=seed + 5),
    )
