"""Fault-injection framework for chaos-testing the decode stack.

The paper argues robustness to *pixel*-level faults; this module turns
the same adversarial mindset on the *decoder* itself.  Each injector
simulates one member of the fault taxonomy the resilience runtime must
contain:

==============================  ======================================
injector                        simulates
==============================  ======================================
:class:`SolverExceptionInjector`  a crashing solver (raises mid-solve)
:class:`SolverDivergenceInjector` a diverging solve (NaN/huge iterates)
:class:`MeasurementDropoutInjector` dead measurement channels (zeros)
:class:`NanPoisonInjector`        NaN/Inf-poisoned measurements
:class:`BudgetExhaustionInjector` iteration/latency budget exhaustion
==============================  ======================================

Two sibling injector families live alongside this one:
:mod:`repro.resilience.array_chaos` attacks the *physical* array layer
(stuck row-select lines, dropped scan cycles, ADC bit flips, saturation
bursts, gain drift, stuck pixel rows) and
:mod:`repro.resilience.worker_chaos` attacks the *execution* layer
(worker crash, hang, slow start).  Each injector declares its seam
through a ``layer`` attribute (``"solver"`` here, ``"array"`` /
``"executor"`` there) and the :func:`chaos` context manager dispatches
it to the right hook registry
(:func:`repro.core.solvers.register_solve_hook`,
:func:`repro.array.hooks.register_array_hook` or
:func:`repro.core.executor.register_worker_hook`), so mixed-layer fault
campaigns compose in one ``with`` block and *any* experiment, benchmark
or test can run under injected faults without modifying the code under
test::

    from repro.resilience import chaos, SolverExceptionInjector

    with chaos(SolverExceptionInjector(rate=0.2, seed=1)) as injectors:
        outcome = decoder.decode(frame, 0.5, rng)
    print(injectors[0].trips, "faults injected")

**Determinism guarantee.**  Every injector draws *exclusively* from its
own private ``numpy`` generator seeded with ``seed``; no injector reads
global randomness, wall-clock time or cross-injector state.  Two runs
with the same seeds, the same inputs and the same call sequence
therefore trip identically and produce bit-identical corruption, and
:meth:`FaultInjector.reset` restores the exact initial state (RNG
*and* any per-injector accumulation, e.g. pending budget trips or
accumulated stuck rows), so one injector instance can replay a
campaign.  Subclasses that add mutable state beyond the base RNG must
override ``reset`` to clear it -- this guarantee is enforced by
``tests/resilience/test_chaos.py``.  Every trip is counted both on the
injector (``.trips``) and in the instrument registry
(``chaos.<name>.trips``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .. import instrument
from ..core.solvers import (
    SolverResult,
    register_solve_hook,
    unregister_solve_hook,
)

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "SolverExceptionInjector",
    "SolverDivergenceInjector",
    "MeasurementDropoutInjector",
    "NanPoisonInjector",
    "BudgetExhaustionInjector",
    "chaos",
    "default_taxonomy",
]


class InjectedFault(RuntimeError):
    """Raised by chaos injectors to simulate a crashing solver.

    Deliberately a distinct type so tests can tell injected faults from
    organic failures; the resilience runtime treats both identically.
    """


@dataclass
class FaultInjector:
    """Base class: a seeded, rate-gated fault source.

    Parameters
    ----------
    rate:
        Per-solve probability of injecting the fault, in ``[0, 1]``.
    seed:
        Seed for the injector's private RNG (chaos runs reproduce
        exactly under a fixed seed).

    Attributes
    ----------
    trips:
        How many times this injector has fired.
    """

    rate: float = 0.1
    seed: int = 0
    trips: int = field(default=0, init=False)

    #: Dotted short name used in ``chaos.<name>.trips`` counters.
    name = "fault"

    #: Which hook seam :func:`chaos` attaches this injector to:
    #: ``"solver"`` (the solve dispatch), ``"array"`` (the physical
    #: acquisition path; see :mod:`repro.resilience.array_chaos`) or
    #: ``"executor"`` (the worker task seam; see
    #: :mod:`repro.resilience.worker_chaos`).
    layer = "solver"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        self._rng = np.random.default_rng(self.seed)

    def _fire(self) -> bool:
        """Roll the dice; count and report a trip when it comes up."""
        if self._rng.random() >= self.rate:
            return False
        self.trips += 1
        instrument.incr(f"chaos.{self.name}.trips")
        return True

    def reset(self) -> None:
        """Restore the initial RNG state and zero the trip counter."""
        self._rng = np.random.default_rng(self.seed)
        self.trips = 0


@dataclass
class SolverExceptionInjector(FaultInjector):
    """Raise :class:`InjectedFault` from inside the solve dispatch."""

    name = "solver_exception"

    def before_solve(
        self, solver: str, operator, b: np.ndarray
    ) -> np.ndarray:
        """Raise at the configured rate; otherwise pass ``b`` through."""
        if self._fire():
            raise InjectedFault(
                f"injected solver exception in {solver!r} "
                f"(trip #{self.trips} of {type(self).__name__})"
            )
        return b


@dataclass
class SolverDivergenceInjector(FaultInjector):
    """Replace a finished solve with a diverged result.

    The poisoned :class:`SolverResult` carries non-finite coefficients,
    an infinite residual and ``converged=False`` -- exactly what a
    blown-up iteration would produce -- so downstream health validation
    is exercised end to end.
    """

    name = "solver_divergence"

    def after_solve(self, solver: str, result: SolverResult) -> SolverResult:
        """Poison the result at the configured rate."""
        if not self._fire():
            return result
        coefficients = np.full_like(result.coefficients, np.nan)
        info = dict(result.info)
        info["diverged"] = True
        info["injected"] = True
        return SolverResult(
            coefficients=coefficients,
            iterations=result.iterations,
            converged=False,
            residual=float("inf"),
            solver=result.solver,
            info=info,
        )


@dataclass
class MeasurementDropoutInjector(FaultInjector):
    """Zero a random fraction of the measurement vector.

    Parameters
    ----------
    dropout_fraction:
        Fraction of measurements zeroed when the injector fires (a
        burst of dead channels, e.g. a flaky column bus).
    """

    dropout_fraction: float = 0.25
    name = "measurement_dropout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.dropout_fraction <= 1.0:
            raise ValueError(
                f"dropout_fraction must be in (0, 1], got "
                f"{self.dropout_fraction}"
            )

    def before_solve(
        self, solver: str, operator, b: np.ndarray
    ) -> np.ndarray:
        """Drop measurements at the configured rate."""
        if not self._fire():
            return b
        b = np.array(b, dtype=float, copy=True)
        count = max(1, int(round(self.dropout_fraction * b.size)))
        b[self._rng.choice(b.size, size=min(count, b.size), replace=False)] = 0.0
        return b


@dataclass
class NanPoisonInjector(FaultInjector):
    """Poison a few measurements with NaN (or Inf).

    Parameters
    ----------
    poison_fraction:
        Fraction of measurements poisoned when the injector fires.
    use_inf:
        Poison with ``+Inf`` instead of ``NaN``.
    """

    poison_fraction: float = 0.05
    use_inf: bool = False
    name = "nan_poison"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.poison_fraction <= 1.0:
            raise ValueError(
                f"poison_fraction must be in (0, 1], got "
                f"{self.poison_fraction}"
            )

    def before_solve(
        self, solver: str, operator, b: np.ndarray
    ) -> np.ndarray:
        """Poison measurements at the configured rate."""
        if not self._fire():
            return b
        b = np.array(b, dtype=float, copy=True)
        count = max(1, int(round(self.poison_fraction * b.size)))
        hits = self._rng.choice(b.size, size=min(count, b.size), replace=False)
        b[hits] = np.inf if self.use_inf else np.nan
        return b


@dataclass
class BudgetExhaustionInjector(FaultInjector):
    """Simulate an iteration/latency budget blown by a slow solve.

    When it fires, the finished result is re-labelled non-converged
    (the iteration budget ran out before the stopping criterion), and
    an optional real ``latency_s`` sleep is added *before* the solve so
    wall-clock deadlines (:class:`repro.core.solvers.SolveDeadline` /
    the runtime's per-attempt budgets) are genuinely exercised.

    Parameters
    ----------
    latency_s:
        Seconds of synthetic latency injected per trip (0 disables).
    """

    latency_s: float = 0.0
    name = "budget_exhaustion"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        self._pending = False

    def reset(self) -> None:
        """Restore the initial state, including any undelivered trip."""
        super().reset()
        self._pending = False

    def before_solve(
        self, solver: str, operator, b: np.ndarray
    ) -> np.ndarray:
        """Decide the trip up front and inject the latency half."""
        self._pending = self._fire()
        if self._pending and self.latency_s > 0:
            time.sleep(self.latency_s)
        return b

    def after_solve(self, solver: str, result: SolverResult) -> SolverResult:
        """Mark the result budget-exhausted when the trip is pending."""
        if not self._pending:
            return result
        self._pending = False
        info = dict(result.info)
        info["deadline"] = True
        info["injected"] = True
        return SolverResult(
            coefficients=result.coefficients,
            iterations=result.iterations,
            converged=False,
            residual=result.residual,
            solver=result.solver,
            info=info,
        )


@contextmanager
def chaos(*injectors: FaultInjector):
    """Attach fault injectors to their hook seams for a ``with`` block.

    Each injector is dispatched by its ``layer`` attribute: solver
    injectors attach to the solve dispatch seam, array injectors
    (:mod:`repro.resilience.array_chaos`) to the array hook seam, and
    executor injectors (:mod:`repro.resilience.worker_chaos`) to the
    worker task seam -- a single ``with chaos(...)`` block can
    therefore run a mixed-layer fault campaign.  Yields the injector
    tuple (handy for asserting on ``.trips``); hooks are removed on
    exit even when the block raises, so a chaos run can never leak
    faults into subsequent code.
    """
    # Function-level import: the array package imports the resilience
    # policies for its imager, so the hook registry is resolved at
    # attach time rather than at module import.
    from ..array.hooks import register_array_hook, unregister_array_hook
    from ..core.executor import register_worker_hook, unregister_worker_hook

    for injector in injectors:
        layer = getattr(injector, "layer", "solver")
        if layer == "array":
            register_array_hook(injector)
        elif layer == "executor":
            register_worker_hook(injector)
        else:
            register_solve_hook(injector)
    try:
        yield injectors
    finally:
        for injector in injectors:
            layer = getattr(injector, "layer", "solver")
            if layer == "array":
                unregister_array_hook(injector)
            elif layer == "executor":
                unregister_worker_hook(injector)
            else:
                unregister_solve_hook(injector)


def default_taxonomy(
    fault_rate: float,
    seed: int = 0,
    latency_s: float = 0.0,
    layer: str = "solver",
) -> tuple[FaultInjector, ...]:
    """The full fault taxonomy at a combined ``fault_rate``.

    Splits the requested rate evenly across the layer's injector
    families (each call can still suffer several fault kinds at once),
    seeding each injector from ``seed`` so the mix is reproducible.
    This is what the resilience sweep experiment and the chaos CI job
    run.

    Parameters
    ----------
    fault_rate:
        Combined injection rate in ``[0, 1]``.
    seed:
        Base seed; each family gets a distinct derived seed.
    latency_s:
        Synthetic latency per budget-exhaustion trip (solver layer).
    layer:
        ``"solver"`` (the five decode-stack families), ``"array"`` (the
        six physical-layer families from
        :mod:`repro.resilience.array_chaos`), ``"executor"`` (the three
        worker-fault families from
        :mod:`repro.resilience.worker_chaos`) or ``"all"`` (every
        layer, each at ``fault_rate`` split across its own families).
    """
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
    if layer not in ("solver", "array", "executor", "all"):
        raise ValueError(
            f"layer must be 'solver', 'array', 'executor' or 'all', "
            f"got {layer!r}"
        )
    if layer == "array":
        from .array_chaos import default_array_taxonomy

        return default_array_taxonomy(fault_rate, seed=seed)
    if layer == "executor":
        from .worker_chaos import default_worker_taxonomy

        return default_worker_taxonomy(fault_rate, seed=seed)
    per_family = fault_rate / 5.0
    solver_families = (
        SolverExceptionInjector(rate=per_family, seed=seed),
        SolverDivergenceInjector(rate=per_family, seed=seed + 1),
        MeasurementDropoutInjector(rate=per_family, seed=seed + 2),
        NanPoisonInjector(rate=per_family, seed=seed + 3),
        BudgetExhaustionInjector(
            rate=per_family, seed=seed + 4, latency_s=latency_s
        ),
    )
    if layer == "solver":
        return solver_families
    from .array_chaos import default_array_taxonomy
    from .worker_chaos import default_worker_taxonomy

    return (
        solver_families
        + default_array_taxonomy(fault_rate, seed=seed + 5)
        + default_worker_taxonomy(fault_rate, seed=seed + 11)
    )
