"""Reconstruction health validation and graceful-degradation fallback.

Every frame the resilient runtime returns has passed (or been replaced
after failing) the checks here:

* **finite** -- no NaN/Inf pixels;
* **shape** -- matches the requested frame shape;
* **range** -- pixels inside a tolerance band around the normalised
  ``[0, 1]`` scale (a decode that swings to +/-40 is numerically
  "finite" but physically garbage);
* **residual** -- the solver's final ``||A x - b||_2`` is finite and
  not large relative to ``||b||_2`` (a diverged or poisoned solve
  leaves a tell-tale residual even when the synthesised frame looks
  plausible).

:class:`FrameGuard` implements the graceful-degradation half: it
remembers the last healthy frame per stream and serves it (zero-order
hold) -- or a flat fill frame before any success -- when every decode
attempt fails, so the pipeline *always* delivers a frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import instrument
from ..core.solvers import SolverResult

__all__ = [
    "HealthReport",
    "validate_reconstruction",
    "residual_sane",
    "FrameGuard",
]

#: Default tolerance band around the normalised [0, 1] pixel scale.
DEFAULT_VALUE_RANGE: tuple[float, float] = (-0.5, 1.5)

#: Default cap on ``residual / max(||b||, 1e-12)`` before a solve is
#: declared unhealthy.  Healthy BPDN solves on [0, 1]-scale data sit far
#: below 1; diverged/poisoned solves overshoot by orders of magnitude.
DEFAULT_RESIDUAL_FACTOR: float = 2.0


@dataclass(frozen=True)
class HealthReport:
    """Outcome of validating one reconstruction.

    Attributes
    ----------
    ok:
        ``True`` when every check passed.
    failed:
        Names of the failed checks (``"finite"``, ``"shape"``,
        ``"range"``, ``"residual"``), empty when healthy.
    detail:
        Per-check diagnostics (counts, observed extrema, ratios).
    """

    ok: bool
    failed: tuple[str, ...] = ()
    detail: dict = field(default_factory=dict)


def residual_sane(
    result: SolverResult,
    measurements: np.ndarray,
    factor: float = DEFAULT_RESIDUAL_FACTOR,
) -> bool:
    """Whether a solve's final residual is plausible for its data.

    Requires ``result.residual`` finite and at most ``factor *
    max(||b||, 1e-12)``.  The relative form makes the check scale-free;
    the tiny floor keeps an all-zero measurement vector (legitimately
    zero residual) from dividing by zero.
    """
    if not np.isfinite(result.residual):
        return False
    scale = max(float(np.linalg.norm(measurements)), 1e-12)
    return result.residual <= factor * scale


def validate_reconstruction(
    frame: np.ndarray,
    expected_shape: tuple[int, ...] | None = None,
    value_range: tuple[float, float] = DEFAULT_VALUE_RANGE,
    solver_result: SolverResult | None = None,
    measurements: np.ndarray | None = None,
    residual_factor: float = DEFAULT_RESIDUAL_FACTOR,
) -> HealthReport:
    """Run the full health-check battery on one reconstruction.

    Parameters
    ----------
    frame:
        The reconstructed frame.
    expected_shape:
        Shape the caller asked for; ``None`` skips the check.
    value_range:
        Inclusive ``(low, high)`` band every pixel must fall into.
    solver_result, measurements:
        When both are given, :func:`residual_sane` is added to the
        battery (diverged/poisoned solves fail here even when the
        synthesised frame happens to look plausible).
    residual_factor:
        Forwarded to :func:`residual_sane`.

    Returns
    -------
    HealthReport
        ``ok`` plus the failed-check names and diagnostics.  Also
        increments ``resilience.health.failed.<check>`` counters so
        chaos runs expose *which* checks catch which faults.
    """
    frame = np.asarray(frame)
    failed: list[str] = []
    detail: dict = {}

    if expected_shape is not None and frame.shape != tuple(expected_shape):
        failed.append("shape")
        detail["shape"] = {
            "expected": tuple(expected_shape),
            "got": frame.shape,
        }

    finite = np.isfinite(frame)
    if not finite.all():
        failed.append("finite")
        detail["finite"] = {"bad_pixels": int(np.count_nonzero(~finite))}
    elif frame.size:
        low, high = value_range
        observed_low = float(frame.min())
        observed_high = float(frame.max())
        if observed_low < low or observed_high > high:
            failed.append("range")
            detail["range"] = {
                "allowed": (low, high),
                "observed": (observed_low, observed_high),
            }

    if solver_result is not None and measurements is not None:
        if not residual_sane(solver_result, measurements, residual_factor):
            failed.append("residual")
            detail["residual"] = {
                "residual": float(solver_result.residual),
                "measurement_norm": float(np.linalg.norm(measurements)),
                "factor": residual_factor,
            }
        if solver_result.info.get("diverged"):
            if "residual" not in failed:
                failed.append("residual")
            detail.setdefault("residual", {})["diverged"] = True

    for check in failed:
        instrument.incr(f"resilience.health.failed.{check}")
    return HealthReport(ok=not failed, failed=tuple(failed), detail=detail)


@dataclass
class FrameGuard:
    """Last-good-frame store backing the graceful-degradation path.

    Parameters
    ----------
    fill_value:
        Pixel value of the synthetic frame served before any healthy
        reconstruction exists (0.0 = a dark frame on the normalised
        scale).

    Notes
    -----
    ``update`` must only be fed frames that already passed health
    validation; ``fallback`` never fails and never returns a reference
    the caller could mutate into the store.
    """

    fill_value: float = 0.0
    _last_good: np.ndarray | None = field(default=None, repr=False)

    @property
    def has_frame(self) -> bool:
        """Whether a healthy frame has been stored yet."""
        return self._last_good is not None

    def update(self, frame: np.ndarray) -> None:
        """Store a (validated) frame as the new zero-order-hold source."""
        self._last_good = np.array(frame, dtype=float, copy=True)

    def fallback(self, shape: tuple[int, ...]) -> np.ndarray:
        """A frame of ``shape`` from the hold store (or the fill value).

        Serves a copy of the last good frame when its shape matches,
        else a constant frame -- so the caller always gets *something*
        displayable, the contract the paper's always-on readout needs.
        """
        if self._last_good is not None and self._last_good.shape == tuple(shape):
            instrument.incr("resilience.fallback.held_frames")
            return self._last_good.copy()
        instrument.incr("resilience.fallback.fill_frames")
        return np.full(shape, float(self.fill_value))
