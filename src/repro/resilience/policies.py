"""Policy objects steering the resilient decode runtime.

The runtime itself (:mod:`repro.resilience.runtime`) is a mechanism;
*what* it does -- which solvers to try in which order, how many fresh
sampling draws to spend, how long each solver may run, when to stop
trusting a solver altogether -- lives here as small, declarative,
test-friendly objects:

* :class:`SolverBudget` -- per-solver iteration/wall-clock caps,
  translated into the right keyword arguments per solver;
* :class:`RetryPolicy` -- bounded retries with fresh sampling draws;
* :class:`CircuitBreaker` -- sidelines a repeatedly failing solver and
  re-admits it after a cooldown (classic closed/open/half-open);
* :class:`ResiliencePolicy` -- the bundle the runtime consumes, with a
  conservative default chain ``fista -> bp_dr -> omp`` (fast accelerated
  gradient, then the exact Douglas-Rachford splitting, then greedy
  least-squares -- three genuinely different algorithm families, so one
  family's pathology rarely takes out all three).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .. import instrument

__all__ = [
    "SolverBudget",
    "RetryPolicy",
    "CircuitBreaker",
    "ResiliencePolicy",
    "DEFAULT_FALLBACK_CHAIN",
]

#: Default solver fallback chain (three distinct algorithm families).
DEFAULT_FALLBACK_CHAIN: tuple[str, ...] = ("fista", "bp_dr", "omp")

#: Which budget keywords each registered solver understands.
_BUDGET_KWARGS: dict[str, tuple[str, ...]] = {
    "fista": ("max_iterations", "time_limit_s"),
    "ista": ("max_iterations", "time_limit_s"),
    "bp_dr": ("max_iterations", "time_limit_s"),
    "iht": ("max_iterations", "time_limit_s"),
    "cosamp": ("max_iterations", "time_limit_s"),
    "omp": ("time_limit_s",),
    "bp": (),
}


@dataclass(frozen=True)
class SolverBudget:
    """Iteration and wall-clock caps for one solve attempt.

    ``None`` leaves the solver's own default in place.  Budgets keep a
    pathological attempt from starving the rest of the fallback chain:
    a solve that exceeds them stops early and reports
    ``converged=False`` (see ``SolveDeadline`` in the solver base), at
    which point the runtime moves on.
    """

    max_iterations: int | None = None
    time_limit_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise ValueError(
                f"time_limit_s must be positive, got {self.time_limit_s}"
            )

    def solver_options(self, solver: str) -> dict:
        """The budget as keyword arguments the named solver accepts.

        Unsupported keywords are dropped (e.g. ``omp`` has no iteration
        cap -- its loop is bounded by the sparsity target -- and the LP
        solver takes neither).
        """
        supported = _BUDGET_KWARGS.get(
            solver, ("max_iterations", "time_limit_s")
        )
        options = {}
        if self.max_iterations is not None and "max_iterations" in supported:
            options["max_iterations"] = self.max_iterations
        if self.time_limit_s is not None and "time_limit_s" in supported:
            options["time_limit_s"] = self.time_limit_s
        return options


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries across the fallback chain.

    Parameters
    ----------
    max_rounds:
        How many full passes over the fallback chain to attempt.  Each
        round consumes fresh randomness from the caller's RNG, so a
        retry is a genuinely new sampling draw (``Phi_M`` changes) --
        the right response to a pathological draw, per the paper's
        resampling strategy -- not a replay of the failing one.
    """

    max_rounds: int = 2

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")


@dataclass
class CircuitBreaker:
    """Per-solver closed/open/half-open breaker.

    A solver that keeps failing wastes its budget on every frame; the
    breaker sidelines it after ``failure_threshold`` *consecutive*
    failures.  While open, the runtime skips the solver without
    spending an attempt; after ``cooldown`` skipped uses the breaker
    goes half-open and lets one probe attempt through -- success
    re-closes it, failure re-opens it for another cooldown.

    The breaker is deliberately count-based (not wall-clock-based) so
    chaos tests and retries are exactly reproducible.

    State transitions are serialised by an internal lock: concurrent
    callers (the thread-backed decode service supervising many streams
    over one shared policy) see a consistent closed/open/half-open
    machine -- at most one half-open probe is admitted per cooldown,
    and a success/failure race cannot corrupt the counters.  The lock
    is excluded from pickling (a pickled policy rebuilds a fresh one).
    """

    failure_threshold: int = 3
    cooldown: int = 8
    _consecutive: dict[str, int] = field(default_factory=dict, repr=False)
    _open_skips: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {self.cooldown}")
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Picklable state: everything but the (unpicklable) lock."""
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore pickled state with a fresh lock."""
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def is_open(self, solver: str) -> bool:
        """Whether the solver is currently sidelined."""
        with self._lock:
            return solver in self._open_skips

    def allow(self, solver: str) -> bool:
        """Gate one prospective attempt.

        Returns ``True`` when the attempt may proceed (closed breaker,
        or a half-open probe).  While open, each call counts toward the
        cooldown and returns ``False`` until the probe is due; exactly
        one caller wins the half-open probe even under contention.
        """
        with self._lock:
            if solver not in self._open_skips:
                return True
            self._open_skips[solver] += 1
            if self._open_skips[solver] > self.cooldown:
                # Half-open: let exactly one probe through, then make
                # the next prospective caller wait out a fresh cooldown
                # unless the probe's result re-closes the breaker first.
                self._open_skips[solver] = 0
                instrument.incr(f"resilience.breaker.{solver}.half_open")
                return True
            instrument.incr(f"resilience.breaker.{solver}.short_circuits")
            return False

    def record_success(self, solver: str) -> None:
        """A healthy solve: reset the failure streak and close the breaker."""
        with self._lock:
            self._consecutive[solver] = 0
            self._open_skips.pop(solver, None)

    def record_failure(self, solver: str) -> None:
        """A failed solve: bump the streak; open the breaker at threshold."""
        with self._lock:
            self._consecutive[solver] = (
                self._consecutive.get(solver, 0) + 1
            )
            if (
                self._consecutive[solver] >= self.failure_threshold
                and solver not in self._open_skips
            ):
                self._open_skips[solver] = 0
                instrument.incr(f"resilience.breaker.{solver}.opened")

    def open_solvers(self) -> tuple[str, ...]:
        """The solvers currently sidelined (open breakers), sorted.

        Health telemetry for adaptive controllers: a non-empty tuple
        means part of the fallback chain is out of service right now.
        """
        with self._lock:
            return tuple(sorted(self._open_skips))

    def reset(self) -> None:
        """Forget all failure history (all breakers closed)."""
        with self._lock:
            self._consecutive.clear()
            self._open_skips.clear()


@dataclass
class ResiliencePolicy:
    """Everything the resilient runtime needs to supervise a decode.

    Parameters
    ----------
    fallback_chain:
        Solver names tried in order within each retry round.
    retry:
        Cross-chain retry bound (fresh sampling draw per round).
    budget:
        Default per-attempt :class:`SolverBudget`; ``budgets`` can
        override per solver (e.g. a tight cap for the expensive LP).
    breaker:
        Shared :class:`CircuitBreaker`; ``None`` disables breaking.
    value_range, residual_factor:
        Forwarded to the health checks (see
        :func:`repro.resilience.health.validate_reconstruction`).
    accept_nonconverged:
        Treat a non-converged but otherwise *healthy* solve as a
        degraded success rather than a failure (the paper's decodes are
        approximations anyway; a near-miss frame beats no frame).
    """

    fallback_chain: tuple[str, ...] = DEFAULT_FALLBACK_CHAIN
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    budget: SolverBudget = field(default_factory=SolverBudget)
    budgets: dict[str, SolverBudget] = field(default_factory=dict)
    breaker: CircuitBreaker | None = field(default_factory=CircuitBreaker)
    value_range: tuple[float, float] = (-0.5, 1.5)
    residual_factor: float = 2.0
    accept_nonconverged: bool = True

    def __post_init__(self) -> None:
        if not self.fallback_chain:
            raise ValueError("fallback_chain must name at least one solver")

    def budget_for(self, solver: str) -> SolverBudget:
        """The effective budget for one solver (override or default)."""
        return self.budgets.get(solver, self.budget)

    def snapshot(self) -> dict:
        """JSON-safe snapshot of the tunable policy knobs.

        What an adaptive controller changes between frames -- chain,
        retry bound, budgets, breaker state -- captured so a
        :class:`~repro.resilience.runtime.DecodeOutcome` can record the
        exact policy that produced it.
        """

        def _budget(budget: SolverBudget) -> dict:
            return {
                "max_iterations": budget.max_iterations,
                "time_limit_s": budget.time_limit_s,
            }

        return instrument.json_safe(
            {
                "fallback_chain": list(self.fallback_chain),
                "max_rounds": self.retry.max_rounds,
                "budget": _budget(self.budget),
                "budgets": {
                    name: _budget(budget)
                    for name, budget in sorted(self.budgets.items())
                },
                "breaker_open": []
                if self.breaker is None
                else list(self.breaker.open_solvers()),
                "accept_nonconverged": self.accept_nonconverged,
            }
        )
