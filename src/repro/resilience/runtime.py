"""Supervised decode runtime: fallback chains, retries, degradation.

The plain decode path (:func:`repro.core.sample_and_reconstruct`)
surfaces a diverging solver, a poisoned measurement vector or a
pathological sampling draw as an exception or silent garbage.  This
module wraps it in policy-driven supervision so the answer to "what do
we show for this frame?" is *always* a frame plus a structured
:class:`DecodeOutcome`:

1. try each solver of the fallback chain under its iteration/time
   budget, skipping solvers the circuit breaker has sidelined;
2. health-validate every reconstruction (NaN/Inf/shape/range/residual);
3. on a failed round, retry the whole chain with a *fresh sampling
   draw* (bounded by the retry policy);
4. when everything fails, serve the last good frame (zero-order hold)
   or a fill frame -- never raise, never return garbage silently.

Every retry, fallback, breaker trip and health failure is visible in
the :mod:`repro.instrument` report under ``resilience.*``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from .. import instrument
from ..core.engine import DecodeContext, get_engine, validate_decode_inputs
from ..core.measurement import get_measurement
from .health import FrameGuard, HealthReport, validate_reconstruction
from .policies import ResiliencePolicy

__all__ = [
    "AttemptRecord",
    "DecodeOutcome",
    "OUTCOME_SCHEMA",
    "ResilientDecoder",
    "ResilientStrategy",
    "resilient_sample_and_reconstruct",
]

#: Schema tag stamped on every ``DecodeOutcome.to_dict()`` payload
#: (versioned like ``repro.bench/v1``; bump on incompatible changes).
OUTCOME_SCHEMA = "repro.outcome/v1"


@dataclass(frozen=True)
class AttemptRecord:
    """One supervised solve attempt inside a decode.

    Attributes
    ----------
    round:
        Retry round (1-based; each round is a fresh sampling draw).
    solver:
        Solver name tried (or skipped).
    status:
        ``"ok"`` | ``"error"`` | ``"unhealthy"`` | ``"nonconverged"``
        | ``"breaker_open"``.
    error:
        Exception text or failed-check names, ``None`` on success.
    iterations:
        Solver iterations spent (0 when the attempt never ran).
    duration_s:
        Wall-clock cost of the attempt.
    """

    round: int
    solver: str
    status: str
    error: str | None = None
    iterations: int = 0
    duration_s: float = 0.0


@dataclass
class DecodeOutcome:
    """Structured result of one resilient decode.

    Attributes
    ----------
    frame:
        The delivered frame -- a healthy reconstruction, or the
        graceful-degradation fallback.  Never ``None``.
    status:
        ``"ok"`` (first-choice solver, clean convergence, first try),
        ``"degraded"`` (delivered after retries/fallbacks or from a
        non-converged but healthy solve), or ``"fallback"`` (all
        attempts failed; frame comes from the last-good-frame hold).
    solver:
        Solver that produced ``frame`` (``None`` for fallback frames).
    attempts:
        Per-attempt audit trail, in execution order.
    faults_seen:
        Sorted fault labels observed across the attempts (exception
        type names plus ``"diverged"`` / ``"deadline"`` solver flags).
    health:
        Health report of the delivered reconstruction (``None`` for
        fallback frames, which bypass reconstruction entirely).
    policy_snapshot:
        JSON-safe snapshot of the policy that supervised this decode
        (see :meth:`~repro.resilience.policies.ResiliencePolicy.snapshot`);
        with an adaptive controller attached this records the *tuned*
        policy, making adaptation auditable per frame.
    adaptation_events:
        :class:`~repro.resilience.adaptive.AdaptationEvent` records the
        adaptive controller produced around this decode (empty without
        a controller).
    """

    frame: np.ndarray
    status: str
    solver: str | None
    attempts: list[AttemptRecord] = field(default_factory=list)
    faults_seen: tuple[str, ...] = ()
    health: HealthReport | None = None
    policy_snapshot: dict | None = None
    adaptation_events: tuple = ()

    @property
    def delivered(self) -> bool:
        """Always ``True``: the runtime's contract is a frame per call."""
        return self.frame is not None

    def to_dict(self) -> dict:
        """JSON-safe form (the documented ``DecodeOutcome`` schema).

        Every leaf is coerced through
        :func:`repro.instrument.json_safe`, so ``json.dumps`` works
        even when solver info leaked numpy scalars into e.g.
        ``iterations`` or the policy snapshot.  The payload is tagged
        with ``"schema": "repro.outcome/v1"`` (mirroring
        ``repro.bench/v1``) so downstream consumers -- the serve-layer
        response stream, archived logs -- can detect schema drift; the
        JSON round-trip regression test pins the exact key set.
        """
        return instrument.json_safe(
            {
                "schema": OUTCOME_SCHEMA,
                "status": self.status,
                "solver": self.solver,
                "faults_seen": list(self.faults_seen),
                "attempts": [
                    {
                        "round": a.round,
                        "solver": a.solver,
                        "status": a.status,
                        "error": a.error,
                        "iterations": a.iterations,
                        "duration_s": a.duration_s,
                    }
                    for a in self.attempts
                ],
                "health": None
                if self.health is None
                else {
                    "ok": self.health.ok,
                    "failed": list(self.health.failed),
                },
                "policy_snapshot": self.policy_snapshot,
                "adaptation_events": [
                    event.to_dict() for event in self.adaptation_events
                ],
            }
        )


def _solver_fault_labels(info: dict) -> list[str]:
    """Fault labels carried by a solver result's ``info`` flags."""
    labels = []
    if info.get("diverged"):
        labels.append("diverged")
    if info.get("deadline"):
        labels.append("deadline")
    return labels


@dataclass
class ResilientDecoder:
    """Policy-driven supervisor around the core decode.

    Parameters
    ----------
    policy:
        The :class:`~repro.resilience.policies.ResiliencePolicy` to
        enforce.  The policy's circuit breaker is owned by this decoder
        instance and accumulates failure history across frames (that is
        the point of a breaker); use a fresh decoder for independent
        runs.
    guard:
        Last-good-frame store for graceful degradation; defaults to a
        fresh dark-frame guard.
    adaptive:
        Optional :class:`~repro.resilience.adaptive.AdaptivePolicy`
        feedback controller.  When set, each decode reads the
        controller's tuned live policy (``self.policy`` tracks it),
        merges the controller's stuck-line exclusion mask into the
        sampling exclusions, and feeds the outcome back so the next
        frame's policy reflects this frame's health.
    measurement:
        Registered measurement-family name (see
        :mod:`repro.core.measurement`) every supervised decode samples
        with.  Families without exclusion support reject caller-supplied
        masks up front (``ValueError``) and skip adaptive stuck-line
        masks with an explicit ``"unsupported"`` adaptation event.
    """

    policy: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    guard: FrameGuard = field(default_factory=FrameGuard)
    adaptive: object | None = None
    measurement: str = "row_sampling"

    def decode(
        self,
        frame: np.ndarray,
        sampling_fraction: float,
        rng: np.random.Generator,
        exclude_mask: np.ndarray | None = None,
        noise_sigma: float = 0.0,
        solver_options: dict | None = None,
    ) -> DecodeOutcome:
        """Decode one frame under full supervision.

        Same signature as :func:`repro.core.sample_and_reconstruct`
        (minus ``solver``, which the fallback chain owns), but returns
        a :class:`DecodeOutcome` and *never raises* past input
        validation: caller bugs (NaN frame, bad fraction, starving
        exclusion mask) still surface as ``ValueError`` immediately,
        while solver-side faults are contained, retried and degraded.
        With an :attr:`adaptive` controller the outcome additionally
        carries the adaptation events and the tuned policy snapshot.
        """
        if self.adaptive is not None:
            self.policy = self.adaptive.policy
            adaptive_mask = self.adaptive.exclusion_mask(
                np.shape(np.asarray(frame))
            )
            if adaptive_mask is not None:
                if not get_measurement(self.measurement).supports_exclusions:
                    # Degrade explicitly, not silently: the stuck-line
                    # mask cannot steer this family's sampling.
                    self.adaptive.note_unsupported(
                        f"measurement family {self.measurement!r} lacks "
                        f"exclusion support; ignoring "
                        f"{int(adaptive_mask.sum())} stuck-line pixels"
                    )
                else:
                    exclude_mask = (
                        adaptive_mask
                        if exclude_mask is None
                        else np.asarray(exclude_mask, dtype=bool)
                        | adaptive_mask
                    )
        outcome = self._decode_supervised(
            frame,
            sampling_fraction,
            rng,
            exclude_mask,
            noise_sigma,
            solver_options,
        )
        if self.adaptive is not None:
            self.adaptive.observe_outcome(outcome)
            outcome.adaptation_events = tuple(self.adaptive.pop_events())
        outcome.policy_snapshot = self.policy.snapshot()
        return outcome

    def decode_batch(
        self,
        frames,
        sampling_fraction: float,
        rng: np.random.Generator,
        exclude_mask: np.ndarray | None = None,
        noise_sigma: float = 0.0,
        solver_options: dict | None = None,
        shared_phi: bool = False,
    ) -> list[DecodeOutcome]:
        """Supervise a whole batch through one optimistic multi-RHS pass.

        Fast path: snapshot the RNG state, run the *head* solver of the
        fallback chain over all frames via
        :meth:`repro.core.engine.DecodeEngine.decode_batch` (which
        vectorises the solve when ``shared_phi`` is set and the solver
        has a multi-RHS kernel), then health-validate every frame with
        exactly the checks :meth:`decode` applies.  When every frame
        passes, the outcomes are committed -- breaker successes
        recorded, frame guard updated -- and with ``shared_phi=False``
        they are bitwise identical to ``len(frames)`` serial
        :meth:`decode` calls, because batch acquisition consumes the RNG
        in the same frame order.

        Pessimistic path: if *any* frame fails validation (or the batch
        solve raises), the RNG state is restored and the batch is
        replayed through the ordinary per-frame supervised loop, so
        fallback chains, retry rounds, breaker bookkeeping and graceful
        degradation behave exactly as N serial calls would.  The batch
        is also supervised per-frame when an adaptive controller is
        attached (its policy mutates between frames) or the breaker has
        the head solver sidelined.

        ``shared_phi=True`` reuses one sampling pattern for the whole
        batch (the streaming-hardware regime); the fast path is then
        deterministic per batch but intentionally *not* equivalent to
        serial calls, which each draw a fresh pattern.

        Input validation (bad frames, starving masks) raises
        ``ValueError`` up front, before any RNG consumption; solver
        faults never escape.
        """
        frames = [
            validate_decode_inputs(frame, sampling_fraction, noise_sigma)
            for frame in frames
        ]
        if not frames:
            return []
        if exclude_mask is not None:
            exclude_mask = np.asarray(exclude_mask, dtype=bool)
            if exclude_mask.shape != frames[0].shape:
                raise ValueError("exclude_mask shape must match frame shape")
            if int(exclude_mask.sum()) >= frames[0].size:
                raise ValueError(
                    "exclusion mask leaves no pixels to sample "
                    f"({int(exclude_mask.sum())} of {frames[0].size} excluded)"
                )
            self._require_exclusion_support(exclude_mask)
        instrument.incr("resilience.batch_decodes")
        policy = self.policy
        breaker = policy.breaker
        head = policy.fallback_chain[0]
        serial = self.adaptive is not None or (
            breaker is not None and breaker.is_open(head)
        )
        if not serial:
            outcomes = self._decode_batch_optimistic(
                frames,
                sampling_fraction,
                rng,
                exclude_mask,
                noise_sigma,
                solver_options,
                shared_phi,
                head,
            )
            if outcomes is not None:
                return outcomes
            instrument.incr("resilience.batch_fallbacks")
        return [
            self.decode(
                frame,
                sampling_fraction,
                rng,
                exclude_mask=exclude_mask,
                noise_sigma=noise_sigma,
                solver_options=solver_options,
            )
            for frame in frames
        ]

    def _require_exclusion_support(self, exclude_mask: np.ndarray) -> None:
        """Caller-supplied masks against a mask-blind family are a bug."""
        if exclude_mask.any() and not get_measurement(
            self.measurement
        ).supports_exclusions:
            raise ValueError(
                f"measurement family {self.measurement!r} does not support "
                "exclusion masks; clear the mask or switch families"
            )

    def _decode_batch_optimistic(
        self,
        frames: list[np.ndarray],
        sampling_fraction: float,
        rng: np.random.Generator,
        exclude_mask: np.ndarray | None,
        noise_sigma: float,
        solver_options: dict | None,
        shared_phi: bool,
        head: str,
    ) -> list[DecodeOutcome] | None:
        """One batched head-solver pass; ``None`` means replay serially.

        Inputs are already validated by :meth:`decode_batch`.  Snapshots
        the RNG state and restores it whenever the pass cannot be
        committed, so the serial replay observes the exact generator the
        caller handed in.
        """
        policy = self.policy
        options = dict(solver_options or {})
        options.update(policy.budget_for(head).solver_options(head))
        plan = DecodeContext(
            shape=frames[0].shape,
            sampling_fraction=sampling_fraction,
            noise_sigma=noise_sigma,
            exclude_mask=exclude_mask,
            solver=head,
            solver_options=options,
            measurement=self.measurement,
        )
        state = rng.bit_generator.state
        start = time.perf_counter()
        with instrument.span(
            "resilience.decode_batch",
            frames=len(frames),
            solver=head,
            shared_phi=shared_phi,
        ) as sp:
            try:
                decodes = get_engine().decode_batch(
                    frames,
                    plan,
                    rng,
                    shared_phi=shared_phi,
                    full_output=True,
                )
            except Exception:
                rng.bit_generator.state = state
                sp.set(committed=False)
                return None
            duration = (time.perf_counter() - start) / len(frames)
            outcomes: list[DecodeOutcome] = []
            for frame, decode in zip(frames, decodes):
                result = decode.solver_result
                health = validate_reconstruction(
                    decode.reconstruction,
                    expected_shape=frame.shape,
                    value_range=policy.value_range,
                    solver_result=result,
                    measurements=decode.measurements,
                    residual_factor=policy.residual_factor,
                )
                if not health.ok or (
                    not result.converged and not policy.accept_nonconverged
                ):
                    rng.bit_generator.state = state
                    sp.set(committed=False)
                    return None
                status = "ok" if result.converged else "degraded"
                outcomes.append(
                    DecodeOutcome(
                        frame=decode.reconstruction,
                        status=status,
                        solver=head,
                        attempts=[
                            AttemptRecord(
                                1,
                                head,
                                "ok",
                                iterations=result.iterations,
                                duration_s=duration,
                            )
                        ],
                        faults_seen=tuple(
                            sorted(set(_solver_fault_labels(result.info)))
                        ),
                        health=health,
                        policy_snapshot=policy.snapshot(),
                    )
                )
            # Commit: every frame is healthy, so replay the per-frame
            # bookkeeping the serial loop would have done.
            breaker = policy.breaker
            for outcome in outcomes:
                instrument.incr("resilience.decodes")
                instrument.incr("resilience.attempts")
                if breaker is not None:
                    breaker.record_success(head)
                self.guard.update(outcome.frame)
                instrument.incr(f"resilience.decodes_{outcome.status}")
                instrument.observe("resilience.attempts_per_decode", 1)
            sp.set(committed=True)
            return outcomes

    def _decode_supervised(
        self,
        frame: np.ndarray,
        sampling_fraction: float,
        rng: np.random.Generator,
        exclude_mask: np.ndarray | None,
        noise_sigma: float,
        solver_options: dict | None,
    ) -> DecodeOutcome:
        """The supervision loop proper (policy already pinned)."""
        frame = validate_decode_inputs(frame, sampling_fraction, noise_sigma)
        if exclude_mask is not None:
            exclude_mask = np.asarray(exclude_mask, dtype=bool)
            if exclude_mask.shape != frame.shape:
                raise ValueError("exclude_mask shape must match frame shape")
            if int(exclude_mask.sum()) >= frame.size:
                raise ValueError(
                    "exclusion mask leaves no pixels to sample "
                    f"({int(exclude_mask.sum())} of {frame.size} excluded)"
                )
            self._require_exclusion_support(exclude_mask)
        # One plan for the whole supervised decode: every retry round and
        # fallback solver reuses the same cached operator template, so an
        # attempt costs a solve, not a rebuild.
        base_plan = DecodeContext(
            shape=frame.shape,
            sampling_fraction=sampling_fraction,
            noise_sigma=noise_sigma,
            exclude_mask=exclude_mask,
            measurement=self.measurement,
        )
        policy = self.policy
        breaker = policy.breaker
        attempts: list[AttemptRecord] = []
        faults: list[str] = []
        with instrument.span(
            "resilience.decode",
            n=frame.size,
            sampling_fraction=sampling_fraction,
        ) as sp:
            instrument.incr("resilience.decodes")
            for round_index in range(1, policy.retry.max_rounds + 1):
                if round_index > 1:
                    instrument.incr("resilience.retry_rounds")
                for solver in policy.fallback_chain:
                    if breaker is not None and not breaker.allow(solver):
                        attempts.append(
                            AttemptRecord(round_index, solver, "breaker_open")
                        )
                        continue
                    record = self._attempt(
                        round_index,
                        solver,
                        frame,
                        base_plan,
                        rng,
                        solver_options,
                        faults,
                    )
                    attempts.append(record[0])
                    if record[1] is None:
                        continue
                    reconstruction, health, converged = record[1]
                    self.guard.update(reconstruction)
                    clean_first_try = (
                        converged
                        and len(attempts) == 1
                        and attempts[0].status == "ok"
                    )
                    status = "ok" if clean_first_try else "degraded"
                    instrument.incr(f"resilience.decodes_{status}")
                    instrument.observe(
                        "resilience.attempts_per_decode", len(attempts)
                    )
                    sp.set(status=status, solver=solver, attempts=len(attempts))
                    return DecodeOutcome(
                        frame=reconstruction,
                        status=status,
                        solver=solver,
                        attempts=attempts,
                        faults_seen=tuple(sorted(set(faults))),
                        health=health,
                    )
            # Every attempt failed: graceful degradation.
            instrument.incr("resilience.decodes_fallback")
            instrument.observe("resilience.attempts_per_decode", len(attempts))
            sp.set(status="fallback", attempts=len(attempts))
            return DecodeOutcome(
                frame=self.guard.fallback(frame.shape),
                status="fallback",
                solver=None,
                attempts=attempts,
                faults_seen=tuple(sorted(set(faults))),
                health=None,
            )

    def _attempt(
        self,
        round_index: int,
        solver: str,
        frame: np.ndarray,
        base_plan: DecodeContext,
        rng: np.random.Generator,
        solver_options: dict | None,
        faults: list[str],
    ):
        """Run one solve attempt; returns ``(record, success_or_None)``.

        ``success`` is ``(reconstruction, health, converged)`` when the
        attempt delivered a healthy frame.  Failures update the breaker
        and the fault list as a side effect.
        """
        policy = self.policy
        breaker = policy.breaker
        options = dict(solver_options or {})
        options.update(policy.budget_for(solver).solver_options(solver))
        plan = replace(base_plan, solver=solver, solver_options=options)
        start = time.perf_counter()
        instrument.incr("resilience.attempts")
        try:
            with instrument.span(
                "resilience.attempt", solver=solver, round=round_index
            ):
                decode = get_engine().decode(
                    frame, plan, rng, full_output=True
                )
        except Exception as exc:
            duration = time.perf_counter() - start
            faults.append(type(exc).__name__)
            if breaker is not None:
                breaker.record_failure(solver)
            instrument.incr("resilience.attempt_errors")
            return (
                AttemptRecord(
                    round_index,
                    solver,
                    "error",
                    error=f"{type(exc).__name__}: {exc}",
                    duration_s=duration,
                ),
                None,
            )
        duration = time.perf_counter() - start
        result = decode.solver_result
        faults.extend(_solver_fault_labels(result.info))
        health = validate_reconstruction(
            decode.reconstruction,
            expected_shape=frame.shape,
            value_range=policy.value_range,
            solver_result=result,
            measurements=decode.measurements,
            residual_factor=policy.residual_factor,
        )
        if not health.ok:
            if breaker is not None:
                breaker.record_failure(solver)
            return (
                AttemptRecord(
                    round_index,
                    solver,
                    "unhealthy",
                    error=",".join(health.failed),
                    iterations=result.iterations,
                    duration_s=duration,
                ),
                None,
            )
        if not result.converged and not policy.accept_nonconverged:
            if breaker is not None:
                breaker.record_failure(solver)
            return (
                AttemptRecord(
                    round_index,
                    solver,
                    "nonconverged",
                    error="stopping criterion not met",
                    iterations=result.iterations,
                    duration_s=duration,
                ),
                None,
            )
        if breaker is not None:
            breaker.record_success(solver)
        return (
            AttemptRecord(
                round_index,
                solver,
                "ok",
                iterations=result.iterations,
                duration_s=duration,
            ),
            (decode.reconstruction, health, result.converged),
        )


def resilient_sample_and_reconstruct(
    frame: np.ndarray,
    sampling_fraction: float,
    rng: np.random.Generator,
    policy: ResiliencePolicy | None = None,
    exclude_mask: np.ndarray | None = None,
    noise_sigma: float = 0.0,
    solver_options: dict | None = None,
    guard: FrameGuard | None = None,
    measurement: str = "row_sampling",
) -> DecodeOutcome:
    """One-shot resilient decode (drop-in hardened ``sample_and_reconstruct``).

    Builds a throwaway :class:`ResilientDecoder`; for streams of frames
    prefer holding a decoder instance so the circuit breaker and the
    last-good-frame guard accumulate useful state.
    """
    decoder = ResilientDecoder(
        policy=policy if policy is not None else ResiliencePolicy(),
        guard=guard if guard is not None else FrameGuard(),
        measurement=measurement,
    )
    return decoder.decode(
        frame,
        sampling_fraction,
        rng,
        exclude_mask=exclude_mask,
        noise_sigma=noise_sigma,
        solver_options=solver_options,
    )


@dataclass
class ResilientStrategy:
    """Route any decode strategy through the resilience runtime.

    Wraps a strategy object from :mod:`repro.core.strategies` (anything
    with mutable ``solver`` / ``solver_options`` attributes and a
    ``reconstruct(corrupted, rng, **kwargs)`` method).  Each attempt
    re-points the inner strategy at the next solver of the fallback
    chain (budget merged into its options) and health-validates the
    returned frame; when every attempt fails the guard's fallback frame
    is returned instead, so the wrapped strategy keeps the plain
    ``reconstruct -> ndarray`` contract the pipeline expects.

    The full audit trail of the most recent call is kept on
    :attr:`last_outcome`, which the pipeline attaches to its
    :class:`~repro.core.pipeline.FrameOutcome`.

    :attr:`exclude_mask` (settable at any time, e.g. from an adaptive
    controller's stuck-line detections) is OR-merged into the
    ``error_mask`` keyword of every inner ``reconstruct`` call, so
    health-driven sampling exclusions reach strategies that accept a
    mask (the oracle/weighted strategies and, via its ``error_mask``
    parameter, the resampling strategy).
    """

    inner: object
    policy: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    guard: FrameGuard = field(default_factory=FrameGuard)
    last_outcome: DecodeOutcome | None = field(default=None, repr=False)
    exclude_mask: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not hasattr(self.inner, "reconstruct"):
            raise TypeError(
                f"{type(self.inner).__name__} has no reconstruct(); "
                "wrap a strategy from repro.core.strategies"
            )

    def reconstruct(
        self, corrupted: np.ndarray, rng: np.random.Generator, **kwargs
    ) -> np.ndarray:
        """Supervised version of the inner strategy's ``reconstruct``."""
        corrupted = np.asarray(corrupted, dtype=float)
        if self.exclude_mask is not None:
            mask = np.asarray(self.exclude_mask, dtype=bool)
            existing = kwargs.get("error_mask")
            kwargs = dict(kwargs)
            kwargs["error_mask"] = (
                mask
                if existing is None
                else np.asarray(existing, dtype=bool) | mask
            )
        policy = self.policy
        breaker = policy.breaker
        attempts: list[AttemptRecord] = []
        faults: list[str] = []
        original = (
            getattr(self.inner, "solver", None),
            dict(getattr(self.inner, "solver_options", {}) or {}),
        )
        try:
            with instrument.span(
                "resilience.strategy",
                strategy=type(self.inner).__name__,
            ) as sp:
                instrument.incr("resilience.decodes")
                outcome = self._supervised(
                    corrupted, rng, kwargs, attempts, faults, breaker, sp
                )
        finally:
            if original[0] is not None:
                self.inner.solver = original[0]
                self.inner.solver_options = original[1]
        self.last_outcome = outcome
        return outcome.frame

    def _supervised(
        self, corrupted, rng, kwargs, attempts, faults, breaker, sp
    ) -> DecodeOutcome:
        policy = self.policy
        for round_index in range(1, policy.retry.max_rounds + 1):
            if round_index > 1:
                instrument.incr("resilience.retry_rounds")
            for solver in policy.fallback_chain:
                if breaker is not None and not breaker.allow(solver):
                    attempts.append(
                        AttemptRecord(round_index, solver, "breaker_open")
                    )
                    continue
                instrument.incr("resilience.attempts")
                self.inner.solver = solver
                merged = dict(
                    getattr(self.inner, "solver_options", {}) or {}
                )
                merged.update(policy.budget_for(solver).solver_options(solver))
                self.inner.solver_options = merged
                start = time.perf_counter()
                try:
                    reconstruction = self.inner.reconstruct(
                        corrupted, rng, **kwargs
                    )
                except Exception as exc:
                    faults.append(type(exc).__name__)
                    if breaker is not None:
                        breaker.record_failure(solver)
                    instrument.incr("resilience.attempt_errors")
                    attempts.append(
                        AttemptRecord(
                            round_index,
                            solver,
                            "error",
                            error=f"{type(exc).__name__}: {exc}",
                            duration_s=time.perf_counter() - start,
                        )
                    )
                    continue
                duration = time.perf_counter() - start
                health = validate_reconstruction(
                    reconstruction,
                    expected_shape=corrupted.shape,
                    value_range=policy.value_range,
                )
                if not health.ok:
                    if breaker is not None:
                        breaker.record_failure(solver)
                    attempts.append(
                        AttemptRecord(
                            round_index,
                            solver,
                            "unhealthy",
                            error=",".join(health.failed),
                            duration_s=duration,
                        )
                    )
                    continue
                if breaker is not None:
                    breaker.record_success(solver)
                self.guard.update(reconstruction)
                attempts.append(
                    AttemptRecord(
                        round_index, solver, "ok", duration_s=duration
                    )
                )
                status = (
                    "ok"
                    if len(attempts) == 1
                    else "degraded"
                )
                instrument.incr(f"resilience.decodes_{status}")
                instrument.observe(
                    "resilience.attempts_per_decode", len(attempts)
                )
                sp.set(status=status, solver=solver, attempts=len(attempts))
                return DecodeOutcome(
                    frame=reconstruction,
                    status=status,
                    solver=solver,
                    attempts=attempts,
                    faults_seen=tuple(sorted(set(faults))),
                    health=health,
                )
        instrument.incr("resilience.decodes_fallback")
        instrument.observe("resilience.attempts_per_decode", len(attempts))
        sp.set(status="fallback", attempts=len(attempts))
        return DecodeOutcome(
            frame=self.guard.fallback(corrupted.shape),
            status="fallback",
            solver=None,
            attempts=attempts,
            faults_seen=tuple(sorted(set(faults))),
            health=None,
        )
