"""Executor-layer chaos: crash, hang and slow-start worker injectors.

The third injector family of the chaos taxonomy.  The solver family
(:mod:`repro.resilience.chaos`) attacks the *math*, the array family
(:mod:`repro.resilience.array_chaos`) attacks the *physics*; this one
attacks the *infrastructure* -- the workers that
:class:`repro.core.executor.SupervisedExecutor` supervises:

==============================  ======================================
injector                        simulates
==============================  ======================================
:class:`WorkerCrashInjector`    a worker process dying mid-task
                                (raises :class:`~repro.core.executor.
                                WorkerCrash`)
:class:`WorkerHangInjector`     a wedged worker (the task body stalls
                                for ``hang_s`` before proceeding)
:class:`WorkerSlowStartInjector` cold-start latency: the first task on
                                each new worker pays ``delay_s``
==============================  ======================================

Each injector declares ``layer = "executor"`` so the shared
:func:`~repro.resilience.chaos.chaos` context manager attaches it to
the executor task seam
(:func:`repro.core.executor.register_worker_hook`), and
``default_taxonomy(layer="executor")`` / ``layer="all"`` mix the family
into full-stack fault campaigns.

Scope caveat: hooks run in the *submitting* process, so they reach the
serial and thread backends (and everything the supervised wrapper
drives through them); process-pool children run in separate
interpreters the registry does not cross.  Determinism: with a serial
(or supervised-serial) backend the task order is the submission order,
so seeded runs trip bit-identically; under a thread pool the *set* of
draws is fixed but their assignment to tasks follows scheduling.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.executor import WorkerCrash
from .chaos import FaultInjector

__all__ = [
    "WorkerCrashInjector",
    "WorkerHangInjector",
    "WorkerSlowStartInjector",
    "default_worker_taxonomy",
]


@dataclass
class WorkerCrashInjector(FaultInjector):
    """Kill the current worker task with a :class:`WorkerCrash`.

    An unsupervised executor surfaces the crash as a failed task
    result; a :class:`~repro.core.executor.SupervisedExecutor` counts
    it as ``executor.worker_lost`` and retries the task on a surviving
    worker.
    """

    name = "worker_crash"
    layer = "executor"

    def before_task(self, label: str, index: int) -> None:
        """Raise at the configured rate before the task body runs."""
        if self._fire():
            raise WorkerCrash(
                f"injected worker crash in {label!r} task {index} "
                f"(trip #{self.trips} of {type(self).__name__})"
            )


@dataclass
class WorkerHangInjector(FaultInjector):
    """Wedge the current worker for ``hang_s`` before the task runs.

    Under a supervised pooled executor with ``timeout_s < hang_s`` the
    heartbeat poll declares the worker lost and the task retries
    elsewhere while the wedged worker sleeps its hang off.

    Parameters
    ----------
    hang_s:
        Seconds the worker stalls per trip (keep small in tests; the
        sleep is real).
    """

    hang_s: float = 0.05
    name = "worker_hang"
    layer = "executor"

    def __post_init__(self) -> None:
        """Validate ``hang_s`` on top of the base rate/seed checks."""
        super().__post_init__()
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")

    def before_task(self, label: str, index: int) -> None:
        """Stall at the configured rate before the task body runs."""
        if self._fire() and self.hang_s > 0:
            time.sleep(self.hang_s)


@dataclass
class WorkerSlowStartInjector(FaultInjector):
    """Charge cold-start latency to the first task of each new worker.

    Real pools pay an import/fork storm on the first task a fresh
    worker runs; this injector reproduces it so supervision and bench
    warm-up logic are exercised.  Worker identity is the executing
    thread: the first task observed on each new thread rolls the rate
    once, and a trip sleeps ``delay_s``.

    Parameters
    ----------
    delay_s:
        Cold-start seconds charged per tripped worker.
    """

    delay_s: float = 0.02
    name = "worker_slow_start"
    layer = "executor"
    _seen: set = field(default_factory=set, init=False, repr=False)

    def __post_init__(self) -> None:
        """Validate ``delay_s`` on top of the base rate/seed checks."""
        super().__post_init__()
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def reset(self) -> None:
        """Restore initial state, forgetting every seen worker."""
        super().reset()
        self._seen = set()

    def before_task(self, label: str, index: int) -> None:
        """On each new worker thread, roll once and maybe stall."""
        ident = threading.get_ident()
        if ident in self._seen:
            return
        self._seen.add(ident)
        if self._fire() and self.delay_s > 0:
            time.sleep(self.delay_s)


def default_worker_taxonomy(
    fault_rate: float,
    seed: int = 0,
    hang_s: float = 0.05,
    delay_s: float = 0.02,
) -> tuple[FaultInjector, ...]:
    """The full executor-layer taxonomy at a combined ``fault_rate``.

    Splits the rate evenly across the three worker-fault families with
    distinct derived seeds, mirroring
    :func:`repro.resilience.chaos.default_taxonomy` (which dispatches
    here for ``layer="executor"``).
    """
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
    per_family = fault_rate / 3.0
    return (
        WorkerCrashInjector(rate=per_family, seed=seed),
        WorkerHangInjector(rate=per_family, seed=seed + 1, hang_s=hang_s),
        WorkerSlowStartInjector(
            rate=per_family, seed=seed + 2, delay_s=delay_s
        ),
    )
