"""repro.serve -- the multi-tenant async decode service.

The serving layer the ROADMAP's million-user north star asks for: many
sensor streams decoded concurrently without one misbehaving tenant
starving the rest.  Every piece the service composes already exists in
the repo -- frozen :class:`~repro.core.engine.DecodeContext` plans, the
batched :meth:`~repro.core.engine.DecodeEngine.decode_batch` path, the
pluggable :mod:`~repro.core.executor` backends and the supervised
:class:`~repro.resilience.runtime.ResilientDecoder` -- this package
adds the robust front end that owns them under load:

* **admission control** (:mod:`.admission`): token-bucket quotas per
  tenant and per stream, with a machine-readable rejection taxonomy;
* **bounded queues + backpressure** (:mod:`.queueing`): explicit
  ``accepted`` / ``queued`` / ``rejected`` tickets, never unbounded
  memory;
* **deadlines** (:mod:`.clock`, the dispatch loop): expired frames are
  cancelled with a terminal verdict instead of rotting in the queue,
  and accepted frames never miss deadlines silently;
* **priority-aware load shedding**: under sustained overload the
  lowest-priority, stalest frames are shed first -- every shed frame
  gets an answer;
* **per-stream health supervision** (:mod:`.supervisor`): fault-ratio
  and deadline-loss tracking, a stream-level circuit breaker, and
  drainable :class:`~repro.serve.supervisor.AlertEvent` records;
* **batch coalescing** (:mod:`.coalescer`): same-plan frames collapse
  into ``decode_batch`` calls on a shared executor;
* an **asyncio front end** (:mod:`.async_service`) over the
  deterministic synchronous core (:mod:`.service`);
* **durability** (:mod:`.durability`, :mod:`.replay`): a CRC-guarded
  write-ahead verdict journal, checkpoint + crash recovery with
  ``recovered=True`` honesty flags, and an offline replay/audit CLI
  (``python -m repro.serve.replay``).

Quickstart::

    import numpy as np
    from repro.core.engine import DecodeContext
    from repro.serve import (
        DecodeService, Quota, StreamConfig, TenantConfig,
    )

    service = DecodeService(cycle_budget=8)
    service.register_tenant(TenantConfig("icu", priority=2))
    service.register_stream(StreamConfig(
        name="icu/skin-0", tenant="icu",
        plan=DecodeContext(shape=(16, 16), sampling_fraction=0.5),
        quota=Quota(rate=100.0, burst=16),
    ))
    ticket = service.submit("icu/skin-0", np.zeros((16, 16)))
    verdicts = service.drain()

See ``docs/SERVING.md`` for the full lifecycle, the rejection-reason
taxonomy and the overload semantics.
"""

from .admission import REJECTION_REASONS, AdmissionController, Quota, TokenBucket
from .async_service import AsyncDecodeService
from .clock import Clock, MonotonicClock, VirtualClock
from .coalescer import CoalescedBatch, Coalescer, decode_pending
from .durability import (
    JOURNAL_SCHEMA,
    JournalError,
    JournalVersionError,
    VerdictJournal,
    read_journal,
    scan_journal,
)
from .queueing import (
    PendingFrame,
    StreamQueue,
    select_for_dispatch,
    shed_overload,
)
# NOTE: .replay is deliberately NOT imported eagerly -- it doubles as
# the ``python -m repro.serve.replay`` CLI, and importing it here would
# put it in sys.modules before runpy executes it as __main__ (the
# "found in sys.modules" RuntimeWarning).  The two public names resolve
# lazily through __getattr__ below.
from .service import (
    DecodeService,
    DrainExhausted,
    DrainResult,
    FrameVerdict,
    StreamConfig,
    SubmitTicket,
    TenantConfig,
)
from .supervisor import AlertEvent, StreamSupervisor

__all__ = [
    "AdmissionController",
    "AlertEvent",
    "AsyncDecodeService",
    "Clock",
    "CoalescedBatch",
    "Coalescer",
    "DecodeService",
    "DrainExhausted",
    "DrainResult",
    "FrameVerdict",
    "JOURNAL_SCHEMA",
    "JournalError",
    "JournalVersionError",
    "MonotonicClock",
    "PendingFrame",
    "Quota",
    "REJECTION_REASONS",
    "StreamConfig",
    "StreamQueue",
    "StreamSupervisor",
    "SubmitTicket",
    "TenantConfig",
    "TokenBucket",
    "VerdictJournal",
    "VirtualClock",
    "decode_pending",
    "read_journal",
    "render_report",
    "replay_report",
    "scan_journal",
    "select_for_dispatch",
    "shed_overload",
]


def __getattr__(name: str):
    """Resolve the replay re-exports lazily (see the NOTE above)."""
    if name in ("render_report", "replay_report"):
        from . import replay

        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
