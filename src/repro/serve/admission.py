"""Admission control: token buckets, quotas and the rejection taxonomy.

The first robustness layer of the decode service: *before* a frame is
allowed to occupy queue memory, its tenant's and its stream's token
buckets must both cover it.  A misbehaving tenant flooding the service
therefore burns its own budget and sees explicit, machine-readable
rejections -- it cannot starve other tenants of queue space or decode
cycles (the serving-layer lesson of the context-aware-readout line of
work: idle or greedy streams must be cheap to refuse).

Everything here is deterministic: buckets refill as a pure function of
the injected :class:`~repro.serve.clock.Clock`, so identical traffic
against a :class:`~repro.serve.clock.VirtualClock` admits and rejects
identically on every run.

The module also owns the service-wide **rejection-reason taxonomy**
(:data:`REJECTION_REASONS`): every rejected submission and every shed
frame carries exactly one of these strings, and the acceptance tests
assert the service never invents an undocumented reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import instrument
from .clock import Clock, MonotonicClock

__all__ = [
    "AdmissionController",
    "Quota",
    "REJECTION_REASONS",
    "TokenBucket",
]


#: Machine-readable reasons a frame can be refused or shed.  Submission
#: rejections (returned on the ticket):
#:
#: * ``"invalid_frame"``       -- frame failed validation (shape/NaN/Inf);
#: * ``"tenant_rate_exceeded"``-- the tenant token bucket is empty;
#: * ``"stream_rate_exceeded"``-- the stream token bucket is empty;
#: * ``"queue_full"``          -- the stream's bounded queue is at capacity;
#: * ``"breaker_open"``        -- the stream's health breaker is open;
#: * ``"deadline_unsatisfiable"`` -- the deadline had already passed at
#:   submission;
#: * ``"service_stopped"``     -- the service is shutting down.
#:
#: Queue sheds (returned on the terminal verdict):
#:
#: * ``"deadline_expired"``    -- the deadline passed while queued;
#: * ``"overload_shed"``       -- dropped by priority-aware load shedding.
REJECTION_REASONS: frozenset[str] = frozenset(
    {
        "invalid_frame",
        "tenant_rate_exceeded",
        "stream_rate_exceeded",
        "queue_full",
        "breaker_open",
        "deadline_unsatisfiable",
        "service_stopped",
        "deadline_expired",
        "overload_shed",
    }
)


@dataclass(frozen=True)
class Quota:
    """A sustained-rate + burst admission budget.

    Parameters
    ----------
    rate:
        Sustained admissions per second (tokens refilled per second of
        clock time).  ``0`` means "no sustained budget" -- only the
        initial burst is ever admitted.
    burst:
        Bucket capacity: how many admissions may arrive back-to-back
        before the rate limit bites.
    """

    rate: float
    burst: int

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


class TokenBucket:
    """Deterministic token bucket refilled from an injected clock.

    Tokens accrue continuously at ``quota.rate`` per clock second up to
    ``quota.burst``; each admission spends one token.  Refill is a pure
    function of elapsed clock time, so under a
    :class:`~repro.serve.clock.VirtualClock` the admit/reject sequence
    for a given traffic trace is exactly reproducible.
    """

    def __init__(self, quota: Quota, clock: Clock | None = None):
        self.quota = quota
        self._clock = clock if clock is not None else MonotonicClock()
        self._tokens = float(quota.burst)
        self._last = self._clock.now()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(
            float(self.quota.burst), self._tokens + elapsed * self.quota.rate
        )

    def peek(self) -> float:
        """Tokens available right now (after refill), without spending."""
        self._refill(self._clock.now())
        return self._tokens

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens if available; ``False`` otherwise."""
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        self._refill(self._clock.now())
        if self._tokens + 1e-9 >= amount:
            self._tokens -= amount
            return True
        return False


class AdmissionController:
    """Per-tenant and per-stream rate gates for one service instance.

    Owns one :class:`TokenBucket` per registered tenant and stream
    (``None`` quota = unlimited).  :meth:`admit` checks the tenant gate
    first, then the stream gate, and returns the first rejection reason
    -- or ``None`` when the frame may proceed to the queue layer.
    Results are counted under ``serve.admission.*``.
    """

    def __init__(self, clock: Clock):
        self._clock = clock
        self._tenant_buckets: dict[str, TokenBucket] = {}
        self._stream_buckets: dict[str, TokenBucket] = {}

    def register_tenant(self, tenant: str, quota: Quota | None) -> None:
        """Install (or remove, with ``None``) a tenant's rate quota."""
        if quota is None:
            self._tenant_buckets.pop(tenant, None)
        else:
            self._tenant_buckets[tenant] = TokenBucket(quota, self._clock)

    def register_stream(self, stream: str, quota: Quota | None) -> None:
        """Install (or remove, with ``None``) a stream's rate quota."""
        if quota is None:
            self._stream_buckets.pop(stream, None)
        else:
            self._stream_buckets[stream] = TokenBucket(quota, self._clock)

    def admit(self, tenant: str, stream: str) -> str | None:
        """Gate one submission; returns a rejection reason or ``None``.

        Token spend is atomic across the two gates: when the tenant
        bucket admits but the stream bucket refuses, the tenant token
        is refunded so a stream-limited burst does not silently drain
        its tenant's budget.
        """
        tenant_bucket = self._tenant_buckets.get(tenant)
        if tenant_bucket is not None and not tenant_bucket.try_acquire():
            instrument.incr("serve.admission.tenant_rate_exceeded")
            return "tenant_rate_exceeded"
        stream_bucket = self._stream_buckets.get(stream)
        if stream_bucket is not None and not stream_bucket.try_acquire():
            if tenant_bucket is not None:
                tenant_bucket._tokens = min(
                    float(tenant_bucket.quota.burst),
                    tenant_bucket._tokens + 1.0,
                )
            instrument.incr("serve.admission.stream_rate_exceeded")
            return "stream_rate_exceeded"
        instrument.incr("serve.admission.admitted")
        return None
