"""Asyncio front end: awaitable submissions over the deterministic core.

:class:`AsyncDecodeService` wraps a :class:`~repro.serve.service.DecodeService`
for event-loop callers: ``await submit(...)`` performs admission
control inline (it is cheap and synchronous) and returns the ticket
*plus* an awaitable for the terminal verdict; a background pump task
runs dispatch cycles -- off the event loop via
:func:`asyncio.to_thread`, so BLAS-heavy solves never block admission
-- whenever there is backlog.

The split keeps the robustness logic testable: everything that decides
*what happens to a frame* lives in the synchronous core and is covered
by the deterministic overload tests; this module only adds scheduling
(futures, the pump task, graceful shutdown) and inherits the core's
zero-unanswered-frames contract -- ``aclose`` drains the backlog, so
every pending future resolves before the loop is released.

Typical use::

    service = DecodeService(executor="thread", cycle_budget=16)
    ...register tenants and streams...
    async with AsyncDecodeService(service) as srv:
        ticket, verdict = await srv.decode("skin-7", frame, deadline_s=0.1)
        if ticket.admitted:
            print((await verdict).status)
"""

from __future__ import annotations

import asyncio

import numpy as np

from .service import DecodeService, FrameVerdict, SubmitTicket

__all__ = ["AsyncDecodeService"]


class AsyncDecodeService:
    """Awaitable facade over a :class:`~repro.serve.service.DecodeService`.

    Use as an async context manager (starts the pump on enter, drains
    and stops it on exit), or call :meth:`start` / :meth:`aclose`
    explicitly.  One pump task per instance; submissions from any
    number of coroutines are serialised through an ``asyncio.Lock``
    because the core is deliberately single-threaded.
    """

    def __init__(self, service: DecodeService):
        self._service = service
        if service.on_verdict is not None:
            raise ValueError(
                "the wrapped DecodeService already has an on_verdict "
                "callback; AsyncDecodeService needs to own it"
            )
        service.on_verdict = self._on_verdict
        self._lock = asyncio.Lock()
        self._wakeup: asyncio.Event | None = None
        self._pump_task: asyncio.Task | None = None
        self._futures: dict[int, asyncio.Future] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closing = False

    @property
    def service(self) -> DecodeService:
        """The wrapped deterministic core (reports, alerts, accounting)."""
        return self._service

    # -- lifecycle ----------------------------------------------------------
    async def __aenter__(self) -> "AsyncDecodeService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def start(self) -> None:
        """Start the background pump task (idempotent)."""
        if self._pump_task is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._closing = False
        self._pump_task = asyncio.create_task(self._pump())

    async def aclose(self) -> None:
        """Drain the backlog, resolve every pending future, stop the pump."""
        if self._pump_task is None:
            return
        self._closing = True
        assert self._wakeup is not None
        self._wakeup.set()
        await self._pump_task
        self._pump_task = None
        # The core's stop() rejects future submissions and drains, so
        # no admitted frame is left without a verdict.
        async with self._lock:
            await asyncio.to_thread(self._service.stop)

    # -- submission ---------------------------------------------------------
    async def submit(
        self,
        stream: str,
        frame: np.ndarray,
        deadline_s: float | None = None,
    ) -> tuple[SubmitTicket, "asyncio.Future[FrameVerdict] | None"]:
        """Admit one frame; returns ``(ticket, verdict_future)``.

        The future is ``None`` when the ticket was rejected (rejection
        *is* the terminal answer).  Otherwise it resolves with the
        frame's :class:`~repro.serve.service.FrameVerdict` once a
        dispatch cycle produces it.
        """
        if self._pump_task is None:
            raise RuntimeError("service not started; use 'async with'")
        async with self._lock:
            ticket = self._service.submit(stream, frame, deadline_s)
            future: asyncio.Future | None = None
            if ticket.admitted:
                assert self._loop is not None
                future = self._loop.create_future()
                self._futures[ticket.seq] = future
        assert self._wakeup is not None
        self._wakeup.set()
        return ticket, future

    async def decode(
        self,
        stream: str,
        frame: np.ndarray,
        deadline_s: float | None = None,
    ) -> tuple[SubmitTicket, FrameVerdict | None]:
        """Submit and await the terminal verdict in one call.

        Returns ``(ticket, verdict)``; ``verdict`` is ``None`` when the
        submission was rejected at admission.
        """
        ticket, future = await self.submit(stream, frame, deadline_s)
        if future is None:
            return ticket, None
        return ticket, await future

    # -- internals ----------------------------------------------------------
    def _on_verdict(self, verdict: FrameVerdict) -> None:
        """Core callback: resolve the matching future (thread-safe)."""
        future = self._futures.pop(verdict.seq, None)
        if future is None or future.done():
            return
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(
            lambda: None if future.done() else future.set_result(verdict)
        )

    async def _pump(self) -> None:
        """Run dispatch cycles while there is backlog; sleep otherwise."""
        assert self._wakeup is not None
        while True:
            if self._service.backlog == 0:
                if self._closing:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            async with self._lock:
                await asyncio.to_thread(self._service.run_cycle)
            # Yield so submitters interleave between cycles.
            await asyncio.sleep(0)
