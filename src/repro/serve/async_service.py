"""Asyncio front end: awaitable submissions over the deterministic core.

:class:`AsyncDecodeService` wraps a :class:`~repro.serve.service.DecodeService`
for event-loop callers: ``await submit(...)`` performs admission
control inline (it is cheap and synchronous) and returns the ticket
*plus* an awaitable for the terminal verdict; a background pump task
runs dispatch cycles -- off the event loop via
:func:`asyncio.to_thread`, so BLAS-heavy solves never block admission
-- whenever there is backlog.

The split keeps the robustness logic testable: everything that decides
*what happens to a frame* lives in the synchronous core and is covered
by the deterministic overload tests; this module only adds scheduling
(futures, the pump task, graceful shutdown) and inherits the core's
zero-unanswered-frames contract -- ``aclose`` drains the backlog, so
every pending future resolves before the loop is released.  The
contract survives *ungraceful* shutdown too: if the pump task is
cancelled mid-cycle (event-loop teardown, task group abort), every
still-pending future resolves with a terminal ``shed``/``"shutdown"``
verdict instead of dangling forever.

Typical use::

    service = DecodeService(executor="thread", cycle_budget=16)
    ...register tenants and streams...
    async with AsyncDecodeService(service) as srv:
        ticket, verdict = await srv.decode("skin-7", frame, deadline_s=0.1)
        if ticket.admitted:
            print((await verdict).status)
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np

from .service import DecodeService, FrameVerdict, SubmitTicket

__all__ = ["AsyncDecodeService"]


class AsyncDecodeService:
    """Awaitable facade over a :class:`~repro.serve.service.DecodeService`.

    Use as an async context manager (starts the pump on enter, drains
    and stops it on exit), or call :meth:`start` / :meth:`aclose`
    explicitly.  One pump task per instance; submissions from any
    number of coroutines are serialised through an ``asyncio.Lock``
    because the core is deliberately single-threaded.
    """

    def __init__(self, service: DecodeService):
        self._service = service
        if service.on_verdict is not None:
            raise ValueError(
                "the wrapped DecodeService already has an on_verdict "
                "callback; AsyncDecodeService needs to own it"
            )
        service.on_verdict = self._on_verdict
        self._lock = asyncio.Lock()
        self._wakeup: asyncio.Event | None = None
        self._pump_task: asyncio.Task | None = None
        self._futures: dict[int, asyncio.Future] = {}
        self._tickets: dict[int, SubmitTicket] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closing = False

    @property
    def service(self) -> DecodeService:
        """The wrapped deterministic core (reports, alerts, accounting)."""
        return self._service

    # -- lifecycle ----------------------------------------------------------
    async def __aenter__(self) -> "AsyncDecodeService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def start(self) -> None:
        """Start the background pump task (idempotent)."""
        if self._pump_task is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._closing = False
        self._pump_task = asyncio.create_task(self._pump())

    async def aclose(self) -> None:
        """Drain the backlog, resolve every pending future, stop the pump.

        Safe to call after the pump task was cancelled externally: the
        cancellation is absorbed, the core still drains, and any future
        the drain could not answer (its frame was lost with the
        cancelled cycle) resolves with a terminal ``"shutdown"``
        verdict.
        """
        if self._pump_task is None:
            return
        self._closing = True
        assert self._wakeup is not None
        self._wakeup.set()
        with contextlib.suppress(asyncio.CancelledError):
            await self._pump_task
        self._pump_task = None
        # The core's stop() rejects future submissions and drains, so
        # no admitted frame is left without a verdict.
        async with self._lock:
            await asyncio.to_thread(self._service.stop)
        # Belt and braces: anything still unresolved (e.g. the pump was
        # cancelled mid-cycle and the drain could not re-answer it)
        # gets the terminal shutdown verdict rather than dangling.
        self._resolve_pending_shutdown()

    # -- submission ---------------------------------------------------------
    async def submit(
        self,
        stream: str,
        frame: np.ndarray,
        deadline_s: float | None = None,
    ) -> tuple[SubmitTicket, "asyncio.Future[FrameVerdict] | None"]:
        """Admit one frame; returns ``(ticket, verdict_future)``.

        The future is ``None`` when the ticket was rejected (rejection
        *is* the terminal answer).  Otherwise it resolves with the
        frame's :class:`~repro.serve.service.FrameVerdict` once a
        dispatch cycle produces it.
        """
        if self._pump_task is None:
            raise RuntimeError("service not started; use 'async with'")
        async with self._lock:
            ticket = self._service.submit(stream, frame, deadline_s)
            future: asyncio.Future | None = None
            if ticket.admitted:
                assert self._loop is not None
                future = self._loop.create_future()
                self._futures[ticket.seq] = future
                self._tickets[ticket.seq] = ticket
        assert self._wakeup is not None
        self._wakeup.set()
        return ticket, future

    async def decode(
        self,
        stream: str,
        frame: np.ndarray,
        deadline_s: float | None = None,
    ) -> tuple[SubmitTicket, FrameVerdict | None]:
        """Submit and await the terminal verdict in one call.

        Returns ``(ticket, verdict)``; ``verdict`` is ``None`` when the
        submission was rejected at admission.
        """
        ticket, future = await self.submit(stream, frame, deadline_s)
        if future is None:
            return ticket, None
        return ticket, await future

    # -- internals ----------------------------------------------------------
    def _on_verdict(self, verdict: FrameVerdict) -> None:
        """Core callback: resolve the matching future (thread-safe)."""
        future = self._futures.pop(verdict.seq, None)
        self._tickets.pop(verdict.seq, None)
        if future is None or future.done():
            return
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(
            lambda: None if future.done() else future.set_result(verdict)
        )

    def _resolve_pending_shutdown(self) -> None:
        """Resolve every dangling future with a terminal shutdown verdict.

        Runs on the event loop thread (cancellation handler / aclose
        epilogue), so futures are resolved directly.  The synthetic
        verdict is honest: ``shed`` with reason ``"shutdown"`` -- the
        service died before (or while) deciding the frame, and the
        caller must not wait forever for an answer that can no longer
        arrive.
        """
        for seq, future in sorted(self._futures.items()):
            ticket = self._tickets.get(seq)
            if future.done():
                continue
            stream = "" if ticket is None else ticket.stream
            state = self._service._streams.get(stream)
            future.set_result(
                FrameVerdict(
                    seq=seq,
                    stream=stream,
                    tenant="" if ticket is None else ticket.tenant,
                    priority=0 if state is None else state.priority,
                    status="shed",
                    reason="shutdown",
                )
            )
        self._futures.clear()
        self._tickets.clear()

    async def _pump(self) -> None:
        """Run dispatch cycles while there is backlog; sleep otherwise.

        Cancellation mid-cycle is terminal for the pump but must not be
        terminal for the *callers*: every future still pending when the
        cancel lands resolves with the ``shed``/``"shutdown"`` verdict
        before the cancellation propagates.
        """
        assert self._wakeup is not None
        try:
            while True:
                if self._service.backlog == 0:
                    if self._closing:
                        return
                    self._wakeup.clear()
                    await self._wakeup.wait()
                    continue
                async with self._lock:
                    await asyncio.to_thread(self._service.run_cycle)
                # Yield so submitters interleave between cycles.
                await asyncio.sleep(0)
        except asyncio.CancelledError:
            self._resolve_pending_shutdown()
            raise
