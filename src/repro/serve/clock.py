"""Injectable time sources for the decode service.

Everything time-dependent in :mod:`repro.serve` -- token-bucket
refill, per-frame deadlines, queue-latency accounting, staleness-based
shedding -- reads time through a :class:`Clock` instead of calling
``time.monotonic()`` directly.  That indirection is what makes the
service's robustness behaviour *testable*: the overload acceptance
test drives a :class:`VirtualClock` tick by tick, so deadline expiry
and bucket refill are exact, reproducible functions of the submitted
traffic rather than of CI scheduling jitter.

Production deployments use the default :class:`MonotonicClock`;
anything with a ``now() -> float`` method qualifies.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "MonotonicClock", "VirtualClock"]


class Clock:
    """Minimal time-source protocol: ``now()`` in (fractional) seconds.

    The unit is whatever the deployment treats as a second; the service
    only ever compares and subtracts ``now()`` values, so a virtual
    clock may count scan ticks instead of wall seconds.
    """

    def now(self) -> float:
        """Current time in seconds (monotonic, never decreasing)."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """Wall-clock time source backed by :func:`time.monotonic`."""

    def now(self) -> float:
        """Current :func:`time.monotonic` reading."""
        return time.monotonic()


class VirtualClock(Clock):
    """Manually advanced clock for deterministic tests and replays.

    Starts at ``start`` and only moves when :meth:`advance` is called,
    so a test can submit a burst, advance exactly one deadline's worth
    of time, and assert which frames expired -- bit-for-bit the same on
    every run and every machine.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` (must be >= 0); returns the new now."""
        if dt < 0:
            raise ValueError(f"cannot advance time backwards (dt={dt})")
        self._now += float(dt)
        return self._now
