"""Batch coalescing: turn dispatched frames into ``decode_batch`` calls.

The throughput half of the decode service.  Each stream owns one frozen
:class:`~repro.core.engine.DecodeContext` plan, so every frame of a
stream is same-shape/same-plan by construction -- exactly the regime
:meth:`~repro.core.engine.DecodeEngine.decode_batch` amortises (one
cached operator template, optional multi-RHS lockstep solve, fan-out
over the shared executor).  The coalescer groups one dispatch cycle's
frames back into per-stream runs (preserving per-stream submission
order, which preserves each stream's RNG consumption order) and chops
them into batches of at most ``max_batch``.

Decode routing per batch:

* **supervised streams** (a ``ResilientDecoder`` attached): frames
  decode one at a time *in order* -- breaker, guard and adaptive state
  must advance frame by frame -- and each yields its genuine
  :class:`~repro.resilience.runtime.DecodeOutcome`;
* **plain streams**: the whole batch goes through ``decode_batch`` on
  the shared executor; each reconstruction is wrapped in a minimal
  ``ok`` outcome so every response speaks the same
  ``DecodeOutcome.to_dict()`` schema;
* **fault containment**: a plain batch that raises (chaos injector, a
  poisoned frame that slipped validation) is retried frame-by-frame;
  a frame that still raises yields a ``"failed"`` outcome carrying the
  error string -- the service never loses a frame to an exception.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import instrument
from ..core.engine import DecodeContext, get_engine
from ..resilience.runtime import DecodeOutcome
from .queueing import PendingFrame

__all__ = ["CoalescedBatch", "Coalescer", "decode_pending"]


@dataclass(frozen=True)
class CoalescedBatch:
    """One same-plan run of pending frames headed for a single decode call."""

    stream: str
    pendings: tuple[PendingFrame, ...]


class Coalescer:
    """Groups a dispatch cycle's frames into per-stream batches.

    Parameters
    ----------
    max_batch:
        Upper bound on frames per ``decode_batch`` call.  Large batches
        amortise better; small ones bound the latency a frame can pick
        up waiting for its batch to finish.
    """

    def __init__(self, max_batch: int = 8):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = int(max_batch)

    def coalesce(self, dispatched: list[PendingFrame]) -> list[CoalescedBatch]:
        """Split dispatched frames into per-stream, size-capped batches.

        Frames are grouped by stream with their relative (seq) order
        preserved, then chunked at ``max_batch``.  Group order follows
        first appearance in ``dispatched``, so higher-priority streams
        decode first.
        """
        runs: dict[str, list[PendingFrame]] = {}
        order: list[str] = []
        for pending in dispatched:
            if pending.stream not in runs:
                runs[pending.stream] = []
                order.append(pending.stream)
            runs[pending.stream].append(pending)
        batches: list[CoalescedBatch] = []
        for stream in order:
            frames = runs[stream]
            for start in range(0, len(frames), self.max_batch):
                chunk = tuple(frames[start:start + self.max_batch])
                batches.append(CoalescedBatch(stream=stream, pendings=chunk))
                instrument.incr("serve.coalescer.batches")
                instrument.observe("serve.coalescer.batch_size", len(chunk))
        return batches


def _failed_outcome(shape: tuple, error: Exception) -> DecodeOutcome:
    """A terminal ``failed`` outcome for a frame whose decode raised."""
    return DecodeOutcome(
        frame=np.zeros(shape),
        status="failed",
        solver=None,
        faults_seen=(type(error).__name__,),
    )


def _plain_outcome(reconstruction: np.ndarray, solver: str) -> DecodeOutcome:
    """Wrap a bare engine reconstruction in the shared outcome schema."""
    return DecodeOutcome(frame=reconstruction, status="ok", solver=solver)


def decode_pending(
    batch: CoalescedBatch,
    plan: DecodeContext,
    rng: np.random.Generator,
    decoder=None,
    executor=None,
    shared_phi: bool = False,
) -> list[DecodeOutcome]:
    """Decode one coalesced batch; one terminal outcome per frame.

    ``decoder`` (a :class:`~repro.resilience.runtime.ResilientDecoder`)
    switches the batch to supervised frame-at-a-time decoding; without
    one the batch runs through the engine's ``decode_batch`` on
    ``executor``.  Exceptions never escape: a failing batch falls back
    to per-frame decoding, and a frame that still fails yields a
    ``"failed"`` outcome instead of raising.
    """
    frames = [p.frame for p in batch.pendings]
    with instrument.span(
        "serve.decode_batch",
        stream=batch.stream,
        frames=len(frames),
        supervised=decoder is not None,
    ):
        if decoder is not None:
            batch_decode = getattr(decoder, "decode_batch", None)
            if batch_decode is not None:
                try:
                    return batch_decode(
                        frames,
                        plan.sampling_fraction,
                        rng,
                        exclude_mask=plan.exclude_mask,
                        noise_sigma=plan.noise_sigma,
                        solver_options=dict(plan.solver_options),
                        shared_phi=shared_phi,
                    )
                except Exception:  # noqa: BLE001 - retry frame-by-frame
                    instrument.incr("serve.batch_retries")
            outcomes = []
            for frame in frames:
                try:
                    outcomes.append(
                        decoder.decode(
                            frame,
                            plan.sampling_fraction,
                            rng,
                            exclude_mask=plan.exclude_mask,
                            noise_sigma=plan.noise_sigma,
                            solver_options=dict(plan.solver_options),
                        )
                    )
                except Exception as exc:  # noqa: BLE001 - containment
                    instrument.incr("serve.decode_errors")
                    outcomes.append(_failed_outcome(plan.shape, exc))
            return outcomes
        engine = get_engine()
        try:
            reconstructions = engine.decode_batch(
                frames, plan, rng, executor=executor, shared_phi=shared_phi
            )
            return [
                _plain_outcome(r, plan.solver) for r in reconstructions
            ]
        except Exception:  # noqa: BLE001 - retry frame-by-frame
            instrument.incr("serve.batch_retries")
        outcomes = []
        for frame in frames:
            try:
                outcomes.append(
                    _plain_outcome(
                        engine.decode(frame, plan, rng), plan.solver
                    )
                )
            except Exception as exc:  # noqa: BLE001 - containment
                instrument.incr("serve.decode_errors")
                outcomes.append(_failed_outcome(plan.shape, exc))
        return outcomes
